//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`black_box`]
//! and the `criterion_group!`/`criterion_main!` macros — backed by a
//! simple adaptive wall-clock timer instead of criterion's statistical
//! machinery. Results are printed as one line per benchmark:
//!
//! ```text
//! group/name/param        time: 1.234 µs/iter  (1624 iters)  thrpt: 829.9 Melem/s
//! ```

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per benchmark measurement.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// True when the binary was invoked with `--test` (as in
/// `cargo bench -- --test`, matching real criterion): every benchmark
/// closure runs exactly once with no timing — a smoke mode that
/// catches bench bitrot in CI without paying measurement time.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Units processed per iteration, for derived throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count to fill the
    /// measurement budget. The closure's return value is black-boxed so
    /// the computation is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if test_mode() {
            // Smoke mode: execute once so panics/bitrot surface, skip
            // all measurement.
            black_box(f());
            self.iters = 1;
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        // Warm-up and calibration: time a single call.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let target = MEASURE_BUDGET.as_nanos();
        let iters = (target / once.as_nanos()).clamp(1, 100_000) as u64;

        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
        self.iters = iters;
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this harness uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into(), self.throughput, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    if bencher.iters == 0 {
        println!("{label:<44} (no measurement: Bencher::iter never called)");
        return;
    }
    if test_mode() {
        println!("{label:<44} ok (--test mode, 1 iter, untimed)");
        return;
    }
    let per_iter_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let mut line =
        format!("{label:<44} time: {}  ({} iters)", format_ns(per_iter_ns), bencher.iters);
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (per_iter_ns * 1e-9);
        line.push_str(&format!("  thrpt: {}", format_rate(rate, unit)));
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}/s")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("fwd", 1024).label, "fwd/1024");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
