//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides a compatible-enough serialization framework for the
//! workspace: [`Serialize`]/[`Deserialize`] traits (with derive macros
//! re-exported from `serde_derive`) that convert values to and from a
//! JSON-shaped [`Value`] tree. The companion `serde_json` vendored
//! crate renders that tree to JSON text and parses it back.
//!
//! Unlike real serde there is no zero-copy visitor machinery — every
//! (de)serialization goes through [`Value`]. For the report/config
//! types this workspace round-trips, that is fully sufficient and
//! keeps the vendored code small and auditable.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Unsigned and signed integers are kept distinct from floats so that
/// full-width `u64` torus elements round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (covers the full `u64` range).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "unsigned integer",
            Value::I64(_) => "signed integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Builds a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field of an object by name (derive-macro helper).
///
/// # Errors
///
/// Returns [`DeError`] when the field is missing.
pub fn get_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 {
                    Value::U64(wide as u64)
                } else {
                    Value::I64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range for i64")))?,
                    Value::I64(i) => *i,
                    other => return Err(DeError::expected("signed integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // Stay on the exact integer path when possible; values beyond
        // u64 fall back to a decimal string.
        match u64::try_from(*self) {
            Ok(u) => Value::U64(u),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(u) => Ok(*u as u128),
            Value::I64(i) if *i >= 0 => Ok(*i as u128),
            Value::Str(s) => {
                s.parse::<u128>().map_err(|_| DeError::custom(format!("invalid u128 `{s}`")))
            }
            other => Err(DeError::expected("unsigned integer", other)),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => i.to_value(),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(u) => Ok(*u as i128),
            Value::I64(i) => Ok(*i as i128),
            Value::Str(s) => {
                s.parse::<i128>().map_err(|_| DeError::custom(format!("invalid i128 `{s}`")))
            }
            other => Err(DeError::expected("signed integer", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of {N}, got {} elements",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        Ok(parsed.try_into().expect("length checked above"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        let x = 1.25f64;
        assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let t = (7usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn range_checks_reject() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }

    #[test]
    fn missing_field_reported() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert!(get_field(&obj, "a").is_ok());
        assert!(get_field(&obj, "b").is_err());
    }
}
