//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the proptest API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter`, range and collection strategies, `prop::sample::select`,
//! `any::<T>()`, the `proptest!` macro with `#![proptest_config(...)]`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case panics with the assertion message
//!   directly. Each test function draws from a generator seeded from the
//!   test's own name, so failures reproduce deterministically.
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning a
//!   `TestCaseError` (the harness treats both as failure).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration: number of random cases per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Derives a deterministic per-test seed from the test name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (up to a bound).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.sample(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive samples", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        start + unit * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

/// Strategy over the full domain of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// A strategy for `Vec`s of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
            VecStrategy { element, size: size.pick_bounds() }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Select;

        /// A strategy drawing uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }
    }
}

/// A fixed or bounded element count for [`prop::collection::vec`].
pub trait SizeRange {
    /// The inclusive (min, max) element count.
    fn pick_bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn pick_bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn pick_bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick_bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// See [`prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: (usize, usize),
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let (min, max) = self.size;
        let len = if min == max { min } else { min + (rng.next_u64() as usize) % (max - min + 1) };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`prop::sample::select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = (rng.next_u64() as usize) % self.options.len();
        self.options[idx].clone()
    }
}

/// Builds the per-test generator.
pub fn test_rng(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_from_name(name))
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // The conventional `proptest!` body already carries `#[test]`
        // in $meta, so no extra attribute is added here.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::test_rng("ranges_stay_in_bounds");
        for _ in 0..500 {
            let x = (1u32..=16).sample(&mut rng);
            assert!((1..=16).contains(&x));
            let y = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&y));
            let z = (-1.5f64..2.5).sample(&mut rng);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn map_filter_compose() {
        let strat = (1u32..=16, 1usize..=4)
            .prop_filter("fits", |(b, l)| (*b as usize) * *l <= 16)
            .prop_map(|(b, l)| (b as usize) * l);
        let mut rng = super::test_rng("map_filter_compose");
        for _ in 0..500 {
            assert!(strat.sample(&mut rng) <= 16);
        }
    }

    #[test]
    fn vec_and_select() {
        let mut rng = super::test_rng("vec_and_select");
        let v = prop::collection::vec(-3i64..=3, 17).sample(&mut rng);
        assert_eq!(v.len(), 17);
        assert!(v.iter().all(|x| (-3..=3).contains(x)));
        let s = prop::sample::select(vec![2usize, 4, 8]).sample(&mut rng);
        assert!([2, 4, 8].contains(&s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns(a in any::<u64>(), (b, c) in (0u32..10, 0u32..10)) {
            prop_assert!(b < 10 && c < 10);
            let _ = a;
        }
    }
}
