//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! value tree to JSON text and parses it back.
//!
//! Floats are written with Rust's shortest round-trip formatting, so a
//! serialize → parse cycle reproduces every finite `f64` bit-exactly;
//! full-width `u64` integers are kept on an integer path and never go
//! through a double.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for the value model in practice; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Serializes a value into the [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                let text = format!("{x:?}");
                out.push_str(&text);
            } else {
                // JSON has no NaN/inf; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(value, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(Error::new(format!("unexpected `{}` at byte {}", other as char, self.pos)))
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error::new("surrogate \\u escape unsupported")
                                })?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = digits.parse::<i64>() {
                    return Ok(Value::I64(-i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert!(from_str::<bool>("true").unwrap());
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&text).unwrap(), x);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(usize, f64)>>(&text).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a \"b\"\n\\tail\tend".to_string();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }

    #[test]
    fn option_null() {
        let none: Option<u32> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 , 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
