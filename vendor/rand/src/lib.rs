//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the small API subset the workspace actually uses:
//! [`rngs::StdRng`], the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits,
//! `gen`, `gen_range` and `fill_bytes`. The generator is a
//! xoshiro256++ seeded through SplitMix64 — statistically solid and
//! deterministic under a fixed seed, which is all the workspace's
//! reproducibility contract requires. It is **not** the cryptographic
//! ChaCha generator of the real `rand::rngs::StdRng`; for research
//! reproducibility that distinction is irrelevant, but do not treat
//! the noise sampled through it as production-grade.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from ambient entropy (time-based).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos ^ 0xd1b54a32d192ed03)
    }
}

/// Sampling of a value of type `Self` from raw generator output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic under [`SeedableRng::seed_from_u64`].
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(9..19);
            assert!((9..19).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = r.gen_range(3.0..6.0);
            assert!((3.0..6.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
