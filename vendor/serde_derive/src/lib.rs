//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the vendored value-tree `serde` without depending on `syn`/`quote`:
//! the input token stream is parsed by hand into a small item model
//! (struct with named fields, or enum of unit/tuple/struct variants —
//! exactly the shapes this workspace derives on), and the impls are
//! emitted as source text.
//!
//! Unsupported shapes (generic types, tuple structs, unions) produce a
//! compile error naming the limitation rather than silently-wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// A named field plus the subset of `#[serde(...)]` attributes the
/// stub honours (`default`: fall back to `Default::default()` when the
/// field is absent during deserialization).
#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derives `serde::Serialize` via the value tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` via the value tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("serde_derive stub generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected type name")?;
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde_derive stub: generic type `{name}` is not supported"));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Struct { name, fields: parse_named_fields(g.stream())? })
            }
            _ => Err(format!("serde_derive stub: struct `{name}` must have named fields")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            _ => Err(format!("serde_derive stub: malformed enum `{name}`")),
        },
        other => Err(format!("serde_derive stub: unsupported item `{other}`")),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name1: Type1, name2: Type2, ...` from a brace group's
/// stream, honouring `#[serde(default)]` on individual fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Consume attributes and visibility, noting serde attributes.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(is_default) = parse_serde_attr(g.stream())? {
                            default = default || is_default;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected field name")?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Inspects one attribute's bracket-group stream. Returns
/// `Ok(Some(true))` for `serde(default)`, `Ok(None)` for non-serde
/// attributes, and an error for any other `serde(...)` content — the
/// stub refuses attributes it would otherwise silently ignore.
fn parse_serde_attr(stream: TokenStream) -> Result<Option<bool>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(opt)] if opt.to_string() == "default" => Ok(Some(true)),
                _ => Err("serde_derive stub: only `#[serde(default)]` is supported".to_string()),
            }
        }
        _ => Ok(None),
    }
}

/// Advances past a type, stopping after the top-level `,` (or at end).
/// Angle brackets are tracked by depth since they are bare punctuation
/// in the token stream.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected variant name")?;
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_elems(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde_derive stub: explicit discriminant on `{name}` is not supported"
            ));
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn count_tuple_elems(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                // A trailing comma does not start a new element.
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \tfn to_value(&self) -> ::serde::Value {{\n\
                 \t\t::serde::Value::Object(vec![{entries}])\n\
                 \t}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|k| format!("__f{k}")).collect();
                            let elems = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let payload = if *arity == 1 {
                                elems
                            } else {
                                format!("::serde::Value::Array(vec![{elems}])")
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds =
                                fields.iter().map(|f| f.name.clone()).collect::<Vec<_>>().join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n\t\t\t");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \tfn to_value(&self) -> ::serde::Value {{\n\
                 \t\tmatch self {{\n\
                 \t\t\t{arms}\n\
                 \t\t}}\n\
                 \t}}\n\
                 }}"
            )
        }
    }
}

/// One `name: value,` initializer for a deserialized field: missing
/// fields are an error unless the field carries `#[serde(default)]`,
/// in which case they fall back to `Default::default()`.
fn field_init(f: &Field, obj: &str) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::get_field({obj}, {name:?}) {{\n\
             \t\t\t\tOk(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
             \t\t\t\tErr(_) => ::core::default::Default::default(),\n\
             \t\t\t}},"
        )
    } else {
        format!("{name}: ::serde::Deserialize::from_value(::serde::get_field({obj}, {name:?})?)?,")
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits =
                fields.iter().map(|f| field_init(f, "__obj")).collect::<Vec<_>>().join("\n\t\t\t");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \tfn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 \t\tlet __obj = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\", __v))?;\n\
                 \t\tOk({name} {{\n\
                 \t\t\t{inits}\n\
                 \t\t}})\n\
                 \t}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
                .collect::<Vec<_>>()
                .join("\n\t\t\t\t");
            let payload_arms = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "return Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?));"
                                )
                            } else {
                                let elems = (0..*arity)
                                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!(
                                    "let __items = __payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vname}\", __payload))?;\n\
                                     \t\t\t\t\tif __items.len() != {arity} {{ return Err(::serde::DeError::custom(\"wrong arity for {name}::{vname}\")); }}\n\
                                     \t\t\t\t\treturn Ok({name}::{vname}({elems}));"
                                )
                            };
                            Some(format!("{vname:?} => {{ {body} }}"))
                        }
                        VariantKind::Struct(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| field_init(f, "__fields"))
                                .collect::<Vec<_>>()
                                .join(" ");
                            Some(format!(
                                "{vname:?} => {{\n\
                                 \t\t\t\t\tlet __fields = __payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for {name}::{vname}\", __payload))?;\n\
                                 \t\t\t\t\treturn Ok({name}::{vname} {{ {inits} }});\n\
                                 \t\t\t\t}}"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n\t\t\t\t");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \tfn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 \t\tif let Some(__s) = __v.as_str() {{\n\
                 \t\t\tmatch __s {{\n\
                 \t\t\t\t{unit_arms}\n\
                 \t\t\t\t_ => return Err(::serde::DeError::custom(format!(\"unknown variant `{{__s}}` of {name}\"))),\n\
                 \t\t\t}}\n\
                 \t\t}}\n\
                 \t\tif let Some(__entries) = __v.as_object() {{\n\
                 \t\t\tif __entries.len() == 1 {{\n\
                 \t\t\t\tlet (__tag, __payload) = (&__entries[0].0, &__entries[0].1);\n\
                 \t\t\t\tmatch __tag.as_str() {{\n\
                 \t\t\t\t{payload_arms}\n\
                 \t\t\t\t_ => return Err(::serde::DeError::custom(format!(\"unknown variant `{{__tag}}` of {name}\"))),\n\
                 \t\t\t\t}}\n\
                 \t\t\t}}\n\
                 \t\t}}\n\
                 \t\tErr(::serde::DeError::expected(\"variant of {name}\", __v))\n\
                 \t}}\n\
                 }}"
            )
        }
    }
}
