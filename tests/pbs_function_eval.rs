//! Programmable bootstrapping as a universal univariate-function
//! evaluator — the capability that distinguishes TFHE from CKKS
//! (paper Table I: "Add, look-up table").

use strix::tfhe::prelude::*;

fn keys() -> (ClientKey, ServerKey) {
    generate_keys(&TfheParameters::testing_fast(), 60_601)
}

#[test]
fn identity_negation_and_constants() {
    let (mut client, server) = keys();
    let p = 3u32;
    for m in 0..8u64 {
        let ct = client.encrypt_shortint(m, p).unwrap();
        let id = server.apply_lut(&ct, |x| x).unwrap();
        assert_eq!(client.decrypt_shortint(&id), m);
        let neg = server.apply_lut(&ct, |x| (8 - x) % 8).unwrap();
        assert_eq!(client.decrypt_shortint(&neg), (8 - m) % 8);
        let konst = server.apply_lut(&ct, |_| 5).unwrap();
        assert_eq!(client.decrypt_shortint(&konst), 5);
    }
}

#[test]
fn nonlinear_functions_square_threshold_parity() {
    let (mut client, server) = keys();
    let p = 3u32;
    for m in 0..8u64 {
        let ct = client.encrypt_shortint(m, p).unwrap();
        let sq = server.apply_lut(&ct, |x| (x * x) % 8).unwrap();
        assert_eq!(client.decrypt_shortint(&sq), (m * m) % 8, "square({m})");
        let thr = server.apply_lut(&ct, |x| u64::from(x >= 4)).unwrap();
        assert_eq!(client.decrypt_shortint(&thr), u64::from(m >= 4), "thr({m})");
        let parity = server.apply_lut(&ct, |x| x & 1).unwrap();
        assert_eq!(client.decrypt_shortint(&parity), m & 1, "parity({m})");
    }
}

#[test]
fn relu_matches_signed_semantics_for_all_inputs() {
    let (mut client, server) = keys();
    let p = 3u32;
    for m in 0..8u64 {
        let ct = client.encrypt_shortint(m, p).unwrap();
        let out = server.relu(&ct).unwrap();
        let expected = if m < 4 { m } else { 0 }; // 4..7 ≡ −4..−1 → 0
        assert_eq!(client.decrypt_shortint(&out), expected, "relu({m})");
    }
}

#[test]
fn lut_chains_compose() {
    // g(f(m)) via two successive bootstraps; noise is refreshed at each
    // step so arbitrarily long chains work.
    let (mut client, server) = keys();
    let f = |x: u64| (x + 3) % 8;
    let g = |x: u64| (5 * x) % 8;
    for m in 0..8u64 {
        let ct = client.encrypt_shortint(m, 3).unwrap();
        let mid = server.apply_lut(&ct, f).unwrap();
        let out = server.apply_lut(&mid, g).unwrap();
        assert_eq!(client.decrypt_shortint(&out), g(f(m)), "g(f({m}))");
    }
}

#[test]
fn linear_ops_then_lut() {
    // The canonical TFHE computation pattern: cheap linear arithmetic
    // accumulates, a single PBS applies the nonlinearity.
    let (mut client, server) = keys();
    let a = client.encrypt_shortint(2, 3).unwrap();
    let b = client.encrypt_shortint(3, 3).unwrap();
    let mut acc = a.clone();
    acc.add_assign(&b).unwrap(); // 5
    acc.scalar_add_assign(1).unwrap(); // 6
    let halved = server.apply_lut(&acc, |x| x / 2).unwrap();
    assert_eq!(client.decrypt_shortint(&halved), 3);
}

#[test]
fn different_precisions_coexist() {
    let (mut client, server) = keys();
    for p in 1..=4u32 {
        let modulus = 1u64 << p;
        for m in [0, modulus - 1] {
            let ct = client.encrypt_shortint(m, p).unwrap();
            let inc = server.apply_lut(&ct, move |x| (x + 1) % modulus).unwrap();
            assert_eq!(client.decrypt_shortint(&inc), (m + 1) % modulus, "p={p} m={m}");
        }
    }
}

#[test]
fn bootstrap_refresh_enables_unbounded_additions() {
    // Without refresh, repeated additions would eventually overflow the
    // padding bit; interleaving identity bootstraps keeps the message
    // space clean.
    let (mut client, server) = keys();
    let one = client.encrypt_shortint(1, 3).unwrap();
    let mut acc = client.encrypt_shortint(0, 3).unwrap();
    for step in 1..=10u64 {
        acc.add_assign(&one).unwrap();
        if step % 2 == 0 {
            acc = server.refresh(&acc).unwrap();
        }
        if step % 8 == step {
            assert_eq!(client.decrypt_shortint(&acc), step % 8, "step {step}");
        }
    }
}
