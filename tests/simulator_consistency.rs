//! Cross-cutting consistency checks of the accelerator model against
//! the paper's published evaluation (Tables III, V, VI, VII; Fig. 8).

use strix::core::area::AreaModel;
use strix::core::{StrixConfig, StrixSimulator};
use strix::tfhe::{ParameterSet, TfheParameters};

/// Paper Table V Strix rows: (set, latency ms, throughput PBS/s).
const PAPER_TABLE_V: [(ParameterSet, f64, f64); 4] = [
    (ParameterSet::SetI, 0.16, 74_696.0),
    (ParameterSet::SetII, 0.23, 39_600.0),
    (ParameterSet::SetIII, 0.44, 21_104.0),
    (ParameterSet::SetIV, 3.31, 2_368.0),
];

#[test]
fn throughput_matches_paper_within_ten_percent() {
    for (set, _, paper_thr) in PAPER_TABLE_V {
        let sim = StrixSimulator::new(StrixConfig::paper_default(), set.parameters()).unwrap();
        let thr = sim.pbs_report(1 << 14).throughput_pbs_per_s;
        let ratio = thr / paper_thr;
        assert!((0.9..1.1).contains(&ratio), "{set}: {thr:.0} vs {paper_thr:.0}");
    }
}

#[test]
fn latency_matches_paper_within_fifty_percent() {
    // Latency is the softer target (the paper's own Tables V and VII
    // disagree by 15% on set IV); the shape must hold within 1.5×.
    for (set, paper_ms, _) in PAPER_TABLE_V {
        let sim = StrixSimulator::new(StrixConfig::paper_default(), set.parameters()).unwrap();
        let ms = sim.pbs_latency_s() * 1e3;
        let ratio = ms / paper_ms;
        assert!((0.67..1.5).contains(&ratio), "{set}: {ms:.3} ms vs paper {paper_ms}");
    }
}

#[test]
fn latency_ordering_follows_workload_size() {
    let mut last = 0.0;
    for set in ParameterSet::ALL {
        let sim = StrixSimulator::new(StrixConfig::paper_default(), set.parameters()).unwrap();
        let lat = sim.pbs_latency_s();
        assert!(lat > last, "{set} latency must exceed the previous set's");
        last = lat;
    }
}

#[test]
fn folding_ablation_matches_table_vi() {
    let p = TfheParameters::set_i();
    let folded = StrixSimulator::new(StrixConfig::paper_default(), p.clone()).unwrap();
    let plain = StrixSimulator::new(StrixConfig::paper_non_folded(), p).unwrap();

    let thr_gain =
        folded.pbs_report(4096).throughput_pbs_per_s / plain.pbs_report(4096).throughput_pbs_per_s;
    assert!((1.9..2.1).contains(&thr_gain), "throughput gain {thr_gain}"); // paper: 1.99×

    let lat_gain = plain.pbs_latency_s() / folded.pbs_latency_s();
    assert!((1.3..2.1).contains(&lat_gain), "latency gain {lat_gain}"); // paper: 1.68×

    let a_folded = AreaModel::new(&StrixConfig::paper_default());
    let a_plain = AreaModel::new(&StrixConfig::paper_non_folded());
    let fft_gain = a_plain.fft_units_area_mm2() / a_folded.fft_units_area_mm2();
    assert!((1.6..1.9).contains(&fft_gain), "fft area gain {fft_gain}"); // paper: 1.73×
    let core_gain = a_plain.core_area_mm2() / a_folded.core_area_mm2();
    assert!((1.35..1.6).contains(&core_gain), "core area gain {core_gain}"); // paper: 1.48×
}

#[test]
fn table_vii_sweet_spot_is_tvlp8_clp4() {
    // The paper: TvLP=8/CLP=4 balances compute and memory at one HBM2e
    // stack. Verify it is the highest-CLP config that stays
    // compute-bound with required bandwidth under ~300 GB/s.
    let mut last_ok = None;
    for (tvlp, clp) in [(16, 2), (8, 4), (4, 8), (2, 16), (1, 32)] {
        let cfg = StrixConfig::paper_default().with_tvlp_clp(tvlp, clp);
        let sim = StrixSimulator::new(cfg, TfheParameters::set_iv()).unwrap();
        let r = sim.pbs_report(4096);
        if !r.memory_bound && r.required_bandwidth_gbps < 300.0 {
            last_ok = Some((tvlp, clp, r.latency_s));
        }
    }
    let (tvlp, clp, _) = last_ok.expect("some config must be feasible");
    assert_eq!((tvlp, clp), (8, 4));
}

#[test]
fn area_model_reproduces_table_iii_componentwise() {
    let m = AreaModel::new(&StrixConfig::paper_default());
    let expect = [
        ("Local scratchpad", 0.92),
        ("Rotator", 0.02),
        ("Decomposer", 0.28),
        ("I/FFTU", 7.23),
        ("VMA", 0.63),
        ("Accumulator", 0.32),
    ];
    for (name, paper_mm2) in expect {
        let c = m
            .per_core_components()
            .iter()
            .find(|c| c.name.starts_with(name))
            .unwrap_or_else(|| panic!("missing component {name}"));
        let ratio = c.area_mm2 / paper_mm2;
        assert!((0.97..1.03).contains(&ratio), "{name}: {} vs {paper_mm2}", c.area_mm2);
    }
}

#[test]
fn trace_agrees_with_engine_iteration_period() {
    let sim = StrixSimulator::new(
        StrixConfig::paper_default().with_core_batch(3),
        TfheParameters::set_i(),
    )
    .unwrap();
    let trace = sim.trace(2);
    // Horizon = 2 iterations of the effective period.
    let report = sim.pbs_report(24);
    assert_eq!(trace.horizon_cycles(), 2 * report.iteration_cycles);
    // Fig. 8 qualitative claims.
    assert!(trace.occupancy_of("FFT").unwrap() > 0.8);
    assert!(trace.occupancy_of("Rotator").unwrap() < 0.7);
    let hbm = trace.occupancy_of("HBM").unwrap();
    assert!((0.4..0.8).contains(&hbm), "HBM {hbm}");
}

#[test]
fn keyswitch_stays_hidden_at_all_paper_sets() {
    for set in ParameterSet::ALL {
        let sim = StrixSimulator::new(StrixConfig::paper_default(), set.parameters()).unwrap();
        let r = sim.pbs_report(1 << 14);
        // Hidden keyswitching means throughput is set by the BR epoch:
        // epoch_size / thr == BR epoch time, i.e. KS did not stretch it.
        let br_epoch_s = r.epoch_size as f64 / r.throughput_pbs_per_s;
        let ks_epoch_s = sim
            .config()
            .cycles_to_seconds((sim.ks_cluster().cycles_per_lwe() * r.core_batch as u64) as f64);
        assert!(ks_epoch_s < br_epoch_s, "{set}: ks not hidden");
    }
}

#[test]
fn device_level_scaling_is_linear_until_bandwidth() {
    // Adding cores multiplies throughput until the bsk stream saturates;
    // at set I the stream is light, so 1→16 cores scale ~linearly.
    let p = TfheParameters::set_i();
    let thr_1 =
        StrixSimulator::new(StrixConfig { tvlp: 1, ..StrixConfig::paper_default() }, p.clone())
            .unwrap()
            .pbs_report(4096)
            .throughput_pbs_per_s;
    let thr_16 = StrixSimulator::new(StrixConfig { tvlp: 16, ..StrixConfig::paper_default() }, p)
        .unwrap()
        .pbs_report(4096)
        .throughput_pbs_per_s;
    let scaling = thr_16 / thr_1;
    assert!((15.0..17.0).contains(&scaling), "scaling {scaling}");
}
