//! Integration tests of the streaming runtime: per-client ordering and
//! correctness under bursty open-loop arrivals, batch occupancy under
//! saturation, and lossless drain-on-shutdown.

use std::sync::Arc;
use std::time::Duration;

use strix::core::BatchGeometry;
use strix::runtime::{
    ArrivalProcess, BatchExecutor, OpenLoopTrafficGen, Request, RequestOp, Runtime, RuntimeConfig,
    TfheExecutor, TraceStage, REPORT_SCHEMA_VERSION,
};
use strix::tfhe::bootstrap::Lut;
use strix::tfhe::lwe::LweCiphertext;
use strix::tfhe::prelude::*;
use strix::tfhe::TfheError;

/// A scheduling-only executor: echoes inputs back after a fixed delay,
/// so tests can control the compute/arrival speed ratio without paying
/// for real bootstraps.
struct SlowEchoExecutor {
    delay: Duration,
}

impl BatchExecutor for SlowEchoExecutor {
    fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
        std::thread::sleep(self.delay);
        batch.iter().map(|r| Ok(r.ct.clone())).collect()
    }
}

#[test]
fn bursty_multi_client_streams_stay_ordered_and_correct() {
    const CLIENTS: u64 = 4;
    const PER_CLIENT: usize = 12;
    const BITS: u32 = 3;

    let params = TfheParameters::testing_fast();
    let (client_key, server_key) = generate_keys(&params, 0xB0257);
    let runtime = Runtime::start(
        RuntimeConfig::new(BatchGeometry::explicit(2, 4))
            .with_max_delay(Duration::from_millis(3))
            .with_workers(3),
        TfheExecutor::new(Arc::new(server_key)),
    );
    // Each client evaluates its own function, so a cross-client mixup
    // would also corrupt values, not just ordering.
    let luts: Vec<Arc<Lut>> = (0..CLIENTS)
        .map(|c| {
            Arc::new(
                Lut::from_function(params.polynomial_size, BITS, move |m| (m + c) % 8).unwrap(),
            )
        })
        .collect();
    let traffic = OpenLoopTrafficGen::new(
        ArrivalProcess::Bursty { burst: 5, rate_hz: 5_000.0, idle: Duration::from_millis(8) },
        99,
    );

    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS {
            let mut handle = runtime.client();
            let mut key = client_key.clone();
            let lut = Arc::clone(&luts[client_idx as usize]);
            let delays = traffic.inter_arrivals(client_idx, PER_CLIENT);
            scope.spawn(move || {
                for (i, delay) in delays.iter().enumerate() {
                    std::thread::sleep(*delay);
                    let m = (3 * client_idx + i as u64) % 8;
                    let ct = key.encrypt_shortint(m, BITS).unwrap().as_lwe().clone();
                    handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).unwrap();
                }
                for i in 0..PER_CLIENT as u64 {
                    let response = handle.recv().expect("response");
                    // (a) per-client result ordering is preserved.
                    assert_eq!(response.seq, i, "client {client_idx} out of order");
                    // ...and decrypted results are correct.
                    let out = response.result.expect("op succeeds");
                    let phase = key.decrypt_phase(&out).unwrap();
                    let decoded = strix::tfhe::torus::decode_message(phase, BITS + 1);
                    let expected = ((3 * client_idx + i) % 8 + client_idx) % 8;
                    assert_eq!(decoded, expected, "client {client_idx} request {i}");
                }
            });
        }
    });

    let report = runtime.shutdown();
    assert_eq!(report.requests_completed, CLIENTS as usize * PER_CLIENT);
    assert_eq!(report.requests_failed, 0);
}

#[test]
fn parallel_epoch_runtime_is_correct_and_reports_thread_occupancy() {
    // End-to-end through `Runtime::start_tfhe`: each worker shards its
    // epochs across 3 PBS threads. Results must decode exactly as with
    // the single-threaded executor (the crypto layer guarantees
    // bit-identity; here we check the whole pipeline plus metrics).
    const PER_CLIENT: usize = 24;
    const BITS: u32 = 3;
    const THREADS: usize = 3;

    let params = TfheParameters::testing_fast();
    let (client_key, server_key) = generate_keys(&params, 0x9A7A11E1);
    let geometry = BatchGeometry::explicit(2, 4);
    let runtime = Runtime::start_tfhe(
        RuntimeConfig::new(geometry)
            .with_max_delay(Duration::from_millis(3))
            .with_workers(2)
            .with_threads_per_worker(THREADS),
        Arc::new(server_key),
    );
    let lut =
        Arc::new(Lut::from_function(params.polynomial_size, BITS, |m| (5 * m + 2) % 8).unwrap());

    let mut handle = runtime.client();
    let mut key = client_key.clone();
    for i in 0..PER_CLIENT as u64 {
        let ct = key.encrypt_shortint(i % 8, BITS).unwrap().as_lwe().clone();
        handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).unwrap();
    }
    for i in 0..PER_CLIENT as u64 {
        let response = handle.recv().expect("response");
        assert_eq!(response.seq, i);
        let out = response.result.expect("op succeeds");
        let phase = key.decrypt_phase(&out).unwrap();
        let decoded = strix::tfhe::torus::decode_message(phase, BITS + 1);
        assert_eq!(decoded, (5 * (i % 8) + 2) % 8, "request {i}");
    }

    let report = runtime.shutdown();
    assert_eq!(report.requests_completed, PER_CLIENT);
    assert_eq!(report.requests_failed, 0);
    // Thread metrics recorded: never above the configured budget, and
    // full-size epochs (8 jobs > 3 threads) use the whole budget.
    assert!(report.max_threads_per_epoch <= THREADS);
    assert!(report.mean_threads_per_epoch >= 1.0);
    assert!(report.thread_occupancy > 0.0 && report.thread_occupancy <= 1.0);
    assert!(report.summary().contains("per epoch"));
}

#[test]
fn saturated_ingress_fills_epochs_past_90_percent() {
    // Saturation: a backlog of exactly 12 epochs' worth of requests
    // submitted as fast as the queue accepts them, against an executor
    // slow enough that arrivals always outrun completion. Every epoch
    // must flush full (occupancy 1.0 >= the 0.9 bar).
    let geometry = BatchGeometry::explicit(4, 8);
    let epoch = geometry.epoch_size();
    let total = epoch * 12;
    let runtime = Runtime::start(
        RuntimeConfig::new(geometry).with_max_delay(Duration::from_secs(5)).with_workers(2),
        SlowEchoExecutor { delay: Duration::from_millis(2) },
    );

    let mut handle = runtime.client();
    for i in 0..total as u64 {
        let ct = LweCiphertext::trivial(16, i);
        handle.submit(ct, RequestOp::Keyswitch).unwrap();
    }
    for i in 0..total as u64 {
        let response = handle.recv().expect("response");
        assert_eq!(response.seq, i);
        assert_eq!(response.result.unwrap().body(), i);
    }

    let report = runtime.shutdown();
    assert_eq!(report.requests_completed, total);
    assert_eq!(report.epochs, 12, "full epochs only: {:?}", report.occupancy_histogram);
    assert!(
        report.mean_batch_occupancy >= 0.9,
        "occupancy {:.3} below saturation bar (histogram {:?})",
        report.mean_batch_occupancy,
        report.occupancy_histogram
    );
}

#[test]
fn observability_pipeline_traces_spans_and_attributes_latency_end_to_end() {
    // One run through the real TFHE backend exercises the whole
    // telemetry path: span tracing at every stage boundary, per-class
    // latency attribution, the sampled per-stage PBS breakdown
    // (profile_every = 1 so every epoch samples), windowed series and
    // the queue gauges — all without perturbing results.
    const PER_CLIENT: usize = 10;
    const BITS: u32 = 3;

    let params = TfheParameters::testing_fast();
    let (client_key, server_key) = generate_keys(&params, 0x0B5E7);
    let runtime = Runtime::start_tfhe(
        RuntimeConfig::new(BatchGeometry::explicit(2, 4))
            .with_max_delay(Duration::from_millis(3))
            .with_workers(2)
            .with_profile_every(1),
        Arc::new(server_key),
    );
    let lut = Arc::new(Lut::from_function(params.polynomial_size, BITS, |m| (m + 1) % 8).unwrap());

    let mut handle = runtime.client();
    let mut key = client_key.clone();
    for i in 0..PER_CLIENT as u64 {
        let ct = key.encrypt_shortint(i % 8, BITS).unwrap().as_lwe().clone();
        handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).unwrap();
    }
    for i in 0..PER_CLIENT as u64 {
        let response = handle.recv().expect("response");
        assert_eq!(response.seq, i);
        let out = response.result.expect("op succeeds");
        let phase = key.decrypt_phase(&out).unwrap();
        assert_eq!(strix::tfhe::torus::decode_message(phase, BITS + 1), (i % 8 + 1) % 8);
    }

    // Every request's span reached every lifecycle stage.
    let events = runtime.tracer().events();
    for stage in [
        TraceStage::Submitted,
        TraceStage::Enqueued,
        TraceStage::BatchOpened,
        TraceStage::EpochFlushed,
        TraceStage::PbsStart,
        TraceStage::PbsEnd,
        TraceStage::KsStart,
        TraceStage::KsEnd,
        TraceStage::Completed,
    ] {
        let count = events.iter().filter(|e| e.stage == stage).count();
        assert_eq!(count, PER_CLIENT, "stage {stage:?} missing events");
    }
    // The Chrome export is valid JSON with one complete-event slice
    // per queue-wait/batch-wait/execute/pbs/keyswitch interval.
    let chrome = runtime.tracer().chrome_trace_json();
    assert!(chrome.starts_with('['));
    for name in ["queue-wait", "batch-wait", "execute", "pbs", "keyswitch"] {
        assert!(chrome.contains(name), "chrome trace lacks {name} slices");
    }

    let report = runtime.shutdown();
    assert_eq!(report.schema_version, REPORT_SCHEMA_VERSION);
    assert_eq!(report.requests_completed, PER_CLIENT);
    // Latency attribution: the lut class completed everything, with
    // non-degenerate stage means.
    let lut_class =
        report.latency_attribution.iter().find(|c| c.class == "lut").expect("lut class attributed");
    assert_eq!(lut_class.completed, PER_CLIENT);
    assert!(lut_class.mean_execute_us > 0.0);
    assert!(lut_class.mean_latency_us >= lut_class.mean_execute_us);
    // Stage breakdown came from the sampled production epochs.
    let stages = report.pbs_stage_breakdown.as_ref().expect("profiled epochs sampled");
    assert!(stages.sampled_epochs >= 1);
    assert_eq!(stages.sampled_pbs, PER_CLIENT);
    assert!(stages.forward_fft_us > 0.0 && stages.keyswitch_us > 0.0);
    // Windowed series and queue gauges populated.
    assert!(!report.windows.is_empty());
    assert_eq!(report.windows.iter().map(|w| w.completed).sum::<usize>(), PER_CLIENT);
    assert!(report.ingress_queue_high_water >= 1);
    assert_eq!(report.ingress_queue_depth, 0, "shutdown drained the queue");
    // The human summary surfaces the new telemetry.
    let summary = report.summary();
    assert!(summary.contains("lut"), "class attribution missing from summary");
}

#[test]
fn shutdown_drains_every_accepted_request() {
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 40;

    let runtime = Runtime::start(
        RuntimeConfig::new(BatchGeometry::explicit(4, 4))
            .with_max_delay(Duration::from_millis(1))
            .with_workers(2),
        SlowEchoExecutor { delay: Duration::from_millis(1) },
    );

    // Submit everything, then shut down while much of it is still
    // queued; every accepted request must still come back.
    let mut handles: Vec<_> = (0..CLIENTS).map(|_| runtime.client()).collect();
    for (c, handle) in handles.iter_mut().enumerate() {
        for i in 0..PER_CLIENT as u64 {
            let ct = LweCiphertext::trivial(8, (c as u64) << 32 | i);
            handle.submit(ct, RequestOp::Keyswitch).unwrap();
        }
    }
    let report = runtime.shutdown();
    assert_eq!(report.requests_completed, CLIENTS * PER_CLIENT, "shutdown lost requests");
    assert_eq!(report.requests_failed, 0);

    // Responses stay receivable (in order) after shutdown — plain
    // blocking recv works because shutdown dropped the senders.
    for (c, handle) in handles.iter_mut().enumerate() {
        // Nothing was returned to this caller yet, buffered or not.
        assert_eq!(handle.outstanding(), PER_CLIENT as u64);
        for i in 0..PER_CLIENT as u64 {
            let response = handle.recv().expect("drained response is buffered");
            assert_eq!(response.seq, i);
            assert_eq!(response.result.unwrap().body(), (c as u64) << 32 | i);
        }
        assert_eq!(handle.outstanding(), 0);
        // Once drained, recv reports shutdown instead of blocking...
        let err = handle.recv().unwrap_err();
        assert!(matches!(err, strix::runtime::RuntimeError::Shutdown));
        // ...and a further submit is rejected cleanly.
        let err = handle.submit(LweCiphertext::trivial(8, 0), RequestOp::Keyswitch).unwrap_err();
        assert!(matches!(err, strix::runtime::RuntimeError::Shutdown));
    }
}
