//! Validation of the static program analyzer against ground truth.
//!
//! Two layers of pinning:
//!
//! 1. **Closed form** — a property test over random single-LUT
//!    programs checks that the analyzer's per-wire report is exactly
//!    the composition of the `strix-tfhe` noise module it claims to
//!    be: decision variance = Σ wᵢ²·fresh + modswitch, output variance
//!    = PBS + keyswitch, decision distance = the LUT's bucket radius.
//! 2. **Measurement** — seeded random single-LUT programs run through
//!    the synchronous reference executor (and the grouped multi-bit
//!    kernel runs through its key directly); over hundreds of samples
//!    the measured output-error standard deviation must land within
//!    [0.8, 1.25]× of the analyzer's prediction, for both kernels.
//!
//! Plus the admission regression: a program the analyzer rejects must
//! fail with [`RuntimeError::NoiseBudgetExceeded`] *before* any
//! request reaches the batcher — the runtime report stays at zero.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use strix::core::BatchGeometry;
use strix::runtime::session::{Program, ProgramSession, Wire};
use strix::runtime::{
    AdmissionPolicy, KernelPolicy, Runtime, RuntimeConfig, RuntimeError, TfheExecutor,
    DEFAULT_THRESHOLD_SIGMAS,
};
use strix::tfhe::boolean::BinaryGate;
use strix::tfhe::bootstrap::{decode_bool, Lut, PbsJob};
use strix::tfhe::lwe::LweCiphertext;
use strix::tfhe::noise::{
    error_std, fresh_lwe_variance, linear_combination_variance, lut_decision_distance,
    lut_output_variance_for, measure_error, modswitch_variance,
};
use strix::tfhe::prelude::*;

const MESSAGE_BITS: u32 = 2;
const SAMPLES: usize = 320;

/// Deterministic xorshift64 so the "random" programs are the same on
/// every run — the statistical band then never flakes.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Builds a random single-LUT program: fan-in 1–3, weights 1–3, a
/// random 2-bit LUT table, and an input assignment whose weighted sum
/// stays inside the message space (so the expected plaintext is
/// well-defined and only noise separates samples).
struct RandomLutProgram {
    program: Program,
    weights: Vec<i64>,
    messages: Vec<u64>,
    expected_pt: u64,
}

fn random_lut_program(params: &TfheParameters, seed: u64) -> RandomLutProgram {
    let mut s = seed;
    let fan_in = 1 + (xorshift(&mut s) % 3) as usize;
    let weights: Vec<i64> = (0..fan_in).map(|_| 1 + (xorshift(&mut s) % 3) as i64).collect();
    let table: [u64; 4] = std::array::from_fn(|_| xorshift(&mut s) % 4);
    // One hot input of message 1: the weighted sum is that input's
    // weight (≤ 3), which never overflows the 2-bit message space.
    let hot = (xorshift(&mut s) as usize) % fan_in;
    let messages: Vec<u64> = (0..fan_in).map(|i| u64::from(i == hot)).collect();
    let expected_msg = table[weights[hot] as usize & 3];
    let expected_pt = expected_msg << (64 - MESSAGE_BITS - 1);

    let lut = Arc::new(
        Lut::from_function(params.polynomial_size, MESSAGE_BITS, move |m| table[(m & 3) as usize])
            .unwrap(),
    );
    let mut program = Program::new(fan_in);
    let out = program.linear_lut(weights.clone(), (0..fan_in).map(Wire::Input).collect(), 0, lut);
    program.output(out);
    RandomLutProgram { program, weights, messages, expected_pt }
}

/// Same band as the `noise_model` suite: with ≥320 samples the std
/// estimator's own spread is ~4%, far inside the tolerance, so a
/// violation means the analyzer's model diverged from the kernels.
fn assert_within_band(measured: f64, predicted: f64, label: &str) {
    let ratio = measured / predicted;
    eprintln!("{label}: measured {measured:.3e} / predicted {predicted:.3e} = {ratio:.3}");
    assert!(
        (0.8..=1.25).contains(&ratio),
        "{label}: measured std {measured:e} vs predicted {predicted:e} (ratio {ratio:.3})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The analyzer's report on a random single-LUT program is the
    /// exact closed-form composition of the noise module — no hidden
    /// fudge factors, no dropped terms.
    #[test]
    fn analyzer_report_is_the_closed_form_noise_model(
        weights in prop::collection::vec(1i64..=8, 1..=4),
        precision in 1u32..=3,
    ) {
        let params = TfheParameters::testing_fast();
        let lut = Arc::new(
            Lut::from_function(params.polynomial_size, precision, |m| m).unwrap(),
        );
        let mut program = Program::new(weights.len());
        let out = program.linear_lut(
            weights.clone(),
            (0..weights.len()).map(Wire::Input).collect(),
            0,
            lut,
        );
        program.output(out);

        let kernel = PbsKernel::Classical;
        let analysis =
            AdmissionPolicy::new(params.clone(), KernelPolicy::uniform(kernel)).analyze(&program);
        prop_assert_eq!(analysis.reports.len(), 1);
        let report = analysis.reports[0];

        let fresh = vec![fresh_lwe_variance(&params); weights.len()];
        let decision =
            linear_combination_variance(&weights, &fresh) + modswitch_variance(&params);
        prop_assert!((report.decision_variance / decision - 1.0).abs() < 1e-12);
        prop_assert!(
            (report.output_variance / lut_output_variance_for(&params, kernel) - 1.0).abs()
                < 1e-12
        );
        prop_assert!(
            (report.decision_distance - lut_decision_distance(precision)).abs() < 1e-15
        );
        let gain: f64 = weights.iter().map(|&w| (w * w) as f64).sum();
        prop_assert!((report.linear_gain - gain).abs() < 1e-12);
    }
}

#[test]
fn analyzer_matches_measured_noise_on_random_single_lut_programs() {
    // Four seeded random programs, each bootstrapped SAMPLES times
    // through the synchronous reference path (linear preamble → PBS →
    // keyswitch — bit-identical to the streamed executor). The
    // measured output-error std must sit in the band around the
    // analyzer's predicted output std.
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 0x5EED_A000);
    for seed in [0x5EED_A001u64, 0x5EED_A002, 0x5EED_A003, 0x5EED_A004] {
        let case = random_lut_program(&params, seed);
        let analysis =
            AdmissionPolicy::new(params.clone(), KernelPolicy::uniform(PbsKernel::Classical))
                .analyze(&case.program);
        let predicted = analysis.reports[0].output_variance.sqrt();

        let errors: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let inputs: Vec<LweCiphertext> = case
                    .messages
                    .iter()
                    .map(|&m| client.encrypt_shortint(m, MESSAGE_BITS).unwrap().as_lwe().clone())
                    .collect();
                let outputs = case.program.run_sync(&server, &inputs).unwrap();
                measure_error(&client, &outputs[0], case.expected_pt)
            })
            .collect();
        let label = format!("single-lut seed {seed:#x} weights {:?}", case.weights);
        assert_within_band(error_std(&errors), predicted, &label);
    }
}

#[test]
fn analyzer_matches_measured_noise_under_multi_bit_kernel() {
    // The multi-bit arm of the same pin: a trivial single-LUT program
    // analyzed under MultiBit{g}, measured by driving the grouped key
    // directly through PBS + keyswitch — the exact pipeline the
    // executor dispatches when a grouped key is present.
    for g in [2usize, 3] {
        let kernel = PbsKernel::MultiBit { grouping_factor: g };
        let params = TfheParameters::testing_fast().with_kernel(kernel);
        let (mut client, server) = generate_keys(&params, 0x5EED_B000 + g as u64);

        let lut =
            Arc::new(Lut::from_function(params.polynomial_size, MESSAGE_BITS, |m| m).unwrap());
        let mut program = Program::new(1);
        let out = program.linear_lut(vec![1], vec![Wire::Input(0)], 0, Arc::clone(&lut));
        program.output(out);
        let analysis =
            AdmissionPolicy::new(params.clone(), KernelPolicy::uniform(kernel)).analyze(&program);
        let predicted = analysis.reports[0].output_variance.sqrt();

        const MESSAGE: u64 = 1;
        let expected_pt = MESSAGE << (64 - MESSAGE_BITS - 1);
        let cts: Vec<LweCiphertext> = (0..SAMPLES)
            .map(|_| client.encrypt_shortint(MESSAGE, MESSAGE_BITS).unwrap().as_lwe().clone())
            .collect();
        let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
        let boots = server.multi_bit_bootstrap_key().unwrap().bootstrap_batch(&jobs).unwrap();
        let errors: Vec<f64> = boots
            .iter()
            .map(|b| {
                let ks = server.keyswitch_key().keyswitch(b).unwrap();
                measure_error(&client, &ks, expected_pt)
            })
            .collect();
        assert_within_band(error_std(&errors), predicted, &format!("multi-bit g={g} + ks"));
    }
}

#[test]
fn rejected_program_never_reaches_the_runtime() {
    // Admission is a gate, not a diagnostic: when the analyzer
    // predicts a margin below threshold the session must fail before
    // anything is enqueued, and the runtime must stay healthy for the
    // next (well-formed) program.
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 0x5EED_AD01);
    let config = RuntimeConfig::new(BatchGeometry::explicit(2, 8))
        .with_max_delay(Duration::from_millis(5))
        .with_workers(1);
    let runtime = Runtime::start(config, TfheExecutor::new(Arc::new(server)));
    let mut handle = runtime.client();

    // A weight of 2¹⁶ amplifies fresh noise ~2³² in variance — no
    // shipped parameter set survives that, so the analyzer rejects.
    let lut = Arc::new(Lut::from_function(params.polynomial_size, 1, |m| m).unwrap());
    let mut doomed = Program::new(1);
    let out = doomed.linear_lut(vec![1 << 16], vec![Wire::Input(0)], 0, lut);
    doomed.output(out);

    let input = client.encrypt_bool(true).into_lwe();
    let session = ProgramSession::new(&doomed, vec![input]).unwrap();
    match session.run(&mut handle) {
        Err(RuntimeError::NoiseBudgetExceeded { node, margin_sigmas, threshold_sigmas }) => {
            assert_eq!(node, 0);
            assert!(margin_sigmas < threshold_sigmas);
            assert_eq!(threshold_sigmas, DEFAULT_THRESHOLD_SIGMAS);
        }
        other => panic!("expected NoiseBudgetExceeded, got {other:?}"),
    }

    // The rejection happened at admission: nothing was submitted, so
    // the runtime has processed exactly zero requests.
    let report = runtime.report();
    assert_eq!(report.requests_completed, 0, "rejected program leaked requests into the batcher");
    assert_eq!(report.requests_failed, 0);
    assert_eq!(report.fused_linear_completed, 0);

    // A well-formed program on the same handle still runs.
    let mut healthy = Program::new(2);
    let and = healthy.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
    healthy.output(and);
    let inputs = vec![client.encrypt_bool(true).into_lwe(), client.encrypt_bool(true).into_lwe()];
    let outputs = ProgramSession::new(&healthy, inputs).unwrap().run(&mut handle).unwrap();
    assert!(decode_bool(client.decrypt_phase(&outputs[0]).unwrap()));

    let final_report = runtime.shutdown();
    assert_eq!(final_report.requests_completed, 1);
    assert_eq!(final_report.requests_failed, 0);
}
