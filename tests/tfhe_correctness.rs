//! End-to-end TFHE correctness across the full public API, including a
//! run at the paper's real 110-bit parameter set I.

use strix::tfhe::prelude::*;

#[test]
fn full_gate_suite_at_testing_parameters() {
    let (mut client, server) = generate_keys(&TfheParameters::testing_fast(), 2025);
    for x in [false, true] {
        for y in [false, true] {
            let cx = client.encrypt_bool(x);
            let cy = client.encrypt_bool(y);
            assert_eq!(client.decrypt_bool(&server.and(&cx, &cy).unwrap()), x & y);
            assert_eq!(client.decrypt_bool(&server.or(&cx, &cy).unwrap()), x | y);
            assert_eq!(client.decrypt_bool(&server.nand(&cx, &cy).unwrap()), !(x & y));
            assert_eq!(client.decrypt_bool(&server.nor(&cx, &cy).unwrap()), !(x | y));
            assert_eq!(client.decrypt_bool(&server.xor(&cx, &cy).unwrap()), x ^ y);
            assert_eq!(client.decrypt_bool(&server.xnor(&cx, &cy).unwrap()), !(x ^ y));
        }
    }
}

#[test]
fn gates_work_at_paper_set_i() {
    // The 110-bit baseline every accelerator in Table V is evaluated
    // on. Key generation ~1 s, each gate tens of ms — keep the count
    // small but meaningful.
    let (mut client, server) = generate_keys(&TfheParameters::set_i(), 31415);
    let a = client.encrypt_bool(true);
    let b = client.encrypt_bool(true);
    let nand = server.nand(&a, &b).unwrap();
    assert!(!client.decrypt_bool(&nand));
    // Chain: bootstrapped outputs must feed further gates (noise is
    // refreshed every gate).
    let or = server.or(&nand, &a).unwrap();
    assert!(client.decrypt_bool(&or));
    let xor = server.xor(&or, &b).unwrap();
    assert!(!client.decrypt_bool(&xor));
}

#[test]
fn deep_gate_chain_keeps_noise_bounded() {
    // 24 dependent NAND gates: if bootstrapping failed to reset noise,
    // the chain would decrypt garbage well before the end.
    let (mut client, server) = generate_keys(&TfheParameters::testing_fast(), 7);
    let one = client.encrypt_bool(true);
    let mut acc = client.encrypt_bool(false);
    let mut expected = false;
    for _ in 0..24 {
        acc = server.nand(&acc, &one).unwrap();
        expected = !(expected & true);
        assert_eq!(client.decrypt_bool(&acc), expected);
    }
}

#[test]
fn keyswitch_returns_gate_outputs_to_input_dimension() {
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 99);
    let a = client.encrypt_bool(true);
    let b = client.encrypt_bool(false);
    let out = server.or(&a, &b).unwrap();
    // Gate outputs must be usable wherever inputs are: dimension n.
    assert_eq!(out.as_lwe().dimension(), params.lwe_dimension);
}

#[test]
fn distinct_seeds_give_distinct_keys_but_same_semantics() {
    let params = TfheParameters::testing_fast();
    let (mut c1, s1) = generate_keys(&params, 1);
    let (c2, s2) = generate_keys(&params, 2);
    assert_ne!(
        c1.lwe_secret_key().bits(),
        c2.lwe_secret_key().bits(),
        "different seeds must give different keys"
    );
    for (mut client, server) in [(c1.clone(), s1), (c2.clone(), s2)] {
        let x = client.encrypt_bool(true);
        let y = client.encrypt_bool(false);
        assert!(client.decrypt_bool(&server.or(&x, &y).unwrap()));
    }
    // Ciphertexts are not interchangeable between key pairs: decrypting
    // c1's ciphertext under c2 yields an unrelated phase. (We only check
    // that nothing panics and dimensions match — the value is undefined.)
    let foreign = c1.encrypt_bool(true);
    let _ = c2.decrypt_bool(&foreign);
}

#[test]
fn k2_parameters_run_the_full_pipeline() {
    let (mut client, server) = generate_keys(&TfheParameters::testing_k2(), 17);
    let a = client.encrypt_bool(true);
    let b = client.encrypt_bool(true);
    assert!(client.decrypt_bool(&server.and(&a, &b).unwrap()));
}
