//! Consistency of the baseline models with the paper's published
//! numbers and with each other.

use strix::baselines::{breakdown, cpu, gpu, published, GpuModel};
use strix::tfhe::{ParameterSet, TfheParameters};

#[test]
fn gpu_staircase_reproduces_fig2() {
    let g = GpuModel::titan_rtx_set_i();
    // Plateau boundaries at multiples of 72 SMs.
    for (lwes, expected_norm) in
        [(1, 1.0), (72, 1.0), (73, 2.0), (144, 2.0), (145, 3.0), (216, 3.0), (217, 4.0)]
    {
        let norm = g.device_batched_time_s(lwes) / g.batch_time_s;
        assert_eq!(norm, expected_norm, "{lwes} LWEs");
    }
}

#[test]
fn gpu_equation_1_and_2_hold_for_any_count() {
    let g = GpuModel::titan_rtx_set_i();
    for lwes in (1usize..600).step_by(7) {
        let fragments = lwes.div_ceil(g.sms) - 1;
        assert_eq!(g.fragments(lwes), fragments, "Eq. (2) at {lwes}");
        let time = (fragments + 1) as f64 * g.batch_time_s;
        assert_eq!(g.device_batched_time_s(lwes), time, "Eq. (1) at {lwes}");
    }
}

#[test]
fn published_table_v_has_all_platforms() {
    let platforms: std::collections::BTreeSet<&str> =
        published::PUBLISHED_TABLE_V.iter().map(|p| p.platform).collect();
    for expected in ["Concrete", "NuFHE", "YKP", "XHEC", "Matcha", "Strix"] {
        assert!(platforms.contains(expected), "missing {expected}");
    }
}

#[test]
fn paper_headline_speedups_derive_from_the_table() {
    let (vs_cpu, vs_gpu, vs_matcha) = published::headline_speedups();
    assert!(vs_cpu > 1000.0 && vs_cpu < 1100.0);
    assert!(vs_gpu > 35.0 && vs_gpu < 40.0);
    assert!(vs_matcha > 7.0 && vs_matcha < 8.0);
}

#[test]
fn measured_cpu_breakdown_matches_fig1_shape() {
    let b = breakdown::measure(&TfheParameters::testing_fast(), 2, 404);
    // Panel 1 sums to 1, PBS dominates.
    let total = b.pbs_fraction + b.keyswitch_fraction + b.other_fraction;
    assert!((total - 1.0).abs() < 1e-9);
    assert!(b.pbs_fraction > b.keyswitch_fraction);
    assert!(b.keyswitch_fraction > b.other_fraction);
    // Panel 2: blind rotation ≈ all of PBS.
    assert!(b.blind_rotation_of_pbs > 0.9);
}

#[test]
fn measured_cpu_is_slower_at_larger_sets() {
    let fast = cpu::measure_pbs_benchmark_key(&TfheParameters::testing_fast(), 2);
    let set_i = cpu::measure_pbs_benchmark_key(&TfheParameters::set_i(), 2);
    assert!(
        set_i.pbs_s > 5.0 * fast.pbs_s,
        "set I ({}) should dwarf toy ({})",
        set_i.pbs_s,
        fast.pbs_s
    );
}

#[test]
fn gpu_vs_cpu_ordering_matches_table_v() {
    // Published: GPU ≈ 29× CPU throughput at set I.
    let cpu_pt = published::lookup("Concrete", ParameterSet::SetI).unwrap();
    let gpu_pt = published::lookup("NuFHE", ParameterSet::SetI).unwrap();
    let ratio = gpu_pt.throughput_pbs_s.unwrap() / cpu_pt.throughput_pbs_s.unwrap();
    assert!((25.0..35.0).contains(&ratio), "{ratio}");
    // Our analytic GPU model is calibrated to the same point.
    let g = GpuModel::titan_rtx_set_i();
    assert!((g.throughput_pbs_s() - gpu_pt.throughput_pbs_s.unwrap()).abs() < 1.0);
}

#[test]
fn gpu_extrapolation_is_monotone_in_polynomial_size() {
    let mut last = 0.0;
    for n in [1024usize, 2048, 4096] {
        let g = gpu::GpuModel::titan_rtx_for(&TfheParameters::deep_nn(n).unwrap());
        assert!(g.batch_time_s > last, "N={n}");
        last = g.batch_time_s;
    }
}
