//! The whole-paper smoke test: measured CPU vs modelled GPU vs
//! simulated Strix, asserting the headline claims' *shape* — who wins,
//! by roughly what factor — without pinning this machine's absolute
//! speed.

use strix::baselines::{cpu, GpuModel};
use strix::core::{StrixConfig, StrixSimulator};
use strix::tfhe::TfheParameters;
use strix::workloads::DeepNn;

#[test]
fn strix_beats_our_measured_cpu_by_orders_of_magnitude() {
    // Paper: 1,067× throughput vs a Xeon running Concrete. Our software
    // TFHE on this host is the stand-in; anything above 100× confirms
    // the three-orders-of-magnitude story without depending on host
    // speed.
    let params = TfheParameters::set_i();
    let measured = cpu::measure_pbs_benchmark_key(&params, 3);
    let sim = StrixSimulator::new(StrixConfig::paper_default(), params).unwrap();
    let strix_thr = sim.pbs_report(1 << 14).throughput_pbs_per_s;
    let speedup = strix_thr * (measured.pbs_s + measured.keyswitch_s);
    assert!(
        speedup > 100.0,
        "Strix speedup vs this CPU only {speedup:.0}x (cpu pbs {:.1} ms)",
        measured.pbs_s * 1e3
    );
}

#[test]
fn strix_beats_the_gpu_model_at_every_nn_size() {
    // Fig. 7: Strix outperforms the GPU on every model/parameter combo,
    // with speedups in the 8–40× band.
    for depth in [20usize, 50] {
        for poly in [1024usize, 2048] {
            let nn = DeepNn::new(depth, poly);
            let sim = StrixSimulator::new(StrixConfig::paper_default(), nn.params()).unwrap();
            let strix_s = sim.run_graph(&nn.workload()).total_time_s;
            let gpu = GpuModel::titan_rtx_for(&nn.params());
            let gpu_s: f64 = nn
                .workload()
                .nodes()
                .iter()
                .map(|n| gpu.device_batched_time_s(n.pbs_count()))
                .sum();
            let speedup = gpu_s / strix_s;
            assert!((3.0..100.0).contains(&speedup), "NN-{depth}/N={poly}: speedup {speedup:.1}");
        }
    }
}

#[test]
fn platform_ordering_cpu_slowest_strix_fastest() {
    let params = TfheParameters::set_i();
    let cpu_m = cpu::measure_pbs_benchmark_key(&params, 2);
    let cpu_thr = cpu_m.throughput_pbs_s;
    let gpu_thr = GpuModel::titan_rtx_set_i().throughput_pbs_s();
    let strix_thr = StrixSimulator::new(StrixConfig::paper_default(), params)
        .unwrap()
        .pbs_report(1 << 14)
        .throughput_pbs_per_s;
    assert!(cpu_thr < gpu_thr, "cpu {cpu_thr} vs gpu {gpu_thr}");
    assert!(gpu_thr < strix_thr, "gpu {gpu_thr} vs strix {strix_thr}");
}

#[test]
fn measured_cpu_pbs_is_same_order_as_published_concrete() {
    // Concrete on a Xeon: 14 ms at set I. Our implementation on this
    // host must land within one order of magnitude either way — it is
    // the same algorithm.
    let m = cpu::measure_pbs_benchmark_key(&TfheParameters::set_i(), 3);
    let ms = m.pbs_s * 1e3;
    if cfg!(debug_assertions) {
        // The absolute window only holds for optimized code; in debug
        // builds just confirm the measurement ran and is sane.
        assert!(ms.is_finite() && ms > 0.0, "degenerate measurement {ms}");
        eprintln!("debug build: skipping absolute window (measured {ms:.1} ms)");
        return;
    }
    assert!((1.4..140.0).contains(&ms), "measured {ms:.1} ms vs published 14 ms");
}

#[test]
fn nn_speedup_grows_with_workload_like_fig7() {
    // "Strix's speedup becomes more evident with heavier workloads":
    // compare speedup vs the GPU at N=1024 and N=4096.
    let speedup = |poly: usize| {
        let nn = DeepNn::new(20, poly);
        let sim = StrixSimulator::new(StrixConfig::paper_default(), nn.params()).unwrap();
        let strix_s = sim.run_graph(&nn.workload()).total_time_s;
        let gpu = GpuModel::titan_rtx_for(&nn.params());
        let gpu_s: f64 =
            nn.workload().nodes().iter().map(|n| gpu.device_batched_time_s(n.pbs_count())).sum();
        gpu_s / strix_s
    };
    let small = speedup(1024);
    let large = speedup(4096);
    assert!(large > small, "speedup should grow: {small:.1} -> {large:.1}");
}
