//! Integration tests of the session/dataflow layer: multi-stage
//! circuit DAGs and Deep-NN ReLU schedules streamed through the
//! runtime, epoch-occupancy gains from concurrent circuit clients, and
//! streamed-vs-synchronous equivalence (including a property test over
//! random DAGs).

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use strix::core::BatchGeometry;
use strix::runtime::session::{Program, ProgramSession, Wire};
use strix::runtime::{Runtime, RuntimeConfig, TfheExecutor};
use strix::tfhe::boolean::BinaryGate;
use strix::tfhe::bootstrap::decode_bool;
use strix::tfhe::lwe::LweCiphertext;
use strix::tfhe::prelude::*;
use strix::workloads::gates::{equality_program, ripple_carry_adder_program};
use strix::workloads::nn::{ReluSchedule, RELU_MESSAGE_BITS};

fn keys() -> &'static (ClientKey, ServerKey) {
    static KEYS: OnceLock<(ClientKey, ServerKey)> = OnceLock::new();
    KEYS.get_or_init(|| generate_keys(&TfheParameters::testing_fast(), 0xDA7AF10))
}

fn encrypt_bits(client: &mut ClientKey, value: u64, bits: usize) -> Vec<LweCiphertext> {
    (0..bits).map(|i| client.encrypt_bool((value >> i) & 1 == 1).into_lwe()).collect()
}

fn decode_bits(client: &ClientKey, cts: &[LweCiphertext]) -> u64 {
    cts.iter()
        .enumerate()
        .map(|(i, ct)| (decode_bool(client.decrypt_phase(ct).unwrap()) as u64) << i)
        .sum()
}

/// Runs the per-client circuit mix (3-bit adder, then 3-bit equality)
/// through one client handle and checks the decrypted results.
fn run_circuit_mix(runtime: &Runtime, mut key: ClientKey, a: u64, b: u64) {
    const BITS: usize = 3;
    let mut handle = runtime.client();

    let adder = ripple_carry_adder_program(BITS);
    let mut inputs = encrypt_bits(&mut key, a, BITS);
    inputs.extend(encrypt_bits(&mut key, b, BITS));
    let session = ProgramSession::new(&adder, inputs).unwrap();
    let sum = session.run(&mut handle).unwrap();
    assert_eq!(decode_bits(&key, &sum), a + b, "{a}+{b}");

    let eq = equality_program(BITS);
    let mut inputs = encrypt_bits(&mut key, a, BITS);
    inputs.extend(encrypt_bits(&mut key, b, BITS));
    let session = ProgramSession::new(&eq, inputs).unwrap();
    let out = session.run(&mut handle).unwrap();
    assert_eq!(decode_bool(key.decrypt_phase(&out[0]).unwrap()), a == b, "{a}=={b}");
}

#[test]
fn concurrent_circuit_clients_beat_sequential_epoch_occupancy() {
    // The acceptance bar of the session layer: 8 concurrent circuit
    // clients must fill epochs at least 1.5x better than 1 sequential
    // client running the same circuit mix, because independent stages
    // from different sessions interleave into shared epochs.
    const CLIENTS: u64 = 8;
    let (client_key, server_key) = keys().clone();
    let server_key = Arc::new(server_key);
    let config = RuntimeConfig::new(BatchGeometry::explicit(2, 8))
        .with_max_delay(Duration::from_millis(30))
        .with_workers(1);

    // One sequential client.
    let runtime = Runtime::start(config, TfheExecutor::new(Arc::clone(&server_key)));
    run_circuit_mix(&runtime, client_key.clone(), 5, 3);
    let sequential = runtime.shutdown();
    assert_eq!(sequential.requests_failed, 0);

    // Eight concurrent clients, same mix each.
    let runtime = Runtime::start(config, TfheExecutor::new(Arc::clone(&server_key)));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let key = client_key.clone();
            let runtime = &runtime;
            scope.spawn(move || run_circuit_mix(runtime, key, (c + 2) % 8, (3 * c) % 8));
        }
    });
    let concurrent = runtime.shutdown();
    assert_eq!(concurrent.requests_failed, 0);
    assert_eq!(
        concurrent.requests_completed,
        CLIENTS as usize * sequential.requests_completed,
        "same mix per client"
    );
    // Every request in the mix carries a fused gate preamble.
    assert_eq!(concurrent.fused_linear_completed, concurrent.requests_completed);

    assert!(
        concurrent.mean_batch_occupancy >= 1.5 * sequential.mean_batch_occupancy,
        "concurrent occupancy {:.3} not >= 1.5x sequential {:.3} (histograms {:?} vs {:?})",
        concurrent.mean_batch_occupancy,
        sequential.mean_batch_occupancy,
        concurrent.occupancy_histogram,
        sequential.occupancy_histogram,
    );
}

#[test]
fn streamed_deep_nn_matches_synchronous_and_plaintext() {
    // A depth-5 quantised ReLU schedule: the streamed execution must
    // be *bit-identical* to the synchronous reference (same linear
    // preamble, deterministic PBS+KS) and both must decode to the
    // plaintext model.
    let (client_key, server_key) = keys().clone();
    let mut key = client_key;
    let params = key.params().clone();
    let nn = ReluSchedule::new(5, 2, 0xF167);
    let program = nn.program(params.polynomial_size).unwrap();
    let inputs_plain = [1u64, 2];
    let inputs: Vec<LweCiphertext> = inputs_plain
        .iter()
        .map(|&m| key.encrypt_shortint(m, RELU_MESSAGE_BITS).unwrap().as_lwe().clone())
        .collect();

    let sync = program.run_sync(&server_key, &inputs).unwrap();

    let runtime = Runtime::start(
        RuntimeConfig::new(BatchGeometry::explicit(2, 2))
            .with_max_delay(Duration::from_millis(2))
            .with_workers(2),
        TfheExecutor::new(Arc::new(server_key)),
    );
    let mut handle = runtime.client();
    let session = ProgramSession::new(&program, inputs).unwrap();
    let streamed = session.run(&mut handle).unwrap();
    let report = runtime.shutdown();
    assert_eq!(report.requests_completed, nn.total_pbs());
    assert_eq!(report.requests_failed, 0);

    assert_eq!(streamed, sync, "streamed Deep-NN must be bit-identical to the sync path");
    let expected = nn.infer_plain(&inputs_plain);
    for (ct, want) in streamed.iter().zip(&expected) {
        let phase = key.decrypt_phase(ct).unwrap();
        assert_eq!(strix::tfhe::torus::decode_message(phase, RELU_MESSAGE_BITS + 1), *want);
    }
}

#[test]
fn failed_session_leaves_the_handle_clean_for_the_next_one() {
    // A malformed input (wrong LWE dimension) fails its node; the
    // session must drain its other in-flight responses on the way out
    // so the same handle can run a healthy session afterwards.
    let (client_key, server_key) = keys().clone();
    let mut key = client_key;
    let runtime = Runtime::start(
        RuntimeConfig::new(BatchGeometry::explicit(2, 2))
            .with_max_delay(Duration::from_millis(2))
            .with_workers(1),
        TfheExecutor::new(Arc::new(server_key)),
    );
    let mut handle = runtime.client();

    let mut program = Program::new(2);
    // Two independent gates: one healthy, one fed the bad input, so a
    // response really is left in flight when the failure surfaces.
    let good = program.gate(BinaryGate::And, Wire::Input(0), Wire::Input(0));
    let bad = program.gate(BinaryGate::Xor, Wire::Input(0), Wire::Input(1));
    program.output(good);
    program.output(bad);
    let inputs = vec![key.encrypt_bool(true).into_lwe(), LweCiphertext::trivial(7, 0)];
    let err = ProgramSession::new(&program, inputs).unwrap().run(&mut handle).unwrap_err();
    assert!(matches!(err, strix::runtime::RuntimeError::Tfhe(_)), "got {err:?}");

    // The handle is clean: a fresh session on it completes correctly.
    let mut healthy = Program::new(2);
    let out = healthy.gate(BinaryGate::Or, Wire::Input(0), Wire::Input(1));
    healthy.output(out);
    let inputs = vec![key.encrypt_bool(false).into_lwe(), key.encrypt_bool(true).into_lwe()];
    let outputs = ProgramSession::new(&healthy, inputs).unwrap().run(&mut handle).unwrap();
    assert!(decode_bool(key.decrypt_phase(&outputs[0]).unwrap()));
    runtime.shutdown();
}

/// A compact random-DAG description: each entry appends one gate node
/// whose operands are drawn from the inputs and all earlier nodes.
fn random_program(gates: &[(u8, u8, u8)], not_mask: u8, input_count: usize) -> Program {
    let mut program = Program::new(input_count);
    let mut wires: Vec<Wire> = (0..input_count).map(Wire::Input).collect();
    for (i, &(kind, a, b)) in gates.iter().enumerate() {
        let gate = BinaryGate::ALL[kind as usize % BinaryGate::ALL.len()];
        let wa = wires[a as usize % wires.len()];
        let wb = wires[b as usize % wires.len()];
        let mut out = program.gate(gate, wa, wb);
        if not_mask & (1 << (i % 8)) != 0 {
            out = program.not(out);
        }
        wires.push(out);
    }
    // Outputs: the final node plus one earlier wire, exercising both
    // deep and shallow resolution paths.
    program.output(*wires.last().unwrap());
    program.output(wires[wires.len() / 2]);
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_dag_streams_identically_to_sync_execution(
        gates in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..8),
        not_mask in any::<u8>(),
        input_bits in any::<u8>(),
    ) {
        let (client_key, server_key) = keys().clone();
        let mut key = client_key;
        const INPUTS: usize = 3;
        let program = random_program(&gates, not_mask, INPUTS);
        let inputs: Vec<LweCiphertext> = (0..INPUTS)
            .map(|i| key.encrypt_bool(input_bits & (1 << i) != 0).into_lwe())
            .collect();

        let sync = program.run_sync(&server_key, &inputs).unwrap();

        let runtime = Runtime::start(
            RuntimeConfig::new(BatchGeometry::explicit(2, 2))
                .with_max_delay(Duration::from_millis(2))
                .with_workers(2),
            TfheExecutor::new(Arc::new(server_key)),
        );
        let mut handle = runtime.client();
        let session = ProgramSession::new(&program, inputs).unwrap();
        let streamed = session.run(&mut handle).unwrap();
        runtime.shutdown();

        prop_assert_eq!(streamed, sync, "random DAG streamed != sync");
    }
}
