//! Workload-graph construction and execution across crates: the Zama
//! Deep-NN models and gate circuits through the Strix simulator.

use strix::core::{StrixConfig, StrixSimulator, Workload};
use strix::tfhe::TfheParameters;
use strix::workloads::{gates, mnist::SyntheticImage, DeepNn};

#[test]
fn nn_models_have_the_paper_shapes() {
    for (depth, pbs) in [(20, 2588), (50, 5348), (100, 9948)] {
        let nn = DeepNn::new(depth, 1024);
        assert_eq!(nn.total_pbs(), pbs, "NN-{depth}");
        assert_eq!(nn.conv_outputs(), 840); // [1, 2, 21, 20]
        let w = nn.workload();
        assert_eq!(w.total_pbs(), pbs);
    }
}

#[test]
fn deeper_networks_take_longer_on_strix() {
    let sim =
        StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::deep_nn(1024).unwrap())
            .unwrap();
    let mut last = 0.0;
    for depth in [20usize, 50, 100] {
        let t = sim.run_graph(&DeepNn::new(depth, 1024).workload()).total_time_s;
        assert!(t > last, "NN-{depth}");
        last = t;
    }
}

#[test]
fn larger_polynomials_take_longer_on_strix() {
    let mut last = 0.0;
    for n in [1024usize, 2048, 4096] {
        let nn = DeepNn::new(20, n);
        let sim = StrixSimulator::new(StrixConfig::paper_default(), nn.params()).unwrap();
        let t = sim.run_graph(&nn.workload()).total_time_s;
        assert!(t > last, "N={n}");
        last = t;
    }
}

#[test]
fn pbs_dominates_linear_time_in_nn_graphs() {
    // The paper's premise: linear operations are rapid, nonlinear
    // (PBS) dominate.
    let nn = DeepNn::new(20, 1024);
    let sim = StrixSimulator::new(StrixConfig::paper_default(), nn.params()).unwrap();
    let report = sim.run_graph(&nn.workload());
    let (mut pbs_time, mut linear_time) = (0.0f64, 0.0f64);
    for node in &report.nodes {
        if node.pbs_count > 0 {
            pbs_time += node.time_s;
        } else {
            linear_time += node.time_s;
        }
    }
    assert!(pbs_time > 20.0 * linear_time, "pbs {pbs_time} linear {linear_time}");
}

#[test]
fn gate_workloads_count_pbs_correctly() {
    assert_eq!(gates::adder_workload(16).total_pbs(), 80);
    assert_eq!(gates::comparator_workload(4).total_pbs(), 4 + 2 + 1);
    assert_eq!(gates::comparator_workload(1).total_pbs(), 1);
}

#[test]
fn image_feeds_the_nn_input_shape() {
    let img = SyntheticImage::generate(5);
    // One ciphertext per pixel: 784 = the paper's maximum TvLP example.
    assert_eq!(img.len(), 28 * 28);
    let q = img.quantize(3);
    assert_eq!(q.len(), 784);
    assert!(q.iter().all(|&v| v < 8));
}

#[test]
fn empty_and_composite_workloads_run() {
    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i()).unwrap();
    let empty = Workload::new("empty");
    let r = sim.run_graph(&empty);
    assert_eq!(r.total_time_s, 0.0);
    assert_eq!(r.total_pbs, 0);

    let composite = Workload::new("mixed")
        .linear(10, 10, "prep")
        .pbs(100, "layer")
        .linear(10, 100, "post")
        .pbs(10, "final");
    let r = sim.run_graph(&composite);
    assert_eq!(r.nodes.len(), 4);
    assert_eq!(r.total_pbs, 110);
    assert!(r.total_time_s > 0.0);
}

#[test]
fn graph_times_scale_with_pbs_count() {
    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i()).unwrap();
    let small = sim.run_graph(&Workload::new("s").pbs(256, "x")).total_time_s;
    let large = sim.run_graph(&Workload::new("l").pbs(2560, "x")).total_time_s;
    let ratio = large / small;
    assert!((5.0..11.0).contains(&ratio), "ratio {ratio}");
}
