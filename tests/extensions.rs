//! Integration tests for the extension features beyond the paper's
//! headline pipeline: bootstrapping-key unrolling (§VII / Matcha),
//! bivariate LUTs, radix integers and the shared FFT plan cache.

use strix::fft::planner;
use strix::tfhe::bootstrap::Lut;
use strix::tfhe::integer::RadixSpec;
use strix::tfhe::prelude::*;
use strix::tfhe::rng::NoiseSampler;
use strix::tfhe::torus::encode_fraction;
use strix::tfhe::unrolled::UnrolledBootstrapKey;

#[test]
fn unrolled_key_computes_the_same_gates() {
    let params = TfheParameters::testing_fast();
    let mut rng = NoiseSampler::from_seed(808);
    let lwe_sk = strix::tfhe::lwe::LweSecretKey::generate(params.lwe_dimension, &mut rng);
    let glwe_sk = strix::tfhe::glwe::GlweSecretKey::generate(
        params.glwe_dimension,
        params.polynomial_size,
        &mut rng,
    );
    let unrolled = UnrolledBootstrapKey::generate(&lwe_sk, &glwe_sk, &params, &mut rng);
    assert_eq!(unrolled.iterations(), params.lwe_dimension / 2);

    let extracted = glwe_sk.to_extracted_lwe_key();
    let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
    for b in [true, false] {
        let pt = encode_fraction(if b { 1 } else { -1 }, 3);
        let ct = lwe_sk.encrypt(pt, params.lwe_noise_std, &mut rng);
        let out = unrolled.bootstrap(&ct, &lut).unwrap();
        let phase = extracted.decrypt_phase(&out).unwrap();
        assert_eq!((phase as i64) > 0, b, "b={b}");
    }
}

#[test]
fn radix_integers_do_arithmetic_end_to_end() {
    let (mut client, server) = generate_keys(&TfheParameters::testing_fast(), 4_242);
    let spec = RadixSpec::new(1, 4);
    let a = client.encrypt_radix(9, spec).unwrap();
    let b = client.encrypt_radix(5, spec).unwrap();
    let sum = server.radix_add(&a, &b).unwrap();
    assert_eq!(client.decrypt_radix(&sum), 14);
    let eq = server.radix_eq(&sum, &client.encrypt_radix(14, spec).unwrap()).unwrap();
    assert_eq!(client.decrypt_shortint(&eq), 1);
}

#[test]
fn bivariate_lut_computes_two_input_functions() {
    let (mut client, server) = generate_keys(&TfheParameters::testing_fast(), 13_13);
    for (a, b) in [(0u64, 0u64), (1, 2), (3, 3), (2, 1)] {
        let ca = client.encrypt_shortint(a, 2).unwrap();
        let cb = client.encrypt_shortint(b, 2).unwrap();
        let out = server.apply_bivariate_lut(&ca, &cb, |x, y| (x + 2 * y) % 4).unwrap();
        assert_eq!(client.decrypt_shortint(&out), (a + 2 * b) % 4, "f({a},{b})");
    }
}

#[test]
fn plan_cache_shares_transforms_across_uses() {
    let a = planner::global().get_or_create(2048).unwrap();
    let b = planner::global().get_or_create(2048).unwrap();
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    // And the shared plan actually transforms.
    let poly = vec![1i64; 2048];
    let mut spec = vec![strix::fft::Complex64::ZERO; 1024];
    a.forward_i64(&poly, &mut spec).unwrap();
    assert!(spec[0].abs() > 0.0);
}

#[test]
fn energy_report_is_exposed_at_the_top_level() {
    use strix::core::{StrixConfig, StrixSimulator};
    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i()).unwrap();
    let e = sim.energy_report();
    assert!(e.pbs_per_joule > 100.0);
    assert!(e.power_w > 50.0 && e.power_w < 100.0);
}
