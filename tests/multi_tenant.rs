//! Integration tests of the multi-tenant key fabric: concurrent
//! per-tenant streams through the registry-backed runtime under an
//! eviction-forcing residency budget, bit-compared against sequential
//! single-tenant execution; clean failure for unregistered tenants;
//! and the seeded-transport size guarantee onboarding relies on.

use std::sync::Arc;
use std::time::Duration;

use strix::core::BatchGeometry;
use strix::runtime::{
    BatchExecutor, KeyRegistry, RequestOp, Runtime, RuntimeConfig, TenantId, TfheExecutor,
};
use strix::tfhe::bootstrap::Lut;
use strix::tfhe::lwe::LweCiphertext;
use strix::tfhe::prelude::*;

#[test]
fn concurrent_tenants_under_eviction_match_sequential_execution_bitwise() {
    const TENANTS: u64 = 5;
    const PER_TENANT: usize = 12;
    const BITS: u32 = 3;

    let params = TfheParameters::testing_fast();
    // Five tenants against a residency budget of two expanded keys:
    // every few epochs some tenant's key must be evicted and later
    // re-expanded, so the run exercises the full miss/expand/evict
    // cycle while epochs execute in parallel on three workers.
    let registry = Arc::new(KeyRegistry::with_resident_keys(params.clone(), 2));
    let lut =
        Arc::new(Lut::from_function(params.polynomial_size, BITS, |m| (3 * m + 1) % 8).unwrap());

    // Two identical clients per tenant (same generation seed, so the
    // same RNG stream): one produces the seeded key the registry
    // expands on demand, the other the reference key for sequential
    // execution. Seeded expansion is deterministic, so both server
    // keys are bit-identical.
    let mut clients = Vec::new();
    let mut references = Vec::new();
    for t in 0..TENANTS {
        let mut registered = ClientKey::generate(&params, 0x7E000 + t);
        registry.register_seeded(TenantId(t), registered.seeded_server_key(0x5EED ^ t));
        let mut reference = ClientKey::generate(&params, 0x7E000 + t);
        references.push(Arc::new(reference.seeded_server_key(0x5EED ^ t).expand()));
        clients.push(reference);
    }

    // Encrypt each tenant's inputs once and precompute the expected
    // outputs by sequential per-tenant execution; PBS+KS is
    // deterministic per request regardless of batch composition, so
    // the streamed multi-tenant outputs must match these bit for bit.
    let mut inputs: Vec<Vec<LweCiphertext>> = Vec::new();
    let mut expected: Vec<Vec<LweCiphertext>> = Vec::new();
    for (t, client) in clients.iter_mut().enumerate() {
        let cts: Vec<LweCiphertext> = (0..PER_TENANT as u64)
            .map(|i| client.encrypt_shortint((i + t as u64) % 8, BITS).unwrap().as_lwe().clone())
            .collect();
        let sequential = TfheExecutor::new(Arc::clone(&references[t]));
        let outs = cts
            .iter()
            .map(|ct| {
                let batch = vec![strix::runtime::Request::new(
                    strix::runtime::ClientId(0),
                    0,
                    strix::runtime::SpanId(0),
                    ct.clone(),
                    RequestOp::Lut(Arc::clone(&lut)),
                )];
                sequential.execute(&batch).pop().unwrap().unwrap()
            })
            .collect();
        inputs.push(cts);
        expected.push(outs);
    }

    let runtime = Runtime::start_multi_tenant(
        RuntimeConfig::new(BatchGeometry::explicit(2, 2))
            .with_max_delay(Duration::from_millis(3))
            .with_workers(3),
        Arc::clone(&registry),
    );
    std::thread::scope(|scope| {
        for t in 0..TENANTS {
            let mut handle = runtime.client_for(TenantId(t));
            let cts = inputs[t as usize].clone();
            let expect = &expected[t as usize];
            let lut = Arc::clone(&lut);
            scope.spawn(move || {
                for ct in cts {
                    handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).unwrap();
                }
                for (i, want) in expect.iter().enumerate() {
                    let response = handle.recv().expect("response");
                    assert_eq!(response.seq, i as u64, "tenant {t} out of order");
                    let got = response.result.expect("op succeeds");
                    assert_eq!(
                        &got, want,
                        "tenant {t} request {i} diverged from sequential execution"
                    );
                }
            });
        }
    });

    let report = runtime.shutdown();
    assert_eq!(report.requests_completed, TENANTS as usize * PER_TENANT);
    assert_eq!(report.requests_failed, 0);
    // Key-cache accounting: every tenant registered, one resolve per
    // epoch (hits + misses add up), at least one cold expansion per
    // tenant, eviction actually forced by the budget, and residency
    // never above it (no pinned keys in this run).
    assert_eq!(report.tenants_registered, TENANTS as usize);
    assert_eq!(
        report.key_cache_hits + report.key_cache_misses,
        report.epochs as u64,
        "each epoch resolves its tenant's key exactly once"
    );
    assert!(report.key_cache_misses >= TENANTS, "each tenant expands at least once");
    assert!(report.key_cache_evictions >= 1, "budget of 2 keys across 5 tenants must evict");
    assert!(report.key_cache_resident_bytes <= report.key_cache_budget_bytes);
    assert_eq!(report.key_cache_budget_bytes, 2 * registry.key_bytes_per_tenant());
    assert!(report.summary().contains("tenants:"), "summary surfaces the key cache");
}

#[test]
fn unregistered_tenant_fails_cleanly_without_stalling_registered_ones() {
    const PER_TENANT: usize = 6;
    const BITS: u32 = 2;

    let params = TfheParameters::testing_fast();
    let registry = Arc::new(KeyRegistry::with_resident_keys(params.clone(), 1));
    let mut client = ClientKey::generate(&params, 0xAB5);
    registry.register_seeded(TenantId(1), client.seeded_server_key(0xF00D));
    let lut = Arc::new(Lut::from_function(params.polynomial_size, BITS, |m| (m + 1) % 4).unwrap());

    let runtime = Runtime::start_multi_tenant(
        RuntimeConfig::new(BatchGeometry::explicit(2, 2))
            .with_max_delay(Duration::from_millis(2))
            .with_workers(2),
        Arc::clone(&registry),
    );
    let mut good = runtime.client_for(TenantId(1));
    let mut ghost = runtime.client_for(TenantId(99));
    assert_eq!(ghost.tenant(), TenantId(99));
    for i in 0..PER_TENANT as u64 {
        let ct = client.encrypt_shortint(i % 4, BITS).unwrap().as_lwe().clone();
        good.submit(ct, RequestOp::Lut(Arc::clone(&lut))).unwrap();
        // The ghost tenant's requests carry well-formed ciphertexts;
        // only the missing key can fail them.
        ghost
            .submit(
                LweCiphertext::trivial(params.lwe_dimension, i),
                RequestOp::Lut(Arc::clone(&lut)),
            )
            .unwrap();
    }
    for i in 0..PER_TENANT as u64 {
        let ok = good.recv().expect("registered tenant response");
        let out = ok.result.expect("registered tenant succeeds");
        let phase = client.decrypt_phase(&out).unwrap();
        assert_eq!(strix::tfhe::torus::decode_message(phase, BITS + 1), (i % 4 + 1) % 4);
        let err = ghost.recv().expect("unregistered tenant still answered");
        assert!(err.result.is_err(), "no key registered: the request must fail, not hang");
    }

    let report = runtime.shutdown();
    assert_eq!(report.requests_completed, PER_TENANT);
    assert_eq!(report.requests_failed, PER_TENANT);
    assert_eq!(report.tenants_registered, 1);
}

#[test]
fn seeded_transport_stays_under_sixty_percent_of_full_key_bytes() {
    // Onboarding cost: registering a tenant ships the seeded transport
    // form, not the expanded key. The estimators the registry accounts
    // with must preserve the compression guarantee at both the testing
    // and the paper-mirroring parameter sets.
    for params in [TfheParameters::testing_fast(), ParameterSet::SetI.parameters()] {
        let seeded = params.seeded_server_key_bytes() as f64;
        let full = params.server_key_bytes() as f64;
        assert!(
            seeded <= 0.6 * full,
            "seeded transport {seeded} vs full {full} exceeds 0.6x at {params:?}"
        );
    }
}
