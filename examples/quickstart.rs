//! Quickstart: encrypt booleans and small integers, evaluate gates and
//! LUTs homomorphically, and ask the Strix model how fast the same
//! operations run on the accelerator.
//!
//! ```sh
//! cargo run --release -p strix --example quickstart
//! ```

use strix::core::{StrixConfig, StrixSimulator};
use strix::tfhe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fast research parameters: tiny and insecure, instant keygen.
    // Swap for `TfheParameters::set_i()` to run the paper's 110-bit set
    // (key generation then takes ~1 s and each gate tens of ms).
    let params = TfheParameters::testing_fast();
    println!(
        "parameter set: {} (N = {}, n = {})",
        params.name, params.polynomial_size, params.lwe_dimension
    );

    let (mut client, server) = generate_keys(&params, 0xC0FFEE);

    // --- Boolean gate bootstrapping -----------------------------------
    let a = client.encrypt_bool(true);
    let b = client.encrypt_bool(false);
    let and = server.and(&a, &b)?;
    let or = server.or(&a, &b)?;
    let nand = server.nand(&a, &b)?;
    let xor = server.xor(&a, &b)?;
    println!("true AND false  = {}", client.decrypt_bool(&and));
    println!("true OR  false  = {}", client.decrypt_bool(&or));
    println!("true NAND false = {}", client.decrypt_bool(&nand));
    println!("true XOR false  = {}", client.decrypt_bool(&xor));

    let sel = client.encrypt_bool(true);
    let mux = server.mux(&sel, &a, &b)?;
    println!("mux(true, true, false) = {}", client.decrypt_bool(&mux));

    // --- Programmable bootstrapping as a look-up table ----------------
    // Evaluate f(m) = m² + 1 (mod 8) on an encrypted 3-bit message with
    // a single bootstrap: the "programmable" in PBS.
    let m = 5u64;
    let ct = client.encrypt_shortint(m, 3)?;
    let squared = server.apply_lut(&ct, |x| (x * x + 1) % 8)?;
    println!("f({m}) = m² + 1 mod 8 = {}", client.decrypt_shortint(&squared));
    assert_eq!(client.decrypt_shortint(&squared), (m * m + 1) % 8);

    // --- The accelerator's view ----------------------------------------
    // Each gate above cost one PBS (+ keyswitch). How fast does the
    // Strix accelerator stream bootstraps at the paper's baseline
    // parameters?
    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i())?;
    let report = sim.pbs_report(1 << 12);
    println!(
        "\nStrix @ set I: {:.0} PBS/s steady-state, {:.2} ms single-PBS latency \
         ({} LWEs/core x {} cores per epoch)",
        report.throughput_pbs_per_s,
        report.latency_s * 1e3,
        report.core_batch,
        sim.config().tvlp,
    );
    Ok(())
}
