//! Yao's millionaires' problem on TFHE gate bootstrapping: compare two
//! encrypted fortunes without revealing either — the kind of
//! relational operation Table I highlights as TFHE's strength over
//! CKKS.
//!
//! ```sh
//! cargo run --release -p strix --example encrypted_comparator
//! ```

use strix::core::{StrixConfig, StrixSimulator};
use strix::tfhe::boolean::BoolCiphertext;
use strix::tfhe::prelude::*;
use strix::workloads::gates;

const BITS: usize = 8;

fn encrypt_bits(client: &mut ClientKey, value: u64) -> Vec<BoolCiphertext> {
    (0..BITS).map(|i| client.encrypt_bool((value >> i) & 1 == 1)).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 0xA11CE);

    let alice = 173u64;
    let bob = 152u64;
    println!("Alice's fortune (secret): {alice}");
    println!("Bob's fortune   (secret): {bob}");

    let ca = encrypt_bits(&mut client, alice);
    let cb = encrypt_bits(&mut client, bob);

    let t0 = std::time::Instant::now();
    let alice_richer = gates::greater_than(&server, &ca, &cb)?;
    let equal = gates::equals(&server, &ca, &cb)?;
    let elapsed = t0.elapsed();

    println!("alice > bob  (homomorphic): {}", client.decrypt_bool(&alice_richer));
    println!("alice == bob (homomorphic): {}", client.decrypt_bool(&equal));
    assert_eq!(client.decrypt_bool(&alice_richer), alice > bob);
    assert_eq!(client.decrypt_bool(&equal), alice == bob);

    // The comparator as a workload graph on the accelerator.
    let workload = gates::comparator_workload(BITS);
    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i())?;
    let report = sim.run_graph(&workload);
    println!(
        "\ncomparison circuits took {:.1} ms on this CPU; Strix would run the \
         {}-PBS comparator graph in {:.3} ms",
        elapsed.as_secs_f64() * 1e3,
        report.total_pbs,
        report.total_time_s * 1e3,
    );
    Ok(())
}
