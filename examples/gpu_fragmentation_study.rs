//! The blind-rotation fragmentation study of §III / Fig. 2: why GPUs
//! plateau and why Strix's two-level batching does not.
//!
//! Prints the GPU staircase (device-level batching), the futile GPU
//! core-level batching line, and the Strix comparison at the same
//! ciphertext counts.
//!
//! ```sh
//! cargo run --release -p strix --example gpu_fragmentation_study
//! ```

use strix::baselines::GpuModel;
use strix::core::{StrixConfig, StrixSimulator};
use strix::tfhe::TfheParameters;

fn bar(width: f64) -> String {
    "#".repeat(width.round() as usize)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuModel::titan_rtx_set_i();
    println!("GPU device-level batching ({} SMs) - Eq. (1)/(2) staircase:", gpu.sms);
    println!("{:>8} {:>10} {:>12}", "LWEs", "fragments", "norm. time");
    for lwes in [1, 36, 72, 73, 144, 145, 216, 217, 288] {
        let t = gpu.device_batched_time_s(lwes) / gpu.batch_time_s;
        println!("{lwes:>8} {:>10} {:>12.1}  |{}", gpu.fragments(lwes), t, bar(6.0 * t));
    }

    println!("\nGPU core-level batching (LWEs per SM) - no amortisation:");
    for per_core in 1..=4 {
        let t = gpu.core_batched_time_s(per_core) / gpu.batch_time_s;
        println!("{per_core:>8} {:>10} {t:>12.1}  |{}", "-", bar(6.0 * t));
    }

    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i())?;
    let report = sim.pbs_report(288);
    println!(
        "\nStrix at the same workload: 288 PBS in {:.2} ms (GPU: {:.0} ms) — \
         the {}-LWE/core stream amortises each key fetch across the core batch.",
        report.total_time_s * 1e3,
        gpu.device_batched_time_s(288) * 1e3,
        report.core_batch,
    );
    println!(
        "Strix epoch size {} = {} cores x {} LWEs/core; effective batch of one \
         blind rotation is {}x the GPU's.",
        report.epoch_size,
        sim.config().tvlp,
        report.core_batch,
        report.epoch_size as f64 / gpu.sms as f64,
    );
    Ok(())
}
