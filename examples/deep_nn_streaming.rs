//! Deep-NN streaming demo: concurrent clients stream quantised ReLU
//! inference schedules (the executable toy counterpart of the paper's
//! Fig. 7 Zama Deep-NN workload) through the runtime as dataflow
//! programs. Every neuron is one fused linear-preamble + ReLU-LUT
//! request; layers are dependent, neurons within a layer independent,
//! and independent layers from different clients interleave into
//! shared `TvLP × core_batch` epochs.
//!
//! Each streamed inference is verified against the plaintext model, so
//! CI can run this end-to-end (debug, tiny depth):
//!
//! ```sh
//! cargo run -p strix --example deep_nn_streaming -- --depth 4 --clients 2
//! ```

use std::sync::Arc;
use std::time::Duration;

use strix::core::BatchGeometry;
use strix::runtime::session::ProgramSession;
use strix::runtime::{Runtime, RuntimeConfig, TfheExecutor};
use strix::tfhe::lwe::LweCiphertext;
use strix::tfhe::prelude::*;
use strix::workloads::nn::{ReluSchedule, RELU_ACTIVATION_MAX, RELU_MESSAGE_BITS};

fn arg(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} expects an integer"));
        }
    }
    default
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let depth = arg("--depth", 6);
    let width = arg("--width", 3).min(3);
    let clients = arg("--clients", 4);

    let params = TfheParameters::testing_fast();
    let (client_key, server_key) = generate_keys(&params, 0xDEE9);
    let runtime = Runtime::start(
        RuntimeConfig::new(BatchGeometry::explicit(2, 8))
            .with_max_delay(Duration::from_millis(10))
            .with_workers(2),
        TfheExecutor::new(Arc::new(server_key)),
    );

    println!(
        "streaming {clients} concurrent NN-{depth}x{width} ReLU schedules \
         ({} PBS each) through a 2x8-epoch runtime...",
        depth * width
    );

    std::thread::scope(|scope| {
        for c in 0..clients as u64 {
            let mut key = client_key.clone();
            let mut handle = runtime.client();
            scope.spawn(move || {
                // Every client runs its own weights and its own input
                // image, so cross-client mixups would corrupt values.
                let nn = ReluSchedule::new(depth, width, 0xA11CE + c);
                let program =
                    nn.program(key.params().polynomial_size).expect("relu program compiles");
                let inputs_plain: Vec<u64> =
                    (0..width as u64).map(|i| (i + c) % (RELU_ACTIVATION_MAX + 1)).collect();
                let inputs: Vec<LweCiphertext> = inputs_plain
                    .iter()
                    .map(|&m| {
                        key.encrypt_shortint(m, RELU_MESSAGE_BITS)
                            .expect("activation in range")
                            .as_lwe()
                            .clone()
                    })
                    .collect();
                let session = ProgramSession::new(&program, inputs).expect("input arity");
                let outputs = session.run(&mut handle).expect("inference completes");

                let expected = nn.infer_plain(&inputs_plain);
                for (j, (ct, want)) in outputs.iter().zip(&expected).enumerate() {
                    let phase = key.decrypt_phase(ct).expect("output under client key");
                    let got = strix::tfhe::torus::decode_message(phase, RELU_MESSAGE_BITS + 1);
                    assert_eq!(got, *want, "client {c} output neuron {j}");
                }
                println!("client {c}: streamed inference matches plaintext model {expected:?}");
            });
        }
    });

    let report = runtime.shutdown();
    println!("\n{}", report.summary());
    assert_eq!(report.requests_failed, 0);
    assert_eq!(report.requests_completed, clients * depth * width);
    assert_eq!(report.fused_linear_completed, report.requests_completed);
    println!("\nall {} streamed neuron requests verified OK", report.requests_completed);
    Ok(())
}
