//! Streaming server demo: many concurrent clients fire Poisson traffic
//! at a `strix-runtime` instance, which forms two-level batches from
//! the live stream, executes them against the TFHE stack, and reports
//! latency percentiles, achieved PBS/s and batch occupancy — the
//! software realisation of the paper's end-to-end streaming story,
//! printed next to the simulator's view of the same batch geometry.
//!
//! ```sh
//! cargo run --release -p strix --example streaming_server
//! ```
//!
//! Pass `--trace-out <path>` to export the run's end-to-end request
//! timeline in Chrome trace-event format — open the file in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing` to see each
//! client's queue-wait / batch-wait / execute slices per request:
//!
//! ```sh
//! cargo run --release -p strix --example streaming_server -- --trace-out trace.json
//! ```

use std::sync::Arc;
use std::time::Duration;

use strix::core::{BatchGeometry, StrixConfig, StrixSimulator};
use strix::runtime::{ArrivalProcess, OpenLoopTrafficGen, RequestOp, Runtime, RuntimeConfig};
use strix::tfhe::bootstrap::Lut;
use strix::tfhe::prelude::*;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;
const MESSAGE_BITS: u32 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out <path>")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let params = TfheParameters::testing_fast();
    let (client_key, server_key) = generate_keys(&params, 0x57121);

    // A small epoch so the demo's hundred-ish requests span many
    // batches; a production deployment would mirror the paper's
    // 8 × 32 design point via `StrixSimulator::batch_geometry()`.
    // Each worker shards its epoch across scoped PBS threads
    // (`threads_per_worker`, the host's cores split between the two
    // workers, capped at 2), so the report's thread-occupancy line
    // shows how full the intra-epoch pool ran.
    let geometry = BatchGeometry::explicit(4, 8);
    const WORKERS: usize = 2;
    let threads_per_worker =
        std::thread::available_parallelism().map_or(1, |p| (p.get() / WORKERS).clamp(1, 2));
    let runtime = Runtime::start_tfhe(
        RuntimeConfig::new(geometry)
            .with_max_delay(Duration::from_millis(5))
            .with_workers(WORKERS)
            .with_threads_per_worker(threads_per_worker),
        Arc::new(server_key),
    );

    // Every request evaluates f(m) = (m + 3) mod 8 via one PBS + KS.
    let lut = Arc::new(Lut::from_function(params.polynomial_size, MESSAGE_BITS, |m| (m + 3) % 8)?);
    let traffic = OpenLoopTrafficGen::new(ArrivalProcess::Poisson { rate_hz: 400.0 }, 42);

    println!(
        "streaming {} clients x {} Poisson requests into a {}x{} epoch runtime...",
        CLIENTS, REQUESTS_PER_CLIENT, geometry.tvlp, geometry.core_batch
    );

    std::thread::scope(|scope| {
        for client_idx in 0..CLIENTS as u64 {
            let mut handle = runtime.client();
            let mut key = client_key.clone();
            let lut = Arc::clone(&lut);
            let delays = traffic.inter_arrivals(client_idx, REQUESTS_PER_CLIENT);
            scope.spawn(move || {
                // Open loop: submit on the arrival clock...
                for (i, delay) in delays.iter().enumerate() {
                    std::thread::sleep(*delay);
                    let m = (client_idx + i as u64) % 8;
                    let ct = key
                        .encrypt_shortint(m, MESSAGE_BITS)
                        .expect("message in range")
                        .as_lwe()
                        .clone();
                    handle.submit(ct, RequestOp::Lut(Arc::clone(&lut))).expect("runtime up");
                }
                // ...then collect and verify, in submission order.
                for i in 0..REQUESTS_PER_CLIENT as u64 {
                    let response = handle.recv().expect("response arrives");
                    assert_eq!(response.seq, i, "per-client order broken");
                    let out = response.result.expect("homomorphic op succeeds");
                    let phase = key.decrypt_phase(&out).expect("dimension matches");
                    let decoded = strix::tfhe::torus::decode_message(phase, MESSAGE_BITS + 1);
                    let expected = ((client_idx + i) % 8 + 3) % 8;
                    assert_eq!(decoded, expected, "client {client_idx} request {i}");
                }
            });
        }
    });

    // Export the trace before shutdown consumes the runtime; by now
    // every request has its Completed event, so the timeline is whole.
    if let Some(path) = trace_out {
        let json = runtime.tracer().chrome_trace_json();
        std::fs::write(&path, json)?;
        println!(
            "wrote {} trace events to {path} (open in https://ui.perfetto.dev)",
            runtime.tracer().events().len()
        );
    }

    let report = runtime.shutdown();
    println!("\n--- runtime report ---------------------------------------");
    println!("{}", report.summary());
    assert_eq!(report.requests_completed, CLIENTS * REQUESTS_PER_CLIENT);
    assert_eq!(report.requests_failed, 0);

    // The simulator's view of the same two-level batching policy at the
    // paper's design point, for contrast.
    let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i())?;
    println!("\n--- simulated Strix @ set I (same batching policy) -------");
    let pbs = sim.pbs_report(report.requests_completed.max(1));
    println!(
        "epoch {} LWEs ({}x{}), {:.0} PBS/s steady-state, {:.2} ms latency",
        pbs.epoch_size,
        sim.batch_geometry().tvlp,
        sim.batch_geometry().core_batch,
        pbs.throughput_pbs_per_s,
        pbs.latency_s * 1e3,
    );
    println!(
        "\nsoftware-vs-model gap: {:.0}x (the accelerator case, Table V)",
        pbs.throughput_pbs_per_s / report.achieved_pbs_per_s.max(1e-9)
    );
    Ok(())
}
