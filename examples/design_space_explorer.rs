//! Design-space exploration of the Strix architecture: the TvLP/CLP
//! trade-off (Table VII), the folding ablation (Table VI) and the
//! area/power consequences (Table III scaling).
//!
//! ```sh
//! cargo run --release -p strix --example design_space_explorer
//! ```

use strix::core::area::AreaModel;
use strix::core::{StrixConfig, StrixSimulator};
use strix::tfhe::TfheParameters;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TvLP vs CLP at constant product (set IV, 300 GB/s HBM):");
    println!(
        "{:>6} {:>6} {:>14} {:>12} {:>14} {:>8}",
        "TvLP", "CLP", "thr (PBS/s)", "lat (ms)", "req BW (GB/s)", "bound"
    );
    for (tvlp, clp) in [(16, 2), (8, 4), (4, 8), (2, 16), (1, 32)] {
        let cfg = StrixConfig::paper_default().with_tvlp_clp(tvlp, clp);
        let sim = StrixSimulator::new(cfg, TfheParameters::set_iv())?;
        let r = sim.pbs_report(1 << 12);
        println!(
            "{tvlp:>6} {clp:>6} {:>14.0} {:>12.2} {:>14.0} {:>8}",
            r.throughput_pbs_per_s,
            r.latency_s * 1e3,
            r.required_bandwidth_gbps,
            if r.memory_bound { "memory" } else { "compute" }
        );
    }

    println!("\nFolding ablation (set I):");
    for (name, cfg) in
        [("folded", StrixConfig::paper_default()), ("non-folded", StrixConfig::paper_non_folded())]
    {
        let sim = StrixSimulator::new(cfg.clone(), TfheParameters::set_i())?;
        let r = sim.pbs_report(1 << 12);
        let area = AreaModel::new(&cfg);
        println!(
            "  {name:>10}: {:>7.0} PBS/s, {:.2} ms latency, FFT units {:.2} mm², core {:.2} mm²",
            r.throughput_pbs_per_s,
            r.latency_s * 1e3,
            area.fft_units_area_mm2(),
            area.core_area_mm2()
        );
    }

    println!("\nScaling the core count (set I):");
    println!("{:>6} {:>14} {:>12} {:>12}", "cores", "thr (PBS/s)", "area (mm²)", "power (W)");
    for tvlp in [1usize, 2, 4, 8, 16] {
        let cfg = StrixConfig { tvlp, ..StrixConfig::paper_default() };
        let sim = StrixSimulator::new(cfg.clone(), TfheParameters::set_i())?;
        let r = sim.pbs_report(1 << 13);
        let area = AreaModel::new(&cfg);
        println!(
            "{tvlp:>6} {:>14.0} {:>12.1} {:>12.1}",
            r.throughput_pbs_per_s,
            area.total_area_mm2(),
            area.total_power_w()
        );
    }
    Ok(())
}
