//! Encrypted neural-network inference, end to end.
//!
//! Functionally runs a miniature convolution + dense layer with real
//! TFHE ciphertexts (every ReLU one programmable bootstrap), then asks
//! the Strix model how long the full Zama NN-20/50/100 models of
//! Fig. 7 take on the accelerator versus the CPU and GPU baselines.
//!
//! ```sh
//! cargo run --release -p strix --example encrypted_nn_inference
//! ```

use strix::baselines::GpuModel;
use strix::core::{StrixConfig, StrixSimulator};
use strix::tfhe::prelude::*;
use strix::tfhe::shortint::ShortintCiphertext;
use strix::workloads::mnist::SyntheticImage;
use strix::workloads::DeepNn;

/// Message precision of the toy inference (3-bit signed activations).
const BITS: u32 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------- Part 1: real encrypted inference on a toy layer --------
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 0xBEEF);

    let image = SyntheticImage::generate(9);
    // A 2×2 window of the image, quantised to 1-bit pixels so the toy
    // convolution's weighted sum stays inside the 3-bit message space.
    let window: Vec<u64> = image.quantize(1)[..4].to_vec();
    let encrypted: Vec<ShortintCiphertext> =
        window.iter().map(|&p| client.encrypt_shortint(p, BITS)).collect::<Result<_, _>>()?;

    // Convolution with weights [1, 1, -1 (as +7 ≡ -1 mod 8), 1] followed
    // by a bootstrapped ReLU — one PBS, exactly the Fig. 7 cost model.
    let mut acc = encrypted[0].clone();
    acc.add_assign(&encrypted[1])?;
    let mut neg = encrypted[2].clone();
    neg.scalar_mul_assign(7); // ×(−1) in the 3-bit message ring
    acc.add_assign(&neg)?;
    acc.add_assign(&encrypted[3])?;
    let activated = server.relu(&acc)?;

    let expected: i64 = window[0] as i64 + window[1] as i64 - window[2] as i64 + window[3] as i64;
    let expected_relu = expected.max(0) as u64;
    let decrypted = client.decrypt_shortint(&activated);
    println!("toy conv window {window:?} -> ReLU(sum) = {decrypted} (expected {expected_relu})");
    assert_eq!(decrypted, expected_relu);

    // ---------- Part 2: the full Fig. 7 models on the accelerator ------
    println!("\nZama Deep-NN on Strix vs baselines (one inference):");
    println!(
        "{:>6} {:>6} {:>8} {:>12} {:>12} {:>12}",
        "model", "N", "PBS", "Strix (ms)", "GPU (ms)", "speedup"
    );
    for depth in [20usize, 50, 100] {
        for poly in [1024usize, 2048, 4096] {
            let nn = DeepNn::new(depth, poly);
            let sim = StrixSimulator::new(StrixConfig::paper_default(), nn.params())?;
            let strix_s = sim.run_graph(&nn.workload()).total_time_s;
            let gpu = GpuModel::titan_rtx_for(&nn.params());
            let gpu_s = gpu.device_batched_time_s(nn.conv_outputs())
                + (depth - 1) as f64 * gpu.device_batched_time_s(92);
            println!(
                "NN-{depth:<4} {poly:>6} {:>8} {:>12.1} {:>12.1} {:>11.1}x",
                nn.total_pbs(),
                strix_s * 1e3,
                gpu_s * 1e3,
                gpu_s / strix_s
            );
        }
    }
    Ok(())
}
