//! Bit-exactness of the split-complex (SoA) batched transforms against
//! the interleaved single-transform kernel.
//!
//! The whole point of the SoA layer is that it changes *layout and
//! loop schedule only*: every butterfly computes the same IEEE
//! expressions in the same per-transform order, so a batched transform
//! must agree with a loop of single transforms **bit for bit**, not
//! just within rounding tolerance. These tests pin that contract for
//! every entry point the CMUX hot path uses.

use strix_fft::{
    pointwise_mul_add, pointwise_mul_add_key, pointwise_mul_add_soa, Complex64, NegacyclicFft,
    SoaSpectrum, SpectralPlan,
};

/// Deterministic pseudo-random f64 stream (splitmix64 → [-1, 1) keeps
/// the values un-round, so equality failures can't hide in zeros).
fn noise(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

fn noise_complex(seed: u64, len: usize) -> Vec<Complex64> {
    let re = noise(seed, len);
    let im = noise(seed ^ 0xdead_beef, len);
    re.into_iter().zip(im).map(|(r, i)| Complex64::new(r, i)).collect()
}

fn noise_i64(seed: u64, len: usize) -> Vec<i64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            ((state >> 17) as i64 % 1024) - 512
        })
        .collect()
}

#[test]
fn forward_many_is_bit_exact_vs_looped_single_transforms() {
    for log_n in 0..=11 {
        let n = 1usize << log_n;
        let plan = SpectralPlan::new(n).unwrap();
        for count in [1usize, 2, 3, 6] {
            let inputs: Vec<Vec<Complex64>> =
                (0..count).map(|t| noise_complex(7 + t as u64 + n as u64, n)).collect();
            let mut batch = SoaSpectrum::new(count, n);
            for (t, input) in inputs.iter().enumerate() {
                batch.store(t, input);
            }
            plan.forward_many(&mut batch).unwrap();
            let mut got = vec![Complex64::ZERO; n];
            for (t, input) in inputs.iter().enumerate() {
                let mut single = input.clone();
                plan.forward(&mut single).unwrap();
                batch.load(t, &mut got);
                assert_eq!(got, single, "n={n} count={count} t={t}");
            }
        }
    }
}

#[test]
fn inverse_many_is_bit_exact_vs_looped_single_transforms() {
    for log_n in 0..=11 {
        let n = 1usize << log_n;
        let plan = SpectralPlan::new(n).unwrap();
        let count = 3;
        let inputs: Vec<Vec<Complex64>> =
            (0..count).map(|t| noise_complex(31 + t as u64 + n as u64, n)).collect();

        let mut unnorm = SoaSpectrum::new(count, n);
        let mut norm = SoaSpectrum::new(count, n);
        for (t, input) in inputs.iter().enumerate() {
            unnorm.store(t, input);
            norm.store(t, input);
        }
        plan.inverse_many_unnormalized(&mut unnorm).unwrap();
        plan.inverse_many(&mut norm).unwrap();

        let mut got = vec![Complex64::ZERO; n];
        for (t, input) in inputs.iter().enumerate() {
            let mut single = input.clone();
            plan.inverse_unnormalized(&mut single).unwrap();
            unnorm.load(t, &mut got);
            assert_eq!(got, single, "unnormalized n={n} t={t}");

            let mut single = input.clone();
            plan.inverse(&mut single).unwrap();
            norm.load(t, &mut got);
            assert_eq!(got, single, "normalized n={n} t={t}");
        }
    }
}

#[test]
fn negacyclic_forward_many_is_bit_exact_vs_looped_forward_i64() {
    // Covers both first-stage radices (log2(N/2) even and odd) and the
    // digit-batch shapes of the CMUX: (k+1)·l ∈ {4, 6, 9}.
    for n in [2usize, 4, 8, 64, 256, 512, 1024, 2048] {
        let fft = NegacyclicFft::new(n).unwrap();
        let half = fft.fourier_size();
        for count in [1usize, 4, 6, 9] {
            let polys = noise_i64(n as u64 * 1001 + count as u64, n * count);
            let mut batch = SoaSpectrum::new(count, half);
            fft.forward_i64_many(&polys, &mut batch).unwrap();

            let mut single = vec![Complex64::ZERO; half];
            let mut got = vec![Complex64::ZERO; half];
            for (t, poly) in polys.chunks_exact(n).enumerate() {
                fft.forward_i64(poly, &mut single).unwrap();
                batch.load(t, &mut got);
                assert_eq!(got, single, "n={n} count={count} t={t}");
            }
        }
    }
}

#[test]
fn negacyclic_backward_many_is_bit_exact_vs_looped_backward_f64() {
    for n in [2usize, 8, 256, 512, 1024, 2048] {
        let fft = NegacyclicFft::new(n).unwrap();
        let half = fft.fourier_size();
        let count = 3;
        let specs: Vec<Vec<Complex64>> =
            (0..count).map(|t| noise_complex(n as u64 * 7 + t as u64, half)).collect();

        let mut batch = SoaSpectrum::new(count, half);
        for (t, spec) in specs.iter().enumerate() {
            batch.store(t, spec);
        }
        let mut out = vec![0.0f64; n * count];
        fft.backward_f64_many(&mut batch, &mut out).unwrap();

        let mut single = vec![0.0f64; n];
        for (t, spec) in specs.iter().enumerate() {
            let mut s = spec.clone();
            fft.backward_f64(&mut s, &mut single).unwrap();
            assert_eq!(&out[t * n..(t + 1) * n], single.as_slice(), "n={n} t={t}");
        }
    }
}

#[test]
fn soa_round_trip_recovers_polynomials() {
    let n = 512;
    let fft = NegacyclicFft::new(n).unwrap();
    let count = 5;
    let polys = noise_i64(99, n * count);
    let mut batch = SoaSpectrum::new(count, fft.fourier_size());
    fft.forward_i64_many(&polys, &mut batch).unwrap();
    let mut out = vec![0.0f64; n * count];
    fft.backward_f64_many(&mut batch, &mut out).unwrap();
    for (o, &p) in out.iter().zip(&polys) {
        assert!((o - p as f64).abs() < 1e-6, "{o} vs {p}");
    }
}

#[test]
fn split_vma_kernels_are_bit_exact_vs_interleaved() {
    let n = 512;
    let a = noise_complex(1, n);
    let b = noise_complex(2, n);
    let acc0 = noise_complex(3, n);

    // Interleaved oracle.
    let mut acc = acc0.clone();
    pointwise_mul_add(&mut acc, &a, &b);

    // Mixed layout: interleaved accumulator/digits, split key.
    let b_re: Vec<f64> = b.iter().map(|z| z.re).collect();
    let b_im: Vec<f64> = b.iter().map(|z| z.im).collect();
    let mut acc_key = acc0.clone();
    pointwise_mul_add_key(&mut acc_key, &a, &b_re, &b_im);
    assert_eq!(acc_key, acc);

    // Fully split four-array kernel.
    let a_re: Vec<f64> = a.iter().map(|z| z.re).collect();
    let a_im: Vec<f64> = a.iter().map(|z| z.im).collect();
    let mut acc_re: Vec<f64> = acc0.iter().map(|z| z.re).collect();
    let mut acc_im: Vec<f64> = acc0.iter().map(|z| z.im).collect();
    pointwise_mul_add_soa(&mut acc_re, &mut acc_im, &a_re, &a_im, &b_re, &b_im);
    for j in 0..n {
        assert_eq!(acc_re[j], acc[j].re, "re j={j}");
        assert_eq!(acc_im[j], acc[j].im, "im j={j}");
    }
}

#[test]
fn batched_entry_points_report_length_mismatches() {
    let plan = SpectralPlan::new(8).unwrap();
    let mut wrong = SoaSpectrum::new(2, 4);
    assert!(plan.forward_many(&mut wrong).is_err());
    assert!(plan.inverse_many(&mut wrong).is_err());

    let fft = NegacyclicFft::new(8).unwrap();
    let mut batch = SoaSpectrum::new(2, 4);
    // Wrong time-domain length for the batch count.
    assert!(fft.forward_i64_many(&[0i64; 8], &mut batch).is_err());
    assert!(fft.backward_f64_many(&mut batch, &mut [0.0; 8]).is_err());
    // Wrong transform length.
    let mut wrong = SoaSpectrum::new(2, 8);
    assert!(fft.forward_i64_many(&[0i64; 16], &mut wrong).is_err());
}
