//! Property-based tests of the FFT substrate: algebraic laws that must
//! hold for arbitrary inputs, not just the unit-test vectors.

use proptest::prelude::*;

use strix_fft::{reference, Complex64, FftPlan, NegacyclicFft, SpectralPlan};

fn poly_strategy(n: usize, bound: i64) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-bound..=bound, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_recovers_input(
        log_n in 1u32..=9,
        seed_re in prop::collection::vec(-1000.0f64..1000.0, 512),
    ) {
        let n = 1usize << log_n;
        let plan = FftPlan::new(n).unwrap();
        let input: Vec<Complex64> = seed_re[..n]
            .iter()
            .enumerate()
            .map(|(i, &re)| Complex64::new(re, (i as f64).sin() * 10.0))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        for (a, b) in data.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_is_linear(
        a in prop::collection::vec(-100.0f64..100.0, 64),
        b in prop::collection::vec(-100.0f64..100.0, 64),
        scale in -10.0f64..10.0,
    ) {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let za: Vec<Complex64> = a.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        let zb: Vec<Complex64> = b.iter().map(|&x| Complex64::new(0.0, x)).collect();

        let mut fa = za.clone();
        plan.forward(&mut fa).unwrap();
        let mut fb = zb.clone();
        plan.forward(&mut fb).unwrap();

        let mut combined: Vec<Complex64> =
            za.iter().zip(&zb).map(|(x, y)| *x + y.scale(scale)).collect();
        plan.forward(&mut combined).unwrap();

        for ((x, y), c) in fa.iter().zip(&fb).zip(&combined) {
            let expected = *x + y.scale(scale);
            prop_assert!((*c - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn spectral_kernel_round_trip_recovers_input(
        log_n in 0u32..=10,
        seed_re in prop::collection::vec(-1000.0f64..1000.0, 1024),
    ) {
        // DIF forward ∘ DIT inverse must be the identity with no
        // permutation pass, for arbitrary inputs at every size.
        let n = 1usize << log_n;
        let plan = SpectralPlan::new(n).unwrap();
        let input: Vec<Complex64> = seed_re[..n]
            .iter()
            .enumerate()
            .map(|(i, &re)| Complex64::new(re, (i as f64 * 0.9).cos() * 100.0))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        for (a, b) in data.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn negacyclic_mul_matches_schoolbook(
        log_n in 1u32..=7,
        a in poly_strategy(128, 512),
        b in poly_strategy(128, 512),
    ) {
        let n = 1usize << log_n;
        let fft = NegacyclicFft::new(n).unwrap();
        let a = &a[..n];
        let b = &b[..n];
        let expected = reference::negacyclic_mul(a, b);
        let mut out = vec![0i64; n];
        fft.negacyclic_mul_i64(a, b, &mut out).unwrap();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn negacyclic_mul_is_commutative(
        a in poly_strategy(32, 1000),
        b in poly_strategy(32, 1000),
    ) {
        prop_assert_eq!(
            reference::negacyclic_mul(&a, &b),
            reference::negacyclic_mul(&b, &a)
        );
    }

    #[test]
    fn negacyclic_mul_distributes_over_addition(
        a in poly_strategy(16, 100),
        b in poly_strategy(16, 100),
        c in poly_strategy(16, 100),
    ) {
        let bc: Vec<i64> =
            b.iter().zip(&c).map(|(x, y)| x.wrapping_add(*y)).collect();
        let left = reference::negacyclic_mul(&a, &bc);
        let ab = reference::negacyclic_mul(&a, &b);
        let ac = reference::negacyclic_mul(&a, &c);
        let right: Vec<i64> =
            ab.iter().zip(&ac).map(|(x, y)| x.wrapping_add(*y)).collect();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn rotation_composes_additively(
        poly in prop::collection::vec(any::<u64>(), 16),
        r1 in 0usize..32,
        r2 in 0usize..32,
    ) {
        let once = reference::rotate_left(&reference::rotate_left(&poly, r1), r2);
        let both = reference::rotate_left(&poly, (r1 + r2) % 32);
        // X^{-r1}·X^{-r2} = X^{-(r1+r2) mod 2N} — full period is 2N = 32.
        prop_assert_eq!(once, both);
    }

    #[test]
    fn rotation_preserves_multiset_up_to_sign(
        poly in prop::collection::vec(any::<u64>(), 32),
        r in 0usize..64,
    ) {
        let rotated = reference::rotate_left(&poly, r);
        let mut orig_abs: Vec<u64> = poly
            .iter()
            .map(|&x| x.min(x.wrapping_neg()))
            .collect();
        let mut rot_abs: Vec<u64> = rotated
            .iter()
            .map(|&x| x.min(x.wrapping_neg()))
            .collect();
        orig_abs.sort_unstable();
        rot_abs.sort_unstable();
        prop_assert_eq!(orig_abs, rot_abs);
    }

    #[test]
    fn folded_transform_energy_matches_plancherel(
        a in poly_strategy(64, 1 << 20),
    ) {
        // For the negacyclic DFT at N/2 points with folded packing,
        // Σ|A_k|² = (N/2)·Σ a_j² (each of the N/2 bins aggregates the
        // energy of one conjugate pair).
        let n = 64;
        let fft = NegacyclicFft::new(n).unwrap();
        let mut spec = vec![Complex64::ZERO; n / 2];
        fft.forward_i64(&a, &mut spec).unwrap();
        let time_energy: f64 = a.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let freq_energy: f64 =
            spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / (n / 2) as f64;
        let rel = (freq_energy - time_energy).abs() / time_energy.max(1.0);
        prop_assert!(rel < 1e-9, "rel err {rel}");
    }
}
