//! Bit-identity of every SIMD kernel backend against the portable
//! scalar baseline, and of the portable baseline against the
//! schoolbook reference oracle.
//!
//! The backend contract is *bit-identity*, not tolerance: every tier
//! computes the same IEEE-754 expressions in the same per-element
//! order (separate mul/add — never FMA — and sign-bit-XOR negation),
//! only over wider registers. So a forced-AVX2 or forced-AVX-512 plan
//! must agree with a forced-portable plan **bit for bit** on every
//! entry point the CMUX hot path dispatches: the SoA batched
//! transforms, the fused fold/twist and untwist/unfold passes, and
//! both VMA kernels. Unavailable tiers are skipped, so the suite
//! degrades gracefully on portable-only hardware.

use proptest::prelude::*;
use strix_fft::{
    pointwise_mul_add_key, pointwise_mul_add_soa, reference, Complex64, NegacyclicFft, SoaSpectrum,
    SpectralPlan, StrixFftBackend,
};

/// The explicit tiers, filtered to what this host supports. Portable
/// is always first, so `[0]` is the oracle the others diff against.
fn available_backends() -> Vec<StrixFftBackend> {
    [StrixFftBackend::Portable, StrixFftBackend::Avx2, StrixFftBackend::Avx512]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// The ISSUE 9 acceptance sizes: production polynomial sizes whose
/// half-size spectral plans cover both radix-4-only and leading-
/// radix-2 stage schedules.
const SIZES: [usize; 4] = [512, 1024, 2048, 4096];

fn noise_i64(seed: u64, len: usize) -> Vec<i64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            ((state >> 17) as i64 % 1024) - 512
        })
        .collect()
}

fn noise_f64(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

fn noise_complex(seed: u64, len: usize) -> Vec<Complex64> {
    let re = noise_f64(seed, len);
    let im = noise_f64(seed ^ 0xdead_beef, len);
    re.into_iter().zip(im).map(|(r, i)| Complex64::new(r, i)).collect()
}

/// Bit-level comparison: NaN-free data, so `to_bits` equality is the
/// honest spelling of "the same double".
fn assert_planes_bit_equal(got: (&[f64], &[f64]), want: (&[f64], &[f64]), ctx: &str) {
    for (plane, (g, w)) in [("re", (got.0, want.0)), ("im", (got.1, want.1))] {
        for (j, (a, b)) in g.iter().zip(w).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: {plane}[{j}] {a} vs {b}");
        }
    }
}

/// Negacyclic product computed purely through the backend-dispatched
/// SoA entry points: batched forward, `pointwise_mul_add_soa`, batched
/// inverse.
fn negacyclic_mul_via_soa(fft: &NegacyclicFft, a: &[i64], b: &[i64]) -> Vec<f64> {
    let half = fft.fourier_size();
    let mut sa = SoaSpectrum::new(1, half);
    let mut sb = SoaSpectrum::new(1, half);
    fft.forward_i64_many(a, &mut sa).unwrap();
    fft.forward_i64_many(b, &mut sb).unwrap();
    let mut acc = SoaSpectrum::new(1, half);
    {
        let (br, bi) = sb.transform(0);
        let (ar, ai) = sa.transform(0);
        let (sr, si) = acc.transform_mut(0);
        fft.pointwise_mul_add_soa(sr, si, ar, ai, br, bi);
    }
    let mut time = vec![0.0f64; fft.poly_size()];
    fft.backward_f64_many(&mut acc, &mut time).unwrap();
    time
}

#[test]
fn every_backend_matches_portable_on_batched_negacyclic_transforms() {
    let backends = available_backends();
    for n in SIZES {
        let batch = 3usize;
        let polys = noise_i64(0xA11CE ^ n as u64, batch * n);
        let portable = NegacyclicFft::with_backend(n, StrixFftBackend::Portable).unwrap();
        let mut want = SoaSpectrum::new(batch, n / 2);
        portable.forward_i64_many(&polys, &mut want).unwrap();
        let mut want_time = vec![0.0f64; batch * n];
        let mut scratch = SoaSpectrum::new(batch, n / 2);
        scratch.copy_from(&want);
        portable.backward_f64_many(&mut scratch, &mut want_time).unwrap();

        for &backend in &backends[1..] {
            let fft = NegacyclicFft::with_backend(n, backend).unwrap();
            assert_eq!(fft.backend(), backend);
            let mut got = SoaSpectrum::new(batch, n / 2);
            fft.forward_i64_many(&polys, &mut got).unwrap();
            for t in 0..batch {
                assert_planes_bit_equal(
                    got.transform(t),
                    want.transform(t),
                    &format!("forward n={n} t={t} backend={backend}"),
                );
            }
            let mut got_time = vec![0.0f64; batch * n];
            got.copy_from(&want);
            fft.backward_f64_many(&mut got, &mut got_time).unwrap();
            for (j, (a, b)) in got_time.iter().zip(&want_time).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "inverse n={n} j={j} backend={backend}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn every_backend_matches_portable_on_raw_spectral_plans() {
    let backends = available_backends();
    // Half-size plans as the negacyclic layer builds them, including
    // the odd-log2 sizes that lead with a radix-2 stage.
    for n in SIZES {
        let half = n / 2;
        let batch = 2usize;
        let portable = SpectralPlan::with_backend(half, StrixFftBackend::Portable).unwrap();
        let input: Vec<Vec<Complex64>> =
            (0..batch).map(|t| noise_complex(0xF00D + t as u64 + n as u64, half)).collect();
        let mut want = SoaSpectrum::new(batch, half);
        for (t, row) in input.iter().enumerate() {
            want.store(t, row);
        }
        portable.forward_many(&mut want).unwrap();

        for &backend in &backends[1..] {
            let plan = SpectralPlan::with_backend(half, backend).unwrap();
            let mut got = SoaSpectrum::new(batch, half);
            for (t, row) in input.iter().enumerate() {
                got.store(t, row);
            }
            plan.forward_many(&mut got).unwrap();
            for t in 0..batch {
                assert_planes_bit_equal(
                    got.transform(t),
                    want.transform(t),
                    &format!("plan fwd half={half} t={t} backend={backend}"),
                );
            }
            let mut want_inv = SoaSpectrum::new(batch, half);
            want_inv.copy_from(&want);
            portable.inverse_many_unnormalized(&mut want_inv).unwrap();
            got.copy_from(&want);
            plan.inverse_many_unnormalized(&mut got).unwrap();
            for t in 0..batch {
                assert_planes_bit_equal(
                    got.transform(t),
                    want_inv.transform(t),
                    &format!("plan inv half={half} t={t} backend={backend}"),
                );
            }
        }
    }
}

#[test]
fn every_backend_vma_kernels_match_the_scalar_reference() {
    let backends = available_backends();
    for n in [1024usize, 2048] {
        let half = n / 2;
        let a = noise_complex(11, half);
        let key_re = noise_f64(13, half);
        let key_im = noise_f64(17, half);
        let (a_re, a_im): (Vec<f64>, Vec<f64>) = a.iter().map(|z| (z.re, z.im)).unzip();

        // Scalar oracles: the free functions, unchanged since the SoA
        // layer landed.
        let mut want_soa_re = noise_f64(19, half);
        let mut want_soa_im = noise_f64(23, half);
        let mut want_aos = noise_complex(29, half);
        let soa_seed = (want_soa_re.clone(), want_soa_im.clone());
        let aos_seed = want_aos.clone();
        pointwise_mul_add_soa(&mut want_soa_re, &mut want_soa_im, &a_re, &a_im, &key_re, &key_im);
        pointwise_mul_add_key(&mut want_aos, &a, &key_re, &key_im);

        for &backend in &backends {
            let fft = NegacyclicFft::with_backend(n, backend).unwrap();
            let mut got_re = soa_seed.0.clone();
            let mut got_im = soa_seed.1.clone();
            fft.pointwise_mul_add_soa(&mut got_re, &mut got_im, &a_re, &a_im, &key_re, &key_im);
            assert_planes_bit_equal(
                (&got_re, &got_im),
                (&want_soa_re, &want_soa_im),
                &format!("mul_add_soa n={n} backend={backend}"),
            );
            let mut got_aos = aos_seed.clone();
            fft.pointwise_mul_add_key(&mut got_aos, &a, &key_re, &key_im);
            for (j, (g, w)) in got_aos.iter().zip(&want_aos).enumerate() {
                assert_eq!(
                    (g.re.to_bits(), g.im.to_bits()),
                    (w.re.to_bits(), w.im.to_bits()),
                    "mul_add_key n={n} j={j} backend={backend}: {g} vs {w}"
                );
            }
        }
    }
}

#[test]
fn every_backend_round_trips_and_matches_the_schoolbook_oracle() {
    for n in SIZES {
        let a = noise_i64(3 * n as u64, n);
        let b = noise_i64(5 * n as u64, n);
        let expected = reference::negacyclic_mul(&a, &b);
        for backend in available_backends() {
            let fft = NegacyclicFft::with_backend(n, backend).unwrap();

            // Forward ∘ inverse over the batched SoA path is the
            // identity on integer coefficients (exact after rounding).
            let mut spec = SoaSpectrum::new(1, n / 2);
            fft.forward_i64_many(&a, &mut spec).unwrap();
            let mut time = vec![0.0f64; n];
            fft.backward_f64_many(&mut spec, &mut time).unwrap();
            for (j, (&got, &want)) in time.iter().zip(&a).enumerate() {
                assert_eq!(got.round() as i64, want, "round-trip n={n} j={j} backend={backend}");
            }

            // Full product through forward + VMA + inverse agrees with
            // the schoolbook reference — the backends are not just
            // self-consistent, they compute the right polynomial.
            let product = negacyclic_mul_via_soa(&fft, &a, &b);
            for (j, (got, &want)) in product.iter().zip(&expected).enumerate() {
                assert_eq!(got.round() as i64, want, "product n={n} j={j} backend={backend}");
            }
        }
    }
}

#[test]
fn forced_portable_and_forced_avx2_plans_agree_when_both_exist() {
    // The pairing the ISSUE names explicitly: the widest commonly
    // available tier against the baseline, on the default production
    // size. Subsumed by the batched test above, but kept as a direct,
    // cheaply-debuggable statement of the contract.
    if !StrixFftBackend::Avx2.is_available() {
        eprintln!("avx2 unavailable on this host; skipping");
        return;
    }
    let n = 1024usize;
    let poly = noise_i64(0xCAFE, n);
    let portable = NegacyclicFft::with_backend(n, StrixFftBackend::Portable).unwrap();
    let avx2 = NegacyclicFft::with_backend(n, StrixFftBackend::Avx2).unwrap();
    let mut sp = SoaSpectrum::new(1, n / 2);
    let mut sa = SoaSpectrum::new(1, n / 2);
    portable.forward_i64_many(&poly, &mut sp).unwrap();
    avx2.forward_i64_many(&poly, &mut sa).unwrap();
    assert_planes_bit_equal(sa.transform(0), sp.transform(0), "portable vs avx2");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_forward_is_backend_invariant_on_random_polys(
        size_idx in 0usize..SIZES.len(),
        seed in any::<u64>(),
    ) {
        let n = SIZES[size_idx];
        let poly = noise_i64(seed, n);
        let portable = NegacyclicFft::with_backend(n, StrixFftBackend::Portable).unwrap();
        let mut want = SoaSpectrum::new(1, n / 2);
        portable.forward_i64_many(&poly, &mut want).unwrap();
        for backend in available_backends() {
            let fft = NegacyclicFft::with_backend(n, backend).unwrap();
            let mut got = SoaSpectrum::new(1, n / 2);
            fft.forward_i64_many(&poly, &mut got).unwrap();
            let (gr, gi) = got.transform(0);
            let (wr, wi) = want.transform(0);
            for j in 0..n / 2 {
                prop_assert_eq!(gr[j].to_bits(), wr[j].to_bits(), "re[{}] {}", j, backend);
                prop_assert_eq!(gi[j].to_bits(), wi[j].to_bits(), "im[{}] {}", j, backend);
            }
        }
    }
}
