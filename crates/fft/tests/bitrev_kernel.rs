//! Integration tests pinning the bit-reversed-spectrum kernel
//! (ISSUE 4): bit-exactness of the negacyclic product against the
//! schoolbook oracle across the full supported size range, the
//! permutation-free DIF∘DIT identity, round-trip error scaling, and
//! agreement with the natural-order seed kernel kept as oracle.

use strix_fft::{reference, Complex64, FftPlan, NegacyclicFft, SpectralPlan};

/// Deterministic pseudorandom i64 stream (splitmix64), bounded.
fn pseudo_poly(n: usize, seed: u64, bound: i64) -> Vec<i64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z % (2 * bound as u64 + 1)) as i64 - bound
        })
        .collect()
}

#[test]
fn negacyclic_mul_is_bit_exact_against_schoolbook_for_all_sizes() {
    // Every supported power of two from 2 to 4096, three pseudorandom
    // polynomial pairs each. Magnitudes are sized so the exact product
    // stays far below 2^52, where the FFT path must round exactly.
    for log_n in 1..=12u32 {
        let n = 1usize << log_n;
        let fft = NegacyclicFft::new(n).unwrap();
        // Keep N·bound² ≤ 2^45: shrink coefficients as N grows.
        let bound = (1i64 << 22) / (n as i64).max(1);
        let bound = bound.max(3);
        for trial in 0..3u64 {
            let a = pseudo_poly(n, 1000 * trial + log_n as u64, bound);
            let b = pseudo_poly(n, 2000 * trial + log_n as u64 + 7, bound);
            let expected = reference::negacyclic_mul(&a, &b);
            let mut out = vec![0i64; n];
            fft.negacyclic_mul_i64(&a, &b, &mut out).unwrap();
            assert_eq!(out, expected, "n={n} trial={trial}");
        }
    }
}

#[test]
fn dif_forward_then_dit_inverse_is_identity_without_permutation() {
    // The defining property of the convention: forward and inverse
    // compose to the identity with no reordering pass anywhere, for
    // every supported size including the odd-log2 radix-2-fixup ones.
    for log_n in 0..=13u32 {
        let n = 1usize << log_n;
        let plan = SpectralPlan::new(n).unwrap();
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.7).sin() * 100.0, (i as f64 * 1.3).cos() * 50.0))
            .collect();
        let mut data = input.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        let max_err = data.iter().zip(&input).map(|(a, b)| (*a - *b).abs()).fold(0.0f64, f64::max);
        assert!(max_err < 1e-9 * (log_n.max(1) as f64), "n={n}: max err {max_err}");
    }
}

#[test]
fn forward_spectrum_is_the_permuted_natural_spectrum() {
    // The digit-reversed spectrum is a pure relabeling of the seed
    // kernel's natural-order spectrum: SpectralPlan::forward at slot
    // perm[k] equals FftPlan::forward at bin k.
    for n in [2usize, 4, 8, 32, 128, 512, 1024] {
        let input: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(i as f64, -(i as f64) * 0.25)).collect();
        let plan = SpectralPlan::new(n).unwrap();
        let oracle = FftPlan::new(n).unwrap();
        let mut reversed = input.clone();
        plan.forward(&mut reversed).unwrap();
        let mut natural = input;
        oracle.forward(&mut natural).unwrap();
        let perm = plan.permutation();
        for (k, &slot) in perm.iter().enumerate() {
            let d = (reversed[slot] - natural[k]).abs();
            assert!(d < 1e-8 * n as f64, "n={n} bin={k}: err {d}");
        }
    }
}

#[test]
fn negacyclic_round_trip_error_scales_with_size() {
    // Forward∘backward error on magnitude-M inputs must stay within a
    // bound that grows with log2(N) — the stage count — not with N.
    // The absolute tolerance per size documents the scaling and fails
    // loudly if a kernel change regresses accuracy by an order of
    // magnitude.
    let magnitude = 1000.0f64;
    for log_n in 1..=13u32 {
        let n = 1usize << log_n;
        let fft = NegacyclicFft::new(n).unwrap();
        let poly: Vec<f64> =
            pseudo_poly(n, 42 + log_n as u64, 1000).into_iter().map(|v| v as f64).collect();
        let mut spec = vec![Complex64::ZERO; n / 2];
        fft.forward_f64(&poly, &mut spec).unwrap();
        let mut back = vec![0.0f64; n];
        fft.backward_f64(&mut spec, &mut back).unwrap();
        let max_err = poly.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        // ~2^-52 per butterfly stage on values of size `magnitude`,
        // with sqrt(N) accumulation headroom folded into the constant.
        let tol = magnitude * (log_n as f64 + 1.0) * (n as f64).sqrt() * 1e-14;
        assert!(max_err < tol, "n={n}: max err {max_err:e} exceeds tol {tol:e}");
    }
}

#[test]
fn spectra_from_different_entry_points_are_interchangeable() {
    // forward_f64 and forward_i64 must emit the same slot ordering —
    // the external product multiplies key spectra (f64 path) against
    // digit spectra (i64 path) pointwise.
    let n = 256;
    let ints = pseudo_poly(n, 9, 500);
    let floats: Vec<f64> = ints.iter().map(|&v| v as f64).collect();
    let fft = NegacyclicFft::new(n).unwrap();
    let mut spec_i = vec![Complex64::ZERO; n / 2];
    let mut spec_f = vec![Complex64::ZERO; n / 2];
    fft.forward_i64(&ints, &mut spec_i).unwrap();
    fft.forward_f64(&floats, &mut spec_f).unwrap();
    assert_eq!(spec_i, spec_f);
}

#[test]
fn spectrum_permutation_is_consistent_with_kernel() {
    let n = 64;
    let fft = NegacyclicFft::new(n).unwrap();
    let kernel = SpectralPlan::new(n / 2).unwrap();
    assert_eq!(fft.spectrum_permutation(), kernel.permutation());
}
