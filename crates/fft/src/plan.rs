//! Iterative radix-2 decimation-in-time FFT with precomputed tables and
//! **natural-order** spectra — the correctness oracle for the
//! bit-reversed-spectrum production kernel ([`crate::SpectralPlan`]).
//!
//! This was the seed hot kernel; the production transforms now run on
//! `SpectralPlan`, which deletes this plan's per-transform bit-reversal
//! permutation pass and per-butterfly direction branch. It is kept
//! (unchanged, on purpose) because its natural bin ordering makes it
//! the easy-to-trust reference: kernel tests compare
//! `SpectralPlan::forward` against [`FftPlan::forward`] through
//! `SpectralPlan::permutation`, and callers that genuinely need
//! natural-order spectra (spectral diagnostics, plotting) should use
//! this type.

use crate::complex::Complex64;
use crate::error::FftError;
use crate::is_pow2_at_least;

/// Precomputed plan for forward/inverse complex FFTs of a fixed size.
///
/// A plan is immutable after construction and can be shared freely across
/// threads. Construction costs `O(n log n)`; each transform costs
/// `O(n log n)` with no allocation.
///
/// # Example
///
/// ```
/// use strix_fft::{Complex64, FftPlan};
///
/// # fn main() -> Result<(), strix_fft::FftError> {
/// let plan = FftPlan::new(4)?;
/// let mut data = [
///     Complex64::new(1.0, 0.0),
///     Complex64::new(0.0, 0.0),
///     Complex64::new(0.0, 0.0),
///     Complex64::new(0.0, 0.0),
/// ];
/// plan.forward(&mut data)?;
/// // The spectrum of a unit impulse is flat.
/// for bin in &data {
///     assert!((bin.re - 1.0).abs() < 1e-12 && bin.im.abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FftPlan {
    size: usize,
    log2_size: u32,
    /// Twiddles `e^{-2πik/n}` for `k` in `[0, n/2)` (forward direction).
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation of `[0, n)`.
    bit_rev: Vec<u32>,
}

impl FftPlan {
    /// Smallest supported transform size.
    pub const MIN_SIZE: usize = 1;

    /// Creates a plan for transforms of `size` points.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] if `size` is not a power of two.
    pub fn new(size: usize) -> Result<Self, FftError> {
        if !is_pow2_at_least(size, Self::MIN_SIZE) {
            return Err(FftError::InvalidSize { requested: size, min: Self::MIN_SIZE });
        }
        let log2_size = size.trailing_zeros();
        let mut twiddles = Vec::with_capacity(size / 2);
        for k in 0..size / 2 {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / size as f64;
            twiddles.push(Complex64::cis(theta));
        }
        let mut bit_rev = vec![0u32; size];
        for (i, slot) in bit_rev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2_size.max(1));
        }
        if size == 1 {
            bit_rev[0] = 0;
        }
        Ok(Self { size, log2_size, twiddles, bit_rev })
    }

    /// The transform size this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// `log2` of the transform size — the number of butterfly stages in the
    /// equivalent pipelined hardware unit.
    #[inline]
    pub fn stages(&self) -> u32 {
        self.log2_size
    }

    /// In-place forward FFT: `X_k = Σ_j x_j e^{-2πijk/n}`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != self.size()`.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.check_len(data.len())?;
        self.permute(data);
        self.butterflies(data, false);
        Ok(())
    }

    /// In-place unnormalised inverse FFT: `x_j = Σ_k X_k e^{+2πijk/n}`.
    ///
    /// Dividing by `n` is left to the caller so that scaling can be fused
    /// with other constants (as the accelerator does in its accumulator
    /// stage).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != self.size()`.
    pub fn inverse_unnormalized(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.check_len(data.len())?;
        self.permute(data);
        self.butterflies(data, true);
        Ok(())
    }

    /// In-place normalised inverse FFT (divides by `n`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len() != self.size()`.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.inverse_unnormalized(data)?;
        let scale = 1.0 / self.size as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), FftError> {
        if len != self.size {
            return Err(FftError::LengthMismatch { expected: self.size, actual: len });
        }
        Ok(())
    }

    fn permute(&self, data: &mut [Complex64]) {
        for i in 0..self.size {
            let j = self.bit_rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn butterflies(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.size;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let tw = if inverse { tw.conj() } else { tw };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
        let n = input.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|j| {
                        let theta = sign * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                        input[j] * Complex64::cis(theta)
                    })
                    .sum()
            })
            .collect()
    }

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(FftPlan::new(3).unwrap_err(), FftError::InvalidSize { requested: 3, min: 1 });
        assert_eq!(FftPlan::new(0).unwrap_err(), FftError::InvalidSize { requested: 0, min: 1 });
    }

    #[test]
    fn rejects_wrong_buffer_length() {
        let plan = FftPlan::new(8).unwrap();
        let mut short = vec![Complex64::ZERO; 4];
        assert_eq!(
            plan.forward(&mut short).unwrap_err(),
            FftError::LengthMismatch { expected: 8, actual: 4 }
        );
    }

    #[test]
    fn size_one_transform_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut data = [Complex64::new(2.5, -1.0)];
        plan.forward(&mut data).unwrap();
        assert_eq!(data[0], Complex64::new(2.5, -1.0));
    }

    #[test]
    fn matches_naive_dft() {
        for log_n in 1..=7 {
            let n = 1usize << log_n;
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin() + 1.0, (i as f64 * 0.7).cos()))
                .collect();
            let expected = naive_dft(&input, false);
            let plan = FftPlan::new(n).unwrap();
            let mut data = input.clone();
            plan.forward(&mut data).unwrap();
            assert_close(&data, &expected, 1e-9 * n as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_inverse_dft() {
        let n = 32;
        let input: Vec<Complex64> =
            (0..n).map(|i| Complex64::new(i as f64, -(i as f64) * 0.3)).collect();
        let mut expected = naive_dft(&input, true);
        for z in expected.iter_mut() {
            *z = z.scale(1.0 / n as f64);
        }
        let plan = FftPlan::new(n).unwrap();
        let mut data = input.clone();
        plan.inverse(&mut data).unwrap();
        assert_close(&data, &expected, 1e-9);
    }

    #[test]
    fn round_trip_recovers_input() {
        let n = 256;
        let input: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i * 37 % 101) as f64, (i * 53 % 97) as f64)).collect();
        let plan = FftPlan::new(n).unwrap();
        let mut data = input.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse(&mut data).unwrap();
        assert_close(&data, &input, 1e-8);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.11).sin(), (i as f64 * 0.23).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let plan = FftPlan::new(n).unwrap();
        let mut data = input;
        plan.forward(&mut data).unwrap();
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn linearity_holds() {
        let n = 16;
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let b: Vec<Complex64> = (0..n).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let plan = FftPlan::new(n).unwrap();

        let mut fa = a.clone();
        plan.forward(&mut fa).unwrap();
        let mut fb = b.clone();
        plan.forward(&mut fb).unwrap();
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fab).unwrap();

        let sum: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fab, &sum, 1e-9);
    }

    #[test]
    fn stages_matches_log2() {
        assert_eq!(FftPlan::new(1024).unwrap().stages(), 10);
        assert_eq!(FftPlan::new(8192).unwrap().stages(), 13);
    }
}
