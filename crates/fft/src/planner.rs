//! Shared transform-plan cache.
//!
//! Twiddle tables are immutable once built, so every bootstrapping key,
//! keyswitching pipeline and benchmark harness working at the same `N`
//! can share one [`NegacyclicFft`]. The cache hands out `Arc`s; the
//! global instance lives for the process lifetime.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::FftError;
use crate::negacyclic::NegacyclicFft;

/// A thread-safe cache of negacyclic transforms keyed by polynomial
/// size.
///
/// # Example
///
/// ```
/// use strix_fft::planner::PlanCache;
///
/// # fn main() -> Result<(), strix_fft::FftError> {
/// let cache = PlanCache::new();
/// let a = cache.get_or_create(1024)?;
/// let b = cache.get_or_create(1024)?;
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // same plan, shared
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<usize, Arc<NegacyclicFft>>>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached transform for `poly_size`, building it on
    /// first use.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] if `poly_size` is unsupported.
    pub fn get_or_create(&self, poly_size: usize) -> Result<Arc<NegacyclicFft>, FftError> {
        let mut plans = self.plans.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(plan) = plans.get(&poly_size) {
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(NegacyclicFft::new(poly_size)?);
        plans.insert(poly_size, Arc::clone(&plan));
        Ok(plan)
    }

    /// Number of distinct sizes currently cached.
    pub fn len(&self) -> usize {
        self.plans.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide plan cache.
pub fn global() -> &'static PlanCache {
    static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
    GLOBAL.get_or_init(PlanCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_returns_shared_instances() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_create(256).unwrap();
        let b = cache.get_or_create(256).unwrap();
        let c = cache.get_or_create(512).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalid_sizes_are_rejected_not_cached() {
        let cache = PlanCache::new();
        assert!(cache.get_or_create(3).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn global_cache_is_singleton() {
        let a = global().get_or_create(128).unwrap();
        let b = global().get_or_create(128).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cache_is_usable_across_threads() {
        let cache = std::sync::Arc::new(PlanCache::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || cache.get_or_create(1024).unwrap().poly_size())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1024);
        }
        assert_eq!(cache.len(), 1);
    }
}
