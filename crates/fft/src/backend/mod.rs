//! Pluggable SIMD kernel backends for the SoA transform hot path.
//!
//! The Strix paper attacks the PBS bottleneck at the *datapath* level:
//! FPT's fixed-point pipeline and the Strix FFT/VMA units are
//! hand-scheduled lane-parallel hardware, not compiler output. This
//! module is the software analogue: the batched butterfly stages, the
//! fused fold/twist and untwist/unfold passes, the i64→f64 torus
//! conversions, and the pointwise VMA kernels are each implemented
//! three times —
//!
//! * [`portable`] — the autovectorised scalar loops (the former inline
//!   bodies of `kernel.rs`/`negacyclic.rs`, unchanged), correct on
//!   every architecture and the bit-identity reference;
//! * [`avx2`] — explicit 4-lane `std::arch::x86_64` AVX2 kernels;
//! * [`avx512`] — explicit 8-lane AVX-512 (`avx512f` + `avx512dq`)
//!   kernels.
//!
//! One backend is resolved per plan at construction time
//! ([`StrixFftBackend::resolve`]): runtime CPU detection via
//! `is_x86_feature_detected!`, overridable by the
//! `STRIX_FFT_BACKEND` environment variable or an explicit
//! [`crate::SpectralPlan::with_backend`] /
//! [`crate::NegacyclicFft::with_backend`] request, mirroring
//! tfhe-rs's per-backend `execute_pbs` dispatch.
//!
//! # Bit-identity
//!
//! Every dispatched loop is elementwise-independent across its index,
//! and rustc keeps floating-point contraction *off*, so a SIMD lane
//! computing the same mul/add/sub expression as the scalar loop rounds
//! identically. The SIMD kernels therefore use only separate
//! multiply/add/subtract instructions — **never FMA**, whose single
//! rounding would diverge from the scalar oracle — and every backend
//! produces bit-identical spectra (pinned by
//! `crates/fft/tests/backend_identity.rs`).
//!
//! # Safety policy
//!
//! All `unsafe` in this crate lives inside this module tree (enforced
//! by the `unsafe-hygiene` xtask lint): the pointer-width loads/stores
//! in `avx2.rs`/`avx512.rs` and the feature-gated calls below, each
//! behind a length assertion or the feature check made at plan
//! construction, each carrying a `// SAFETY:` comment.
#![allow(unsafe_code)]

use serde::{Deserialize, Serialize};

use crate::complex::Complex64;
use crate::error::FftError;

pub(crate) mod portable;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;

/// Kernel-backend selector for [`crate::SpectralPlan`] /
/// [`crate::NegacyclicFft`] construction.
///
/// `Auto` (the default) resolves to the fastest backend the running
/// CPU supports ([`StrixFftBackend::detect_best`], which prefers AVX2
/// over AVX-512 — see its docs), after consulting the
/// `STRIX_FFT_BACKEND` environment
/// variable (`auto` | `portable` | `avx2` | `avx512`). Explicitly
/// requesting a backend the CPU lacks fails plan construction with
/// [`FftError::BackendUnavailable`] rather than silently falling back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrixFftBackend {
    /// Resolve at plan construction: env override, then CPU detection.
    #[default]
    Auto,
    /// The autovectorised scalar SoA loops (every architecture).
    Portable,
    /// Explicit 4-lane AVX2 kernels (`x86_64` with `avx2` + `fma`).
    Avx2,
    /// Explicit 8-lane AVX-512 kernels (`x86_64` with `avx512f` +
    /// `avx512dq`, which imply the AVX2 baseline).
    Avx512,
}

/// Environment variable consulted when resolving [`StrixFftBackend::Auto`].
pub const BACKEND_ENV_VAR: &str = "STRIX_FFT_BACKEND";

impl StrixFftBackend {
    /// Stable lowercase label (`"auto"` / `"portable"` / `"avx2"` /
    /// `"avx512"`), matching the `STRIX_FFT_BACKEND` spellings.
    pub fn label(self) -> &'static str {
        match self {
            StrixFftBackend::Auto => "auto",
            StrixFftBackend::Portable => "portable",
            StrixFftBackend::Avx2 => "avx2",
            StrixFftBackend::Avx512 => "avx512",
        }
    }

    /// Whether the running CPU can execute this backend. `Auto` and
    /// `Portable` are always available.
    pub fn is_available(self) -> bool {
        match self {
            StrixFftBackend::Auto | StrixFftBackend::Portable => true,
            StrixFftBackend::Avx2 => cpu_has_avx2(),
            StrixFftBackend::Avx512 => cpu_has_avx512(),
        }
    }

    /// The fastest backend the running CPU supports (no env consulted).
    ///
    /// AVX2 is deliberately preferred over AVX-512 even where both are
    /// available: the bit-identity contract rules out FMA, and without
    /// it 512-bit multiply/add saturates fewer execution ports than
    /// two 256-bit streams while also triggering AVX-512 frequency
    /// licensing — measured slower on `forward_many` (see the
    /// `fft_backends` bench group). AVX-512 remains available by
    /// explicit request for hardware where the trade-off flips.
    pub fn detect_best() -> Self {
        if cpu_has_avx2() {
            StrixFftBackend::Avx2
        } else {
            StrixFftBackend::Portable
        }
    }

    /// Resolves `self` to a concrete (never `Auto`) backend.
    ///
    /// `Auto` consults `STRIX_FFT_BACKEND` first (a fresh read per
    /// call, so tests and CI can steer plan construction), then falls
    /// back to [`Self::detect_best`]. An explicit request — whether
    /// from the caller or the environment — for a backend the CPU
    /// lacks is an error, never a silent fallback.
    ///
    /// # Errors
    ///
    /// [`FftError::BackendUnavailable`] if the requested backend is
    /// unsupported on this CPU; [`FftError::InvalidBackendEnv`] if the
    /// environment variable holds an unrecognized value.
    pub fn resolve(self) -> Result<Self, FftError> {
        let requested = match self {
            StrixFftBackend::Auto => match std::env::var(BACKEND_ENV_VAR) {
                Ok(value) => match value.trim().to_ascii_lowercase().as_str() {
                    "" | "auto" => StrixFftBackend::Auto,
                    "portable" => StrixFftBackend::Portable,
                    "avx2" => StrixFftBackend::Avx2,
                    "avx512" => StrixFftBackend::Avx512,
                    _ => return Err(FftError::InvalidBackendEnv),
                },
                Err(_) => StrixFftBackend::Auto,
            },
            explicit => explicit,
        };
        if requested == StrixFftBackend::Auto {
            return Ok(Self::detect_best());
        }
        if !requested.is_available() {
            return Err(FftError::BackendUnavailable { requested });
        }
        Ok(requested)
    }
}

impl std::fmt::Display for StrixFftBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for StrixFftBackend {
    type Err = FftError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(StrixFftBackend::Auto),
            "portable" => Ok(StrixFftBackend::Portable),
            "avx2" => Ok(StrixFftBackend::Avx2),
            "avx512" => Ok(StrixFftBackend::Avx512),
            _ => Err(FftError::InvalidBackendEnv),
        }
    }
}

/// The SIMD-relevant CPU features detected at runtime, as stable
/// lowercase names — recorded by `bench_snapshot` next to the backend
/// so committed numbers say what hardware produced them.
pub fn detected_cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if std::arch::is_x86_feature_detected!("avx") {
            features.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        if std::arch::is_x86_feature_detected!("avx512dq") {
            features.push("avx512dq");
        }
        features
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

fn cpu_has_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn cpu_has_avx512() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        cpu_has_avx2()
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Dispatch
//
// One function per backend-covered kernel op. `backend` is a *resolved*
// backend (never `Auto`) stored in the plan at construction, which is
// what makes the feature-gated calls below sound: an `Avx2`/`Avx512`
// value can only exist after `is_x86_feature_detected!` confirmed the
// features (or the caller explicitly requested it and `resolve()`
// re-checked). On non-x86 targets only `Portable` is constructible.
// ---------------------------------------------------------------------------

/// Forward radix-2 DIF butterflies over every block of `len` in the
/// split planes.
#[inline]
pub(crate) fn fwd_stage_r2(
    backend: StrixFftBackend,
    re: &mut [f64],
    im: &mut [f64],
    len: usize,
    wr: &[f64],
    wi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` is only resolved after runtime detection of
        // avx2+fma (see dispatch header comment).
        StrixFftBackend::Avx2 => unsafe { avx2::fwd_stage_r2(re, im, len, wr, wi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` is only resolved after runtime detection of
        // avx512f+avx512dq (see dispatch header comment).
        StrixFftBackend::Avx512 => unsafe { avx512::fwd_stage_r2(re, im, len, wr, wi) },
        _ => portable::fwd_stage_r2(re, im, len, wr, wi),
    }
}

/// Forward radix-4 DIF butterflies over every block of `len`.
#[inline]
pub(crate) fn fwd_stage_r4(
    backend: StrixFftBackend,
    re: &mut [f64],
    im: &mut [f64],
    len: usize,
    twr: &[f64],
    twi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe { avx2::fwd_stage_r4(re, im, len, twr, twi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe { avx512::fwd_stage_r4(re, im, len, twr, twi) },
        _ => portable::fwd_stage_r4(re, im, len, twr, twi),
    }
}

/// Inverse radix-2 DIT butterflies over every block of `len`.
#[inline]
pub(crate) fn inv_stage_r2(
    backend: StrixFftBackend,
    re: &mut [f64],
    im: &mut [f64],
    len: usize,
    wr: &[f64],
    wi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe { avx2::inv_stage_r2(re, im, len, wr, wi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe { avx512::inv_stage_r2(re, im, len, wr, wi) },
        _ => portable::inv_stage_r2(re, im, len, wr, wi),
    }
}

/// Inverse radix-4 DIT butterflies over every block of `len`.
#[inline]
pub(crate) fn inv_stage_r4(
    backend: StrixFftBackend,
    re: &mut [f64],
    im: &mut [f64],
    len: usize,
    twr: &[f64],
    twi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe { avx2::inv_stage_r4(re, im, len, twr, twi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe { avx512::inv_stage_r4(re, im, len, twr, twi) },
        _ => portable::inv_stage_r4(re, im, len, twr, twi),
    }
}

/// Fused fold + twist + first forward stage (radix-2 head) of one
/// `2n`-coefficient `i64` polynomial into split spectrum planes.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn fold_twist_r2(
    backend: StrixFftBackend,
    poly: &[i64],
    twist_re: &[f64],
    twist_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    wr: &[f64],
    wi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe {
            avx2::fold_twist_r2(poly, twist_re, twist_im, out_re, out_im, wr, wi)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe {
            avx512::fold_twist_r2(poly, twist_re, twist_im, out_re, out_im, wr, wi)
        },
        _ => portable::fold_twist_r2(poly, twist_re, twist_im, out_re, out_im, wr, wi),
    }
}

/// Fused fold + twist + first forward stage (radix-4 head) of one
/// `2n`-coefficient `i64` polynomial into split spectrum planes.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn fold_twist_r4(
    backend: StrixFftBackend,
    poly: &[i64],
    twist_re: &[f64],
    twist_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    twr: &[f64],
    twi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe {
            avx2::fold_twist_r4(poly, twist_re, twist_im, out_re, out_im, twr, twi)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe {
            avx512::fold_twist_r4(poly, twist_re, twist_im, out_re, out_im, twr, twi)
        },
        _ => portable::fold_twist_r4(poly, twist_re, twist_im, out_re, out_im, twr, twi),
    }
}

/// Fused last inverse stage (radix-2) + merged untwist/normalise
/// multiply + unfold of one spectrum into `2n` real coefficients.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn untwist_unfold_r2(
    backend: StrixFftBackend,
    sre: &[f64],
    sim: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    out: &mut [f64],
    wr: &[f64],
    wi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe {
            avx2::untwist_unfold_r2(sre, sim, u_re, u_im, out, wr, wi)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe {
            avx512::untwist_unfold_r2(sre, sim, u_re, u_im, out, wr, wi)
        },
        _ => portable::untwist_unfold_r2(sre, sim, u_re, u_im, out, wr, wi),
    }
}

/// Fused last inverse stage (radix-4) + merged untwist/normalise
/// multiply + unfold of one spectrum into `2n` real coefficients.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn untwist_unfold_r4(
    backend: StrixFftBackend,
    sre: &[f64],
    sim: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    out: &mut [f64],
    twr: &[f64],
    twi: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe {
            avx2::untwist_unfold_r4(sre, sim, u_re, u_im, out, twr, twi)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe {
            avx512::untwist_unfold_r4(sre, sim, u_re, u_im, out, twr, twi)
        },
        _ => portable::untwist_unfold_r4(sre, sim, u_re, u_im, out, twr, twi),
    }
}

/// Split-operand VMA: `acc_k += a_k · b_k` with every operand in
/// separate re/im planes.
#[inline]
pub(crate) fn mul_add_soa(
    backend: StrixFftBackend,
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma.
        StrixFftBackend::Avx2 => unsafe {
            avx2::mul_add_soa(acc_re, acc_im, a_re, a_im, b_re, b_im)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx512` implies runtime-detected avx512f+avx512dq.
        StrixFftBackend::Avx512 => unsafe {
            avx512::mul_add_soa(acc_re, acc_im, a_re, a_im, b_re, b_im)
        },
        _ => portable::mul_add_soa(acc_re, acc_im, a_re, a_im, b_re, b_im),
    }
}

/// Mixed-layout VMA: interleaved accumulator and `a`, split key
/// planes — `acc_k += a_k · (b_re_k + i·b_im_k)`.
#[inline]
pub(crate) fn mul_add_key(
    backend: StrixFftBackend,
    acc: &mut [Complex64],
    a: &[Complex64],
    b_re: &[f64],
    b_im: &[f64],
) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2` implies runtime-detected avx2+fma. The
        // AVX-512 backend routes here too: the deinterleave shuffles
        // this op needs cost more at 512-bit width than the extra
        // lanes recover, and avx512f implies avx2 at the feature level.
        StrixFftBackend::Avx2 | StrixFftBackend::Avx512 => unsafe {
            avx2::mul_add_key(acc, a, b_re, b_im)
        },
        _ => portable::mul_add_key(acc, a, b_re, b_im),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_through_fromstr() {
        for b in [
            StrixFftBackend::Auto,
            StrixFftBackend::Portable,
            StrixFftBackend::Avx2,
            StrixFftBackend::Avx512,
        ] {
            assert_eq!(b.label().parse::<StrixFftBackend>().unwrap(), b);
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(
            "AVX2".parse::<StrixFftBackend>().unwrap(),
            StrixFftBackend::Avx2,
            "parsing is case-insensitive"
        );
        assert_eq!("neon".parse::<StrixFftBackend>(), Err(FftError::InvalidBackendEnv));
    }

    #[test]
    fn auto_and_portable_are_always_available() {
        assert!(StrixFftBackend::Auto.is_available());
        assert!(StrixFftBackend::Portable.is_available());
    }

    #[test]
    fn resolve_never_yields_auto() {
        let resolved = StrixFftBackend::Auto.resolve().unwrap();
        assert_ne!(resolved, StrixFftBackend::Auto);
        assert!(resolved.is_available());
        assert_eq!(StrixFftBackend::Portable.resolve().unwrap(), StrixFftBackend::Portable);
    }

    #[test]
    fn detect_best_is_available() {
        let best = StrixFftBackend::detect_best();
        assert!(best.is_available());
        assert_ne!(best, StrixFftBackend::Auto);
    }

    #[test]
    fn unavailable_explicit_backend_is_an_error() {
        // Exercise the error path on whichever SIMD tier the host
        // lacks; on fully-capable hosts just pin the success path.
        for b in [StrixFftBackend::Avx2, StrixFftBackend::Avx512] {
            match b.resolve() {
                Ok(r) => assert_eq!(r, b),
                Err(e) => assert_eq!(e, FftError::BackendUnavailable { requested: b }),
            }
        }
    }

    #[test]
    fn detected_features_are_known_names() {
        for f in detected_cpu_features() {
            assert!(["avx", "avx2", "fma", "avx512f", "avx512dq"].contains(&f));
        }
    }
}
