//! Explicit 4-lane AVX2 kernels.
//!
//! Every function here is `#[target_feature(enable = "avx2,fma")]` —
//! safe to define, `unsafe` to call from a non-AVX2 context, which is
//! why the dispatch layer in `mod.rs` only reaches them through a
//! resolved [`super::StrixFftBackend::Avx2`]/`Avx512` value (a witness
//! that `is_x86_feature_detected!` confirmed the features).
//!
//! # Bit-identity discipline
//!
//! The scalar oracle compiles with floating-point contraction *off*,
//! so these kernels use only separate `_mm256_mul_pd` /
//! `_mm256_add_pd` / `_mm256_sub_pd` — **no FMA intrinsics**, whose
//! single rounding would diverge from the portable backend. Negation
//! is a sign-bit XOR (`-(a-b)` is *not* rewritten `b-a`: that would
//! flip the sign of a `-0.0` result). Each vectorised loop carries a
//! scalar tail computing the identical expressions, and the i64→f64
//! conversion reproduces scalar `as f64` exactly (see
//! [`cvt_i64_f64`]).
//!
//! The only `unsafe` blocks are the pointer loads/stores in the
//! helpers below, each behind a length assertion.

use core::arch::x86_64::{
    __m256d, __m256i, _mm256_add_pd, _mm256_blend_epi32, _mm256_castsi256_pd, _mm256_loadu_pd,
    _mm256_loadu_si256, _mm256_mul_pd, _mm256_permute4x64_pd, _mm256_set1_epi64x, _mm256_set1_pd,
    _mm256_srli_epi64, _mm256_storeu_pd, _mm256_sub_pd, _mm256_unpackhi_pd, _mm256_unpacklo_pd,
    _mm256_xor_pd, _mm256_xor_si256,
};

use super::portable;
use crate::complex::Complex64;

/// f64 lanes per AVX2 vector.
const LANES: usize = 4;

/// Loads 4 lanes from `s` at offset `j`.
#[inline]
#[target_feature(enable = "avx2,fma")]
fn ld(s: &[f64], j: usize) -> __m256d {
    assert!(j + LANES <= s.len(), "simd load out of bounds");
    // SAFETY: the assertion above guarantees LANES readable f64 values
    // starting at offset j.
    unsafe { _mm256_loadu_pd(s.as_ptr().add(j)) }
}

/// Stores 4 lanes to `s` at offset `j`.
#[inline]
#[target_feature(enable = "avx2,fma")]
fn st(s: &mut [f64], j: usize, v: __m256d) {
    assert!(j + LANES <= s.len(), "simd store out of bounds");
    // SAFETY: the assertion above guarantees LANES writable f64 slots
    // starting at offset j.
    unsafe { _mm256_storeu_pd(s.as_mut_ptr().add(j), v) }
}

/// Loads 4 packed `i64` lanes from `s` at offset `j`.
#[inline]
#[target_feature(enable = "avx2,fma")]
fn ldi(s: &[i64], j: usize) -> __m256i {
    assert!(j + LANES <= s.len(), "simd load out of bounds");
    // SAFETY: the assertion above guarantees LANES readable i64 values
    // starting at offset j; unaligned access is permitted by loadu.
    unsafe { _mm256_loadu_si256(s.as_ptr().add(j).cast()) }
}

/// Loads 4 `f64` lanes (= 2 complex values) from an interleaved
/// `Complex64` slice at complex offset `j`.
#[inline]
#[target_feature(enable = "avx2,fma")]
fn ldc(s: &[Complex64], j: usize) -> __m256d {
    assert!(j + 2 <= s.len(), "simd load out of bounds");
    // SAFETY: the assertion guarantees 2 readable Complex64 values at
    // offset j, and Complex64 is repr(C) { re: f64, im: f64 }, so they
    // are exactly 4 contiguous f64s.
    unsafe { _mm256_loadu_pd(s.as_ptr().add(j).cast()) }
}

/// Stores 4 `f64` lanes (= 2 complex values) to an interleaved
/// `Complex64` slice at complex offset `j`.
#[inline]
#[target_feature(enable = "avx2,fma")]
fn stc(s: &mut [Complex64], j: usize, v: __m256d) {
    assert!(j + 2 <= s.len(), "simd store out of bounds");
    // SAFETY: the assertion guarantees 2 writable Complex64 slots at
    // offset j; repr(C) makes them 4 contiguous f64s.
    unsafe { _mm256_storeu_pd(s.as_mut_ptr().add(j).cast(), v) }
}

/// Lane-wise negation as a sign-bit flip — bit-identical to scalar
/// unary `-`, including on zeros (where `b - a` would differ).
#[inline]
#[target_feature(enable = "avx2,fma")]
fn neg(v: __m256d) -> __m256d {
    _mm256_xor_pd(v, _mm256_set1_pd(-0.0))
}

/// Lane-wise complex multiply on split operands — the vector form of
/// [`portable::cmul`]: `(ar·br − ai·bi, ar·bi + ai·br)` with separate
/// mul/sub/add (no FMA), so each lane rounds exactly like the scalar.
#[inline]
#[target_feature(enable = "avx2,fma")]
fn cmulv(ar: __m256d, ai: __m256d, br: __m256d, bi: __m256d) -> (__m256d, __m256d) {
    (
        _mm256_sub_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi)),
        _mm256_add_pd(_mm256_mul_pd(ar, bi), _mm256_mul_pd(ai, br)),
    )
}

/// Exact full-range `i64 → f64` conversion (4 lanes), bit-identical to
/// scalar `v as f64`.
///
/// AVX2 has no packed 64-bit integer→double instruction, so this uses
/// the classic magic-constant decomposition: split each lane into its
/// low 32 bits (OR'd into the mantissa of 2^52) and its high 32 bits
/// (shifted down, sign bit flipped, OR'd into the mantissa of 2^84);
/// subtracting `2^84 + 2^63 + 2^52` undoes both biases and the sign
/// flip exactly, and the final add rounds once — the same single
/// rounding as the scalar conversion, hence bit-identical.
#[inline]
#[target_feature(enable = "avx2,fma")]
fn cvt_i64_f64(v: __m256i) -> __m256d {
    // 2^52 — low-half bias.
    let magic_i_lo = _mm256_set1_epi64x(0x4330_0000_0000_0000_u64 as i64);
    // 2^84 + 2^63 — high-half bias plus the flipped sign bit.
    let magic_i_hi32 = _mm256_set1_epi64x(0x4530_0000_8000_0000_u64 as i64);
    // 2^84 + 2^63 + 2^52 — the combined bias to subtract.
    let magic_i_all = _mm256_set1_epi64x(0x4530_0000_8010_0000_u64 as i64);
    let magic_d_all = _mm256_castsi256_pd(magic_i_all);
    // Even 32-bit elements (the low halves, little-endian) come from
    // v; odd elements carry 2^52's exponent bits.
    let v_lo = _mm256_blend_epi32::<0b0101_0101>(magic_i_lo, v);
    let v_hi = _mm256_xor_si256(_mm256_srli_epi64::<32>(v), magic_i_hi32);
    let v_hi_dbl = _mm256_sub_pd(_mm256_castsi256_pd(v_hi), magic_d_all);
    _mm256_add_pd(v_hi_dbl, _mm256_castsi256_pd(v_lo))
}

/// Forward radix-2 DIF butterflies over every block of `len`.
#[target_feature(enable = "avx2,fma")]
pub(crate) fn fwd_stage_r2(re: &mut [f64], im: &mut [f64], len: usize, wr: &[f64], wi: &[f64]) {
    let q = len / 2;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (lo_r, hi_r) = bre.split_at_mut(q);
        let (lo_i, hi_i) = bim.split_at_mut(q);
        let (wr, wi) = (&wr[..q], &wi[..q]);
        let mut j = 0;
        while j + LANES <= q {
            let (xr, xi) = (ld(lo_r, j), ld(lo_i, j));
            let (yr, yi) = (ld(hi_r, j), ld(hi_i, j));
            st(lo_r, j, _mm256_add_pd(xr, yr));
            st(lo_i, j, _mm256_add_pd(xi, yi));
            let (br, bi) =
                cmulv(_mm256_sub_pd(xr, yr), _mm256_sub_pd(xi, yi), ld(wr, j), ld(wi, j));
            st(hi_r, j, br);
            st(hi_i, j, bi);
            j += LANES;
        }
        while j < q {
            let (xr, xi) = (lo_r[j], lo_i[j]);
            let (yr, yi) = (hi_r[j], hi_i[j]);
            lo_r[j] = xr + yr;
            lo_i[j] = xi + yi;
            let (br, bi) = portable::cmul(xr - yr, xi - yi, wr[j], wi[j]);
            hi_r[j] = br;
            hi_i[j] = bi;
            j += 1;
        }
    }
}

/// Forward radix-4 DIF butterflies over every block of `len`.
#[target_feature(enable = "avx2,fma")]
pub(crate) fn fwd_stage_r4(re: &mut [f64], im: &mut [f64], len: usize, twr: &[f64], twi: &[f64]) {
    let q = len / 4;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (r0, rest) = bre.split_at_mut(q);
        let (r1, rest) = rest.split_at_mut(q);
        let (r2, r3) = rest.split_at_mut(q);
        let (i0, rest) = bim.split_at_mut(q);
        let (i1, rest) = rest.split_at_mut(q);
        let (i2, i3) = rest.split_at_mut(q);
        let (w1r, w1i) = (&twr[..q], &twi[..q]);
        let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
        let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
        let mut j = 0;
        while j + LANES <= q {
            let (v0r, v0i) = (ld(r0, j), ld(i0, j));
            let (v1r, v1i) = (ld(r1, j), ld(i1, j));
            let (v2r, v2i) = (ld(r2, j), ld(i2, j));
            let (v3r, v3i) = (ld(r3, j), ld(i3, j));
            let (p02r, p02i) = (_mm256_add_pd(v0r, v2r), _mm256_add_pd(v0i, v2i));
            let (m02r, m02i) = (_mm256_sub_pd(v0r, v2r), _mm256_sub_pd(v0i, v2i));
            let (p13r, p13i) = (_mm256_add_pd(v1r, v3r), _mm256_add_pd(v1i, v3i));
            let m13ir = neg(_mm256_sub_pd(v1i, v3i));
            let m13ii = _mm256_sub_pd(v1r, v3r);
            st(r0, j, _mm256_add_pd(p02r, p13r));
            st(i0, j, _mm256_add_pd(p02i, p13i));
            let (y1r, y1i) = cmulv(
                _mm256_sub_pd(m02r, m13ir),
                _mm256_sub_pd(m02i, m13ii),
                ld(w1r, j),
                ld(w1i, j),
            );
            st(r1, j, y1r);
            st(i1, j, y1i);
            let (y2r, y2i) =
                cmulv(_mm256_sub_pd(p02r, p13r), _mm256_sub_pd(p02i, p13i), ld(w2r, j), ld(w2i, j));
            st(r2, j, y2r);
            st(i2, j, y2i);
            let (y3r, y3i) = cmulv(
                _mm256_add_pd(m02r, m13ir),
                _mm256_add_pd(m02i, m13ii),
                ld(w3r, j),
                ld(w3i, j),
            );
            st(r3, j, y3r);
            st(i3, j, y3i);
            j += LANES;
        }
        while j < q {
            let (p02r, p02i) = (r0[j] + r2[j], i0[j] + i2[j]);
            let (m02r, m02i) = (r0[j] - r2[j], i0[j] - i2[j]);
            let (p13r, p13i) = (r1[j] + r3[j], i1[j] + i3[j]);
            let (m13ir, m13ii) = (-(i1[j] - i3[j]), r1[j] - r3[j]);
            r0[j] = p02r + p13r;
            i0[j] = p02i + p13i;
            let (y1r, y1i) = portable::cmul(m02r - m13ir, m02i - m13ii, w1r[j], w1i[j]);
            r1[j] = y1r;
            i1[j] = y1i;
            let (y2r, y2i) = portable::cmul(p02r - p13r, p02i - p13i, w2r[j], w2i[j]);
            r2[j] = y2r;
            i2[j] = y2i;
            let (y3r, y3i) = portable::cmul(m02r + m13ir, m02i + m13ii, w3r[j], w3i[j]);
            r3[j] = y3r;
            i3[j] = y3i;
            j += 1;
        }
    }
}

/// Inverse radix-2 DIT butterflies over every block of `len`.
#[target_feature(enable = "avx2,fma")]
pub(crate) fn inv_stage_r2(re: &mut [f64], im: &mut [f64], len: usize, wr: &[f64], wi: &[f64]) {
    let q = len / 2;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (lo_r, hi_r) = bre.split_at_mut(q);
        let (lo_i, hi_i) = bim.split_at_mut(q);
        let (wr, wi) = (&wr[..q], &wi[..q]);
        let mut j = 0;
        while j + LANES <= q {
            let (xr, xi) = (ld(lo_r, j), ld(lo_i, j));
            let (yr, yi) = cmulv(ld(hi_r, j), ld(hi_i, j), ld(wr, j), ld(wi, j));
            st(lo_r, j, _mm256_add_pd(xr, yr));
            st(lo_i, j, _mm256_add_pd(xi, yi));
            st(hi_r, j, _mm256_sub_pd(xr, yr));
            st(hi_i, j, _mm256_sub_pd(xi, yi));
            j += LANES;
        }
        while j < q {
            let (xr, xi) = (lo_r[j], lo_i[j]);
            let (yr, yi) = portable::cmul(hi_r[j], hi_i[j], wr[j], wi[j]);
            lo_r[j] = xr + yr;
            lo_i[j] = xi + yi;
            hi_r[j] = xr - yr;
            hi_i[j] = xi - yi;
            j += 1;
        }
    }
}

/// Inverse radix-4 DIT butterflies over every block of `len`.
#[target_feature(enable = "avx2,fma")]
pub(crate) fn inv_stage_r4(re: &mut [f64], im: &mut [f64], len: usize, twr: &[f64], twi: &[f64]) {
    let q = len / 4;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (r0, rest) = bre.split_at_mut(q);
        let (r1, rest) = rest.split_at_mut(q);
        let (r2, r3) = rest.split_at_mut(q);
        let (i0, rest) = bim.split_at_mut(q);
        let (i1, rest) = rest.split_at_mut(q);
        let (i2, i3) = rest.split_at_mut(q);
        let (w1r, w1i) = (&twr[..q], &twi[..q]);
        let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
        let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
        let mut j = 0;
        while j + LANES <= q {
            let (u1r, u1i) = cmulv(ld(r1, j), ld(i1, j), ld(w1r, j), ld(w1i, j));
            let (u2r, u2i) = cmulv(ld(r2, j), ld(i2, j), ld(w2r, j), ld(w2i, j));
            let (u3r, u3i) = cmulv(ld(r3, j), ld(i3, j), ld(w3r, j), ld(w3i, j));
            let (v0r, v0i) = (ld(r0, j), ld(i0, j));
            let (p02r, p02i) = (_mm256_add_pd(v0r, u2r), _mm256_add_pd(v0i, u2i));
            let (m02r, m02i) = (_mm256_sub_pd(v0r, u2r), _mm256_sub_pd(v0i, u2i));
            let (p13r, p13i) = (_mm256_add_pd(u1r, u3r), _mm256_add_pd(u1i, u3i));
            let m13ir = neg(_mm256_sub_pd(u1i, u3i));
            let m13ii = _mm256_sub_pd(u1r, u3r);
            st(r0, j, _mm256_add_pd(p02r, p13r));
            st(i0, j, _mm256_add_pd(p02i, p13i));
            st(r1, j, _mm256_add_pd(m02r, m13ir));
            st(i1, j, _mm256_add_pd(m02i, m13ii));
            st(r2, j, _mm256_sub_pd(p02r, p13r));
            st(i2, j, _mm256_sub_pd(p02i, p13i));
            st(r3, j, _mm256_sub_pd(m02r, m13ir));
            st(i3, j, _mm256_sub_pd(m02i, m13ii));
            j += LANES;
        }
        while j < q {
            let (u1r, u1i) = portable::cmul(r1[j], i1[j], w1r[j], w1i[j]);
            let (u2r, u2i) = portable::cmul(r2[j], i2[j], w2r[j], w2i[j]);
            let (u3r, u3i) = portable::cmul(r3[j], i3[j], w3r[j], w3i[j]);
            let (p02r, p02i) = (r0[j] + u2r, i0[j] + u2i);
            let (m02r, m02i) = (r0[j] - u2r, i0[j] - u2i);
            let (p13r, p13i) = (u1r + u3r, u1i + u3i);
            let (m13ir, m13ii) = (-(u1i - u3i), u1r - u3r);
            r0[j] = p02r + p13r;
            i0[j] = p02i + p13i;
            r1[j] = m02r + m13ir;
            i1[j] = m02i + m13ii;
            r2[j] = p02r - p13r;
            i2[j] = p02i - p13i;
            r3[j] = m02r - m13ir;
            i3[j] = m02i - m13ii;
            j += 1;
        }
    }
}

/// Fused fold + twist + first forward stage, radix-2 head.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
#[target_feature(enable = "avx2,fma")]
pub(crate) fn fold_twist_r2(
    poly: &[i64],
    twist_re: &[f64],
    twist_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    wr: &[f64],
    wi: &[f64],
) {
    let n = out_re.len();
    let q = n / 2;
    let (pre, pim) = poly.split_at(n);
    let (o0r, o1r) = out_re.split_at_mut(q);
    let (o0i, o1i) = out_im.split_at_mut(q);
    let (wr, wi) = (&wr[..q], &wi[..q]);
    let mut j = 0;
    while j + LANES <= q {
        let (xr, xi) = cmulv(
            cvt_i64_f64(ldi(pre, j)),
            cvt_i64_f64(ldi(pim, j)),
            ld(twist_re, j),
            ld(twist_im, j),
        );
        let (yr, yi) = cmulv(
            cvt_i64_f64(ldi(pre, j + q)),
            cvt_i64_f64(ldi(pim, j + q)),
            ld(twist_re, j + q),
            ld(twist_im, j + q),
        );
        st(o0r, j, _mm256_add_pd(xr, yr));
        st(o0i, j, _mm256_add_pd(xi, yi));
        let (br, bi) = cmulv(_mm256_sub_pd(xr, yr), _mm256_sub_pd(xi, yi), ld(wr, j), ld(wi, j));
        st(o1r, j, br);
        st(o1i, j, bi);
        j += LANES;
    }
    while j < q {
        let (xr, xi) = portable::cmul(pre[j] as f64, pim[j] as f64, twist_re[j], twist_im[j]);
        let (yr, yi) =
            portable::cmul(pre[j + q] as f64, pim[j + q] as f64, twist_re[j + q], twist_im[j + q]);
        o0r[j] = xr + yr;
        o0i[j] = xi + yi;
        let (br, bi) = portable::cmul(xr - yr, xi - yi, wr[j], wi[j]);
        o1r[j] = br;
        o1i[j] = bi;
        j += 1;
    }
}

/// Fused fold + twist + first forward stage, radix-4 head.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
#[target_feature(enable = "avx2,fma")]
pub(crate) fn fold_twist_r4(
    poly: &[i64],
    twist_re: &[f64],
    twist_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    twr: &[f64],
    twi: &[f64],
) {
    let n = out_re.len();
    let q = n / 4;
    let (pre, pim) = poly.split_at(n);
    let (o0r, restr) = out_re.split_at_mut(q);
    let (o1r, restr) = restr.split_at_mut(q);
    let (o2r, o3r) = restr.split_at_mut(q);
    let (o0i, resti) = out_im.split_at_mut(q);
    let (o1i, resti) = resti.split_at_mut(q);
    let (o2i, o3i) = resti.split_at_mut(q);
    let (w1r, w1i) = (&twr[..q], &twi[..q]);
    let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
    let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
    let mut j = 0;
    while j + LANES <= q {
        let (a0r, a0i) = cmulv(
            cvt_i64_f64(ldi(pre, j)),
            cvt_i64_f64(ldi(pim, j)),
            ld(twist_re, j),
            ld(twist_im, j),
        );
        let (a1r, a1i) = cmulv(
            cvt_i64_f64(ldi(pre, j + q)),
            cvt_i64_f64(ldi(pim, j + q)),
            ld(twist_re, j + q),
            ld(twist_im, j + q),
        );
        let (a2r, a2i) = cmulv(
            cvt_i64_f64(ldi(pre, j + 2 * q)),
            cvt_i64_f64(ldi(pim, j + 2 * q)),
            ld(twist_re, j + 2 * q),
            ld(twist_im, j + 2 * q),
        );
        let (a3r, a3i) = cmulv(
            cvt_i64_f64(ldi(pre, j + 3 * q)),
            cvt_i64_f64(ldi(pim, j + 3 * q)),
            ld(twist_re, j + 3 * q),
            ld(twist_im, j + 3 * q),
        );
        let (p02r, p02i) = (_mm256_add_pd(a0r, a2r), _mm256_add_pd(a0i, a2i));
        let (m02r, m02i) = (_mm256_sub_pd(a0r, a2r), _mm256_sub_pd(a0i, a2i));
        let (p13r, p13i) = (_mm256_add_pd(a1r, a3r), _mm256_add_pd(a1i, a3i));
        let m13ir = neg(_mm256_sub_pd(a1i, a3i));
        let m13ii = _mm256_sub_pd(a1r, a3r);
        st(o0r, j, _mm256_add_pd(p02r, p13r));
        st(o0i, j, _mm256_add_pd(p02i, p13i));
        let (y1r, y1i) =
            cmulv(_mm256_sub_pd(m02r, m13ir), _mm256_sub_pd(m02i, m13ii), ld(w1r, j), ld(w1i, j));
        st(o1r, j, y1r);
        st(o1i, j, y1i);
        let (y2r, y2i) =
            cmulv(_mm256_sub_pd(p02r, p13r), _mm256_sub_pd(p02i, p13i), ld(w2r, j), ld(w2i, j));
        st(o2r, j, y2r);
        st(o2i, j, y2i);
        let (y3r, y3i) =
            cmulv(_mm256_add_pd(m02r, m13ir), _mm256_add_pd(m02i, m13ii), ld(w3r, j), ld(w3i, j));
        st(o3r, j, y3r);
        st(o3i, j, y3i);
        j += LANES;
    }
    while j < q {
        let (a0r, a0i) = portable::cmul(pre[j] as f64, pim[j] as f64, twist_re[j], twist_im[j]);
        let (a1r, a1i) =
            portable::cmul(pre[j + q] as f64, pim[j + q] as f64, twist_re[j + q], twist_im[j + q]);
        let (a2r, a2i) = portable::cmul(
            pre[j + 2 * q] as f64,
            pim[j + 2 * q] as f64,
            twist_re[j + 2 * q],
            twist_im[j + 2 * q],
        );
        let (a3r, a3i) = portable::cmul(
            pre[j + 3 * q] as f64,
            pim[j + 3 * q] as f64,
            twist_re[j + 3 * q],
            twist_im[j + 3 * q],
        );
        let (p02r, p02i) = (a0r + a2r, a0i + a2i);
        let (m02r, m02i) = (a0r - a2r, a0i - a2i);
        let (p13r, p13i) = (a1r + a3r, a1i + a3i);
        let (m13ir, m13ii) = (-(a1i - a3i), a1r - a3r);
        o0r[j] = p02r + p13r;
        o0i[j] = p02i + p13i;
        let (y1r, y1i) = portable::cmul(m02r - m13ir, m02i - m13ii, w1r[j], w1i[j]);
        o1r[j] = y1r;
        o1i[j] = y1i;
        let (y2r, y2i) = portable::cmul(p02r - p13r, p02i - p13i, w2r[j], w2i[j]);
        o2r[j] = y2r;
        o2i[j] = y2i;
        let (y3r, y3i) = portable::cmul(m02r + m13ir, m02i + m13ii, w3r[j], w3i[j]);
        o3r[j] = y3r;
        o3i[j] = y3i;
        j += 1;
    }
}

/// Fused last inverse stage (radix-2) + untwist/normalise + unfold.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
#[target_feature(enable = "avx2,fma")]
pub(crate) fn untwist_unfold_r2(
    sre: &[f64],
    sim: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    out: &mut [f64],
    wr: &[f64],
    wi: &[f64],
) {
    let n = sre.len();
    let q = n / 2;
    let (out_re, out_im) = out.split_at_mut(n);
    let (s0r, s1r) = sre.split_at(q);
    let (s0i, s1i) = sim.split_at(q);
    let (u0r, u1r) = u_re.split_at(q);
    let (u0i, u1i) = u_im.split_at(q);
    let (r0, r1) = out_re.split_at_mut(q);
    let (i0, i1) = out_im.split_at_mut(q);
    let (wr, wi) = (&wr[..q], &wi[..q]);
    let mut j = 0;
    while j + LANES <= q {
        let (xr, xi) = (ld(s0r, j), ld(s0i, j));
        let (yr, yi) = cmulv(ld(s1r, j), ld(s1i, j), ld(wr, j), ld(wi, j));
        let (z0r, z0i) =
            cmulv(_mm256_add_pd(xr, yr), _mm256_add_pd(xi, yi), ld(u0r, j), ld(u0i, j));
        let (z1r, z1i) =
            cmulv(_mm256_sub_pd(xr, yr), _mm256_sub_pd(xi, yi), ld(u1r, j), ld(u1i, j));
        st(r0, j, z0r);
        st(i0, j, z0i);
        st(r1, j, z1r);
        st(i1, j, z1i);
        j += LANES;
    }
    while j < q {
        let (xr, xi) = (s0r[j], s0i[j]);
        let (yr, yi) = portable::cmul(s1r[j], s1i[j], wr[j], wi[j]);
        let (z0r, z0i) = portable::cmul(xr + yr, xi + yi, u0r[j], u0i[j]);
        let (z1r, z1i) = portable::cmul(xr - yr, xi - yi, u1r[j], u1i[j]);
        r0[j] = z0r;
        i0[j] = z0i;
        r1[j] = z1r;
        i1[j] = z1i;
        j += 1;
    }
}

/// Fused last inverse stage (radix-4) + untwist/normalise + unfold.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
#[target_feature(enable = "avx2,fma")]
pub(crate) fn untwist_unfold_r4(
    sre: &[f64],
    sim: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    out: &mut [f64],
    twr: &[f64],
    twi: &[f64],
) {
    let n = sre.len();
    let q = n / 4;
    let (out_re, out_im) = out.split_at_mut(n);
    let (w1r, w1i) = (&twr[..q], &twi[..q]);
    let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
    let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
    let mut j = 0;
    while j + LANES <= q {
        let (u1r, u1i) = cmulv(ld(sre, j + q), ld(sim, j + q), ld(w1r, j), ld(w1i, j));
        let (u2r, u2i) = cmulv(ld(sre, j + 2 * q), ld(sim, j + 2 * q), ld(w2r, j), ld(w2i, j));
        let (u3r, u3i) = cmulv(ld(sre, j + 3 * q), ld(sim, j + 3 * q), ld(w3r, j), ld(w3i, j));
        let (v0r, v0i) = (ld(sre, j), ld(sim, j));
        let (p02r, p02i) = (_mm256_add_pd(v0r, u2r), _mm256_add_pd(v0i, u2i));
        let (m02r, m02i) = (_mm256_sub_pd(v0r, u2r), _mm256_sub_pd(v0i, u2i));
        let (p13r, p13i) = (_mm256_add_pd(u1r, u3r), _mm256_add_pd(u1i, u3i));
        let m13ir = neg(_mm256_sub_pd(u1i, u3i));
        let m13ii = _mm256_sub_pd(u1r, u3r);
        let (z0r, z0i) =
            cmulv(_mm256_add_pd(p02r, p13r), _mm256_add_pd(p02i, p13i), ld(u_re, j), ld(u_im, j));
        let (z1r, z1i) = cmulv(
            _mm256_add_pd(m02r, m13ir),
            _mm256_add_pd(m02i, m13ii),
            ld(u_re, j + q),
            ld(u_im, j + q),
        );
        let (z2r, z2i) = cmulv(
            _mm256_sub_pd(p02r, p13r),
            _mm256_sub_pd(p02i, p13i),
            ld(u_re, j + 2 * q),
            ld(u_im, j + 2 * q),
        );
        let (z3r, z3i) = cmulv(
            _mm256_sub_pd(m02r, m13ir),
            _mm256_sub_pd(m02i, m13ii),
            ld(u_re, j + 3 * q),
            ld(u_im, j + 3 * q),
        );
        st(out_re, j, z0r);
        st(out_im, j, z0i);
        st(out_re, j + q, z1r);
        st(out_im, j + q, z1i);
        st(out_re, j + 2 * q, z2r);
        st(out_im, j + 2 * q, z2i);
        st(out_re, j + 3 * q, z3r);
        st(out_im, j + 3 * q, z3i);
        j += LANES;
    }
    while j < q {
        let (u1r, u1i) = portable::cmul(sre[j + q], sim[j + q], w1r[j], w1i[j]);
        let (u2r, u2i) = portable::cmul(sre[j + 2 * q], sim[j + 2 * q], w2r[j], w2i[j]);
        let (u3r, u3i) = portable::cmul(sre[j + 3 * q], sim[j + 3 * q], w3r[j], w3i[j]);
        let (p02r, p02i) = (sre[j] + u2r, sim[j] + u2i);
        let (m02r, m02i) = (sre[j] - u2r, sim[j] - u2i);
        let (p13r, p13i) = (u1r + u3r, u1i + u3i);
        let (m13ir, m13ii) = (-(u1i - u3i), u1r - u3r);
        let (z0r, z0i) = portable::cmul(p02r + p13r, p02i + p13i, u_re[j], u_im[j]);
        let (z1r, z1i) = portable::cmul(m02r + m13ir, m02i + m13ii, u_re[j + q], u_im[j + q]);
        let (z2r, z2i) = portable::cmul(p02r - p13r, p02i - p13i, u_re[j + 2 * q], u_im[j + 2 * q]);
        let (z3r, z3i) =
            portable::cmul(m02r - m13ir, m02i - m13ii, u_re[j + 3 * q], u_im[j + 3 * q]);
        out_re[j] = z0r;
        out_im[j] = z0i;
        out_re[j + q] = z1r;
        out_im[j + q] = z1i;
        out_re[j + 2 * q] = z2r;
        out_im[j + 2 * q] = z2i;
        out_re[j + 3 * q] = z3r;
        out_im[j + 3 * q] = z3i;
        j += 1;
    }
}

/// Fully split VMA: `acc_k += a_k · b_k` over equal-length planes.
#[target_feature(enable = "avx2,fma")]
pub(crate) fn mul_add_soa(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) {
    let n = acc_re.len();
    let mut j = 0;
    while j + LANES <= n {
        let (pr, pi) = cmulv(ld(a_re, j), ld(a_im, j), ld(b_re, j), ld(b_im, j));
        st(acc_re, j, _mm256_add_pd(ld(acc_re, j), pr));
        st(acc_im, j, _mm256_add_pd(ld(acc_im, j), pi));
        j += LANES;
    }
    while j < n {
        let pr = a_re[j] * b_re[j] - a_im[j] * b_im[j];
        let pi = a_re[j] * b_im[j] + a_im[j] * b_re[j];
        acc_re[j] += pr;
        acc_im[j] += pi;
        j += 1;
    }
}

/// Mixed-layout VMA: interleaved `acc` and `a`, split key planes.
///
/// The interleaved operands are deinterleaved in-register with
/// `unpacklo/hi` (yielding the scrambled-but-consistent lane order
/// `[z0, z2, z1, z3]`), the key planes are permuted into the same
/// order, and the products are re-interleaved on the way out — so the
/// arithmetic itself is plain lane-wise mul/add/sub, bit-identical to
/// the scalar loop.
#[target_feature(enable = "avx2,fma")]
pub(crate) fn mul_add_key(acc: &mut [Complex64], a: &[Complex64], b_re: &[f64], b_im: &[f64]) {
    let n = acc.len();
    // Permutation (0, 2, 1, 3) matching the unpack lane order.
    const SCRAMBLE: i32 = 0b11_01_10_00;
    let mut j = 0;
    while j + LANES <= n {
        let a0 = ldc(a, j);
        let a1 = ldc(a, j + 2);
        // [re0, re2, re1, re3] / [im0, im2, im1, im3]
        let ar = _mm256_unpacklo_pd(a0, a1);
        let ai = _mm256_unpackhi_pd(a0, a1);
        let br = _mm256_permute4x64_pd::<SCRAMBLE>(ld(b_re, j));
        let bi = _mm256_permute4x64_pd::<SCRAMBLE>(ld(b_im, j));
        let (pr, pi) = cmulv(ar, ai, br, bi);
        let s0 = ldc(acc, j);
        let s1 = ldc(acc, j + 2);
        let sr = _mm256_add_pd(_mm256_unpacklo_pd(s0, s1), pr);
        let si = _mm256_add_pd(_mm256_unpackhi_pd(s0, s1), pi);
        stc(acc, j, _mm256_unpacklo_pd(sr, si));
        stc(acc, j + 2, _mm256_unpackhi_pd(sr, si));
        j += LANES;
    }
    while j < n {
        let (s, x) = (&mut acc[j], a[j]);
        let (br, bi) = (b_re[j], b_im[j]);
        let pr = x.re * br - x.im * bi;
        let pi = x.re * bi + x.im * br;
        s.re += pr;
        s.im += pi;
        j += 1;
    }
}
