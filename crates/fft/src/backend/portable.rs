//! Portable backend: the autovectorised scalar SoA loops.
//!
//! These are the original inline loop bodies of `kernel.rs` /
//! `negacyclic.rs`, moved verbatim so every architecture keeps the
//! exact code (and codegen) the SoA rewrite shipped with. They are also
//! the **bit-identity reference** for the SIMD backends: each AVX2 /
//! AVX-512 kernel computes these same IEEE expressions per element, in
//! the same order, with separate multiply/add/subtract operations, so
//! the identity suite can compare backends bit-for-bit.
//!
//! Loop shape notes (preserved from the originals): operands are
//! pre-split to exact lengths so the compiler drops the bounds checks
//! and emits packed arithmetic; complex multiplies all go through
//! [`cmul`], which is exactly [`Complex64::mul`]'s expression.

use crate::complex::Complex64;

/// Scalar complex multiply on split operands — exactly
/// [`Complex64::mul`]'s expression, so SoA and AoS paths round
/// identically.
#[inline(always)]
pub(crate) fn cmul(ar: f64, ai: f64, br: f64, bi: f64) -> (f64, f64) {
    (ar * br - ai * bi, ar * bi + ai * br)
}

/// Forward radix-2 DIF butterflies over every block of `len`.
pub(crate) fn fwd_stage_r2(re: &mut [f64], im: &mut [f64], len: usize, wr: &[f64], wi: &[f64]) {
    let q = len / 2;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (lo_r, hi_r) = bre.split_at_mut(q);
        let (lo_i, hi_i) = bim.split_at_mut(q);
        let (wr, wi) = (&wr[..q], &wi[..q]);
        for j in 0..q {
            let (xr, xi) = (lo_r[j], lo_i[j]);
            let (yr, yi) = (hi_r[j], hi_i[j]);
            lo_r[j] = xr + yr;
            lo_i[j] = xi + yi;
            let (br, bi) = cmul(xr - yr, xi - yi, wr[j], wi[j]);
            hi_r[j] = br;
            hi_i[j] = bi;
        }
    }
}

/// Forward radix-4 DIF butterflies over every block of `len`. `twr` /
/// `twi` are the stage's power-major split twiddle planes (`3·len/4`
/// values: all `w^j`, then all `w^{2j}`, then all `w^{3j}`).
pub(crate) fn fwd_stage_r4(re: &mut [f64], im: &mut [f64], len: usize, twr: &[f64], twi: &[f64]) {
    let q = len / 4;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (r0, rest) = bre.split_at_mut(q);
        let (r1, rest) = rest.split_at_mut(q);
        let (r2, r3) = rest.split_at_mut(q);
        let (i0, rest) = bim.split_at_mut(q);
        let (i1, rest) = rest.split_at_mut(q);
        let (i2, i3) = rest.split_at_mut(q);
        let (w1r, w1i) = (&twr[..q], &twi[..q]);
        let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
        let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
        for j in 0..q {
            let (p02r, p02i) = (r0[j] + r2[j], i0[j] + i2[j]);
            let (m02r, m02i) = (r0[j] - r2[j], i0[j] - i2[j]);
            let (p13r, p13i) = (r1[j] + r3[j], i1[j] + i3[j]);
            let (m13ir, m13ii) = (-(i1[j] - i3[j]), r1[j] - r3[j]);
            r0[j] = p02r + p13r;
            i0[j] = p02i + p13i;
            let (y1r, y1i) = cmul(m02r - m13ir, m02i - m13ii, w1r[j], w1i[j]);
            r1[j] = y1r;
            i1[j] = y1i;
            let (y2r, y2i) = cmul(p02r - p13r, p02i - p13i, w2r[j], w2i[j]);
            r2[j] = y2r;
            i2[j] = y2i;
            let (y3r, y3i) = cmul(m02r + m13ir, m02i + m13ii, w3r[j], w3i[j]);
            r3[j] = y3r;
            i3[j] = y3i;
        }
    }
}

/// Inverse radix-2 DIT butterflies over every block of `len`.
pub(crate) fn inv_stage_r2(re: &mut [f64], im: &mut [f64], len: usize, wr: &[f64], wi: &[f64]) {
    let q = len / 2;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (lo_r, hi_r) = bre.split_at_mut(q);
        let (lo_i, hi_i) = bim.split_at_mut(q);
        let (wr, wi) = (&wr[..q], &wi[..q]);
        for j in 0..q {
            let (xr, xi) = (lo_r[j], lo_i[j]);
            let (yr, yi) = cmul(hi_r[j], hi_i[j], wr[j], wi[j]);
            lo_r[j] = xr + yr;
            lo_i[j] = xi + yi;
            hi_r[j] = xr - yr;
            hi_i[j] = xi - yi;
        }
    }
}

/// Inverse radix-4 DIT butterflies over every block of `len`.
pub(crate) fn inv_stage_r4(re: &mut [f64], im: &mut [f64], len: usize, twr: &[f64], twi: &[f64]) {
    let q = len / 4;
    for (bre, bim) in re.chunks_exact_mut(len).zip(im.chunks_exact_mut(len)) {
        let (r0, rest) = bre.split_at_mut(q);
        let (r1, rest) = rest.split_at_mut(q);
        let (r2, r3) = rest.split_at_mut(q);
        let (i0, rest) = bim.split_at_mut(q);
        let (i1, rest) = rest.split_at_mut(q);
        let (i2, i3) = rest.split_at_mut(q);
        let (w1r, w1i) = (&twr[..q], &twi[..q]);
        let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
        let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
        for j in 0..q {
            let (u1r, u1i) = cmul(r1[j], i1[j], w1r[j], w1i[j]);
            let (u2r, u2i) = cmul(r2[j], i2[j], w2r[j], w2i[j]);
            let (u3r, u3i) = cmul(r3[j], i3[j], w3r[j], w3i[j]);
            let (p02r, p02i) = (r0[j] + u2r, i0[j] + u2i);
            let (m02r, m02i) = (r0[j] - u2r, i0[j] - u2i);
            let (p13r, p13i) = (u1r + u3r, u1i + u3i);
            let (m13ir, m13ii) = (-(u1i - u3i), u1r - u3r);
            r0[j] = p02r + p13r;
            i0[j] = p02i + p13i;
            r1[j] = m02r + m13ir;
            i1[j] = m02i + m13ii;
            r2[j] = p02r - p13r;
            i2[j] = p02i - p13i;
            r3[j] = m02r - m13ir;
            i3[j] = m02i - m13ii;
        }
    }
}

/// Fused fold + twist + first forward stage, radix-2 head: `poly` is
/// one packed `2n`-coefficient `i64` polynomial, `out_re`/`out_im` the
/// transform's `n`-point split planes, `wr`/`wi` the stage's `n/2`
/// split twiddles.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn fold_twist_r2(
    poly: &[i64],
    twist_re: &[f64],
    twist_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    wr: &[f64],
    wi: &[f64],
) {
    let n = out_re.len();
    let q = n / 2;
    let (pre, pim) = poly.split_at(n);
    let (o0r, o1r) = out_re.split_at_mut(q);
    let (o0i, o1i) = out_im.split_at_mut(q);
    let (wr, wi) = (&wr[..q], &wi[..q]);
    for j in 0..q {
        let (xr, xi) = cmul(pre[j] as f64, pim[j] as f64, twist_re[j], twist_im[j]);
        let (yr, yi) = cmul(pre[j + q] as f64, pim[j + q] as f64, twist_re[j + q], twist_im[j + q]);
        o0r[j] = xr + yr;
        o0i[j] = xi + yi;
        let (br, bi) = cmul(xr - yr, xi - yi, wr[j], wi[j]);
        o1r[j] = br;
        o1i[j] = bi;
    }
}

/// Fused fold + twist + first forward stage, radix-4 head.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn fold_twist_r4(
    poly: &[i64],
    twist_re: &[f64],
    twist_im: &[f64],
    out_re: &mut [f64],
    out_im: &mut [f64],
    twr: &[f64],
    twi: &[f64],
) {
    let n = out_re.len();
    let q = n / 4;
    let (pre, pim) = poly.split_at(n);
    let (o0r, restr) = out_re.split_at_mut(q);
    let (o1r, restr) = restr.split_at_mut(q);
    let (o2r, o3r) = restr.split_at_mut(q);
    let (o0i, resti) = out_im.split_at_mut(q);
    let (o1i, resti) = resti.split_at_mut(q);
    let (o2i, o3i) = resti.split_at_mut(q);
    let (w1r, w1i) = (&twr[..q], &twi[..q]);
    let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
    let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
    for j in 0..q {
        let (a0r, a0i) = cmul(pre[j] as f64, pim[j] as f64, twist_re[j], twist_im[j]);
        let (a1r, a1i) =
            cmul(pre[j + q] as f64, pim[j + q] as f64, twist_re[j + q], twist_im[j + q]);
        let (a2r, a2i) = cmul(
            pre[j + 2 * q] as f64,
            pim[j + 2 * q] as f64,
            twist_re[j + 2 * q],
            twist_im[j + 2 * q],
        );
        let (a3r, a3i) = cmul(
            pre[j + 3 * q] as f64,
            pim[j + 3 * q] as f64,
            twist_re[j + 3 * q],
            twist_im[j + 3 * q],
        );
        let (p02r, p02i) = (a0r + a2r, a0i + a2i);
        let (m02r, m02i) = (a0r - a2r, a0i - a2i);
        let (p13r, p13i) = (a1r + a3r, a1i + a3i);
        let (m13ir, m13ii) = (-(a1i - a3i), a1r - a3r);
        o0r[j] = p02r + p13r;
        o0i[j] = p02i + p13i;
        let (y1r, y1i) = cmul(m02r - m13ir, m02i - m13ii, w1r[j], w1i[j]);
        o1r[j] = y1r;
        o1i[j] = y1i;
        let (y2r, y2i) = cmul(p02r - p13r, p02i - p13i, w2r[j], w2i[j]);
        o2r[j] = y2r;
        o2i[j] = y2i;
        let (y3r, y3i) = cmul(m02r + m13ir, m02i + m13ii, w3r[j], w3i[j]);
        o3r[j] = y3r;
        o3i[j] = y3i;
    }
}

/// Fused last inverse stage (radix-2) + merged untwist/normalise
/// multiply + unfold: the `n`-point split spectrum becomes `2n` packed
/// real coefficients in `out`.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn untwist_unfold_r2(
    sre: &[f64],
    sim: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    out: &mut [f64],
    wr: &[f64],
    wi: &[f64],
) {
    let n = sre.len();
    let q = n / 2;
    let (out_re, out_im) = out.split_at_mut(n);
    let (s0r, s1r) = sre.split_at(q);
    let (s0i, s1i) = sim.split_at(q);
    let (u0r, u1r) = u_re.split_at(q);
    let (u0i, u1i) = u_im.split_at(q);
    let (r0, r1) = out_re.split_at_mut(q);
    let (i0, i1) = out_im.split_at_mut(q);
    let (wr, wi) = (&wr[..q], &wi[..q]);
    for j in 0..q {
        let (xr, xi) = (s0r[j], s0i[j]);
        let (yr, yi) = cmul(s1r[j], s1i[j], wr[j], wi[j]);
        let (z0r, z0i) = cmul(xr + yr, xi + yi, u0r[j], u0i[j]);
        let (z1r, z1i) = cmul(xr - yr, xi - yi, u1r[j], u1i[j]);
        r0[j] = z0r;
        i0[j] = z0i;
        r1[j] = z1r;
        i1[j] = z1i;
    }
}

/// Fused last inverse stage (radix-4) + merged untwist/normalise
/// multiply + unfold.
#[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
pub(crate) fn untwist_unfold_r4(
    sre: &[f64],
    sim: &[f64],
    u_re: &[f64],
    u_im: &[f64],
    out: &mut [f64],
    twr: &[f64],
    twi: &[f64],
) {
    let n = sre.len();
    let q = n / 4;
    let (out_re, out_im) = out.split_at_mut(n);
    let (w1r, w1i) = (&twr[..q], &twi[..q]);
    let (w2r, w2i) = (&twr[q..2 * q], &twi[q..2 * q]);
    let (w3r, w3i) = (&twr[2 * q..3 * q], &twi[2 * q..3 * q]);
    for j in 0..q {
        let (u1r, u1i) = cmul(sre[j + q], sim[j + q], w1r[j], w1i[j]);
        let (u2r, u2i) = cmul(sre[j + 2 * q], sim[j + 2 * q], w2r[j], w2i[j]);
        let (u3r, u3i) = cmul(sre[j + 3 * q], sim[j + 3 * q], w3r[j], w3i[j]);
        let (p02r, p02i) = (sre[j] + u2r, sim[j] + u2i);
        let (m02r, m02i) = (sre[j] - u2r, sim[j] - u2i);
        let (p13r, p13i) = (u1r + u3r, u1i + u3i);
        let (m13ir, m13ii) = (-(u1i - u3i), u1r - u3r);
        let (z0r, z0i) = cmul(p02r + p13r, p02i + p13i, u_re[j], u_im[j]);
        let (z1r, z1i) = cmul(m02r + m13ir, m02i + m13ii, u_re[j + q], u_im[j + q]);
        let (z2r, z2i) = cmul(p02r - p13r, p02i - p13i, u_re[j + 2 * q], u_im[j + 2 * q]);
        let (z3r, z3i) = cmul(m02r - m13ir, m02i - m13ii, u_re[j + 3 * q], u_im[j + 3 * q]);
        out_re[j] = z0r;
        out_im[j] = z0i;
        out_re[j + q] = z1r;
        out_im[j + q] = z1i;
        out_re[j + 2 * q] = z2r;
        out_im[j + 2 * q] = z2i;
        out_re[j + 3 * q] = z3r;
        out_im[j + 3 * q] = z3i;
    }
}

/// Fully split VMA: `acc_k += a_k · b_k` over equal-length planes.
pub(crate) fn mul_add_soa(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) {
    let n = acc_re.len();
    // Indexed loop over pre-checked equal-length slices: the bounds
    // checks fold away and the body is four independent packed FMAs'
    // worth of mul/add work per lane.
    for j in 0..n {
        let pr = a_re[j] * b_re[j] - a_im[j] * b_im[j];
        let pi = a_re[j] * b_im[j] + a_im[j] * b_re[j];
        acc_re[j] += pr;
        acc_im[j] += pi;
    }
}

/// Mixed-layout VMA: interleaved `acc` and `a`, split key planes.
pub(crate) fn mul_add_key(acc: &mut [Complex64], a: &[Complex64], b_re: &[f64], b_im: &[f64]) {
    for (((s, x), &br), &bi) in acc.iter_mut().zip(a).zip(b_re).zip(b_im) {
        let pr = x.re * br - x.im * bi;
        let pi = x.re * bi + x.im * br;
        s.re += pr;
        s.im += pi;
    }
}
