//! Floating-point FFT kernels for negacyclic polynomial arithmetic.
//!
//! This crate provides the transform layer that both the software TFHE
//! implementation (`strix-tfhe`) and the Strix accelerator model
//! (`strix-core`) are built on:
//!
//! * [`Complex64`] — a minimal complex number type (kept dependency-free),
//! * [`SpectralPlan`] — the branch-free **bit-reversed-spectrum**
//!   kernel: a radix-4/radix-2 decimation-in-frequency forward
//!   transform (natural in → digit-reversed spectrum out) paired with
//!   the exact decimation-in-time inverse (digit-reversed in → natural
//!   out), with stage-major precomputed twiddle tables per direction —
//!   no permutation pass, no direction branch, no `conj()` in any
//!   inner loop,
//! * [`NegacyclicFft`] — the *folding scheme* of the Strix paper (§V-A)
//!   on that kernel: an `N`-coefficient negacyclic transform computed
//!   on an `N/2`-point complex FFT by packing `a_j + i·a_{j+N/2}` and
//!   twisting by the odd 2N-th roots of unity, with the twist fused
//!   into the first forward stage and untwist + normalisation fused
//!   into the last inverse stage,
//! * [`SoaSpectrum`] — split-complex (structure-of-arrays) batches of
//!   spectra: one contiguous plane of real parts, one of imaginary
//!   parts, the layout under which the batched transform entry points
//!   ([`SpectralPlan::forward_many`], [`NegacyclicFft::forward_i64_many`],
//!   [`NegacyclicFft::backward_f64_many`]) and the fused four-array VMA
//!   ([`pointwise_mul_add_soa`]) autovectorise into packed `f64`
//!   arithmetic — bit-identical to the interleaved kernel,
//! * [`FftPlan`] — the seed iterative radix-2 decimation-in-time FFT
//!   with natural-order spectra, kept as the correctness oracle for the
//!   kernel (and for callers that genuinely need natural bin order),
//! * [`FftScratch`] — caller-owned buffers for allocation-free loops of
//!   whole negacyclic products; the `forward_*`/`backward_*` entry
//!   points are scratch-taking by design (they write into caller
//!   buffers and never allocate), which is what `strix-tfhe`'s larger
//!   per-thread PBS scratch builds on,
//! * [`StrixFftBackend`] — the pluggable kernel-backend layer: the
//!   SoA butterfly stages, the fused fold/twist and untwist/unfold
//!   passes, and the VMA kernels each exist as a portable scalar
//!   reference plus explicit AVX2 and AVX-512 implementations,
//!   selected by runtime CPU detection at plan construction (or forced
//!   via [`SpectralPlan::with_backend`] / the `STRIX_FFT_BACKEND`
//!   environment variable) — every backend bit-identical to the
//!   scalar oracle,
//! * [`mod@reference`] — exact schoolbook negacyclic convolution used as the
//!   correctness oracle in tests and for small parameter sets.
//!
//! # Example
//!
//! ```
//! use strix_fft::NegacyclicFft;
//!
//! # fn main() -> Result<(), strix_fft::FftError> {
//! let fft = NegacyclicFft::new(8)?;
//! let a = [1i64, 2, 3, 4, 5, 6, 7, 8];
//! let b = [1i64, 0, 0, 0, 0, 0, 0, 0];
//! let mut out = [0i64; 8];
//! fft.negacyclic_mul_i64(&a, &b, &mut out)?;
//! assert_eq!(out, a); // multiplying by 1 is the identity
//! # Ok(())
//! # }
//! ```

mod backend;
mod complex;
mod error;
mod kernel;
mod negacyclic;
mod plan;
pub mod planner;
pub mod reference;
mod soa;

pub use backend::{detected_cpu_features, StrixFftBackend, BACKEND_ENV_VAR};
pub use complex::Complex64;
pub use error::FftError;
pub use kernel::SpectralPlan;
pub use negacyclic::{
    pointwise_mul_add, pointwise_mul_add_key, pointwise_mul_add_soa, FftScratch, MonomialTable,
    NegacyclicFft,
};
pub use plan::FftPlan;
pub use soa::SoaSpectrum;

/// Returns `true` if `n` is a power of two greater than or equal to `min`.
pub(crate) fn is_pow2_at_least(n: usize, min: usize) -> bool {
    n >= min && n.is_power_of_two()
}
