//! Negacyclic polynomial transform via the folding scheme (Strix §V-A)
//! on the bit-reversed-spectrum kernel.
//!
//! TFHE multiplies polynomials in `Z[X]/(X^N + 1)` (negacyclic
//! convolution). The roots of `X^N + 1` are the *odd* 2N-th roots of
//! unity, which come in conjugate pairs for real inputs, so only `N/2`
//! complex evaluations are needed.
//!
//! The folding scheme packs the second half of the polynomial into the
//! imaginary lane of the first half — `z_j = a_j + i·a_{j+N/2}` —
//! twists by `e^{iπj/N}`, and runs an `N/2`-point complex FFT. This is
//! exactly the optimisation that lets the Strix FFT unit transform
//! 16,384-coefficient polynomials on an 8,192-point pipeline, halving
//! latency and area (paper Table VI), and it is also how
//! Concrete/tfhe-rs perform the transform in software.
//!
//! # Spectrum convention and fused passes
//!
//! The complex core is [`SpectralPlan`], the branch-free DIF/DIT
//! kernel: the forward transform emits the spectrum **digit-reversed**
//! and the inverse consumes exactly that ordering, so no bit-reversal
//! permutation pass ever runs. Spectra produced by this type are only
//! valid for *pointwise* consumption ([`pointwise_mul_add`], the VMA)
//! against spectra produced under the **same plan** — which is all
//! TFHE ever does with them. [`NegacyclicFft::spectrum_permutation`]
//! exposes the bin→slot map for diagnostics.
//!
//! On top of the kernel, two whole passes over the data are fused
//! away per transform:
//!
//! * the fold + twist (`z_j = (a_j + i·a_{j+N/2})·e^{iπj/N}`) is
//!   computed inside the *first* forward butterfly stage, loading
//!   straight from the real coefficient array;
//! * the untwist and the `1/(N/2)` normalisation are merged into one
//!   constant table applied inside the *last* inverse stage, which
//!   also unfolds straight into the real output array.
//!
//! A transform is therefore exactly its butterfly stages: no
//! permutation pass, no twist pass, no normalisation pass, and no
//! direction branch anywhere in the inner loops.

use crate::backend::{self, StrixFftBackend};
use crate::complex::Complex64;
use crate::error::FftError;
use crate::is_pow2_at_least;
use crate::kernel::SpectralPlan;
use crate::soa::SoaSpectrum;

/// Caller-owned scratch buffers for allocation-free negacyclic
/// arithmetic: two spectra (`N/2` complex points each) and one
/// time-domain buffer (`N` reals), sized to one [`NegacyclicFft`] plan.
///
/// The transform entry points ([`NegacyclicFft::forward_f64`],
/// [`NegacyclicFft::forward_i64`], [`NegacyclicFft::backward_f64`])
/// already write into caller-provided buffers and never allocate; this
/// type bundles correctly-sized instances of those buffers for loops
/// of whole products ([`NegacyclicFft::negacyclic_mul_i64_scratch`]).
/// Allocate one per thread and reuse it across operations. (The PBS
/// CMUX loop needs more state than one product — per-level digits and
/// `k+1` accumulator spectra — so `strix-tfhe` builds its larger
/// `PbsScratch` on the same scratch-taking transforms rather than on
/// this type.)
#[derive(Clone, Debug)]
pub struct FftScratch {
    /// First spectrum buffer (`N/2` points).
    pub spectrum_a: Vec<Complex64>,
    /// Second spectrum buffer (`N/2` points).
    pub spectrum_b: Vec<Complex64>,
    /// Time-domain buffer (`N` reals).
    pub time: Vec<f64>,
}

impl FftScratch {
    /// Allocates scratch sized to `fft`'s polynomial size.
    pub fn for_plan(fft: &NegacyclicFft) -> Self {
        Self {
            spectrum_a: vec![Complex64::ZERO; fft.fourier_size()],
            spectrum_b: vec![Complex64::ZERO; fft.fourier_size()],
            time: vec![0.0f64; fft.poly_size()],
        }
    }
}

/// Negacyclic transform of real polynomials with `N` coefficients using
/// an `N/2`-point complex FFT under the bit-reversed-spectrum
/// convention (see the module docs).
///
/// # Example
///
/// Negacyclic wrap-around: `X^{N-1} · X = X^N = -1` in `Z[X]/(X^N+1)`.
///
/// ```
/// use strix_fft::NegacyclicFft;
///
/// # fn main() -> Result<(), strix_fft::FftError> {
/// let fft = NegacyclicFft::new(4)?;
/// let x3 = [0i64, 0, 0, 1]; // X^3
/// let x1 = [0i64, 1, 0, 0]; // X
/// let mut out = [0i64; 4];
/// fft.negacyclic_mul_i64(&x3, &x1, &mut out)?;
/// assert_eq!(out, [-1, 0, 0, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct NegacyclicFft {
    poly_size: usize,
    kernel: SpectralPlan,
    /// Twist factors `e^{iπj/N}` for `j` in `[0, N/2)`, applied inside
    /// the first forward stage.
    twist: Vec<Complex64>,
    /// Merged inverse constants `e^{-iπj/N} / (N/2)` — untwist and
    /// normalisation in one multiply, applied inside the last inverse
    /// stage.
    untwist_norm: Vec<Complex64>,
    /// Split copies of `twist` (same bits, planar layout) for the SoA
    /// batched transforms.
    twist_re: Vec<f64>,
    twist_im: Vec<f64>,
    /// Split copies of `untwist_norm` for the SoA batched transforms.
    untwist_re: Vec<f64>,
    untwist_im: Vec<f64>,
}

impl NegacyclicFft {
    /// Smallest supported polynomial size.
    pub const MIN_POLY_SIZE: usize = 2;

    /// Creates a transform for polynomials with `poly_size` coefficients,
    /// selecting the kernel backend by runtime CPU detection (honouring
    /// the `STRIX_FFT_BACKEND` environment override).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `poly_size` is a power of
    /// two, at least [`Self::MIN_POLY_SIZE`], or
    /// [`FftError::InvalidBackendEnv`] if the environment override holds
    /// an unknown backend name.
    pub fn new(poly_size: usize) -> Result<Self, FftError> {
        Self::with_backend(poly_size, StrixFftBackend::Auto)
    }

    /// Creates a transform for polynomials with `poly_size` coefficients
    /// on an explicitly requested kernel backend.
    /// [`StrixFftBackend::Auto`] behaves like [`Self::new`]; a concrete
    /// backend is used as-is after a CPU-capability check.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] unless `poly_size` is a power of
    /// two at least [`Self::MIN_POLY_SIZE`],
    /// [`FftError::BackendUnavailable`] if the requested backend is not
    /// supported by this CPU, or [`FftError::InvalidBackendEnv`] for a
    /// malformed environment override under `Auto`.
    pub fn with_backend(poly_size: usize, backend: StrixFftBackend) -> Result<Self, FftError> {
        if !is_pow2_at_least(poly_size, Self::MIN_POLY_SIZE) {
            return Err(FftError::InvalidSize { requested: poly_size, min: Self::MIN_POLY_SIZE });
        }
        let half = poly_size / 2;
        let kernel = SpectralPlan::with_backend(half, backend)?;
        let inv_n = 1.0 / half as f64;
        let mut twist = Vec::with_capacity(half);
        let mut untwist_norm = Vec::with_capacity(half);
        for j in 0..half {
            let theta = std::f64::consts::PI * j as f64 / poly_size as f64;
            twist.push(Complex64::cis(theta));
            untwist_norm.push(Complex64::cis(-theta).scale(inv_n));
        }
        let twist_re = twist.iter().map(|z| z.re).collect();
        let twist_im = twist.iter().map(|z| z.im).collect();
        let untwist_re = untwist_norm.iter().map(|z| z.re).collect();
        let untwist_im = untwist_norm.iter().map(|z| z.im).collect();
        Ok(Self {
            poly_size,
            kernel,
            twist,
            untwist_norm,
            twist_re,
            twist_im,
            untwist_re,
            untwist_im,
        })
    }

    /// Number of coefficients in the time-domain polynomial (`N`).
    #[inline]
    pub fn poly_size(&self) -> usize {
        self.poly_size
    }

    /// Number of complex points in the Fourier domain (`N/2`) — the size
    /// of the *folded* FFT pipeline the hardware instantiates.
    #[inline]
    pub fn fourier_size(&self) -> usize {
        self.poly_size / 2
    }

    /// The resolved kernel backend this transform's batched entry
    /// points (and [`Self::pointwise_mul_add_soa`] /
    /// [`Self::pointwise_mul_add_key`]) run on — never
    /// [`StrixFftBackend::Auto`].
    #[inline]
    pub fn backend(&self) -> StrixFftBackend {
        self.kernel.backend()
    }

    /// The bin→slot map of the spectra this transform produces:
    /// natural-order negacyclic bin `k` (the evaluation at
    /// `ω^{1−4k mod 2N}`, `ω = e^{iπ/N}`) is stored at slot
    /// `spectrum_permutation()[k]`. Diagnostics/tests only — the
    /// production pipeline never needs natural order.
    pub fn spectrum_permutation(&self) -> Vec<usize> {
        self.kernel.permutation()
    }

    /// Forward transform of a polynomial given as `f64` coefficients.
    /// The output spectrum is in the plan's digit-reversed slot order.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `poly.len() != N` or
    /// `out.len() != N/2`.
    pub fn forward_f64(&self, poly: &[f64], out: &mut [Complex64]) -> Result<(), FftError> {
        self.check_time_len(poly.len())?;
        self.check_freq_len(out.len())?;
        self.kernel.forward_folded_twisted(poly, &self.twist, out, |v| v);
        Ok(())
    }

    /// Forward transform of a polynomial given as `i64` coefficients
    /// (e.g. gadget-decomposed digits, which are small signed integers).
    /// The output spectrum is in the plan's digit-reversed slot order.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on buffer size mismatch.
    pub fn forward_i64(&self, poly: &[i64], out: &mut [Complex64]) -> Result<(), FftError> {
        self.check_time_len(poly.len())?;
        self.check_freq_len(out.len())?;
        self.kernel.forward_folded_twisted(poly, &self.twist, out, |v| v as f64);
        Ok(())
    }

    /// Inverse transform producing `f64` coefficients; normalised so that
    /// `backward(forward(a)) = a`. Consumes a spectrum in the same
    /// digit-reversed slot order the forward transforms emit.
    ///
    /// `spectrum` is consumed in place as scratch.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on buffer size mismatch.
    pub fn backward_f64(
        &self,
        spectrum: &mut [Complex64],
        out: &mut [f64],
    ) -> Result<(), FftError> {
        self.check_freq_len(spectrum.len())?;
        self.check_time_len(out.len())?;
        // The kernel's fused tail applies the last butterfly stage,
        // the merged untwist/normalise multiply and the unfold in one
        // pass over the data.
        self.kernel.inverse_folded_untwisted(spectrum, &self.untwist_norm, out);
        Ok(())
    }

    /// Batched forward transform of `count` packed `i64` polynomials
    /// (laid out back to back in `polys`, `N` coefficients each) into
    /// the `count` transforms of `out` — the coefficient-level batching
    /// entry point of the CMUX hot path: all `(k+1)·l` digit
    /// polynomials of one external product go through the kernel in
    /// one call, with every butterfly stage run across the whole batch
    /// before the next stage starts ([`SpectralPlan::forward_many`]'s
    /// schedule) and the fold+twist fused into the first stage exactly
    /// as in [`Self::forward_i64`].
    ///
    /// Spectra are **bit-identical** to calling [`Self::forward_i64`]
    /// once per polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `polys.len()` is not
    /// `N · count` or `out`'s transform length is not `N/2`.
    pub fn forward_i64_many(&self, polys: &[i64], out: &mut SoaSpectrum) -> Result<(), FftError> {
        self.check_batch(polys.len(), out)?;
        self.kernel.forward_folded_twisted_many(polys, &self.twist_re, &self.twist_im, out);
        Ok(())
    }

    /// Batched inverse transform: the `count` spectra of `batch`
    /// (consumed in place as scratch) become `count` packed real
    /// polynomials in `out`, bit-identical to calling
    /// [`Self::backward_f64`] once per spectrum. Every inverse stage
    /// but the last runs across the whole batch; the merged
    /// untwist+normalise multiply and the unfold are fused into the
    /// last stage as in the single-transform path.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `out.len()` is not
    /// `N · count` or `batch`'s transform length is not `N/2`.
    pub fn backward_f64_many(
        &self,
        batch: &mut SoaSpectrum,
        out: &mut [f64],
    ) -> Result<(), FftError> {
        self.check_batch(out.len(), batch)?;
        self.kernel.inverse_folded_untwisted_many(batch, &self.untwist_re, &self.untwist_im, out);
        Ok(())
    }

    /// Backend-dispatched form of the free [`pointwise_mul_add_soa`]
    /// VMA kernel: `acc_k += a_k · b_k` over fully split planes,
    /// running on this transform's resolved kernel backend.
    /// Bit-identical to the free function (the scalar reference) on
    /// every backend.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths (programming error —
    /// the buffers come from plans of matching size).
    #[allow(clippy::too_many_arguments)] // mirrors the fused kernel's full operand set
    #[inline]
    pub fn pointwise_mul_add_soa(
        &self,
        acc_re: &mut [f64],
        acc_im: &mut [f64],
        a_re: &[f64],
        a_im: &[f64],
        b_re: &[f64],
        b_im: &[f64],
    ) {
        let n = acc_re.len();
        assert_eq!(acc_im.len(), n, "pointwise length mismatch");
        assert_eq!(a_re.len(), n, "pointwise length mismatch");
        assert_eq!(a_im.len(), n, "pointwise length mismatch");
        assert_eq!(b_re.len(), n, "pointwise length mismatch");
        assert_eq!(b_im.len(), n, "pointwise length mismatch");
        backend::mul_add_soa(self.backend(), acc_re, acc_im, a_re, a_im, b_re, b_im);
    }

    /// Backend-dispatched form of the free [`pointwise_mul_add_key`]
    /// mixed-layout VMA: interleaved `acc`/`a`, split key planes.
    /// Bit-identical to the free function on every backend.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn pointwise_mul_add_key(
        &self,
        acc: &mut [Complex64],
        a: &[Complex64],
        b_re: &[f64],
        b_im: &[f64],
    ) {
        assert_eq!(acc.len(), a.len(), "pointwise length mismatch");
        assert_eq!(acc.len(), b_re.len(), "pointwise length mismatch");
        assert_eq!(acc.len(), b_im.len(), "pointwise length mismatch");
        backend::mul_add_key(self.backend(), acc, a, b_re, b_im);
    }

    fn check_batch(&self, time_len: usize, batch: &SoaSpectrum) -> Result<(), FftError> {
        if batch.transform_len() != self.fourier_size() {
            return Err(FftError::LengthMismatch {
                expected: self.fourier_size(),
                actual: batch.transform_len(),
            });
        }
        if time_len != self.poly_size * batch.count() {
            return Err(FftError::LengthMismatch {
                expected: self.poly_size * batch.count(),
                actual: time_len,
            });
        }
        Ok(())
    }

    /// Exact negacyclic product of two small-integer polynomials, rounded
    /// to the nearest integer. Intended for tests and small values; exact
    /// as long as intermediate magnitudes stay below 2^52.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on buffer size mismatch.
    pub fn negacyclic_mul_i64(
        &self,
        a: &[i64],
        b: &[i64],
        out: &mut [i64],
    ) -> Result<(), FftError> {
        let mut scratch = FftScratch::for_plan(self);
        self.negacyclic_mul_i64_scratch(a, b, out, &mut scratch)
    }

    /// As [`Self::negacyclic_mul_i64`] but using caller-provided
    /// scratch, so repeated products perform no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on buffer size mismatch
    /// (including a scratch sized for a different plan).
    pub fn negacyclic_mul_i64_scratch(
        &self,
        a: &[i64],
        b: &[i64],
        out: &mut [i64],
        scratch: &mut FftScratch,
    ) -> Result<(), FftError> {
        self.check_time_len(a.len())?;
        self.check_time_len(b.len())?;
        self.check_time_len(out.len())?;
        self.forward_i64(a, &mut scratch.spectrum_a)?;
        self.forward_i64(b, &mut scratch.spectrum_b)?;
        for (x, y) in scratch.spectrum_a.iter_mut().zip(&scratch.spectrum_b) {
            *x *= *y;
        }
        self.backward_f64(&mut scratch.spectrum_a, &mut scratch.time)?;
        for (o, r) in out.iter_mut().zip(&scratch.time) {
            *o = r.round() as i64;
        }
        Ok(())
    }

    fn check_time_len(&self, len: usize) -> Result<(), FftError> {
        if len != self.poly_size {
            return Err(FftError::LengthMismatch { expected: self.poly_size, actual: len });
        }
        Ok(())
    }

    fn check_freq_len(&self, len: usize) -> Result<(), FftError> {
        if len != self.fourier_size() {
            return Err(FftError::LengthMismatch { expected: self.fourier_size(), actual: len });
        }
        Ok(())
    }
}

/// Precomputed tables for materializing the spectrum of a monomial
/// `X^d` directly in the digit-reversed slot order of a
/// [`NegacyclicFft`] plan — without running a transform.
///
/// The negacyclic spectrum of `X^d` evaluated at the odd 2N-th root
/// `ω^m` (`ω = e^{iπ/N}`) is the unit complex `e^{iπ·d·m/N}`, which is
/// periodic in `d·m` with period `2N`. The table therefore stores the
/// `2N` units `e^{iπt/N}` once (split into re/im planes) plus the odd
/// exponent `m` of each *slot* of the plan's digit-reversed ordering,
/// and [`Self::spectrum_into`] becomes a pure table gather:
/// `slot s ← unit[(d · m_s) mod 2N]`. No `sin`/`cos` runs per call.
///
/// This is the enabling primitive of the multi-bit PBS kernel: the
/// combined GGSW `Σ_b X^{d_b}·GGSW_b` is assembled in the Fourier
/// domain by scaling each key row's spectrum with a monomial spectrum,
/// so rotation by the grouped mask digits costs one gather plus one
/// pointwise multiply–accumulate instead of any time-domain rotation
/// or extra transform. Negacyclic wrap-around (`X^N = −1`) is encoded
/// in the period-2N unit table and needs no special casing.
#[derive(Clone, Debug)]
pub struct MonomialTable {
    /// `e^{iπt/N}.re` for `t ∈ [0, 2N)`.
    unit_re: Vec<f64>,
    /// `e^{iπt/N}.im` for `t ∈ [0, 2N)`.
    unit_im: Vec<f64>,
    /// Odd exponent `m = (1 − 4k) mod 2N` of the bin stored in each
    /// slot, in slot order (index = slot, not natural bin).
    slot_exp: Vec<usize>,
    /// `2N − 1`, for reducing `d·m` mod the power-of-two period.
    mask: usize,
}

impl MonomialTable {
    /// Builds the tables for `fft`'s polynomial size and slot ordering.
    pub fn for_plan(fft: &NegacyclicFft) -> Self {
        let n = fft.poly_size();
        let two_n = 2 * n;
        let mut unit_re = Vec::with_capacity(two_n);
        let mut unit_im = Vec::with_capacity(two_n);
        for t in 0..two_n {
            let z = Complex64::cis(std::f64::consts::PI * t as f64 / n as f64);
            unit_re.push(z.re);
            unit_im.push(z.im);
        }
        let perm = fft.spectrum_permutation();
        let mut slot_exp = vec![0usize; fft.fourier_size()];
        for (k, &slot) in perm.iter().enumerate() {
            slot_exp[slot] = (1isize - 4 * k as isize).rem_euclid(two_n as isize) as usize;
        }
        Self { unit_re, unit_im, slot_exp, mask: two_n - 1 }
    }

    /// Number of slots per spectrum (`N/2`).
    #[inline]
    pub fn fourier_size(&self) -> usize {
        self.slot_exp.len()
    }

    /// Writes the spectrum of `X^degree` (degree taken mod `2N`) into
    /// split re/im planes, in the plan's digit-reversed slot order —
    /// pointwise-compatible with spectra from the plan's forward
    /// transforms.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if either plane is not
    /// `N/2` long.
    pub fn spectrum_into(
        &self,
        degree: usize,
        re: &mut [f64],
        im: &mut [f64],
    ) -> Result<(), FftError> {
        let half = self.fourier_size();
        for len in [re.len(), im.len()] {
            if len != half {
                return Err(FftError::LengthMismatch { expected: half, actual: len });
            }
        }
        let d = degree & self.mask;
        for s in 0..half {
            let t = (d * self.slot_exp[s]) & self.mask;
            re[s] = self.unit_re[t];
            im[s] = self.unit_im[t];
        }
        Ok(())
    }
}

/// Multiplies `a` and `b` pointwise, accumulating into `acc`:
/// `acc_k += a_k · b_k`.
///
/// This is the software analogue of the Strix VMA unit's
/// multiply-and-adder-tree datapath operating on Fourier coefficients.
/// It is ordering-agnostic: with all three operands in the same
/// (digit-reversed) slot order, the result is the slot-ordered product
/// spectrum — which is precisely why the bit-reversed-spectrum
/// convention is free for TFHE.
///
/// # Panics
///
/// Panics if the slices have different lengths (programming error — the
/// buffers come from plans of matching size).
#[inline]
pub fn pointwise_mul_add(acc: &mut [Complex64], a: &[Complex64], b: &[Complex64]) {
    assert_eq!(acc.len(), a.len(), "pointwise length mismatch");
    assert_eq!(acc.len(), b.len(), "pointwise length mismatch");
    for ((s, x), y) in acc.iter_mut().zip(a).zip(b) {
        *s += *x * *y;
    }
}

/// As [`pointwise_mul_add`], but with the second operand in split
/// (SoA) planes: `acc_k += a_k · (b_re_k + i·b_im_k)`. The complex
/// multiply uses exactly [`Complex64`]'s expression, so mixing layouts
/// never changes a bit. This is how the per-job oracle CMUX path
/// consumes the split-layout bootstrapping key.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn pointwise_mul_add_key(acc: &mut [Complex64], a: &[Complex64], b_re: &[f64], b_im: &[f64]) {
    assert_eq!(acc.len(), a.len(), "pointwise length mismatch");
    assert_eq!(acc.len(), b_re.len(), "pointwise length mismatch");
    assert_eq!(acc.len(), b_im.len(), "pointwise length mismatch");
    for (((s, x), &br), &bi) in acc.iter_mut().zip(a).zip(b_re).zip(b_im) {
        let pr = x.re * br - x.im * bi;
        let pi = x.re * bi + x.im * br;
        s.re += pr;
        s.im += pi;
    }
}

/// Fully split (structure-of-arrays) fused multiply–accumulate, the
/// four-array VMA kernel of the coefficient-batched CMUX:
/// `acc_k += a_k · b_k` with every operand in separate `re`/`im`
/// planes. Each plane is a plain contiguous `f64` slice, so the loop
/// below autovectorises into packed multiplies and adds with no lane
/// shuffles — the software shape of the Strix VMA unit's datapath and
/// of FPT's split-lane layout.
///
/// Per-element arithmetic is exactly [`pointwise_mul_add`]'s, so the
/// accumulated spectra are bit-identical to the interleaved kernel's.
///
/// # Panics
///
/// Panics if the slices have different lengths (programming error —
/// the buffers come from plans of matching size).
#[inline]
pub fn pointwise_mul_add_soa(
    acc_re: &mut [f64],
    acc_im: &mut [f64],
    a_re: &[f64],
    a_im: &[f64],
    b_re: &[f64],
    b_im: &[f64],
) {
    let n = acc_re.len();
    assert_eq!(acc_im.len(), n, "pointwise length mismatch");
    assert_eq!(a_re.len(), n, "pointwise length mismatch");
    assert_eq!(a_im.len(), n, "pointwise length mismatch");
    assert_eq!(b_re.len(), n, "pointwise length mismatch");
    assert_eq!(b_im.len(), n, "pointwise length mismatch");
    // Indexed loop over pre-checked equal-length slices: the bounds
    // checks fold away and the body is four independent packed FMAs'
    // worth of mul/add work per lane.
    for j in 0..n {
        let pr = a_re[j] * b_re[j] - a_im[j] * b_im[j];
        let pi = a_re[j] * b_im[j] + a_im[j] * b_re[j];
        acc_re[j] += pr;
        acc_im[j] += pi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn rejects_tiny_or_odd_sizes() {
        assert!(NegacyclicFft::new(1).is_err());
        assert!(NegacyclicFft::new(6).is_err());
        assert!(NegacyclicFft::new(2).is_ok());
    }

    #[test]
    fn fourier_size_is_half() {
        let fft = NegacyclicFft::new(1024).unwrap();
        assert_eq!(fft.poly_size(), 1024);
        assert_eq!(fft.fourier_size(), 512);
    }

    #[test]
    fn forward_backward_round_trip() {
        for log_n in 1..=11 {
            let n = 1usize << log_n;
            let fft = NegacyclicFft::new(n).unwrap();
            let poly: Vec<f64> = (0..n).map(|i| ((i * 7919) % 257) as f64 - 128.0).collect();
            let mut spec = vec![Complex64::ZERO; n / 2];
            fft.forward_f64(&poly, &mut spec).unwrap();
            let mut back = vec![0.0f64; n];
            fft.backward_f64(&mut spec, &mut back).unwrap();
            for (a, b) in poly.iter().zip(&back) {
                assert!((a - b).abs() < 1e-7, "{a} vs {b} at n={n}");
            }
        }
    }

    #[test]
    fn spectrum_evaluates_at_odd_roots_in_permuted_slots() {
        // Slot perm[k] must hold a(ω^{1-4k mod 2N}) with ω = e^{iπ/N}:
        // the twist contributes e^{+iπj/N}, the FFT kernel contributes
        // e^{-4πijk/N}, and the DIF schedule stores bin k at slot
        // perm[k] instead of running a reordering pass.
        let n = 16;
        let fft = NegacyclicFft::new(n).unwrap();
        let poly: Vec<i64> = (0..n as i64).map(|i| i * i - 5).collect();
        let mut spec = vec![Complex64::ZERO; n / 2];
        fft.forward_i64(&poly, &mut spec).unwrap();
        let perm = fft.spectrum_permutation();
        for (k, &slot) in perm.iter().enumerate() {
            let m = (1isize - 4 * k as isize).rem_euclid(2 * n as isize) as usize;
            assert_eq!(m % 2, 1, "evaluation points must be odd 2N-th roots");
            let root = Complex64::cis(std::f64::consts::PI * m as f64 / n as f64);
            let mut eval = Complex64::ZERO;
            let mut pow = Complex64::ONE;
            for &c in &poly {
                eval += pow.scale(c as f64);
                pow *= root;
            }
            let z = spec[slot];
            assert!((z - eval).abs() < 1e-8, "bin {k} (slot {slot}): {z} vs {eval}");
        }
    }

    #[test]
    fn monomial_table_matches_forward_transform_of_the_monomial() {
        // The gathered spectrum of X^d must agree with actually
        // transforming the monomial polynomial, for degrees covering
        // d = 0, d < N, the negacyclic wrap d ≥ N (X^N = −1) and full
        // 2N-periodicity.
        for n in [4usize, 16, 64, 512] {
            let fft = NegacyclicFft::new(n).unwrap();
            let table = MonomialTable::for_plan(&fft);
            assert_eq!(table.fourier_size(), fft.fourier_size());
            for degree in [0, 1, n / 2, n - 1, n, n + 3, 2 * n - 1, 2 * n, 3 * n + 5] {
                let reduced = degree % (2 * n);
                let mut poly = vec![0i64; n];
                if reduced < n {
                    poly[reduced] = 1;
                } else {
                    poly[reduced - n] = -1;
                }
                let mut spec = vec![Complex64::ZERO; n / 2];
                fft.forward_i64(&poly, &mut spec).unwrap();
                let mut re = vec![0.0f64; n / 2];
                let mut im = vec![0.0f64; n / 2];
                table.spectrum_into(degree, &mut re, &mut im).unwrap();
                for s in 0..n / 2 {
                    let dr = (re[s] - spec[s].re).abs();
                    let di = (im[s] - spec[s].im).abs();
                    assert!(
                        dr < 1e-9 && di < 1e-9,
                        "n={n} d={degree} slot {s}: ({}, {}) vs {:?}",
                        re[s],
                        im[s],
                        spec[s]
                    );
                }
            }
        }
    }

    #[test]
    fn monomial_table_rejects_wrong_plane_lengths() {
        let fft = NegacyclicFft::new(8).unwrap();
        let table = MonomialTable::for_plan(&fft);
        let mut re = vec![0.0f64; 4];
        let mut im = vec![0.0f64; 3];
        assert_eq!(
            table.spectrum_into(1, &mut re, &mut im).unwrap_err(),
            FftError::LengthMismatch { expected: 4, actual: 3 }
        );
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        for log_n in 1..=9 {
            let n = 1usize << log_n;
            let fft = NegacyclicFft::new(n).unwrap();
            let a: Vec<i64> = (0..n).map(|i| ((i * 31 + 7) % 41) as i64 - 20).collect();
            let b: Vec<i64> = (0..n).map(|i| ((i * 17 + 3) % 37) as i64 - 18).collect();
            let expected = reference::negacyclic_mul(&a, &b);
            let mut out = vec![0i64; n];
            fft.negacyclic_mul_i64(&a, &b, &mut out).unwrap();
            assert_eq!(out, expected, "n={n}");
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // X^{N/2} * X^{N/2} = X^N = -1.
        let n = 8;
        let fft = NegacyclicFft::new(n).unwrap();
        let mut a = vec![0i64; n];
        a[n / 2] = 1;
        let mut out = vec![0i64; n];
        fft.negacyclic_mul_i64(&a, &a, &mut out).unwrap();
        let mut expected = vec![0i64; n];
        expected[0] = -1;
        assert_eq!(out, expected);
    }

    #[test]
    fn scratch_multiplication_is_bit_identical_to_allocating_path() {
        let n = 64;
        let fft = NegacyclicFft::new(n).unwrap();
        let mut scratch = FftScratch::for_plan(&fft);
        let a: Vec<i64> = (0..n).map(|i| ((i * 29 + 11) % 53) as i64 - 26).collect();
        let b: Vec<i64> = (0..n).map(|i| ((i * 13 + 5) % 47) as i64 - 23).collect();
        let mut alloc = vec![0i64; n];
        fft.negacyclic_mul_i64(&a, &b, &mut alloc).unwrap();
        // Reuse the same scratch twice: stale contents must not leak.
        for _ in 0..2 {
            let mut reused = vec![0i64; n];
            fft.negacyclic_mul_i64_scratch(&a, &b, &mut reused, &mut scratch).unwrap();
            assert_eq!(reused, alloc);
        }
    }

    #[test]
    fn scratch_for_wrong_plan_is_rejected() {
        let fft = NegacyclicFft::new(8).unwrap();
        let mut scratch = FftScratch::for_plan(&NegacyclicFft::new(16).unwrap());
        let a = [0i64; 8];
        let mut out = [0i64; 8];
        assert!(fft.negacyclic_mul_i64_scratch(&a, &a, &mut out, &mut scratch).is_err());
    }

    #[test]
    fn smallest_polynomial_size_multiplies_exactly() {
        // N = 2 runs on a single-point complex FFT: the fused fold and
        // untwist paths must still be exact.
        let fft = NegacyclicFft::new(2).unwrap();
        let a = [3i64, -4];
        let b = [-2i64, 5];
        // (3 - 4X)(-2 + 5X) = -6 + 23X - 20X² = 14 + 23X mod X²+1.
        let mut out = [0i64; 2];
        fft.negacyclic_mul_i64(&a, &b, &mut out).unwrap();
        assert_eq!(out, [14, 23]);
    }

    #[test]
    fn pointwise_mul_add_accumulates() {
        let a = [Complex64::new(1.0, 2.0), Complex64::new(0.0, 1.0)];
        let b = [Complex64::new(3.0, 0.0), Complex64::new(0.0, 1.0)];
        let mut acc = [Complex64::new(1.0, 1.0), Complex64::ZERO];
        pointwise_mul_add(&mut acc, &a, &b);
        assert_eq!(acc[0], Complex64::new(4.0, 7.0));
        assert_eq!(acc[1], Complex64::new(-1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "pointwise length mismatch")]
    fn pointwise_mul_add_panics_on_mismatch() {
        let a = [Complex64::ZERO; 2];
        let b = [Complex64::ZERO; 3];
        let mut acc = [Complex64::ZERO; 2];
        pointwise_mul_add(&mut acc, &a, &b);
    }

    #[test]
    fn buffer_mismatch_is_reported() {
        let fft = NegacyclicFft::new(8).unwrap();
        let poly = vec![0.0f64; 8];
        let mut wrong = vec![Complex64::ZERO; 8]; // should be 4
        assert_eq!(
            fft.forward_f64(&poly, &mut wrong).unwrap_err(),
            FftError::LengthMismatch { expected: 4, actual: 8 }
        );
    }
}
