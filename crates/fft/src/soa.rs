//! Split-complex (structure-of-arrays) spectrum storage.
//!
//! The interleaved [`crate::Complex64`] layout keeps each `(re, im)`
//! pair adjacent, which is convenient for scalar code but hostile to
//! wide SIMD lanes: every complex multiply needs shuffles to separate
//! the real and imaginary parts before the four underlying real
//! multiplies can go packed. FPT makes exactly this observation about
//! the PBS inner loop and lays its Fourier data out *split*: one plane
//! of all real parts, one plane of all imaginary parts, so the
//! butterfly and VMA inner loops become plain `f64`-array arithmetic
//! that LLVM vectorises without any lane rearrangement.
//!
//! [`SoaSpectrum`] is that layout: a batch of `count` spectra of
//! `transform_len` complex points each, stored as two contiguous
//! `f64` planes. Values are **bit-identical** to their interleaved
//! counterparts — only the addressing changes — so spectra may be
//! converted between layouts freely without perturbing a single ULP,
//! which is what lets the SoA CMUX path be bit-exact against the
//! interleaved oracle.

use crate::complex::Complex64;

/// A batch of split-complex spectra: `count` transforms of
/// `transform_len` points each, stored as one contiguous real plane and
/// one contiguous imaginary plane (transform-major within each plane).
///
/// Transform `t` owns `re[t·L .. (t+1)·L]` and `im[t·L .. (t+1)·L]`
/// with `L = transform_len`.
#[derive(Clone, Debug, PartialEq)]
pub struct SoaSpectrum {
    re: Vec<f64>,
    im: Vec<f64>,
    transform_len: usize,
}

impl SoaSpectrum {
    /// Allocates a zeroed batch of `count` spectra of `transform_len`
    /// complex points each.
    ///
    /// # Panics
    ///
    /// Panics if `transform_len` is zero (a spectrum must hold at least
    /// one point).
    pub fn new(count: usize, transform_len: usize) -> Self {
        assert!(transform_len > 0, "transform length must be positive");
        Self {
            re: vec![0.0; count * transform_len],
            im: vec![0.0; count * transform_len],
            transform_len,
        }
    }

    // lint:hot-path-start — per-call spectrum accessors and kernels must stay allocation-free
    /// Number of transforms in the batch.
    #[inline]
    pub fn count(&self) -> usize {
        self.re.len() / self.transform_len
    }

    /// Complex points per transform.
    #[inline]
    pub fn transform_len(&self) -> usize {
        self.transform_len
    }

    /// The `(re, im)` planes of transform `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= count()`.
    #[inline]
    pub fn transform(&self, t: usize) -> (&[f64], &[f64]) {
        let s = t * self.transform_len;
        let e = s + self.transform_len;
        (&self.re[s..e], &self.im[s..e])
    }

    /// Mutable `(re, im)` planes of transform `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= count()`.
    #[inline]
    pub fn transform_mut(&mut self, t: usize) -> (&mut [f64], &mut [f64]) {
        let s = t * self.transform_len;
        let e = s + self.transform_len;
        (&mut self.re[s..e], &mut self.im[s..e])
    }

    /// The whole real plane (all transforms, transform-major).
    #[inline]
    pub fn re_plane(&self) -> &[f64] {
        &self.re
    }

    /// The whole imaginary plane (all transforms, transform-major).
    #[inline]
    pub fn im_plane(&self) -> &[f64] {
        &self.im
    }

    /// Both whole planes at once — the borrow the grouped CMUX hoists
    /// out of its inner loops so per-transform slicing
    /// (`chunks_exact(transform_len)`) carries no per-iteration bounds
    /// arithmetic.
    #[inline]
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Mutable counterpart of [`Self::planes`].
    #[inline]
    pub fn planes_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Zeroes every value in the batch (fresh accumulator state).
    pub fn fill_zero(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
    }

    /// Overwrites this batch with `other`'s planes, bit-for-bit — the
    /// split-complex bulk copy the multi-bit CMUX uses to seed its
    /// combined-key accumulator from the pattern-0 entry.
    ///
    /// # Panics
    ///
    /// Panics if the batches disagree in transform count or length.
    pub fn copy_from(&mut self, other: &SoaSpectrum) {
        assert_eq!(self.transform_len, other.transform_len, "transform length mismatch");
        assert_eq!(self.re.len(), other.re.len(), "transform count mismatch");
        self.re.copy_from_slice(&other.re);
        self.im.copy_from_slice(&other.im);
    }

    /// Scatters an interleaved spectrum into transform `t`'s planes.
    /// Values are copied bit-for-bit — no arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `t >= count()` or `spec.len() != transform_len()`.
    pub fn store(&mut self, t: usize, spec: &[Complex64]) {
        assert_eq!(spec.len(), self.transform_len, "spectrum length mismatch");
        let (re, im) = self.transform_mut(t);
        for ((r, i), z) in re.iter_mut().zip(im.iter_mut()).zip(spec) {
            *r = z.re;
            *i = z.im;
        }
    }

    /// Gathers transform `t` back into an interleaved spectrum.
    /// Values are copied bit-for-bit — no arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `t >= count()` or `out.len() != transform_len()`.
    pub fn load(&self, t: usize, out: &mut [Complex64]) {
        assert_eq!(out.len(), self.transform_len, "spectrum length mismatch");
        let (re, im) = self.transform(t);
        for ((z, &r), &i) in out.iter_mut().zip(re).zip(im) {
            *z = Complex64::new(r, i);
        }
    }

    /// Approximate heap footprint in bytes (both planes).
    #[inline]
    pub fn byte_size(&self) -> usize {
        (self.re.len() + self.im.len()) * std::mem::size_of::<f64>()
    }
}

// lint:hot-path-end
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_interleaved_spectra_bit_exactly() {
        let mut batch = SoaSpectrum::new(3, 4);
        assert_eq!(batch.count(), 3);
        assert_eq!(batch.transform_len(), 4);
        let spec: Vec<Complex64> =
            (0..4).map(|i| Complex64::new(i as f64 * 0.1, -(i as f64) * 0.3)).collect();
        batch.store(1, &spec);
        let mut back = vec![Complex64::ZERO; 4];
        batch.load(1, &mut back);
        assert_eq!(back, spec);
        // Other transforms stay zero.
        batch.load(0, &mut back);
        assert!(back.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn fill_zero_clears_every_plane() {
        let mut batch = SoaSpectrum::new(2, 2);
        batch.store(0, &[Complex64::new(1.0, 2.0), Complex64::new(3.0, 4.0)]);
        batch.fill_zero();
        assert!(batch.re_plane().iter().all(|&v| v == 0.0));
        assert!(batch.im_plane().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn copy_from_replicates_planes_bit_exactly() {
        let mut src = SoaSpectrum::new(2, 3);
        src.store(0, &[Complex64::new(1.5, -2.5); 3]);
        src.store(1, &[Complex64::new(-0.25, 4.0); 3]);
        let mut dst = SoaSpectrum::new(2, 3);
        dst.store(0, &[Complex64::new(9.0, 9.0); 3]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "transform count mismatch")]
    fn copy_from_rejects_mismatched_counts() {
        SoaSpectrum::new(2, 4).copy_from(&SoaSpectrum::new(3, 4));
    }

    #[test]
    fn byte_size_counts_both_planes() {
        assert_eq!(SoaSpectrum::new(2, 8).byte_size(), 2 * 8 * 16);
    }

    #[test]
    #[should_panic(expected = "transform length must be positive")]
    fn zero_length_transforms_are_rejected() {
        SoaSpectrum::new(1, 0);
    }
}
