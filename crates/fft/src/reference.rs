//! Exact schoolbook negacyclic arithmetic, used as the correctness oracle
//! for the FFT path and directly by the software TFHE implementation for
//! small test parameters.

/// Exact negacyclic product in `Z[X]/(X^N + 1)` with wrapping `i64`
/// arithmetic.
///
/// Coefficient `k` of the result is
/// `Σ_{i+j=k} a_i·b_j − Σ_{i+j=k+N} a_i·b_j`.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
///
/// # Example
///
/// ```
/// let a = [1i64, 1, 0, 0]; // 1 + X
/// let b = [0i64, 0, 0, 1]; // X^3
/// // (1+X)·X^3 = X^3 + X^4 = X^3 - 1 (mod X^4+1)
/// assert_eq!(strix_fft::reference::negacyclic_mul(&a, &b), [-1, 0, 0, 1]);
/// ```
pub fn negacyclic_mul(a: &[i64], b: &[i64]) -> Vec<i64> {
    assert_eq!(a.len(), b.len(), "polynomial sizes must match");
    let n = a.len();
    let mut out = vec![0i64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = ai.wrapping_mul(bj);
            let k = i + j;
            if k < n {
                out[k] = out[k].wrapping_add(prod);
            } else {
                out[k - n] = out[k - n].wrapping_sub(prod);
            }
        }
    }
    out
}

/// Exact negacyclic product of an integer polynomial with a torus
/// polynomial (`u64`, arithmetic mod 2^64).
///
/// This is the "external product inner multiply" used by TFHE: decomposed
/// digits (small signed) times bootstrapping-key coefficients (torus).
///
/// # Panics
///
/// Panics if `digits.len() != torus.len()`.
pub fn negacyclic_mul_torus(digits: &[i64], torus: &[u64]) -> Vec<u64> {
    assert_eq!(digits.len(), torus.len(), "polynomial sizes must match");
    let n = digits.len();
    let mut out = vec![0u64; n];
    for (i, &d) in digits.iter().enumerate() {
        if d == 0 {
            continue;
        }
        let d = d as u64; // two's complement wrapping multiply is exact mod 2^64
        for (j, &t) in torus.iter().enumerate() {
            let prod = d.wrapping_mul(t);
            let k = i + j;
            if k < n {
                out[k] = out[k].wrapping_add(prod);
            } else {
                out[k - n] = out[k - n].wrapping_sub(prod);
            }
        }
    }
    out
}

/// Negacyclic left-rotation by `amount` positions in `[0, 2N)`:
/// multiplies the polynomial by `X^{-amount}`.
///
/// Rotation by `N` negates the polynomial (`X^N = -1`), so a rotation by
/// `amount ∈ [N, 2N)` equals a rotation by `amount − N` followed by
/// negation.
///
/// # Panics
///
/// Panics if `amount >= 2 * poly.len()`.
pub fn rotate_left(poly: &[u64], amount: usize) -> Vec<u64> {
    let mut out = vec![0u64; poly.len()];
    rotate_left_into(poly, amount, &mut out);
    out
}

/// As [`rotate_left`], writing into a caller-provided buffer — the
/// allocation-free form used inside the blind-rotation CMUX loop.
///
/// # Panics
///
/// Panics if `amount >= 2 * poly.len()` or the buffer sizes differ.
pub fn rotate_left_into(poly: &[u64], amount: usize, out: &mut [u64]) {
    let n = poly.len();
    assert!(amount < 2 * n, "rotation amount {amount} out of range for size {n}");
    assert_eq!(out.len(), n, "rotation output buffer size mismatch");
    for (j, slot) in out.iter_mut().enumerate() {
        // out = X^{-amount} * poly: out[j] = poly[(j + amount) mod 2N] with sign.
        let src = j + amount;
        if src < n {
            *slot = poly[src];
        } else if src < 2 * n {
            *slot = poly[src - n].wrapping_neg();
        } else {
            *slot = poly[src - 2 * n];
        }
    }
}

/// Negacyclic right-rotation by `amount` positions in `[0, 2N)`:
/// multiplies the polynomial by `X^{amount}`.
///
/// # Panics
///
/// Panics if `amount >= 2 * poly.len()`.
pub fn rotate_right(poly: &[u64], amount: usize) -> Vec<u64> {
    let mut out = vec![0u64; poly.len()];
    rotate_right_into(poly, amount, &mut out);
    out
}

/// As [`rotate_right`], writing into a caller-provided buffer — the
/// allocation-free form used inside the blind-rotation CMUX loop.
///
/// # Panics
///
/// Panics if `amount >= 2 * poly.len()` or the buffer sizes differ.
pub fn rotate_right_into(poly: &[u64], amount: usize, out: &mut [u64]) {
    let n = poly.len();
    assert!(amount < 2 * n, "rotation amount {amount} out of range for size {n}");
    if amount == 0 {
        assert_eq!(out.len(), n, "rotation output buffer size mismatch");
        out.copy_from_slice(poly);
        return;
    }
    // X^{amount} = X^{-(2N - amount)}.
    rotate_left_into(poly, 2 * n - amount, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = [5i64, -3, 2, 7];
        let one = [1i64, 0, 0, 0];
        assert_eq!(negacyclic_mul(&a, &one), a);
    }

    #[test]
    fn commutativity() {
        let a = [1i64, 2, 3, 4, 5, 6, 7, 8];
        let b = [-3i64, 1, 4, -1, 5, -9, 2, 6];
        assert_eq!(negacyclic_mul(&a, &b), negacyclic_mul(&b, &a));
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        // X^2 * X^2 = -1 mod X^4+1
        let x2 = [0i64, 0, 1, 0];
        assert_eq!(negacyclic_mul(&x2, &x2), [-1, 0, 0, 0]);
    }

    #[test]
    fn torus_multiplication_wraps_mod_2_64() {
        let digits = [3i64, 0];
        let torus = [u64::MAX, 0]; // -1 on the torus
                                   // 3 * (-1) = -3 mod 2^64
        assert_eq!(negacyclic_mul_torus(&digits, &torus), [3u64.wrapping_neg(), 0]);
    }

    #[test]
    fn torus_negative_digit() {
        let digits = [-2i64, 0];
        let torus = [5u64, 7];
        assert_eq!(
            negacyclic_mul_torus(&digits, &torus),
            [10u64.wrapping_neg(), 14u64.wrapping_neg()]
        );
    }

    #[test]
    fn rotate_left_within_first_period() {
        let p = [1u64, 2, 3, 4];
        // X^{-1} * p: out[j] = p[j+1], out[3] = -p[0]
        assert_eq!(rotate_left(&p, 1), [2, 3, 4, 1u64.wrapping_neg()]);
    }

    #[test]
    fn rotate_left_by_n_negates() {
        let p = [1u64, 2, 3, 4];
        assert_eq!(
            rotate_left(&p, 4),
            [1u64.wrapping_neg(), 2u64.wrapping_neg(), 3u64.wrapping_neg(), 4u64.wrapping_neg()]
        );
    }

    #[test]
    fn rotate_left_then_right_is_identity() {
        let p = [9u64, 8, 7, 6, 5, 4, 3, 2];
        for amount in 0..16 {
            let rotated = rotate_left(&p, amount);
            let back = rotate_right(&rotated, amount);
            assert_eq!(back, p, "amount {amount}");
        }
    }

    #[test]
    fn rotation_matches_monomial_multiplication() {
        // rotate_right(p, a) must equal p * X^a computed via negacyclic_mul.
        let p: Vec<u64> = (1..=8u64).collect();
        let p_i64: Vec<i64> = p.iter().map(|&x| x as i64).collect();
        for amount in 0..8 {
            let mut monomial = vec![0i64; 8];
            monomial[amount] = 1;
            let expected: Vec<u64> =
                negacyclic_mul(&p_i64, &monomial).into_iter().map(|x| x as u64).collect();
            assert_eq!(rotate_right(&p, amount), expected, "amount {amount}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rotate_rejects_out_of_range() {
        rotate_left(&[0u64; 4], 8);
    }
}
