//! Branch-free bit-reversed-spectrum FFT kernel.
//!
//! This is the hot transform core behind [`crate::NegacyclicFft`],
//! built around one observation about how spectra are *used* in TFHE:
//! they are only ever consumed pointwise (the VMA multiply–accumulate
//! of the external product), where bin ordering is irrelevant. The
//! kernel therefore never produces a natural-order spectrum:
//!
//! * the **forward** transform is decimation-in-frequency (DIF) —
//!   natural order in, digit-reversed spectrum out;
//! * the **inverse** transform is decimation-in-time (DIT) — the exact
//!   stage-by-stage inverse of the forward, digit-reversed spectrum
//!   in, natural order out.
//!
//! Composing them is the identity *by construction* (each inverse
//! stage undoes one forward stage, in reverse order), so both
//! bit-reversal permutation passes of a conventional natural-order FFT
//! are deleted outright. This mirrors how the Strix FFT unit (§V-A,
//! Fig. 5) never reorders data in memory either: its shuffle units
//! reorder *in-stream* between butterfly stages, and the VMA consumes
//! whatever lane order the pipeline emits as long as the IFFT consumes
//! the same one.
//!
//! Two further properties keep the inner loop branch-free and lean:
//!
//! * **stage-major twiddle tables**, precomputed separately for the
//!   forward and inverse directions — no `if inverse { tw.conj() }`
//!   in any butterfly, no per-stage stride arithmetic into one shared
//!   table;
//! * **radix-4 butterflies** with a single radix-2 stage when
//!   `log2(n)` is odd — half the stage count (and half the twiddle
//!   multiplies) of the radix-2 seed kernel.
//!
//! The natural-order [`crate::FftPlan`] is kept alongside as the
//! correctness oracle; [`SpectralPlan::permutation`] gives the exact
//! bin→slot map connecting the two conventions.

use crate::backend::{self, StrixFftBackend};
use crate::complex::Complex64;
use crate::error::FftError;
use crate::is_pow2_at_least;
use crate::soa::SoaSpectrum;

/// Butterfly radix of one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Radix {
    Two,
    Four,
}

/// One butterfly stage: all blocks of length `len` across the array.
///
/// Twiddle layout is stage-major and kept in **both** storage
/// conventions, built from the same values so the two are bit-equal:
///
/// * interleaved ([`Complex64`]) for the AoS path — radix-2 stages
///   store `len/2` factors `w^j`; radix-4 stages store `len/4`
///   *triples* `(w^j, w^{2j}, w^{3j})` interleaved, so the inner loop
///   walks one contiguous table;
/// * split (`tw_re`/`tw_im` planes, power-major: all `w^j`, then all
///   `w^{2j}`, then all `w^{3j}`) for the SoA path, so its inner loops
///   touch no interleaved data at all.
#[derive(Clone, Debug)]
struct Stage {
    radix: Radix,
    len: usize,
    twiddles: Vec<Complex64>,
    /// Split real plane (power-major; see type docs).
    tw_re: Vec<f64>,
    /// Split imaginary plane (power-major).
    tw_im: Vec<f64>,
}

impl Stage {
    /// Builds the stage for block length `len` in the given direction
    /// (`sign = -1.0` forward, `+1.0` inverse).
    fn new(radix: Radix, len: usize, sign: f64) -> Self {
        let base = sign * 2.0 * std::f64::consts::PI / len as f64;
        let twiddles: Vec<Complex64> = match radix {
            Radix::Two => (0..len / 2).map(|j| Complex64::cis(base * j as f64)).collect(),
            Radix::Four => {
                let mut t = Vec::with_capacity(3 * (len / 4));
                for j in 0..len / 4 {
                    let theta = base * j as f64;
                    t.push(Complex64::cis(theta));
                    t.push(Complex64::cis(2.0 * theta));
                    t.push(Complex64::cis(3.0 * theta));
                }
                t
            }
        };
        // Split planes hold the same values in power-major order, so
        // the SoA butterflies consume bit-identical factors.
        let (mut tw_re, mut tw_im) =
            (Vec::with_capacity(twiddles.len()), Vec::with_capacity(twiddles.len()));
        match radix {
            Radix::Two => {
                for w in &twiddles {
                    tw_re.push(w.re);
                    tw_im.push(w.im);
                }
            }
            Radix::Four => {
                let q = len / 4;
                for power in 0..3 {
                    for j in 0..q {
                        let w = twiddles[3 * j + power];
                        tw_re.push(w.re);
                        tw_im.push(w.im);
                    }
                }
            }
        }
        Self { radix, len, twiddles, tw_re, tw_im }
    }

    /// Radix as a plain factor (2 or 4).
    fn factor(&self) -> usize {
        match self.radix {
            Radix::Two => 2,
            Radix::Four => 4,
        }
    }
}

/// Scalar complex multiply on split operands — exactly
/// [`Complex64::mul`]'s expression, so SoA and AoS paths round
/// identically.
#[inline(always)]
fn cmul(ar: f64, ai: f64, br: f64, bi: f64) -> (f64, f64) {
    (ar * br - ai * bi, ar * bi + ai * br)
}

/// Forward radix-2 DIF butterflies over one block split into halves.
#[inline]
fn fwd_radix2(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64]) {
    for ((a, b), w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
        let (x, y) = (*a, *b);
        *a = x + y;
        *b = (x - y) * *w;
    }
}

/// Inverse radix-2 DIT butterflies (exact stage inverse, unnormalised:
/// yields 2× the original block values).
#[inline]
fn inv_radix2(lo: &mut [Complex64], hi: &mut [Complex64], tw: &[Complex64]) {
    for ((a, b), w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
        let x = *a;
        let y = *b * *w;
        *a = x + y;
        *b = x - y;
    }
}

/// Forward radix-4 butterfly without the twiddle multiplies — the
/// whole final (`len == 4`) stage has `w = 1`, so the three multiplies
/// per butterfly would be by unity. Specialising the stage removes
/// `3·(n/4)` complex multiplies per transform.
#[inline]
fn fwd_radix4_unit(
    a0: Complex64,
    a1: Complex64,
    a2: Complex64,
    a3: Complex64,
) -> (Complex64, Complex64, Complex64, Complex64) {
    let p02 = a0 + a2;
    let m02 = a0 - a2;
    let p13 = a1 + a3;
    let m13i = (a1 - a3).mul_i();
    (p02 + p13, m02 - m13i, p02 - p13, m02 + m13i)
}

/// Inverse radix-4 butterfly without twiddle multiplies (first inverse
/// stage, `len == 4`).
#[inline]
fn inv_radix4_unit(
    y0: Complex64,
    y1: Complex64,
    y2: Complex64,
    y3: Complex64,
) -> (Complex64, Complex64, Complex64, Complex64) {
    let p02 = y0 + y2;
    let m02 = y0 - y2;
    let p13 = y1 + y3;
    let m13i = (y1 - y3).mul_i();
    (p02 + p13, m02 + m13i, p02 - p13, m02 - m13i)
}

/// Forward radix-4 DIF butterfly on four already-loaded lanes; returns
/// the four outputs in sub-block order `(y0, y1·w, y2·w², y3·w³)`.
#[inline]
fn fwd_radix4_core(
    a0: Complex64,
    a1: Complex64,
    a2: Complex64,
    a3: Complex64,
    w1: Complex64,
    w2: Complex64,
    w3: Complex64,
) -> (Complex64, Complex64, Complex64, Complex64) {
    let p02 = a0 + a2;
    let m02 = a0 - a2;
    let p13 = a1 + a3;
    let m13i = (a1 - a3).mul_i();
    (p02 + p13, (m02 - m13i) * w1, (p02 - p13) * w2, (m02 + m13i) * w3)
}

/// Inverse radix-4 DIT butterfly (exact stage inverse, unnormalised:
/// yields 4× the original lane values).
#[inline]
fn inv_radix4_core(
    y0: Complex64,
    y1: Complex64,
    y2: Complex64,
    y3: Complex64,
    w1: Complex64,
    w2: Complex64,
    w3: Complex64,
) -> (Complex64, Complex64, Complex64, Complex64) {
    let u1 = y1 * w1;
    let u2 = y2 * w2;
    let u3 = y3 * w3;
    let p02 = y0 + u2;
    let m02 = y0 - u2;
    let p13 = u1 + u3;
    let m13i = (u1 - u3).mul_i();
    (p02 + p13, m02 + m13i, p02 - p13, m02 - m13i)
}

/// Applies one forward stage in place across the whole array.
fn apply_fwd_stage(stage: &Stage, data: &mut [Complex64]) {
    if stage.len == 4 && stage.radix == Radix::Four {
        for block in data.chunks_exact_mut(4) {
            let (y0, y1, y2, y3) = fwd_radix4_unit(block[0], block[1], block[2], block[3]);
            block[0] = y0;
            block[1] = y1;
            block[2] = y2;
            block[3] = y3;
        }
        return;
    }
    for block in data.chunks_exact_mut(stage.len) {
        match stage.radix {
            Radix::Two => {
                let (lo, hi) = block.split_at_mut(stage.len / 2);
                fwd_radix2(lo, hi, &stage.twiddles);
            }
            Radix::Four => {
                let q = stage.len / 4;
                let (q0, rest) = block.split_at_mut(q);
                let (q1, rest) = rest.split_at_mut(q);
                let (q2, q3) = rest.split_at_mut(q);
                for ((((a, b), c), d), w) in
                    q0.iter_mut().zip(q1).zip(q2).zip(q3).zip(stage.twiddles.chunks_exact(3))
                {
                    let (y0, y1, y2, y3) = fwd_radix4_core(*a, *b, *c, *d, w[0], w[1], w[2]);
                    *a = y0;
                    *b = y1;
                    *c = y2;
                    *d = y3;
                }
            }
        }
    }
}

/// Applies one inverse stage in place across the whole array.
fn apply_inv_stage(stage: &Stage, data: &mut [Complex64]) {
    if stage.len == 4 && stage.radix == Radix::Four {
        for block in data.chunks_exact_mut(4) {
            let (x0, x1, x2, x3) = inv_radix4_unit(block[0], block[1], block[2], block[3]);
            block[0] = x0;
            block[1] = x1;
            block[2] = x2;
            block[3] = x3;
        }
        return;
    }
    for block in data.chunks_exact_mut(stage.len) {
        match stage.radix {
            Radix::Two => {
                let (lo, hi) = block.split_at_mut(stage.len / 2);
                inv_radix2(lo, hi, &stage.twiddles);
            }
            Radix::Four => {
                let q = stage.len / 4;
                let (q0, rest) = block.split_at_mut(q);
                let (q1, rest) = rest.split_at_mut(q);
                let (q2, q3) = rest.split_at_mut(q);
                for ((((a, b), c), d), w) in
                    q0.iter_mut().zip(q1).zip(q2).zip(q3).zip(stage.twiddles.chunks_exact(3))
                {
                    let (x0, x1, x2, x3) = inv_radix4_core(*a, *b, *c, *d, w[0], w[1], w[2]);
                    *a = x0;
                    *b = x1;
                    *c = x2;
                    *d = x3;
                }
            }
        }
    }
}

/// One forward SoA stage over one transform's split planes. Mirrors
/// [`apply_fwd_stage`] operation for operation: every butterfly
/// computes the same IEEE expressions in the same order, so the two
/// layouts produce bit-identical spectra — on every backend, since the
/// SIMD kernels pin the identical per-element expressions (see
/// [`crate::backend`]). The twiddle-less unit stage (`len == 4`
/// radix-4) stays scalar here: its add/sub network autovectorises
/// fully and has no contiguous-lane structure worth dispatching.
fn apply_fwd_stage_soa(kb: StrixFftBackend, stage: &Stage, re: &mut [f64], im: &mut [f64]) {
    let len = stage.len;
    if len == 4 && stage.radix == Radix::Four {
        for (re4, im4) in re.chunks_exact_mut(4).zip(im.chunks_exact_mut(4)) {
            let (p02r, p02i) = (re4[0] + re4[2], im4[0] + im4[2]);
            let (m02r, m02i) = (re4[0] - re4[2], im4[0] - im4[2]);
            let (p13r, p13i) = (re4[1] + re4[3], im4[1] + im4[3]);
            // (a1 - a3).mul_i(): re' = -(im-diff), im' = re-diff.
            let (m13ir, m13ii) = (-(im4[1] - im4[3]), re4[1] - re4[3]);
            re4[0] = p02r + p13r;
            im4[0] = p02i + p13i;
            re4[1] = m02r - m13ir;
            im4[1] = m02i - m13ii;
            re4[2] = p02r - p13r;
            im4[2] = p02i - p13i;
            re4[3] = m02r + m13ir;
            im4[3] = m02i + m13ii;
        }
        return;
    }
    match stage.radix {
        Radix::Two => backend::fwd_stage_r2(kb, re, im, len, &stage.tw_re, &stage.tw_im),
        Radix::Four => backend::fwd_stage_r4(kb, re, im, len, &stage.tw_re, &stage.tw_im),
    }
}

/// One inverse SoA stage over one transform's split planes — the exact
/// mirror of [`apply_inv_stage`] (same expressions, same order,
/// bit-identical results on every backend).
fn apply_inv_stage_soa(kb: StrixFftBackend, stage: &Stage, re: &mut [f64], im: &mut [f64]) {
    let len = stage.len;
    if len == 4 && stage.radix == Radix::Four {
        for (re4, im4) in re.chunks_exact_mut(4).zip(im.chunks_exact_mut(4)) {
            let (p02r, p02i) = (re4[0] + re4[2], im4[0] + im4[2]);
            let (m02r, m02i) = (re4[0] - re4[2], im4[0] - im4[2]);
            let (p13r, p13i) = (re4[1] + re4[3], im4[1] + im4[3]);
            let (m13ir, m13ii) = (-(im4[1] - im4[3]), re4[1] - re4[3]);
            re4[0] = p02r + p13r;
            im4[0] = p02i + p13i;
            re4[1] = m02r + m13ir;
            im4[1] = m02i + m13ii;
            re4[2] = p02r - p13r;
            im4[2] = p02i - p13i;
            re4[3] = m02r - m13ir;
            im4[3] = m02i - m13ii;
        }
        return;
    }
    match stage.radix {
        Radix::Two => backend::inv_stage_r2(kb, re, im, len, &stage.tw_re, &stage.tw_im),
        Radix::Four => backend::inv_stage_r4(kb, re, im, len, &stage.tw_re, &stage.tw_im),
    }
}

/// Precomputed plan for forward/inverse complex FFTs of a fixed size
/// under the **bit-reversed-spectrum convention**: the forward
/// transform emits the spectrum digit-reversed, the inverse consumes
/// exactly that ordering, and no permutation pass ever runs.
///
/// Use this kernel when spectra are consumed pointwise (convolution
/// via [`crate::pointwise_mul_add`]); use [`crate::FftPlan`] when a
/// natural-order spectrum is required.
///
/// # Example
///
/// Round trip without any permutation:
///
/// ```
/// use strix_fft::{Complex64, SpectralPlan};
///
/// # fn main() -> Result<(), strix_fft::FftError> {
/// let plan = SpectralPlan::new(8)?;
/// let input: Vec<Complex64> =
///     (0..8).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
/// let mut data = input.clone();
/// plan.forward(&mut data)?; // digit-reversed spectrum
/// plan.inverse(&mut data)?; // natural order again
/// for (a, b) in data.iter().zip(&input) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SpectralPlan {
    size: usize,
    /// The resolved kernel backend every batched (SoA) stage runs on —
    /// never [`StrixFftBackend::Auto`] after construction.
    backend: StrixFftBackend,
    /// DIF stages, largest block first (`len = n, …, 4|2`).
    fwd_stages: Vec<Stage>,
    /// DIT stages, smallest block first — each the exact inverse of
    /// the matching forward stage, with its own conjugate table.
    inv_stages: Vec<Stage>,
}

impl SpectralPlan {
    /// Smallest supported transform size.
    pub const MIN_SIZE: usize = 1;

    /// Creates a plan for transforms of `size` points, selecting the
    /// kernel backend by runtime CPU detection (honouring the
    /// `STRIX_FFT_BACKEND` environment override).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] if `size` is not a power of
    /// two, or [`FftError::InvalidBackendEnv`] if the environment
    /// override holds an unknown backend name.
    pub fn new(size: usize) -> Result<Self, FftError> {
        Self::with_backend(size, StrixFftBackend::Auto)
    }

    /// Creates a plan for transforms of `size` points on an explicitly
    /// requested kernel backend. [`StrixFftBackend::Auto`] behaves
    /// like [`Self::new`]; a concrete backend is used as-is after a
    /// CPU-capability check.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::InvalidSize`] if `size` is not a power of
    /// two, [`FftError::BackendUnavailable`] if the requested backend
    /// is not supported by this CPU, or
    /// [`FftError::InvalidBackendEnv`] for a malformed environment
    /// override under `Auto`.
    pub fn with_backend(size: usize, backend: StrixFftBackend) -> Result<Self, FftError> {
        let backend = backend.resolve()?;
        if !is_pow2_at_least(size, Self::MIN_SIZE) {
            return Err(FftError::InvalidSize { requested: size, min: Self::MIN_SIZE });
        }
        // Radix schedule: one radix-2 stage first when log2(n) is odd,
        // then radix-4 all the way down. The first stage is the
        // whole-array one, which is also the stage the negacyclic
        // wrapper fuses its twist into.
        let log2 = size.trailing_zeros();
        let mut radices = Vec::new();
        let mut remaining = log2;
        if remaining % 2 == 1 {
            radices.push(Radix::Two);
            remaining -= 1;
        }
        radices.extend(std::iter::repeat_n(Radix::Four, (remaining / 2) as usize));

        let build = |sign: f64| {
            let mut stages = Vec::with_capacity(radices.len());
            let mut len = size;
            for &r in &radices {
                stages.push(Stage::new(r, len, sign));
                len /= match r {
                    Radix::Two => 2,
                    Radix::Four => 4,
                };
            }
            stages
        };
        let fwd_stages = build(-1.0);
        let mut inv_stages = build(1.0);
        inv_stages.reverse();
        Ok(Self { size, backend, fwd_stages, inv_stages })
    }

    /// The transform size this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The resolved kernel backend the batched entry points run on
    /// (never [`StrixFftBackend::Auto`]).
    #[inline]
    pub fn backend(&self) -> StrixFftBackend {
        self.backend
    }

    /// Number of butterfly stages (radix-4 counts once) — the depth of
    /// the equivalent pipelined hardware unit after radix folding.
    #[inline]
    pub fn stages(&self) -> usize {
        self.fwd_stages.len()
    }

    /// In-place forward DIF FFT: natural order in, digit-reversed
    /// spectrum out. Bin `k` of the natural spectrum lands at slot
    /// [`Self::permutation`]`[k]`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs
    /// from the plan size.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.check_len(data.len())?;
        for stage in &self.fwd_stages {
            apply_fwd_stage(stage, data);
        }
        Ok(())
    }

    /// In-place unnormalised inverse DIT FFT: digit-reversed spectrum
    /// in, natural order out, scaled by `n` (dividing is left to the
    /// caller so the constant can be fused elsewhere, as
    /// [`crate::NegacyclicFft`] fuses it into its untwist table).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on size mismatch.
    pub fn inverse_unnormalized(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.check_len(data.len())?;
        for stage in &self.inv_stages {
            apply_inv_stage(stage, data);
        }
        Ok(())
    }

    /// In-place normalised inverse FFT (divides by `n`).
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on size mismatch.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), FftError> {
        self.inverse_unnormalized(data)?;
        let scale = 1.0 / self.size as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
        Ok(())
    }

    /// Batched in-place forward DIF FFT over a whole [`SoaSpectrum`]:
    /// every transform goes natural order in → digit-reversed spectrum
    /// out, exactly like [`Self::forward`], but each butterfly stage
    /// runs across **all** transforms before the next stage starts, so
    /// one walk of the stage's twiddle table is amortised over the
    /// batch and the tables stay cache-hot. Per-transform arithmetic is
    /// untouched (the stage/transform loops merely interchange), so
    /// results are **bit-identical** to looping [`Self::forward`] over
    /// interleaved copies of the same data.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if the batch's transform
    /// length differs from the plan size.
    pub fn forward_many(&self, batch: &mut SoaSpectrum) -> Result<(), FftError> {
        self.check_len(batch.transform_len())?;
        for stage in &self.fwd_stages {
            for t in 0..batch.count() {
                let (re, im) = batch.transform_mut(t);
                apply_fwd_stage_soa(self.backend, stage, re, im);
            }
        }
        Ok(())
    }

    /// Batched unnormalised inverse DIT FFT over a whole
    /// [`SoaSpectrum`]: the stage-across-batch counterpart of
    /// [`Self::inverse_unnormalized`], bit-identical to looping it per
    /// transform.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on transform-length
    /// mismatch.
    pub fn inverse_many_unnormalized(&self, batch: &mut SoaSpectrum) -> Result<(), FftError> {
        self.check_len(batch.transform_len())?;
        for stage in &self.inv_stages {
            for t in 0..batch.count() {
                let (re, im) = batch.transform_mut(t);
                apply_inv_stage_soa(self.backend, stage, re, im);
            }
        }
        Ok(())
    }

    /// Batched normalised inverse FFT (divides every transform by `n`),
    /// bit-identical to looping [`Self::inverse`] per transform.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on transform-length
    /// mismatch.
    pub fn inverse_many(&self, batch: &mut SoaSpectrum) -> Result<(), FftError> {
        self.inverse_many_unnormalized(batch)?;
        let scale = 1.0 / self.size as f64;
        for t in 0..batch.count() {
            let (re, im) = batch.transform_mut(t);
            for v in re.iter_mut() {
                *v *= scale;
            }
            for v in im.iter_mut() {
                *v *= scale;
            }
        }
        Ok(())
    }

    /// The bin→slot map of the forward transform: natural-order bin
    /// `k` is stored at slot `permutation()[k]` of the output. For a
    /// pure radix-2 schedule this is the classic bit reversal; with
    /// radix-4 stages it is the matching mixed-radix digit reversal.
    ///
    /// Only diagnostics and tests need this — the production pipeline
    /// (VMA pointwise multiply, inverse transform) is
    /// ordering-agnostic by design.
    pub fn permutation(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.size];
        for (k, slot) in out.iter_mut().enumerate() {
            let mut pos = 0usize;
            let mut block = self.size;
            let mut idx = k;
            for stage in &self.fwd_stages {
                let r = stage.factor();
                pos += (idx % r) * (block / r);
                idx /= r;
                block /= r;
            }
            *slot = pos;
        }
        out
    }

    /// Fold + twist + first forward stage in one out-of-place pass,
    /// then the remaining stages in place on `out`. `poly` holds the
    /// `2n` real coefficients (`z_j = poly[j] + i·poly[j+n]` after
    /// folding), `twist` the `n` per-element twist factors. All
    /// operands are pre-sliced to exact lengths so the inner loops
    /// carry no bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if `poly.len() != 2n`, `twist.len() != n` or
    /// `out.len() != n` (callers validate first).
    pub(crate) fn forward_folded_twisted<T: Copy>(
        &self,
        poly: &[T],
        twist: &[Complex64],
        out: &mut [Complex64],
        to_f64: impl Fn(T) -> f64,
    ) {
        let n = self.size;
        assert_eq!(poly.len(), 2 * n, "folded input length mismatch");
        assert_eq!(twist.len(), n, "twist table length mismatch");
        assert_eq!(out.len(), n, "output length mismatch");
        let (re, im) = poly.split_at(n);
        let Some((first, rest)) = self.fwd_stages.split_first() else {
            out[0] = Complex64::new(to_f64(re[0]), to_f64(im[0])) * twist[0];
            return;
        };
        match first.radix {
            Radix::Two => {
                let q = n / 2;
                let (re0, re1) = re.split_at(q);
                let (im0, im1) = im.split_at(q);
                let (tw0, tw1) = twist.split_at(q);
                let (o0, o1) = out.split_at_mut(q);
                let w = &first.twiddles[..q];
                for j in 0..q {
                    let x = Complex64::new(to_f64(re0[j]), to_f64(im0[j])) * tw0[j];
                    let y = Complex64::new(to_f64(re1[j]), to_f64(im1[j])) * tw1[j];
                    o0[j] = x + y;
                    o1[j] = (x - y) * w[j];
                }
            }
            Radix::Four => {
                let q = n / 4;
                let (o0, r) = out.split_at_mut(q);
                let (o1, r) = r.split_at_mut(q);
                let (o2, o3) = r.split_at_mut(q);
                let w = &first.twiddles[..3 * q];
                for j in 0..q {
                    let a0 = Complex64::new(to_f64(re[j]), to_f64(im[j])) * twist[j];
                    let a1 = Complex64::new(to_f64(re[j + q]), to_f64(im[j + q])) * twist[j + q];
                    let a2 = Complex64::new(to_f64(re[j + 2 * q]), to_f64(im[j + 2 * q]))
                        * twist[j + 2 * q];
                    let a3 = Complex64::new(to_f64(re[j + 3 * q]), to_f64(im[j + 3 * q]))
                        * twist[j + 3 * q];
                    let (y0, y1, y2, y3) =
                        fwd_radix4_core(a0, a1, a2, a3, w[3 * j], w[3 * j + 1], w[3 * j + 2]);
                    o0[j] = y0;
                    o1[j] = y1;
                    o2[j] = y2;
                    o3[j] = y3;
                }
            }
        }
        for stage in rest {
            apply_fwd_stage(stage, out);
        }
    }

    /// All inverse stages but the last in place on `spectrum`, then
    /// the last (whole-array) stage fused with the merged
    /// untwist+normalise multiply and the unfold into the `2n` real
    /// output coefficients — the separate untwist and normalisation
    /// passes never run. Operands are pre-sliced to exact lengths so
    /// the final loop carries no bounds checks.
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len() != n`, `untwist.len() != n` or
    /// `out.len() != 2n` (callers validate first).
    pub(crate) fn inverse_folded_untwisted(
        &self,
        spectrum: &mut [Complex64],
        untwist: &[Complex64],
        out: &mut [f64],
    ) {
        let n = self.size;
        assert_eq!(spectrum.len(), n, "spectrum length mismatch");
        assert_eq!(untwist.len(), n, "untwist table length mismatch");
        assert_eq!(out.len(), 2 * n, "output length mismatch");
        let (out_re, out_im) = out.split_at_mut(n);
        let Some((last, rest)) = self.inv_stages.split_last() else {
            let z = spectrum[0] * untwist[0];
            out_re[0] = z.re;
            out_im[0] = z.im;
            return;
        };
        for stage in rest {
            apply_inv_stage(stage, spectrum);
        }
        match last.radix {
            Radix::Two => {
                let q = n / 2;
                let (s0, s1) = spectrum.split_at(q);
                let (u0, u1) = untwist.split_at(q);
                let (r0, r1) = out_re.split_at_mut(q);
                let (i0, i1) = out_im.split_at_mut(q);
                let w = &last.twiddles[..q];
                for j in 0..q {
                    let x = s0[j];
                    let y = s1[j] * w[j];
                    let z0 = (x + y) * u0[j];
                    let z1 = (x - y) * u1[j];
                    r0[j] = z0.re;
                    i0[j] = z0.im;
                    r1[j] = z1.re;
                    i1[j] = z1.im;
                }
            }
            Radix::Four => {
                let q = n / 4;
                let w = &last.twiddles[..3 * q];
                for j in 0..q {
                    let (x0, x1, x2, x3) = inv_radix4_core(
                        spectrum[j],
                        spectrum[j + q],
                        spectrum[j + 2 * q],
                        spectrum[j + 3 * q],
                        w[3 * j],
                        w[3 * j + 1],
                        w[3 * j + 2],
                    );
                    let z0 = x0 * untwist[j];
                    let z1 = x1 * untwist[j + q];
                    let z2 = x2 * untwist[j + 2 * q];
                    let z3 = x3 * untwist[j + 3 * q];
                    out_re[j] = z0.re;
                    out_im[j] = z0.im;
                    out_re[j + q] = z1.re;
                    out_im[j + q] = z1.im;
                    out_re[j + 2 * q] = z2.re;
                    out_im[j + 2 * q] = z2.im;
                    out_re[j + 3 * q] = z3.re;
                    out_im[j + 3 * q] = z3.im;
                }
            }
        }
    }

    /// Batched split-complex counterpart of
    /// [`Self::forward_folded_twisted`]: transforms `count` packed
    /// real `i64` polynomials (each `2n` coefficients, laid out back
    /// to back in `polys`) into the matching transforms of `batch`.
    /// The fused fold+twist+first-stage pass runs per transform
    /// straight from the coefficient array — dispatched to the plan's
    /// kernel backend, which also performs the exact i64→f64 torus
    /// conversion in-register; every remaining butterfly stage then
    /// runs **across the whole batch** before the next stage starts,
    /// amortising one twiddle-table walk over all `count` transforms.
    /// Per-transform arithmetic mirrors the interleaved fused path
    /// expression for expression, so the spectra are bit-identical to
    /// it on every backend.
    ///
    /// # Panics
    ///
    /// Panics if `polys.len() != 2n · count`, the twist planes are not
    /// `n` long, or `batch`'s transform length is not `n` (callers
    /// validate first).
    pub(crate) fn forward_folded_twisted_many(
        &self,
        polys: &[i64],
        twist_re: &[f64],
        twist_im: &[f64],
        batch: &mut SoaSpectrum,
    ) {
        let n = self.size;
        let count = batch.count();
        assert_eq!(polys.len(), 2 * n * count, "folded batch length mismatch");
        assert_eq!(twist_re.len(), n, "twist table length mismatch");
        assert_eq!(twist_im.len(), n, "twist table length mismatch");
        assert_eq!(batch.transform_len(), n, "batch transform length mismatch");
        let Some((first, rest)) = self.fwd_stages.split_first() else {
            for (t, poly) in polys.chunks_exact(2 * n).enumerate() {
                let (re, im) = batch.transform_mut(t);
                let (zr, zi) = cmul(poly[0] as f64, poly[1] as f64, twist_re[0], twist_im[0]);
                re[0] = zr;
                im[0] = zi;
            }
            return;
        };
        for (t, poly) in polys.chunks_exact(2 * n).enumerate() {
            let (out_re, out_im) = batch.transform_mut(t);
            match first.radix {
                Radix::Two => backend::fold_twist_r2(
                    self.backend,
                    poly,
                    twist_re,
                    twist_im,
                    out_re,
                    out_im,
                    &first.tw_re,
                    &first.tw_im,
                ),
                Radix::Four => backend::fold_twist_r4(
                    self.backend,
                    poly,
                    twist_re,
                    twist_im,
                    out_re,
                    out_im,
                    &first.tw_re,
                    &first.tw_im,
                ),
            }
        }
        for stage in rest {
            for t in 0..count {
                let (re, im) = batch.transform_mut(t);
                apply_fwd_stage_soa(self.backend, stage, re, im);
            }
        }
    }

    /// Batched split-complex counterpart of
    /// [`Self::inverse_folded_untwisted`]: every inverse stage but the
    /// last runs **across the whole batch**, then the fused last
    /// stage + merged untwist/normalise multiply + unfold writes each
    /// transform straight into its `2n`-coefficient slot of `out`.
    /// Bit-identical to the interleaved fused path per transform.
    ///
    /// # Panics
    ///
    /// Panics if `batch`'s transform length is not `n`, the untwist
    /// planes are not `n` long, or `out.len() != 2n · count` (callers
    /// validate first).
    pub(crate) fn inverse_folded_untwisted_many(
        &self,
        batch: &mut SoaSpectrum,
        untwist_re: &[f64],
        untwist_im: &[f64],
        out: &mut [f64],
    ) {
        let n = self.size;
        let count = batch.count();
        assert_eq!(batch.transform_len(), n, "batch transform length mismatch");
        assert_eq!(untwist_re.len(), n, "untwist table length mismatch");
        assert_eq!(untwist_im.len(), n, "untwist table length mismatch");
        assert_eq!(out.len(), 2 * n * count, "output batch length mismatch");
        let Some((last, rest)) = self.inv_stages.split_last() else {
            for (t, slot) in out.chunks_exact_mut(2 * n).enumerate() {
                let (re, im) = batch.transform(t);
                let (zr, zi) = cmul(re[0], im[0], untwist_re[0], untwist_im[0]);
                slot[0] = zr;
                slot[1] = zi;
            }
            return;
        };
        for stage in rest {
            for t in 0..count {
                let (re, im) = batch.transform_mut(t);
                apply_inv_stage_soa(self.backend, stage, re, im);
            }
        }
        for (t, slot) in out.chunks_exact_mut(2 * n).enumerate() {
            let (sre, sim) = batch.transform(t);
            match last.radix {
                Radix::Two => backend::untwist_unfold_r2(
                    self.backend,
                    sre,
                    sim,
                    untwist_re,
                    untwist_im,
                    slot,
                    &last.tw_re,
                    &last.tw_im,
                ),
                Radix::Four => backend::untwist_unfold_r4(
                    self.backend,
                    sre,
                    sim,
                    untwist_re,
                    untwist_im,
                    slot,
                    &last.tw_re,
                    &last.tw_im,
                ),
            }
        }
    }

    fn check_len(&self, len: usize) -> Result<(), FftError> {
        if len != self.size {
            return Err(FftError::LengthMismatch { expected: self.size, actual: len });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;

    fn sample(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| Complex64::new((i as f64 * 0.37).sin() * 8.0, (i as f64 * 0.61).cos() * 5.0))
            .collect()
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(SpectralPlan::new(3).is_err());
        assert!(SpectralPlan::new(0).is_err());
        assert!(SpectralPlan::new(1).is_ok());
    }

    #[test]
    fn rejects_wrong_buffer_length() {
        let plan = SpectralPlan::new(8).unwrap();
        let mut short = vec![Complex64::ZERO; 4];
        assert_eq!(
            plan.forward(&mut short).unwrap_err(),
            FftError::LengthMismatch { expected: 8, actual: 4 }
        );
        assert!(plan.inverse(&mut short).is_err());
    }

    #[test]
    fn stage_schedule_prefers_radix4() {
        // 1024 = 4^5: five radix-4 stages. 512 = 2·4^4: one radix-2
        // fixup plus four radix-4 stages.
        assert_eq!(SpectralPlan::new(1024).unwrap().stages(), 5);
        assert_eq!(SpectralPlan::new(512).unwrap().stages(), 5);
        assert_eq!(SpectralPlan::new(2).unwrap().stages(), 1);
        assert_eq!(SpectralPlan::new(1).unwrap().stages(), 0);
    }

    #[test]
    fn forward_matches_natural_order_oracle_under_permutation() {
        for log_n in 0..=10 {
            let n = 1usize << log_n;
            let input = sample(n);
            let plan = SpectralPlan::new(n).unwrap();
            let oracle = FftPlan::new(n).unwrap();

            let mut reversed = input.clone();
            plan.forward(&mut reversed).unwrap();
            let mut natural = input.clone();
            oracle.forward(&mut natural).unwrap();

            let perm = plan.permutation();
            for (k, &slot) in perm.iter().enumerate() {
                let d = (reversed[slot] - natural[k]).abs();
                assert!(d < 1e-9 * n as f64, "n={n} bin={k}: {d}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity_without_permutation() {
        for log_n in 0..=12 {
            let n = 1usize << log_n;
            let input = sample(n);
            let plan = SpectralPlan::new(n).unwrap();
            let mut data = input.clone();
            plan.forward(&mut data).unwrap();
            plan.inverse(&mut data).unwrap();
            for (a, b) in data.iter().zip(&input) {
                assert!((*a - *b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn unnormalized_inverse_scales_by_n() {
        let n = 64;
        let input = sample(n);
        let plan = SpectralPlan::new(n).unwrap();
        let mut data = input.clone();
        plan.forward(&mut data).unwrap();
        plan.inverse_unnormalized(&mut data).unwrap();
        for (a, b) in data.iter().zip(&input) {
            assert!((*a - b.scale(n as f64)).abs() < 1e-8);
        }
    }

    #[test]
    fn permutation_is_a_bijection_and_bit_reversal_for_radix2() {
        for n in [1usize, 2, 4, 8, 64, 512, 1024] {
            let perm = SpectralPlan::new(n).unwrap().permutation();
            let mut seen = vec![false; n];
            for &p in &perm {
                assert!(!seen[p], "slot {p} hit twice at n={n}");
                seen[p] = true;
            }
        }
        // n = 2: single radix-2 stage, permutation is identity on 2
        // elements (bit reversal of 1 bit).
        assert_eq!(SpectralPlan::new(2).unwrap().permutation(), vec![0, 1]);
        // n = 4: single radix-4 stage = 2-bit digit reversal =
        // identity? No: radix-4 splits by k mod 4 into quarter s, so
        // bin k sits at slot (k%4)·1 + k/4 — for n=4 that is identity.
        assert_eq!(SpectralPlan::new(4).unwrap().permutation(), vec![0, 1, 2, 3]);
        // n = 8: radix-2 then radix-4 — mixed-digit reversal.
        let perm8 = SpectralPlan::new(8).unwrap().permutation();
        let mut inverse = [0usize; 8];
        for (k, &p) in perm8.iter().enumerate() {
            inverse[p] = k;
        }
        // Spot-check against the oracle: slot order must list bins so
        // that the DIT inverse reading slots 0.. reconstructs naturally.
        let n = 8;
        let input = sample(n);
        let plan = SpectralPlan::new(n).unwrap();
        let oracle = FftPlan::new(n).unwrap();
        let mut reversed = input.clone();
        plan.forward(&mut reversed).unwrap();
        let mut natural = input;
        oracle.forward(&mut natural).unwrap();
        for (slot, &bin) in inverse.iter().enumerate() {
            assert!((reversed[slot] - natural[bin]).abs() < 1e-9);
        }
    }

    #[test]
    fn fused_forward_matches_plain_forward() {
        // With a unit twist table, the fused fold+twist+first-stage
        // path must reproduce the plain in-place forward bit for bit.
        for n in [1usize, 2, 8, 16, 128, 512] {
            let input = sample(n);
            let plan = SpectralPlan::new(n).unwrap();
            let mut plain = input.clone();
            plan.forward(&mut plain).unwrap();
            // Fold layout: first n reals, then n imaginaries.
            let folded: Vec<f64> =
                input.iter().map(|z| z.re).chain(input.iter().map(|z| z.im)).collect();
            let ones = vec![Complex64::ONE; n];
            let mut fused = vec![Complex64::ZERO; n];
            plan.forward_folded_twisted(&folded, &ones, &mut fused, |v| v);
            assert_eq!(plain, fused, "n={n}");
        }
    }

    #[test]
    fn fused_inverse_matches_plain_inverse() {
        // With a unit untwist table, the fused last stage must agree
        // with the plain unnormalised inverse bit for bit.
        for n in [1usize, 2, 8, 16, 128, 512] {
            let input = sample(n);
            let plan = SpectralPlan::new(n).unwrap();
            let mut spec = input.clone();
            plan.forward(&mut spec).unwrap();

            let mut plain = spec.clone();
            plan.inverse_unnormalized(&mut plain).unwrap();

            let ones = vec![Complex64::ONE; n];
            let mut unfolded = vec![0.0f64; 2 * n];
            let mut scratch = spec;
            plan.inverse_folded_untwisted(&mut scratch, &ones, &mut unfolded);
            for j in 0..n {
                assert_eq!(plain[j].re, unfolded[j], "re n={n} j={j}");
                assert_eq!(plain[j].im, unfolded[j + n], "im n={n} j={j}");
            }
        }
    }
}
