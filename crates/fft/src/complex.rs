//! A minimal `f64` complex number.
//!
//! The Strix functional-unit datapaths operate on pairs of fixed-point
//! real/imaginary words; in this software model we use `f64` pairs, the
//! same representation the Concrete library (and tfhe-rs) uses for its
//! Fourier-domain bootstrapping keys.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// `repr(C)` pins the `(re, im)` field order in memory: the SIMD
/// backends load interleaved `[Complex64]` slices as packed `f64`
/// pairs, which is only sound with a guaranteed layout.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates the complex exponential `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self { re: theta.cos(), im: theta.sin() }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Returns the squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `√(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// Multiplies by the imaginary unit (a 90° rotation), exactly.
    #[inline]
    pub fn mul_i(self) -> Self {
        Self { re: -self.im, im: self.re }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn addition_and_subtraction_are_componentwise() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3 + 4i + 6i + 8i² = -5 + 10i
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn mul_i_is_quarter_turn() {
        let z = Complex64::new(3.0, -2.0);
        assert_eq!(z.mul_i(), z * Complex64::I);
    }

    #[test]
    fn conjugate_negates_imaginary_part() {
        let z = Complex64::new(5.0, 7.0);
        assert_eq!(z.conj(), Complex64::new(5.0, -7.0));
        assert!((z * z.conj()).im.abs() < EPS);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < EPS);
    }

    #[test]
    fn sum_folds_from_zero() {
        let zs = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -3.0)];
        let s: Complex64 = zs.iter().copied().sum();
        assert_eq!(s, Complex64::new(3.0, -2.0));
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
