//! Error type for transform construction and application.

use std::error::Error;
use std::fmt;

use crate::backend::{StrixFftBackend, BACKEND_ENV_VAR};

/// Errors produced by FFT plan construction and execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FftError {
    /// The requested transform size is not a supported power of two.
    InvalidSize {
        /// The size that was requested.
        requested: usize,
        /// The minimum supported size.
        min: usize,
    },
    /// An input or output buffer does not match the plan's size.
    LengthMismatch {
        /// The length the plan expects.
        expected: usize,
        /// The length that was supplied.
        actual: usize,
    },
    /// An explicitly requested kernel backend is not supported by the
    /// CPU this process is running on.
    BackendUnavailable {
        /// The backend that was requested.
        requested: StrixFftBackend,
    },
    /// The `STRIX_FFT_BACKEND` environment variable holds a value that
    /// is not one of `auto`, `portable`, `avx2`, or `avx512`.
    InvalidBackendEnv,
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FftError::InvalidSize { requested, min } => {
                write!(f, "transform size {requested} is not a power of two >= {min}")
            }
            FftError::LengthMismatch { expected, actual } => {
                write!(f, "buffer length {actual} does not match plan size {expected}")
            }
            FftError::BackendUnavailable { requested } => {
                write!(f, "kernel backend {requested} is not supported by this cpu")
            }
            FftError::InvalidBackendEnv => {
                write!(f, "{BACKEND_ENV_VAR} must be one of auto, portable, avx2, avx512",)
            }
        }
    }
}

impl Error for FftError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = FftError::InvalidSize { requested: 3, min: 2 };
        assert_eq!(e.to_string(), "transform size 3 is not a power of two >= 2");
        let e = FftError::LengthMismatch { expected: 8, actual: 4 };
        assert_eq!(e.to_string(), "buffer length 4 does not match plan size 8");
        let e = FftError::BackendUnavailable { requested: StrixFftBackend::Avx512 };
        assert_eq!(e.to_string(), "kernel backend avx512 is not supported by this cpu");
        let e = FftError::InvalidBackendEnv;
        assert_eq!(e.to_string(), "STRIX_FFT_BACKEND must be one of auto, portable, avx2, avx512");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FftError>();
    }
}
