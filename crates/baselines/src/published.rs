//! Published comparison points (Table V of the paper).
//!
//! These constants are carried verbatim from the paper so the benchmark
//! harness can print the full table next to our measured/simulated
//! columns. Latencies are in milliseconds, throughput in PBS/s; `None`
//! marks entries the paper leaves blank ("–").

use serde::Serialize;

use strix_tfhe::ParameterSet;

/// One platform's published result for one parameter set.
///
/// Serializable for report export; not `Deserialize` because the
/// platform labels are `&'static str` carried from the paper.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct PlatformPoint {
    /// Platform name as printed in Table V.
    pub platform: &'static str,
    /// Hardware class (CPU/GPU/FPGA/ASIC).
    pub hardware: &'static str,
    /// Parameter set.
    pub set: ParameterSet,
    /// Latency in milliseconds (`None` = not reported).
    pub latency_ms: Option<f64>,
    /// Throughput in PBS per second (`None` = not reported).
    pub throughput_pbs_s: Option<f64>,
}

const fn point(
    platform: &'static str,
    hardware: &'static str,
    set: ParameterSet,
    latency_ms: Option<f64>,
    throughput_pbs_s: Option<f64>,
) -> PlatformPoint {
    PlatformPoint { platform, hardware, set, latency_ms, throughput_pbs_s }
}

/// Every row of Table V.
pub const PUBLISHED_TABLE_V: &[PlatformPoint] = &[
    // Concrete on an Intel Xeon Platinum.
    point("Concrete", "CPU", ParameterSet::SetI, Some(14.0), Some(70.0)),
    point("Concrete", "CPU", ParameterSet::SetII, Some(19.0), Some(52.0)),
    point("Concrete", "CPU", ParameterSet::SetIII, Some(38.0), Some(26.0)),
    point("Concrete", "CPU", ParameterSet::SetIV, Some(969.0), Some(1.0)),
    // NuFHE on an Nvidia Titan RTX.
    point("NuFHE", "GPU", ParameterSet::SetI, Some(37.0), Some(2_000.0)),
    point("NuFHE", "GPU", ParameterSet::SetII, Some(700.0), Some(500.0)),
    // YKP (FPGA).
    point("YKP", "FPGA", ParameterSet::SetI, Some(1.88), Some(2_657.0)),
    point("YKP", "FPGA", ParameterSet::SetIII, Some(4.78), Some(836.0)),
    // XHEC (CPU–FPGA).
    point("XHEC", "FPGA", ParameterSet::SetI, None, Some(2_200.0)),
    point("XHEC", "FPGA", ParameterSet::SetII, None, Some(1_800.0)),
    // Matcha (ASIC).
    point("Matcha", "ASIC", ParameterSet::SetI, Some(0.20), Some(10_000.0)),
    // Strix (ASIC) — the paper's own reported numbers.
    point("Strix", "ASIC", ParameterSet::SetI, Some(0.16), Some(74_696.0)),
    point("Strix", "ASIC", ParameterSet::SetII, Some(0.23), Some(39_600.0)),
    point("Strix", "ASIC", ParameterSet::SetIII, Some(0.44), Some(21_104.0)),
    point("Strix", "ASIC", ParameterSet::SetIV, Some(3.31), Some(2_368.0)),
];

/// Looks up a platform's point for a parameter set.
pub fn lookup(platform: &str, set: ParameterSet) -> Option<&'static PlatformPoint> {
    PUBLISHED_TABLE_V.iter().find(|p| p.platform == platform && p.set == set)
}

/// The paper's headline ratios, derivable from the table: Strix vs CPU
/// and vs GPU throughput at set I, and vs Matcha.
pub fn headline_speedups() -> (f64, f64, f64) {
    let strix = lookup("Strix", ParameterSet::SetI).unwrap().throughput_pbs_s.unwrap();
    let cpu = lookup("Concrete", ParameterSet::SetI).unwrap().throughput_pbs_s.unwrap();
    let gpu = lookup("NuFHE", ParameterSet::SetI).unwrap().throughput_pbs_s.unwrap();
    let matcha = lookup("Matcha", ParameterSet::SetI).unwrap().throughput_pbs_s.unwrap();
    (strix / cpu, strix / gpu, strix / matcha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_match_abstract() {
        // Abstract: "1,067× and 37× higher throughput … than CPU and
        // GPU … outperforming the state of the art TFHE accelerator by
        // 7.4×".
        let (vs_cpu, vs_gpu, vs_matcha) = headline_speedups();
        assert!((vs_cpu - 1067.0).abs() < 1.0, "{vs_cpu}");
        assert!((vs_gpu - 37.348).abs() < 0.5, "{vs_gpu}");
        assert!((vs_matcha - 7.4696).abs() < 0.1, "{vs_matcha}");
    }

    #[test]
    fn strix_dominates_every_platform_row() {
        for set in ParameterSet::ALL {
            let strix = lookup("Strix", set).unwrap();
            for p in PUBLISHED_TABLE_V.iter().filter(|p| p.set == set && p.platform != "Strix") {
                if let (Some(s), Some(o)) = (strix.throughput_pbs_s, p.throughput_pbs_s) {
                    assert!(s > o, "{} beats Strix at {set}?", p.platform);
                }
                if let (Some(s), Some(o)) = (strix.latency_ms, p.latency_ms) {
                    assert!(s < o, "{} lower latency than Strix at {set}?", p.platform);
                }
            }
        }
    }

    #[test]
    fn lookup_misses_unreported_cells() {
        assert!(lookup("NuFHE", ParameterSet::SetIII).is_none());
        assert!(lookup("Matcha", ParameterSet::SetII).is_none());
        assert!(lookup("YKP", ParameterSet::SetI).is_some());
    }

    #[test]
    fn xhec_reports_throughput_only() {
        let p = lookup("XHEC", ParameterSet::SetI).unwrap();
        assert!(p.latency_ms.is_none());
        assert!(p.throughput_pbs_s.is_some());
    }

    #[test]
    fn table_has_fifteen_rows() {
        assert_eq!(PUBLISHED_TABLE_V.len(), 15);
    }
}
