//! Workload breakdown of a bootstrapped gate — the Fig. 1 experiment.
//!
//! Runs instrumented NAND gates on the host CPU and aggregates the
//! per-stage timings into the three panels of the paper's figure:
//! gate-level proportions (PBS / KS / other), PBS-level proportions
//! (blind rotation vs the rest), and blind-rotation-iteration
//! proportions (rotate / decompose / FFT / vector-multiply /
//! IFFT+accumulate).

use serde::{Deserialize, Serialize};

use strix_tfhe::prelude::*;
use strix_tfhe::profiler::{PbsStage, StageTimings};

/// The three panels of Fig. 1, as fractions summing to 1 each.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GateBreakdown {
    /// Parameter-set name.
    pub params_name: String,
    /// Panel 1: fraction of gate time in PBS.
    pub pbs_fraction: f64,
    /// Panel 1: fraction of gate time in keyswitching.
    pub keyswitch_fraction: f64,
    /// Panel 1: fraction of gate time in other (linear) operations.
    pub other_fraction: f64,
    /// Panel 2: fraction of PBS time inside blind rotation.
    pub blind_rotation_of_pbs: f64,
    /// Panel 3: per-stage fractions within one blind-rotation
    /// iteration, `(label, fraction)` in pipeline order.
    pub iteration_stages: Vec<(String, f64)>,
    /// Raw accumulated timings for further analysis.
    pub raw: StageTimings,
}

/// Runs `gates` instrumented NAND gates and aggregates the breakdown.
pub fn measure(params: &TfheParameters, gates: usize, seed: u64) -> GateBreakdown {
    let (mut client, server) = generate_keys(params, seed);
    let a = client.encrypt_bool(true);
    let b = client.encrypt_bool(false);
    let mut timings = StageTimings::new();
    for _ in 0..gates.max(1) {
        let _ = server.nand_profiled(&a, &b, &mut timings).expect("gate runs");
    }
    summarize(params, timings)
}

/// Builds the three Fig. 1 panels from raw stage timings.
pub fn summarize(params: &TfheParameters, raw: StageTimings) -> GateBreakdown {
    let pbs_fraction = raw.pbs_fraction();
    let keyswitch_fraction = raw.fraction(PbsStage::KeySwitch);
    let other_fraction = raw.fraction(PbsStage::LinearOps);

    let br: f64 = PbsStage::BLIND_ROTATION.iter().map(|&s| raw.fraction(s)).sum();
    let blind_rotation_of_pbs = if pbs_fraction > 0.0 { br / pbs_fraction } else { 0.0 };

    let iteration_stages = PbsStage::BLIND_ROTATION
        .iter()
        .map(|&s| {
            let f = if br > 0.0 { raw.fraction(s) / br } else { 0.0 };
            (s.label().to_string(), f)
        })
        .collect();

    GateBreakdown {
        params_name: params.name.clone(),
        pbs_fraction,
        keyswitch_fraction,
        other_fraction,
        blind_rotation_of_pbs,
        iteration_stages,
        raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> GateBreakdown {
        measure(&TfheParameters::testing_fast(), 2, 99)
    }

    #[test]
    fn panel_one_sums_to_one() {
        let b = breakdown();
        let sum = b.pbs_fraction + b.keyswitch_fraction + b.other_fraction;
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn pbs_dominates_like_fig1() {
        // Paper: ~65% PBS, ~30% KS, ~5% other on set I. Exact splits
        // shift with parameters/host, but PBS must dominate and linear
        // ops must be marginal.
        let b = breakdown();
        assert!(b.pbs_fraction > 0.5, "pbs {}", b.pbs_fraction);
        assert!(b.other_fraction < 0.1, "other {}", b.other_fraction);
    }

    #[test]
    fn blind_rotation_dominates_pbs() {
        // Paper: ~98% of PBS is blind rotation.
        let b = breakdown();
        assert!(b.blind_rotation_of_pbs > 0.9, "{}", b.blind_rotation_of_pbs);
    }

    #[test]
    fn iteration_stages_sum_to_one_and_fft_heavy() {
        let b = breakdown();
        let sum: f64 = b.iteration_stages.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // The external product (FFT + vec-mult + IFFT) dominates one
        // iteration; rotation is cheap. Threshold leaves headroom for
        // scheduler jitter when the test runner saturates all cores.
        let fft_like: f64 = b
            .iteration_stages
            .iter()
            .filter(|(l, _)| l != "Rotate" && l != "Decomp.")
            .map(|(_, f)| f)
            .sum();
        assert!(fft_like > 0.35, "{fft_like}");
        let rotate =
            b.iteration_stages.iter().find(|(l, _)| l == "Rotate").map(|(_, f)| *f).unwrap();
        assert!(rotate < fft_like, "rotation must be cheap: {rotate} vs {fft_like}");
    }

    #[test]
    fn stage_labels_are_the_paper_annotations() {
        let b = breakdown();
        let labels: Vec<&str> = b.iteration_stages.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["Rotate", "Decomp.", "FFT", "Vec. mult", "Accum.+IFFT"]);
    }
}
