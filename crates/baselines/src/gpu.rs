//! The GPU baseline: NuFHE-style device-level batching with
//! blind-rotation fragmentation (§III, Fig. 2).
//!
//! NuFHE batches one ciphertext per streaming multiprocessor, all SMs
//! sharing the bootstrapping key within an iteration. Execution time is
//! therefore a staircase in the number of ciphertexts — Eq. (1)/(2):
//!
//! ```text
//! total = (#fragments + 1) × BR-time-per-core,
//! #fragments = ⌈#ciphertexts / batch⌉ − 1
//! ```
//!
//! and attempting *core-level* batching on the GPU scales time linearly
//! with LWEs per core (Fig. 2, right panel) because the SM executes the
//! extra ciphertexts serially with no pipelining to amortise them —
//! the observation that motivates Strix's specialised streaming cores.

use serde::{Deserialize, Serialize};

use strix_tfhe::{ParameterSet, TfheParameters};

/// Analytical model of a NuFHE-class GPU.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Number of streaming multiprocessors (the device-level batch).
    pub sms: usize,
    /// Blind-rotation time for one full device batch, in seconds.
    pub batch_time_s: f64,
}

impl GpuModel {
    /// The Titan RTX running NuFHE at parameter set I: 72 SMs, 2,000
    /// PBS/s at full batch (Table V) → 36 ms per 72-ciphertext batch.
    pub fn titan_rtx_set_i() -> Self {
        Self { sms: 72, batch_time_s: 36.0e-3 }
    }

    /// Scales the set-I calibration to another parameter set by the
    /// blind-rotation FLOP ratio (`n · (k+1)(l_b+1) · N log N` for the
    /// transforms plus pointwise work). NuFHE itself only supports
    /// `N = 1024`; this extrapolation stands in for "a NuFHE-class GPU
    /// implementation" on the Deep-NN parameter families of Fig. 7.
    pub fn titan_rtx_for(params: &TfheParameters) -> Self {
        let base = Self::titan_rtx_set_i();
        let ratio = br_flops(params) / br_flops(&TfheParameters::set_i());
        Self { sms: base.sms, batch_time_s: base.batch_time_s * ratio }
    }

    /// Number of blind-rotation fragments for a ciphertext count —
    /// Eq. (2).
    pub fn fragments(&self, ciphertexts: usize) -> usize {
        if ciphertexts == 0 {
            return 0;
        }
        ciphertexts.div_ceil(self.sms) - 1
    }

    /// Device-level-batched execution time — Eq. (1).
    pub fn device_batched_time_s(&self, ciphertexts: usize) -> f64 {
        if ciphertexts == 0 {
            return 0.0;
        }
        (self.fragments(ciphertexts) + 1) as f64 * self.batch_time_s
    }

    /// Execution time when forcing `lwes_per_core` ciphertexts onto
    /// each SM (GPU core-level batching): linear scaling, no benefit
    /// (Fig. 2 right panel).
    pub fn core_batched_time_s(&self, lwes_per_core: usize) -> f64 {
        self.batch_time_s * lwes_per_core as f64
    }

    /// Steady-state throughput at full batches, PBS/s.
    pub fn throughput_pbs_s(&self) -> f64 {
        self.sms as f64 / self.batch_time_s
    }

    /// Latency of a single PBS (one underfilled batch).
    pub fn latency_s(&self) -> f64 {
        self.batch_time_s
    }

    /// The Fig. 2 left panel: normalised execution time versus number
    /// of LWEs, as `(lwes, time / batch_time)` pairs.
    pub fn fragmentation_profile(&self, max_lwes: usize, step: usize) -> Vec<(usize, f64)> {
        let step = step.max(1);
        (1..=max_lwes)
            .step_by(step)
            .map(|l| (l, self.device_batched_time_s(l) / self.batch_time_s))
            .collect()
    }
}

/// Blind-rotation FLOP estimate used for cross-parameter scaling.
fn br_flops(params: &TfheParameters) -> f64 {
    let n = params.lwe_dimension as f64;
    let nn = params.polynomial_size as f64;
    let k1 = (params.glwe_dimension + 1) as f64;
    let l = params.pbs_level as f64;
    let fft = nn * nn.log2();
    n * (k1 * (l + 1.0) * fft + k1 * k1 * l * nn)
}

/// Convenience: the published NuFHE point for a parameter set, when
/// NuFHE supports it (sets I and II only).
pub fn published_point(set: ParameterSet) -> Option<(f64, f64)> {
    crate::published::lookup("NuFHE", set).and_then(|p| Some((p.latency_ms?, p.throughput_pbs_s?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_table_v() {
        let g = GpuModel::titan_rtx_set_i();
        assert!((g.throughput_pbs_s() - 2000.0).abs() < 1.0);
        assert_eq!(g.sms, 72);
    }

    #[test]
    fn fragmentation_staircase_matches_fig2() {
        // Constant for 1–72 LWEs, 2× at 73–144, 3× at 145–216, 4× after.
        let g = GpuModel::titan_rtx_set_i();
        assert_eq!(g.fragments(1), 0);
        assert_eq!(g.fragments(72), 0);
        assert_eq!(g.fragments(73), 1);
        assert_eq!(g.fragments(144), 1);
        assert_eq!(g.fragments(145), 2);
        assert_eq!(g.fragments(288), 3);
        let t1 = g.device_batched_time_s(72);
        let t2 = g.device_batched_time_s(73);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn core_level_batching_on_gpu_gains_nothing() {
        // Fig. 2 right panel: time grows linearly with LWEs per core,
        // so fragments avoided are exactly paid back.
        let g = GpuModel::titan_rtx_set_i();
        for per_core in 1..=4 {
            let t = g.core_batched_time_s(per_core);
            assert!((t / g.batch_time_s - per_core as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_is_monotone_staircase() {
        let g = GpuModel::titan_rtx_set_i();
        let profile = g.fragmentation_profile(288, 1);
        assert_eq!(profile.len(), 288);
        let mut prev = 0.0;
        for &(_, t) in &profile {
            assert!(t >= prev);
            prev = t;
        }
        assert_eq!(profile.last().unwrap().1, 4.0);
    }

    #[test]
    fn scaling_to_bigger_parameters_slows_down() {
        let base = GpuModel::titan_rtx_set_i();
        let big = GpuModel::titan_rtx_for(&TfheParameters::deep_nn(4096).unwrap());
        assert!(big.batch_time_s > base.batch_time_s * 3.0);
    }

    #[test]
    fn zero_ciphertexts_cost_nothing() {
        let g = GpuModel::titan_rtx_set_i();
        assert_eq!(g.device_batched_time_s(0), 0.0);
        assert_eq!(g.fragments(0), 0);
    }

    #[test]
    fn published_points_only_for_supported_sets() {
        assert!(published_point(ParameterSet::SetI).is_some());
        assert!(published_point(ParameterSet::SetII).is_some());
        assert!(published_point(ParameterSet::SetIII).is_none());
        assert!(published_point(ParameterSet::SetIV).is_none());
    }
}
