//! Baseline performance models for the Strix evaluation.
//!
//! Three kinds of comparison points back the paper's Table V and
//! Figures 1, 2 and 7:
//!
//! * [`cpu`] — the Concrete-on-CPU baseline, *measured* by running this
//!   repository's own `strix-tfhe` implementation on the host machine
//!   (with the paper-reported Xeon numbers carried alongside),
//! * [`gpu`] — an analytical model of NuFHE on a 72-SM GPU: device-
//!   level batching with the blind-rotation fragmentation behaviour of
//!   Eqs. (1)–(2), and the linear core-level-batching slowdown of
//!   Fig. 2,
//! * [`published`] — the published latency/throughput points of every
//!   accelerator in Table V (Concrete, NuFHE, YKP, XHEC, Matcha, and
//!   Strix itself) used verbatim as comparison constants.
//!
//! [`breakdown`] reproduces the Fig. 1 workload decomposition by
//! running an instrumented bootstrapped gate.

pub mod breakdown;
pub mod cpu;
pub mod gpu;
pub mod published;

pub use cpu::CpuMeasurement;
pub use gpu::GpuModel;
pub use published::{PlatformPoint, PUBLISHED_TABLE_V};
