//! The CPU baseline: single-threaded TFHE on the host machine.
//!
//! The paper's CPU column measures the Concrete library on an Intel
//! Xeon Platinum. Our substitute runs this repository's own
//! `strix-tfhe` implementation — the same algorithm (Fourier-domain
//! bootstrapping keys, folded negacyclic FFT, gadget decomposition) on
//! whatever host executes the benchmark, so absolute numbers shift with
//! the machine while the asymptotics and the Fig. 1 breakdown shape are
//! preserved. Published Xeon numbers live in [`crate::published`].

use std::time::Instant;

use serde::{Deserialize, Serialize};

use strix_tfhe::bootstrap::{encode_bool, BootstrapKey, Lut};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::prelude::*;
use strix_tfhe::torus::encode_fraction;

/// A measured CPU performance point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CpuMeasurement {
    /// Parameter-set name.
    pub params_name: String,
    /// Average PBS latency (blind rotation + sample extract), seconds.
    pub pbs_s: f64,
    /// Average keyswitch latency, seconds.
    pub keyswitch_s: f64,
    /// Average full bootstrapped-gate latency, seconds.
    pub gate_s: f64,
    /// Single-thread throughput implied by the PBS+KS latency.
    pub throughput_pbs_s: f64,
    /// Number of measured iterations.
    pub iterations: usize,
}

/// Measures PBS, keyswitch and full-gate latency with *real* keys.
///
/// Suitable for parameter sets with `N ≤ 2048`; key generation uses the
/// exact (schoolbook) polynomial path whose cost grows quadratically in
/// `N`. For larger sets use [`measure_pbs_benchmark_key`].
pub fn measure_gate(params: &TfheParameters, iterations: usize, seed: u64) -> CpuMeasurement {
    let (mut client, server) = generate_keys(params, seed);
    let a = client.encrypt_bool(true);
    let b = client.encrypt_bool(false);
    let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));

    // Warm-up (page in the keys, settle the allocator).
    let _ = server.nand(&a, &b).expect("gate runs");

    let mut pbs_total = 0.0f64;
    let mut ks_total = 0.0f64;
    let mut gate_total = 0.0f64;
    for _ in 0..iterations.max(1) {
        let t0 = Instant::now();
        let boot = server.bootstrap_key().bootstrap(a.as_lwe(), &lut).expect("pbs runs");
        pbs_total += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _ = server.keyswitch_key().keyswitch(&boot).expect("keyswitch runs");
        ks_total += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _ = server.nand(&a, &b).expect("gate runs");
        gate_total += t0.elapsed().as_secs_f64();
    }
    let n = iterations.max(1) as f64;
    let pbs_s = pbs_total / n;
    let keyswitch_s = ks_total / n;
    CpuMeasurement {
        params_name: params.name.clone(),
        pbs_s,
        keyswitch_s,
        gate_s: gate_total / n,
        throughput_pbs_s: 1.0 / (pbs_s + keyswitch_s),
        iterations: iterations.max(1),
    }
}

/// Measures PBS latency with a timing-equivalent benchmark key
/// ([`BootstrapKey::generate_for_benchmark`]); works at any `N`,
/// including set IV's 16384.
pub fn measure_pbs_benchmark_key(params: &TfheParameters, iterations: usize) -> CpuMeasurement {
    let bsk = BootstrapKey::generate_for_benchmark(params);
    let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
    // The mask must be non-zero: blind rotation skips iterations whose
    // modulus-switched mask element is 0, so a trivial (zero-mask)
    // ciphertext would measure an empty loop. Fill it with a fixed
    // pseudo-random pattern instead.
    let mut raw: Vec<u64> = (0..params.lwe_dimension as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678))
        .collect();
    raw.push(encode_bool(true));
    let ct = LweCiphertext::from_raw(raw);

    let _ = bsk.bootstrap(&ct, &lut).expect("pbs runs");
    let mut pbs_total = 0.0f64;
    for _ in 0..iterations.max(1) {
        let t0 = Instant::now();
        let _ = bsk.bootstrap(&ct, &lut).expect("pbs runs");
        pbs_total += t0.elapsed().as_secs_f64();
    }
    let n = iterations.max(1) as f64;
    let pbs_s = pbs_total / n;
    // Estimate keyswitch cost analytically from the matrix size: it is
    // a dense kN·l_k × (n+1) integer pass; calibrate on the measured
    // PBS rate (both are memory-streaming u64 kernels).
    let ks_macs =
        (params.extracted_lwe_dimension() * params.ks_level * (params.lwe_dimension + 1)) as f64;
    let pbs_flops = pbs_flop_estimate(params);
    let keyswitch_s = pbs_s * ks_macs / pbs_flops;
    CpuMeasurement {
        params_name: params.name.clone(),
        pbs_s,
        keyswitch_s,
        gate_s: pbs_s + keyswitch_s,
        throughput_pbs_s: 1.0 / (pbs_s + keyswitch_s),
        iterations: iterations.max(1),
    }
}

/// Measures multi-threaded PBS throughput: `threads` workers share one
/// bootstrapping key (it is read-only) and each runs `per_thread`
/// bootstraps. This is the configuration the paper's Fig. 7 CPU column
/// implicitly uses — its NN times imply PBS-parallel execution across
/// the Xeon's cores, not the single-thread latency of Table V.
pub fn measure_parallel_pbs(params: &TfheParameters, threads: usize, per_thread: usize) -> f64 {
    let bsk = BootstrapKey::generate_for_benchmark(params);
    let lut = Lut::sign(params.polynomial_size, encode_fraction(1, 3));
    let mut raw: Vec<u64> = (0..params.lwe_dimension as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        .collect();
    raw.push(encode_bool(true));
    let ct = LweCiphertext::from_raw(raw);

    let threads = threads.max(1);
    let per_thread = per_thread.max(1);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..per_thread {
                    let _ = bsk.bootstrap(&ct, &lut).expect("pbs runs");
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    (threads * per_thread) as f64 / elapsed
}

/// Rough floating-point operation count of one PBS, used only to scale
/// the keyswitch estimate in [`measure_pbs_benchmark_key`].
fn pbs_flop_estimate(params: &TfheParameters) -> f64 {
    let n = params.lwe_dimension as f64;
    let nn = params.polynomial_size as f64;
    let k1 = (params.glwe_dimension + 1) as f64;
    let l = params.pbs_level as f64;
    let fft = nn / 2.0 * (nn / 2.0).log2() * 5.0; // one folded FFT
    let per_iter = k1 * l * fft // forward FFTs
        + k1 * fft // inverse FFTs
        + k1 * l * k1 * nn / 2.0 * 6.0 // pointwise complex MACs
        + k1 * l * nn; // decomposition
    n * per_iter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_gate_has_paper_figure_1_shape() {
        // PBS must dominate KS; both must be non-trivial. Enough
        // iterations to ride out scheduler noise when the whole test
        // suite runs in parallel.
        let params = TfheParameters::testing_fast();
        let m = measure_gate(&params, 20, 7);
        assert!(m.pbs_s > 0.0 && m.keyswitch_s > 0.0);
        assert!(m.pbs_s > m.keyswitch_s, "pbs {} ks {}", m.pbs_s, m.keyswitch_s);
        assert!(m.gate_s >= m.pbs_s);
        assert!(m.throughput_pbs_s > 0.0);
    }

    #[test]
    fn benchmark_key_measurement_runs_without_real_keys() {
        let params = TfheParameters::testing_fast();
        let m = measure_pbs_benchmark_key(&params, 2);
        assert!(m.pbs_s > 0.0);
        assert!(m.keyswitch_s > 0.0);
        assert_eq!(m.iterations, 2);
    }

    #[test]
    fn larger_polynomials_are_slower() {
        let fast = measure_pbs_benchmark_key(&TfheParameters::testing_fast(), 2);
        let mut big = TfheParameters::testing_fast();
        big.polynomial_size *= 4;
        let slow = measure_pbs_benchmark_key(&big, 2);
        assert!(slow.pbs_s > fast.pbs_s, "{} vs {}", slow.pbs_s, fast.pbs_s);
    }

    #[test]
    fn zero_iterations_clamps_to_one() {
        let m = measure_pbs_benchmark_key(&TfheParameters::testing_fast(), 0);
        assert_eq!(m.iterations, 1);
    }

    #[test]
    fn parallel_measurement_scales_with_threads() {
        let params = TfheParameters::testing_fast();
        let one = measure_parallel_pbs(&params, 1, 8);
        let two = measure_parallel_pbs(&params, 2, 8);
        assert!(one > 0.0 && two > 0.0);
        // Parallel efficiency varies wildly when the test runner itself
        // saturates the machine; only require that two threads retain a
        // meaningful fraction of single-thread speed.
        assert!(two > one * 0.5, "1t {one:.0} vs 2t {two:.0} PBS/s");
    }
}
