//! Property-based tests of the accelerator model: invariants that must
//! hold across the whole configuration space, not just the paper's
//! design point.

use proptest::prelude::*;

use strix_core::{StrixConfig, StrixSimulator};
use strix_tfhe::TfheParameters;

fn config_strategy() -> impl Strategy<Value = StrixConfig> {
    (
        1usize..=16,                                          // tvlp
        prop::sample::select(vec![1usize, 2, 4, 8, 16, 32]),  // clp
        1usize..=4,                                           // plp
        1usize..=4,                                           // colp
        any::<bool>(),                                        // folding
        prop::sample::select(vec![128usize, 320, 640, 1280]), // local KiB
    )
        .prop_map(|(tvlp, clp, plp, colp, folding, local_kib)| StrixConfig {
            tvlp,
            clp,
            plp,
            colp,
            folding,
            local_scratchpad_bytes: local_kib * 1024,
            ..StrixConfig::paper_default()
        })
}

fn params_strategy() -> impl Strategy<Value = TfheParameters> {
    prop::sample::select(vec![
        TfheParameters::set_i(),
        TfheParameters::set_ii(),
        TfheParameters::set_iii(),
        TfheParameters::set_iv(),
        TfheParameters::testing_fast(),
        TfheParameters::testing_k2(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reports_are_finite_and_positive(
        cfg in config_strategy(),
        params in params_strategy(),
        lwes in 1usize..10_000,
    ) {
        let sim = StrixSimulator::new(cfg, params).unwrap();
        let r = sim.pbs_report(lwes);
        prop_assert!(r.latency_s.is_finite() && r.latency_s > 0.0);
        prop_assert!(r.total_time_s.is_finite() && r.total_time_s > 0.0);
        prop_assert!(r.throughput_pbs_per_s.is_finite() && r.throughput_pbs_per_s > 0.0);
        prop_assert!(r.required_bandwidth_gbps.is_finite() && r.required_bandwidth_gbps > 0.0);
        prop_assert!(r.core_batch >= 1);
        prop_assert!(r.epochs >= 1);
    }

    #[test]
    fn unit_utilization_never_exceeds_one(
        cfg in config_strategy(),
        params in params_strategy(),
    ) {
        let sim = StrixSimulator::new(cfg, params).unwrap();
        for (kind, util) in sim.pbs_report(64).unit_utilization {
            prop_assert!(util > 0.0 && util <= 1.0 + 1e-9, "{kind}: {util}");
        }
    }

    #[test]
    fn batch_time_is_monotone_in_lwes(
        cfg in config_strategy(),
        params in params_strategy(),
        lwes in 1usize..5_000,
    ) {
        let sim = StrixSimulator::new(cfg, params).unwrap();
        let t1 = sim.pbs_report(lwes).total_time_s;
        let t2 = sim.pbs_report(lwes * 2).total_time_s;
        prop_assert!(t2 >= t1, "doubling the batch shrank the time: {t1} -> {t2}");
    }

    #[test]
    fn throughput_never_exceeds_compute_peak(
        cfg in config_strategy(),
        params in params_strategy(),
    ) {
        // Peak = TvLP cores each finishing one LWE every n·II cycles.
        let sim = StrixSimulator::new(cfg.clone(), params.clone()).unwrap();
        let r = sim.pbs_report(1 << 14);
        let ii = sim.pbs_cluster().initiation_interval_cycles() as f64;
        let peak = cfg.tvlp as f64 * cfg.clock_hz()
            / (params.lwe_dimension as f64 * ii);
        prop_assert!(
            r.throughput_pbs_per_s <= peak * (1.0 + 1e-9),
            "thr {} above compute peak {peak}",
            r.throughput_pbs_per_s
        );
    }

    #[test]
    fn memory_bound_iff_fetch_exceeds_compute(
        cfg in config_strategy(),
        params in params_strategy(),
    ) {
        let sim = StrixSimulator::new(cfg, params).unwrap();
        let r = sim.pbs_report(256);
        if r.memory_bound {
            prop_assert!(r.iteration_cycles > r.compute_iteration_cycles);
        } else {
            prop_assert_eq!(r.iteration_cycles, r.compute_iteration_cycles);
        }
    }

    #[test]
    fn folding_never_hurts_throughput(
        params in params_strategy(),
        tvlp in 1usize..=8,
    ) {
        let folded = StrixConfig { tvlp, folding: true, ..StrixConfig::paper_default() };
        let plain = StrixConfig { tvlp, folding: false, ..StrixConfig::paper_default() };
        let tf = StrixSimulator::new(folded, params.clone()).unwrap()
            .pbs_report(1024).throughput_pbs_per_s;
        let tp = StrixSimulator::new(plain, params).unwrap()
            .pbs_report(1024).throughput_pbs_per_s;
        prop_assert!(tf >= tp * 0.999, "folding lost throughput: {tf} vs {tp}");
    }

    #[test]
    fn trace_occupancies_are_valid_fractions(
        params in params_strategy(),
        batch in 1usize..6,
        iterations in 1usize..8,
    ) {
        let cfg = StrixConfig::paper_default().with_core_batch(batch);
        let sim = StrixSimulator::new(cfg, params).unwrap();
        let trace = sim.trace(iterations);
        for row in trace.rows() {
            let occ = row.occupancy(trace.horizon_cycles());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&occ), "{}: {occ}", row.label);
        }
    }

    #[test]
    fn report_serde_round_trips(
        cfg in config_strategy(),
        params in params_strategy(),
    ) {
        let sim = StrixSimulator::new(cfg, params).unwrap();
        let r = sim.pbs_report(128);
        let json = serde_json::to_string(&r).unwrap();
        let back: strix_core::PbsReport = serde_json::from_str(&json).unwrap();
        // JSON text round-trips floats to within an ulp.
        let rel = (r.throughput_pbs_per_s - back.throughput_pbs_per_s).abs()
            / r.throughput_pbs_per_s;
        prop_assert!(rel < 1e-12, "throughput drifted by {rel}");
        prop_assert_eq!(r.epochs, back.epochs);
        prop_assert_eq!(r.core_batch, back.core_batch);
    }
}
