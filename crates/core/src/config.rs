//! Accelerator configuration: parallelism levels, clock, memory system.
//!
//! The four parallelism knobs are the paper's §IV-A taxonomy:
//!
//! * `TvLP` — test-vector level parallelism = number of HSCs,
//! * `CLP` — coefficient level parallelism = datapath lanes,
//! * `PLP` — polynomial level parallelism = FFT/VMA replication,
//! * `CoLP` — column level parallelism = output-column replication.
//!
//! The paper's design point is `TvLP = 8, CLP = 4, PLP = 2, CoLP = 2`
//! at 1.2 GHz with a folded FFT unit, one HBM2e stack (300 GB/s,
//! 16 channels: 8 for bsk, 4 for ksk, 4 for ciphertext I/O), a 21 MB
//! global scratchpad and 0.625 MB local scratchpads.

use serde::{Deserialize, Serialize};

use crate::SimError;

/// Bytes per "GB" of bandwidth. Binary giga (2^30) reproduces the
/// paper's Table VII memory-bound capping factors exactly (e.g. the
/// 1240/2368 throughput ratio at `TvLP=2, CLP=16`), so the model adopts
/// it for all bandwidth figures.
pub const BANDWIDTH_GB: f64 = (1u64 << 30) as f64;

/// HBM external-memory configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HbmConfig {
    /// Total bandwidth of the stack in GB/s (binary giga, see
    /// [`BANDWIDTH_GB`]).
    pub total_bandwidth_gbps: f64,
    /// Number of channels in the stack.
    pub channels: usize,
    /// Channels allotted to bootstrapping-key streaming.
    pub bsk_channels: usize,
    /// Channels allotted to keyswitching-key streaming.
    pub ksk_channels: usize,
    /// Channels allotted to ciphertext input/output.
    pub io_channels: usize,
}

impl HbmConfig {
    /// One HBM2e stack as modelled in the paper (§VI-A): 300 GB/s over
    /// 16 channels, split 8/4/4 between bsk, ksk and ciphertext I/O.
    pub fn hbm2e_single_stack() -> Self {
        Self {
            total_bandwidth_gbps: 300.0,
            channels: 16,
            bsk_channels: 8,
            ksk_channels: 4,
            io_channels: 4,
        }
    }

    /// Bandwidth of a single channel in GB/s.
    #[inline]
    pub fn channel_bandwidth_gbps(&self) -> f64 {
        self.total_bandwidth_gbps / self.channels as f64
    }

    /// Bandwidth of the keyswitching-key channel group in GB/s.
    #[inline]
    pub fn ksk_bandwidth_gbps(&self) -> f64 {
        self.channel_bandwidth_gbps() * self.ksk_channels as f64
    }

    /// Bandwidth of the ciphertext-I/O channel group in GB/s.
    #[inline]
    pub fn io_bandwidth_gbps(&self) -> f64 {
        self.channel_bandwidth_gbps() * self.io_channels as f64
    }

    /// Total bandwidth in bytes per second.
    #[inline]
    pub fn total_bytes_per_s(&self) -> f64 {
        self.total_bandwidth_gbps * BANDWIDTH_GB
    }

    /// Bootstrapping-key channel-group bandwidth in bytes per second.
    #[inline]
    pub fn bsk_bytes_per_s(&self) -> f64 {
        self.channel_bandwidth_gbps() * self.bsk_channels as f64 * BANDWIDTH_GB
    }

    /// Ciphertext-I/O channel-group bandwidth in bytes per second.
    #[inline]
    pub fn io_bytes_per_s(&self) -> f64 {
        self.io_bandwidth_gbps() * BANDWIDTH_GB
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.total_bandwidth_gbps <= 0.0 {
            return Err(SimError::InvalidConfig("hbm bandwidth must be positive"));
        }
        if self.channels == 0 {
            return Err(SimError::InvalidConfig("hbm must have at least one channel"));
        }
        if self.bsk_channels + self.ksk_channels + self.io_channels != self.channels {
            return Err(SimError::InvalidConfig(
                "hbm channel allocation must cover exactly all channels",
            ));
        }
        if self.bsk_channels == 0 {
            return Err(SimError::InvalidConfig("bsk streaming needs at least one channel"));
        }
        Ok(())
    }
}

/// Full Strix accelerator configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StrixConfig {
    /// Test-vector level parallelism: number of HSCs.
    pub tvlp: usize,
    /// Coefficient level parallelism: datapath lanes per unit.
    pub clp: usize,
    /// Polynomial level parallelism: FFT/VMA row replication.
    pub plp: usize,
    /// Column level parallelism: output-column replication.
    pub colp: usize,
    /// Whether the FFT units use the folding scheme (§V-A): an
    /// `N`-coefficient transform on an `N/2`-point pipeline, with the
    /// other units widened to `2·CLP` lanes.
    pub folding: bool,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global scratchpad capacity in bytes (stores bsk/ksk slices and
    /// per-core ciphertext sections, double-buffered).
    pub global_scratchpad_bytes: usize,
    /// Local (per-HSC) scratchpad capacity in bytes.
    pub local_scratchpad_bytes: usize,
    /// Fraction of the local scratchpad belonging to the PBS cluster
    /// (the rest buffers keyswitch inputs/outputs).
    pub local_pbs_fraction: f64,
    /// Keyswitch-cluster coefficient lanes (paper: `CLP = 8`).
    pub ks_clp: usize,
    /// Keyswitch-cluster column parallelism (paper: `CoLP = 8`).
    pub ks_colp: usize,
    /// External memory system.
    pub hbm: HbmConfig,
    /// On-chip key-distribution network.
    pub noc: crate::noc::NocModel,
    /// Override for the core-level batch size; `None` derives it from
    /// the local scratchpad capacity (§IV-C).
    pub core_batch_override: Option<usize>,
}

impl StrixConfig {
    /// The paper's design point: 8 HSCs, `CLP = 4`, `PLP = CoLP = 2`,
    /// folded FFT, 1.2 GHz, 21 MB global / 0.625 MB local scratchpads,
    /// one 300 GB/s HBM2e stack.
    pub fn paper_default() -> Self {
        Self {
            tvlp: 8,
            clp: 4,
            plp: 2,
            colp: 2,
            folding: true,
            clock_ghz: 1.2,
            global_scratchpad_bytes: 21 * 1024 * 1024,
            local_scratchpad_bytes: 640 * 1024, // 0.625 MB
            local_pbs_fraction: 0.8,
            ks_clp: 8,
            ks_colp: 8,
            hbm: HbmConfig::hbm2e_single_stack(),
            noc: crate::noc::NocModel::paper_default(),
            core_batch_override: None,
        }
    }

    /// The non-folded ablation of Table VI: the FFT unit transforms
    /// full `N`-point signals with `CLP` lanes, and every other unit
    /// falls back to `CLP` lanes as well.
    pub fn paper_non_folded() -> Self {
        Self { folding: false, ..Self::paper_default() }
    }

    /// A variant with different `TvLP`/`CLP` at the same product, for
    /// the Table VII trade-off sweep.
    pub fn with_tvlp_clp(self, tvlp: usize, clp: usize) -> Self {
        Self { tvlp, clp, ..self }
    }

    /// Sets the core-level batch size explicitly (e.g. the 3-LWE/core
    /// configuration of Fig. 8).
    pub fn with_core_batch(self, batch: usize) -> Self {
        Self { core_batch_override: Some(batch), ..self }
    }

    /// Datapath lane count of the non-FFT units: `2·CLP` when folding
    /// (to match the virtual `CLP = 8` of the folded FFT), else `CLP`.
    #[inline]
    pub fn stream_lanes(&self) -> usize {
        if self.folding {
            2 * self.clp
        } else {
            self.clp
        }
    }

    /// Cycles per second.
    #[inline]
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Converts a cycle count to seconds.
    #[inline]
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz()
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the violation.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.tvlp == 0 {
            return Err(SimError::InvalidConfig("tvlp must be at least 1"));
        }
        if self.clp == 0 || !self.clp.is_power_of_two() {
            return Err(SimError::InvalidConfig("clp must be a positive power of two"));
        }
        if self.plp == 0 || self.colp == 0 {
            return Err(SimError::InvalidConfig("plp and colp must be at least 1"));
        }
        if self.clock_ghz <= 0.0 {
            return Err(SimError::InvalidConfig("clock must be positive"));
        }
        if self.local_scratchpad_bytes == 0 || self.global_scratchpad_bytes == 0 {
            return Err(SimError::InvalidConfig("scratchpads must be non-empty"));
        }
        if !(0.0..=1.0).contains(&self.local_pbs_fraction) {
            return Err(SimError::InvalidConfig("local pbs fraction must be in [0, 1]"));
        }
        if self.ks_clp == 0 || self.ks_colp == 0 {
            return Err(SimError::InvalidConfig("keyswitch cluster lanes must be positive"));
        }
        if self.core_batch_override == Some(0) {
            return Err(SimError::InvalidConfig("core batch override must be at least 1"));
        }
        if self.noc.bsk_bus_bits < 8 || self.noc.ksk_bus_bits < 8 {
            return Err(SimError::InvalidConfig("noc buses must be at least one byte wide"));
        }
        self.hbm.validate()
    }
}

impl Default for StrixConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vi() {
        let c = StrixConfig::paper_default();
        assert_eq!((c.tvlp, c.clp, c.plp, c.colp), (8, 4, 2, 2));
        assert!(c.folding);
        assert_eq!(c.clock_ghz, 1.2);
        assert_eq!(c.global_scratchpad_bytes, 21 * 1024 * 1024);
        assert_eq!(c.local_scratchpad_bytes, 640 * 1024);
        assert_eq!(c.hbm.total_bandwidth_gbps, 300.0);
        c.validate().unwrap();
    }

    #[test]
    fn stream_lanes_depend_on_folding() {
        assert_eq!(StrixConfig::paper_default().stream_lanes(), 8);
        assert_eq!(StrixConfig::paper_non_folded().stream_lanes(), 4);
    }

    #[test]
    fn tvlp_clp_sweep_points_validate() {
        for (tvlp, clp) in [(16, 2), (8, 4), (4, 8), (2, 16), (1, 32)] {
            let c = StrixConfig::paper_default().with_tvlp_clp(tvlp, clp);
            c.validate().unwrap();
            assert_eq!(c.tvlp * c.clp, 32);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = StrixConfig::paper_default();
        c.tvlp = 0;
        assert!(c.validate().is_err());

        let mut c = StrixConfig::paper_default();
        c.clp = 3;
        assert!(c.validate().is_err());

        let mut c = StrixConfig::paper_default();
        c.hbm.bsk_channels = 0;
        c.hbm.io_channels = 12;
        assert!(c.validate().is_err());

        let mut c = StrixConfig::paper_default();
        c.hbm.channels = 10; // allocation no longer covers channels
        assert!(c.validate().is_err());

        let c = StrixConfig::paper_default().with_core_batch(1);
        c.validate().unwrap();
        let mut c = StrixConfig::paper_default();
        c.core_batch_override = Some(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn hbm_channel_groups() {
        let h = HbmConfig::hbm2e_single_stack();
        assert_eq!(h.channel_bandwidth_gbps(), 18.75);
        assert_eq!(h.ksk_bandwidth_gbps(), 75.0);
        assert_eq!(h.io_bandwidth_gbps(), 75.0);
    }

    #[test]
    fn cycle_conversion() {
        let c = StrixConfig::paper_default();
        assert!((c.cycles_to_seconds(1.2e9) - 1.0).abs() < 1e-12);
    }
}
