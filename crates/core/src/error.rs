//! Error type for simulator construction and execution.

use std::error::Error;
use std::fmt;

/// Errors produced by the Strix model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The accelerator configuration is structurally invalid.
    InvalidConfig(&'static str),
    /// The TFHE parameter set is invalid or unsupported by the model.
    InvalidParameters(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(why) => write!(f, "invalid accelerator config: {why}"),
            SimError::InvalidParameters(why) => write!(f, "invalid tfhe parameters: {why}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::InvalidConfig("no cores").to_string(),
            "invalid accelerator config: no cores"
        );
        assert_eq!(
            SimError::InvalidParameters("bad N".into()).to_string(),
            "invalid tfhe parameters: bad N"
        );
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
