//! The two-level batch-sizing policy (§IV-C), factored out of the
//! simulation engine so software schedulers can reuse it.
//!
//! Strix forms batches at two levels: the **device level** spreads
//! `TvLP` ciphertexts across the HSC array (one per core), and the
//! **core level** streams `core_batch` ciphertexts through each HSC's
//! PBS cluster so that one bootstrapping-key fetch serves the whole
//! stream. An **epoch** — the unit the engine schedules and the unit
//! the streaming runtime flushes — therefore carries
//! `TvLP × core_batch` LWEs.
//!
//! The core-level batch size is not free: each in-flight LWE owns one
//! intermediate test vector of `(k+1)·N` torus words in the local
//! scratchpad, so capacity divides out the batch (the central resource
//! argument of §IV-C). [`BatchGeometry::derive`] reproduces exactly
//! that derivation.

use serde::{Deserialize, Serialize};

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;

/// The two-level batch shape for one `(parameters, config)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchGeometry {
    /// Device-level parallelism: number of HSCs (`TvLP`).
    pub tvlp: usize,
    /// Core-level batch: LWEs streamed per HSC per key fetch.
    pub core_batch: usize,
}

impl BatchGeometry {
    /// Derives the geometry from the accelerator configuration and the
    /// TFHE parameters: `core_batch` is the number of `(k+1)·N`-word
    /// test vectors that fit in the PBS share of the local scratchpad
    /// (at least 1 — oversized parameters stream at batch 1), unless
    /// the config pins it explicitly.
    pub fn derive(params: &TfheParameters, config: &StrixConfig) -> Self {
        let core_batch = config.core_batch_override.unwrap_or_else(|| {
            let pbs_bytes =
                (config.local_scratchpad_bytes as f64 * config.local_pbs_fraction) as usize;
            (pbs_bytes / params.glwe_bytes()).max(1)
        });
        Self { tvlp: config.tvlp.max(1), core_batch }
    }

    /// A geometry with explicit values (for tests and software
    /// schedulers detached from a hardware config).
    pub fn explicit(tvlp: usize, core_batch: usize) -> Self {
        Self { tvlp: tvlp.max(1), core_batch: core_batch.max(1) }
    }

    /// The epoch size `TvLP × core_batch`: LWEs per device-level
    /// scheduling unit.
    #[inline]
    pub fn epoch_size(&self) -> usize {
        (self.tvlp * self.core_batch).max(1)
    }

    /// Number of epochs needed for `num_lwes` ciphertexts.
    #[inline]
    pub fn epochs_for(&self, num_lwes: usize) -> usize {
        num_lwes.div_ceil(self.epoch_size()).max(1)
    }

    /// Occupancy of an epoch carrying `lwes` ciphertexts, in `[0, 1]`.
    #[inline]
    pub fn occupancy(&self, lwes: usize) -> f64 {
        lwes.min(self.epoch_size()) as f64 / self.epoch_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_set_i() {
        // 0.8 × 0.625 MB over 16 KiB test vectors → 32 per core; the
        // epoch is 8 × 32 = 256 LWEs.
        let g = BatchGeometry::derive(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(g, BatchGeometry { tvlp: 8, core_batch: 32 });
        assert_eq!(g.epoch_size(), 256);
    }

    #[test]
    fn override_pins_core_batch() {
        let cfg = StrixConfig::paper_default().with_core_batch(3);
        let g = BatchGeometry::derive(&TfheParameters::set_i(), &cfg);
        assert_eq!(g.core_batch, 3);
    }

    #[test]
    fn oversized_parameters_stream_at_batch_one() {
        let mut cfg = StrixConfig::paper_default();
        cfg.local_scratchpad_bytes = 1024;
        let g = BatchGeometry::derive(&TfheParameters::set_iv(), &cfg);
        assert_eq!(g.core_batch, 1);
    }

    #[test]
    fn epoch_counting_and_occupancy() {
        let g = BatchGeometry::explicit(4, 8);
        assert_eq!(g.epoch_size(), 32);
        assert_eq!(g.epochs_for(1), 1);
        assert_eq!(g.epochs_for(32), 1);
        assert_eq!(g.epochs_for(33), 2);
        assert_eq!(g.epochs_for(0), 1);
        assert!((g.occupancy(16) - 0.5).abs() < 1e-12);
        assert!((g.occupancy(64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_clamps_zeroes() {
        let g = BatchGeometry::explicit(0, 0);
        assert_eq!(g.epoch_size(), 1);
    }
}
