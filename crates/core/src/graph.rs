//! Workload computational graphs (§VI-B).
//!
//! The paper's simulator "converts the input workload as a computational
//! graph with nodes, where each node mainly represents either
//! bootstrapping or keyswitching or a combination of both operations";
//! linear homomorphic operations (the weighted sums of a neural-network
//! layer) appear as cheap nodes between them. [`Workload`] is that
//! graph: an ordered sequence of nodes with data dependencies from one
//! to the next, which the engine decomposes into blind-rotation
//! fragments and schedules over the two-level batch.

use serde::{Deserialize, Serialize};

/// One node of the workload graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadNode {
    /// A batch of programmable bootstraps (each followed by its
    /// keyswitch, as in the paper's PBS+KS flow).
    Pbs {
        /// Number of LWE ciphertexts to bootstrap.
        lwes: usize,
        /// Human-readable label (e.g. "layer-3 ReLU").
        label: String,
    },
    /// A plaintext-weight linear layer: each output ciphertext is a
    /// weighted sum of input ciphertexts, costing
    /// `outputs × inputs × (n+1)` word MACs on the integer lanes.
    Linear {
        /// Number of output ciphertexts.
        outputs: usize,
        /// Number of input ciphertexts contributing to each output.
        inputs_per_output: usize,
        /// Human-readable label (e.g. "dense 92×92").
        label: String,
    },
}

impl WorkloadNode {
    /// The node's label.
    pub fn label(&self) -> &str {
        match self {
            WorkloadNode::Pbs { label, .. } | WorkloadNode::Linear { label, .. } => label,
        }
    }

    /// Number of PBS operations this node contributes.
    pub fn pbs_count(&self) -> usize {
        match self {
            WorkloadNode::Pbs { lwes, .. } => *lwes,
            WorkloadNode::Linear { .. } => 0,
        }
    }
}

/// An ordered workload graph with sequential dependencies.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    nodes: Vec<WorkloadNode>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), nodes: Vec::new() }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a PBS batch node.
    pub fn pbs(mut self, lwes: usize, label: impl Into<String>) -> Self {
        self.nodes.push(WorkloadNode::Pbs { lwes, label: label.into() });
        self
    }

    /// Appends a linear-layer node.
    pub fn linear(
        mut self,
        outputs: usize,
        inputs_per_output: usize,
        label: impl Into<String>,
    ) -> Self {
        self.nodes.push(WorkloadNode::Linear { outputs, inputs_per_output, label: label.into() });
        self
    }

    /// The nodes in execution order.
    pub fn nodes(&self) -> &[WorkloadNode] {
        &self.nodes
    }

    /// Total number of PBS operations in the graph — the unit in which
    /// the paper reports throughput.
    pub fn total_pbs(&self) -> usize {
        self.nodes.iter().map(WorkloadNode::pbs_count).sum()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_nodes_in_order() {
        let w = Workload::new("demo").linear(4, 8, "dense").pbs(4, "relu").pbs(2, "final");
        assert_eq!(w.name(), "demo");
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_pbs(), 6);
        assert_eq!(w.nodes()[0].label(), "dense");
        assert_eq!(w.nodes()[1].pbs_count(), 4);
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new("empty");
        assert!(w.is_empty());
        assert_eq!(w.total_pbs(), 0);
    }

    #[test]
    fn linear_nodes_contribute_no_pbs() {
        let w = Workload::new("lin").linear(100, 100, "dense");
        assert_eq!(w.total_pbs(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let w = Workload::new("x").pbs(3, "a").linear(1, 2, "b");
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
