//! Network-on-chip model (§IV-B).
//!
//! Strix distributes shared keys with *fixed* networks: a one-to-all
//! multicast bus for the bootstrapping key and another for the
//! keyswitching key (the communication is unidirectional and identical
//! for every HSC), plus point-to-point links between the global
//! scratchpad's private sections and their cores.
//!
//! §VI-A states 512-/256-bit bus widths, but a 512-bit bus at 1.2 GHz
//! (64 B/cycle) cannot deliver one 64 KiB GGSW per 256-cycle iteration
//! (256 B/cycle) — the rate both Fig. 8 and Table V imply. We therefore
//! size the default multicast bus to match the HBM burst rate
//! (2048 bits) and keep the width configurable; the `ablations` bench
//! sweeps it to show where an under-provisioned bus becomes the
//! bottleneck.

use serde::{Deserialize, Serialize};

use crate::config::StrixConfig;

/// Multicast/point-to-point NoC configuration and timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocModel {
    /// Width of the bootstrapping-key multicast bus, in bits.
    pub bsk_bus_bits: usize,
    /// Width of the keyswitching-key multicast bus, in bits.
    pub ksk_bus_bits: usize,
}

impl NocModel {
    /// Default widths sized to sustain the paper's reported rates (see
    /// module docs).
    pub fn paper_default() -> Self {
        Self { bsk_bus_bits: 2048, ksk_bus_bits: 1024 }
    }

    /// Cycles to broadcast `bytes` of bootstrapping key to all cores
    /// (multicast: one transfer serves every HSC).
    pub fn bsk_broadcast_cycles(&self, bytes: usize) -> u64 {
        let per_cycle = (self.bsk_bus_bits / 8).max(1);
        (bytes as u64).div_ceil(per_cycle as u64)
    }

    /// Cycles to broadcast `bytes` of keyswitching key.
    pub fn ksk_broadcast_cycles(&self, bytes: usize) -> u64 {
        let per_cycle = (self.ksk_bus_bits / 8).max(1);
        (bytes as u64).div_ceil(per_cycle as u64)
    }

    /// Whether the bsk bus can keep up with a per-iteration GGSW of the
    /// given size at the given iteration period.
    pub fn sustains_iteration(&self, ggsw_bytes: usize, iteration_cycles: u64) -> bool {
        self.bsk_broadcast_cycles(ggsw_bytes) <= iteration_cycles
    }

    /// Bus bandwidth in bytes per second at the given clock.
    pub fn bsk_bus_bytes_per_s(&self, config: &StrixConfig) -> f64 {
        (self.bsk_bus_bits as f64 / 8.0) * config.clock_hz()
    }
}

impl Default for NocModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strix_tfhe::TfheParameters;

    #[test]
    fn default_bus_sustains_set_i_design_point() {
        // 64 KiB GGSW per 256-cycle iteration needs 256 B/cycle; the
        // 2048-bit (256 B) bus delivers exactly that.
        let noc = NocModel::paper_default();
        let ggsw = TfheParameters::set_i().fourier_ggsw_bytes();
        assert_eq!(noc.bsk_broadcast_cycles(ggsw), 256);
        assert!(noc.sustains_iteration(ggsw, 256));
    }

    #[test]
    fn paper_stated_width_cannot_sustain_the_rate() {
        // The §VI-A 512-bit bus would need 1024 cycles per iteration —
        // 4x too slow for the 256-cycle II.
        let noc = NocModel { bsk_bus_bits: 512, ksk_bus_bits: 256 };
        let ggsw = TfheParameters::set_i().fourier_ggsw_bytes();
        assert_eq!(noc.bsk_broadcast_cycles(ggsw), 1024);
        assert!(!noc.sustains_iteration(ggsw, 256));
    }

    #[test]
    fn broadcast_cycles_scale_inversely_with_width() {
        let wide = NocModel { bsk_bus_bits: 4096, ksk_bus_bits: 1024 };
        let narrow = NocModel { bsk_bus_bits: 1024, ksk_bus_bits: 1024 };
        assert_eq!(narrow.bsk_broadcast_cycles(1 << 20), 4 * wide.bsk_broadcast_cycles(1 << 20));
    }

    #[test]
    fn bus_bandwidth_at_clock() {
        let noc = NocModel::paper_default();
        let cfg = StrixConfig::paper_default();
        // 256 B/cycle × 1.2 GHz = 307.2e9 B/s.
        assert!((noc.bsk_bus_bytes_per_s(&cfg) - 307.2e9).abs() < 1e6);
    }

    #[test]
    fn ksk_bus_is_independent() {
        let noc = NocModel::paper_default();
        assert_eq!(noc.ksk_broadcast_cycles(1024), 8);
    }
}
