//! HSC compute-cluster models: the six-stage PBS cluster and the
//! three-stage keyswitch cluster (§IV-B).
//!
//! The PBS cluster is a fully pipelined dataflow machine: a full
//! traversal corresponds to one blind-rotation iteration, and its
//! **initiation interval** (II) — the maximum per-unit occupancy — is
//! the cadence at which core-level-batched LWEs stream through. Because
//! every stage produces coefficients in order, iteration `i+1` of an
//! LWE can begin as soon as the prefix of iteration `i`'s accumulator
//! output that the rotator needs is available; we model this
//! coefficient-order forwarding as a zero inter-iteration bubble, which
//! reproduces the paper's Table V latencies.
//!
//! The keyswitch cluster executes Algorithm 2 as a tiled matrix–matrix
//! product on integer lanes (`ks_clp × ks_colp` MACs per cycle); its
//! execution is hidden behind the next epoch's blind rotation whenever
//! its per-epoch time fits under the PBS cluster's (§IV-C).

use serde::{Deserialize, Serialize};

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;
use crate::units::{pbs_units, UnitKind, UnitModel};

/// Timing model of one HSC's PBS cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PbsClusterModel {
    units: Vec<UnitModel>,
    ii_cycles: u64,
    fill_cycles: u64,
}

impl PbsClusterModel {
    /// Builds the cluster model for a `(parameters, config)` pair.
    pub fn new(params: &TfheParameters, config: &StrixConfig) -> Self {
        let units = pbs_units(params, config);
        let ii_cycles = units.iter().map(|u| u.occupancy_cycles).max().unwrap_or(0);
        let fill_cycles = units.iter().map(|u| u.pipeline_latency_cycles).sum();
        Self { units, ii_cycles, fill_cycles }
    }

    /// Initiation interval: cycles between successive LWEs entering the
    /// cluster within one blind-rotation iteration.
    #[inline]
    pub fn initiation_interval_cycles(&self) -> u64 {
        self.ii_cycles
    }

    /// Total pipeline fill latency (first input to first output of the
    /// whole cluster).
    #[inline]
    pub fn fill_cycles(&self) -> u64 {
        self.fill_cycles
    }

    /// The per-unit timing models, in pipeline order.
    #[inline]
    pub fn units(&self) -> &[UnitModel] {
        &self.units
    }

    /// Per-unit utilisation at the cluster's own II (Fig. 8 shading).
    pub fn utilizations(&self) -> Vec<(UnitKind, f64)> {
        self.units.iter().map(|u| (u.kind, u.utilization(self.ii_cycles))).collect()
    }

    /// Cycles for one blind-rotation iteration over a core batch of
    /// `batch` LWEs (streaming, no inter-iteration bubble).
    #[inline]
    pub fn iteration_cycles(&self, batch: usize) -> u64 {
        self.ii_cycles * batch as u64
    }

    /// Compute-side cycles for a full blind rotation (`n` iterations)
    /// of a core batch of `batch` LWEs.
    pub fn blind_rotation_cycles(&self, params: &TfheParameters, batch: usize) -> u64 {
        params.lwe_dimension as u64 * self.iteration_cycles(batch)
    }
}

/// Timing model of one HSC's keyswitch cluster.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KsClusterModel {
    cycles_per_lwe: u64,
    macs_per_cycle: u64,
}

impl KsClusterModel {
    /// Builds the keyswitch-cluster model.
    pub fn new(params: &TfheParameters, config: &StrixConfig) -> Self {
        let macs_per_cycle = (config.ks_clp * config.ks_colp) as u64;
        // Algorithm 2: a (k·N·l_k) × (n+1) matrix–vector product per LWE.
        let macs = params.extracted_lwe_dimension() as u64
            * params.ks_level as u64
            * (params.lwe_dimension + 1) as u64;
        Self { cycles_per_lwe: macs.div_ceil(macs_per_cycle), macs_per_cycle }
    }

    /// Cycles to keyswitch one LWE.
    #[inline]
    pub fn cycles_per_lwe(&self) -> u64 {
        self.cycles_per_lwe
    }

    /// Integer MAC capacity per cycle.
    #[inline]
    pub fn macs_per_cycle(&self) -> u64 {
        self.macs_per_cycle
    }

    /// Cycles to keyswitch a core batch sequentially.
    #[inline]
    pub fn batch_cycles(&self, batch: usize) -> u64 {
        self.cycles_per_lwe * batch as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_point_ii_and_fill() {
        let m = PbsClusterModel::new(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.initiation_interval_cycles(), 256);
        // Fill is dominated by the two FFT passes (146 cycles each at
        // N_fft = 512, CLP = 4) plus the small stage latencies.
        assert!(m.fill_cycles() > 2 * 128 && m.fill_cycles() < 400, "{}", m.fill_cycles());
    }

    #[test]
    fn blind_rotation_cycles_set_i() {
        // 500 iterations × 256 cycles = 128k cycles ≈ 107 µs at 1.2 GHz —
        // the compute component of Table V's 0.16 ms latency.
        let p = TfheParameters::set_i();
        let m = PbsClusterModel::new(&p, &StrixConfig::paper_default());
        assert_eq!(m.blind_rotation_cycles(&p, 1), 128_000);
    }

    #[test]
    fn iteration_cycles_scale_with_batch() {
        let m = PbsClusterModel::new(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.iteration_cycles(3), 768); // the Fig. 8 example
    }

    #[test]
    fn utilizations_match_fig8() {
        let m = PbsClusterModel::new(&TfheParameters::set_i(), &StrixConfig::paper_default());
        for (kind, util) in m.utilizations() {
            match kind {
                UnitKind::Rotator => assert!((util - 0.5).abs() < 1e-9),
                _ => assert!((util - 1.0).abs() < 1e-9, "{kind}"),
            }
        }
    }

    #[test]
    fn keyswitch_cluster_set_i() {
        // kN·l_k·(n+1) = 1024·8·501 MACs over 64 MACs/cycle = 64128.
        let m = KsClusterModel::new(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.macs_per_cycle(), 64);
        assert_eq!(m.cycles_per_lwe(), 64_128);
        assert_eq!(m.batch_cycles(2), 128_256);
    }

    #[test]
    fn keyswitch_hides_under_blind_rotation_at_design_point() {
        // §IV-C: KS of an epoch must fit under the next epoch's BR.
        for p in [TfheParameters::set_i(), TfheParameters::set_ii(), TfheParameters::set_iv()] {
            let cfg = StrixConfig::paper_default();
            let pbs = PbsClusterModel::new(&p, &cfg);
            let ks = KsClusterModel::new(&p, &cfg);
            let batch = 4;
            assert!(
                ks.batch_cycles(batch) < pbs.blind_rotation_cycles(&p, batch),
                "{}: ks not hidden",
                p.name
            );
        }
    }
}
