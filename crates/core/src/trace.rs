//! Pipeline timing trace — the Fig. 8 experiment.
//!
//! The trace records, for the first few blind-rotation iterations, the
//! busy interval of every functional unit for every LWE in the core
//! batch, plus the local-scratchpad access windows and the HBM
//! bootstrapping-key fetches. Rendering it as ASCII art reproduces the
//! paper's timing diagram: staggered per-LWE bars in each unit row,
//! near-contiguous occupancy for the 100%-utilised units, gaps in the
//! rotator row, and a partially-occupied HBM row whose duty cycle is
//! the "time gap to fetch the next keys".

use serde::{Deserialize, Serialize};

use crate::config::StrixConfig;
use crate::units::{UnitKind, UnitModel};

/// One busy interval of one resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceInterval {
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
    /// Which LWE of the core batch this interval serves (HBM rows use
    /// the iteration index instead).
    pub lwe: usize,
    /// Which blind-rotation iteration.
    pub iteration: usize,
}

/// One labelled row of the timing diagram.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceRow {
    /// Row label (Fig. 8 row names).
    pub label: String,
    /// Busy intervals, sorted by start cycle.
    pub intervals: Vec<TraceInterval>,
}

impl TraceRow {
    /// Fraction of `[0, horizon)` covered by intervals (intervals are
    /// merged so overlaps are not double-counted).
    pub fn occupancy(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        let mut spans: Vec<(u64, u64)> = self
            .intervals
            .iter()
            .map(|iv| (iv.start.min(horizon), iv.end.min(horizon)))
            .filter(|(s, e)| e > s)
            .collect();
        spans.sort_unstable();
        let mut covered = 0;
        let mut cursor = 0u64;
        for (s, e) in spans {
            let s = s.max(cursor);
            if e > s {
                covered += e - s;
                cursor = e;
            }
        }
        covered as f64 / horizon as f64
    }
}

/// A complete pipeline trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PipelineTrace {
    rows: Vec<TraceRow>,
    horizon_cycles: u64,
    clock_ghz: f64,
}

impl PipelineTrace {
    /// Generates the trace analytically from the unit models.
    ///
    /// `ii` is the per-LWE initiation interval, `iteration_period` the
    /// effective per-iteration period for the whole core batch,
    /// `batch` the LWEs per core, and `bsk_fetch_cycles` the HBM fetch
    /// duration over the static bsk channel group.
    pub fn generate(
        config: &StrixConfig,
        units: &[UnitModel],
        ii: u64,
        iteration_period: u64,
        batch: usize,
        iterations: usize,
        bsk_fetch_cycles: u64,
    ) -> Self {
        let mut rows: Vec<TraceRow> = units
            .iter()
            .map(|u| TraceRow { label: u.kind.label().to_string(), intervals: Vec::new() })
            .collect();
        let mut scratchpad = TraceRow { label: "Loc. Scrtpd.".into(), intervals: Vec::new() };
        let mut hbm = TraceRow { label: "HBM".into(), intervals: Vec::new() };

        for it in 0..iterations {
            let iter_base = it as u64 * iteration_period;
            // The double-buffered fetch of iteration i+1's key overlaps
            // iteration i's compute.
            hbm.intervals.push(TraceInterval {
                start: iter_base,
                end: iter_base + bsk_fetch_cycles,
                lwe: 0,
                iteration: it,
            });
            for lwe in 0..batch {
                let lwe_base = iter_base + lwe as u64 * ii;
                let mut offset = 0u64;
                for (row, unit) in rows.iter_mut().zip(units) {
                    let iv = TraceInterval {
                        start: lwe_base + offset,
                        end: lwe_base + offset + unit.occupancy_cycles,
                        lwe,
                        iteration: it,
                    };
                    row.intervals.push(iv);
                    // The scratchpad is read by the rotator and written
                    // by the accumulator (§IV-B).
                    if matches!(unit.kind, UnitKind::Rotator | UnitKind::Accumulator) {
                        scratchpad.intervals.push(iv);
                    }
                    offset += unit.pipeline_latency_cycles;
                }
            }
        }
        rows.push(scratchpad);
        rows.push(hbm);
        let horizon_cycles = iterations as u64 * iteration_period;
        Self { rows, horizon_cycles, clock_ghz: config.clock_ghz }
    }

    /// The rows of the diagram, unit rows first, then scratchpad and HBM.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Trace horizon in cycles.
    pub fn horizon_cycles(&self) -> u64 {
        self.horizon_cycles
    }

    /// Occupancy of the row with the given label over the horizon.
    pub fn occupancy_of(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.label == label).map(|r| r.occupancy(self.horizon_cycles))
    }

    /// Renders the diagram as ASCII art, `width` characters wide.
    /// Per-LWE bars are drawn with distinct glyphs (`1`, `2`, `3`, …)
    /// so the staggering of the core-level batch is visible, as the
    /// colour coding of Fig. 8 is.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.max(16);
        let scale = self.horizon_cycles.max(1) as f64 / width as f64;
        let mut out = String::new();
        let label_w = self.rows.iter().map(|r| r.label.len()).max().unwrap_or(8) + 1;
        for row in &self.rows {
            let mut lane = vec![' '; width];
            for iv in &row.intervals {
                let glyph = char::from_digit((iv.lwe as u32 % 9) + 1, 10).unwrap_or('#');
                let s = (iv.start as f64 / scale) as usize;
                let e = ((iv.end as f64 / scale).ceil() as usize).min(width);
                for slot in lane.iter_mut().take(e).skip(s.min(width)) {
                    *slot = glyph;
                }
            }
            let bar: String = lane.into_iter().collect();
            out.push_str(&format!("{:>label_w$} |{bar}|\n", row.label));
        }
        let ns = self.horizon_cycles as f64 / self.clock_ghz;
        out.push_str(&format!("{:>label_w$} |{:-<width$}| {:.0} ns total\n", "time", "", ns));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PbsClusterModel;
    use strix_tfhe::TfheParameters;

    fn fig8_trace(iterations: usize) -> PipelineTrace {
        // Fig. 8's setup: set I, 3 LWEs per core; the figure shows the
        // first two iterations, occupancy tests use a longer horizon to
        // amortise the pipeline ramp-in.
        let config = StrixConfig::paper_default().with_core_batch(3);
        let params = TfheParameters::set_i();
        let cluster = PbsClusterModel::new(&params, &config);
        let ii = cluster.initiation_interval_cycles();
        PipelineTrace::generate(
            &config,
            cluster.units(),
            ii,
            ii * 3,
            3,
            iterations,
            488, // 64 KiB over the 150 GB/s bsk channel group at 1.2 GHz
        )
    }

    #[test]
    fn full_units_are_fully_occupied() {
        let t = fig8_trace(16);
        for label in ["Decomp.", "FFT", "VMA", "IFFT", "Accum."] {
            let occ = t.occupancy_of(label).unwrap();
            assert!(occ > 0.92, "{label}: {occ}");
        }
    }

    #[test]
    fn rotator_is_half_occupied() {
        let t = fig8_trace(16);
        let occ = t.occupancy_of("Rotator").unwrap();
        assert!((0.45..0.60).contains(&occ), "{occ}");
    }

    #[test]
    fn hbm_occupancy_matches_paper_sixty_percent() {
        // 488 fetch cycles per 768-cycle iteration ≈ 64% ("around 60%
        // of the time", §VI-C).
        let t = fig8_trace(16);
        let occ = t.occupancy_of("HBM").unwrap();
        assert!((0.55..0.75).contains(&occ), "{occ}");
    }

    #[test]
    fn scratchpad_is_heavily_accessed() {
        let t = fig8_trace(16);
        let occ = t.occupancy_of("Loc. Scrtpd.").unwrap();
        assert!(occ > 0.8, "{occ}");
    }

    #[test]
    fn ascii_rendering_has_all_rows() {
        let t = fig8_trace(2);
        let art = t.render_ascii(100);
        for label in ["Rotator", "Decomp.", "FFT", "VMA", "IFFT", "Accum.", "Loc. Scrtpd.", "HBM"] {
            assert!(art.contains(label), "missing row {label}\n{art}");
        }
        // Three distinct LWE glyphs must appear (the batch staggering).
        for glyph in ['1', '2', '3'] {
            assert!(art.contains(glyph), "missing glyph {glyph}");
        }
    }

    #[test]
    fn occupancy_caps_at_horizon() {
        let row = TraceRow {
            label: "x".into(),
            intervals: vec![TraceInterval { start: 0, end: 100, lwe: 0, iteration: 0 }],
        };
        assert!((row.occupancy(50) - 1.0).abs() < 1e-12);
        assert_eq!(row.occupancy(0), 0.0);
    }

    #[test]
    fn overlapping_intervals_not_double_counted() {
        let row = TraceRow {
            label: "x".into(),
            intervals: vec![
                TraceInterval { start: 0, end: 60, lwe: 0, iteration: 0 },
                TraceInterval { start: 40, end: 100, lwe: 1, iteration: 0 },
            ],
        };
        assert!((row.occupancy(100) - 1.0).abs() < 1e-12);
    }
}
