//! Area and power model — the Table III / Table VI hardware-cost side.
//!
//! The paper synthesised Strix's SystemVerilog in TSMC 28 nm; we do not
//! have that flow, so (per the reproduction's substitution policy) the
//! model anchors every component to its Table III value at the paper's
//! design point and applies first-order scaling laws:
//!
//! * scratchpads scale with capacity,
//! * lane-structured units (rotator, decomposer, VMA, accumulator)
//!   scale with their lane × instance count,
//! * the pipelined FFT unit scales as `m·N_fft + c·CLP·log2(N_fft)` —
//!   a delay-line (SRAM) term plus a butterfly term — with `m, c`
//!   fitted to the paper's folded (1.81 mm², 8192-pt) and non-folded
//!   (3.13 mm², 16384-pt) data points of Table VI,
//! * the HBM PHY is fixed per stack.
//!
//! Power entries scale proportionally to their component's area.

use serde::{Deserialize, Serialize};

use crate::config::StrixConfig;

/// Maximum polynomial size the physical FFT unit supports (the paper's
/// unit targets `N = 16384`, §V-A).
pub const MAX_SUPPORTED_POLY_SIZE: usize = 16384;

/// Fitted delay-line area per FFT point, mm² (from Table VI).
const FFT_MEM_MM2_PER_POINT: f64 = 1.561e-4;
/// Fitted butterfly area per lane per stage, mm² (from Table VI).
const FFT_BFU_MM2_PER_LANE_STAGE: f64 = 0.010_2;

/// Area/power of one named component.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComponentCost {
    /// Component name (Table III row).
    pub name: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in W.
    pub power_w: f64,
}

/// The full chip cost breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AreaModel {
    per_core: Vec<ComponentCost>,
    uncore: Vec<ComponentCost>,
    cores: usize,
}

impl AreaModel {
    /// Builds the cost model for a configuration. The FFT unit is sized
    /// for the maximum supported polynomial degree, not the currently
    /// running parameter set — hardware is provisioned for the worst
    /// case, as the paper's unit is.
    pub fn new(config: &StrixConfig) -> Self {
        let lanes = config.stream_lanes() as f64 * config.colp as f64;
        let lane_ratio = lanes / 16.0; // paper design point: 16 lanes
        let n_fft = if config.folding {
            (MAX_SUPPORTED_POLY_SIZE / 2) as f64
        } else {
            MAX_SUPPORTED_POLY_SIZE as f64
        };
        let fft_unit = Self::fft_unit_area_mm2(n_fft, config.clp as f64);
        // FFT instances: PLP forward units; IFFT instances: CoLP.
        let fft_count = (config.plp + config.colp) as f64;
        let vma_ratio = (config.clp * config.plp * config.colp) as f64 / 16.0;
        let local_ratio = config.local_scratchpad_bytes as f64 / (640.0 * 1024.0);

        // Table III anchors (paper design point values).
        let per_core = vec![
            ComponentCost {
                name: format!(
                    "Local scratchpad ({:.3} MB)",
                    config.local_scratchpad_bytes as f64 / (1024.0 * 1024.0)
                ),
                area_mm2: 0.92 * local_ratio,
                power_w: 0.47 * local_ratio,
            },
            ComponentCost {
                name: "Rotator".into(),
                area_mm2: 0.02 * lane_ratio,
                power_w: 0.01 * lane_ratio,
            },
            ComponentCost {
                name: "Decomposer".into(),
                area_mm2: 0.28 * lane_ratio,
                power_w: 0.02 * lane_ratio,
            },
            ComponentCost {
                name: "I/FFTU".into(),
                area_mm2: fft_unit * fft_count,
                power_w: 5.49 * (fft_unit * fft_count) / 7.23,
            },
            ComponentCost {
                name: "VMA".into(),
                area_mm2: 0.63 * vma_ratio,
                power_w: 0.10 * vma_ratio,
            },
            ComponentCost {
                name: "Accumulator".into(),
                area_mm2: 0.32 * lane_ratio,
                power_w: 0.13 * lane_ratio,
            },
        ];

        let global_ratio = config.global_scratchpad_bytes as f64 / (21.0 * 1024.0 * 1024.0);
        let noc_ratio = config.tvlp as f64 / 8.0;
        let uncore = vec![
            ComponentCost {
                name: "Global NoC".into(),
                area_mm2: 0.04 * noc_ratio,
                power_w: 0.01 * noc_ratio,
            },
            ComponentCost {
                name: format!(
                    "Global scratchpad ({:.0} MB)",
                    config.global_scratchpad_bytes as f64 / (1024.0 * 1024.0)
                ),
                area_mm2: 51.40 * global_ratio,
                power_w: 26.24 * global_ratio,
            },
            ComponentCost { name: "HBM2 PHY".into(), area_mm2: 14.90, power_w: 1.23 },
        ];

        Self { per_core, uncore, cores: config.tvlp }
    }

    /// Area of a single pipelined FFT unit: delay-line memory plus
    /// butterflies and twiddle ROMs.
    pub fn fft_unit_area_mm2(n_fft: f64, clp: f64) -> f64 {
        let stages = n_fft.log2();
        FFT_MEM_MM2_PER_POINT * n_fft + FFT_BFU_MM2_PER_LANE_STAGE * clp * stages
    }

    /// Per-core component costs (Table III upper block).
    pub fn per_core_components(&self) -> &[ComponentCost] {
        &self.per_core
    }

    /// Chip-level component costs (NoC, global scratchpad, HBM PHY).
    pub fn uncore_components(&self) -> &[ComponentCost] {
        &self.uncore
    }

    /// Area of one HSC in mm².
    pub fn core_area_mm2(&self) -> f64 {
        self.per_core.iter().map(|c| c.area_mm2).sum()
    }

    /// Power of one HSC in W.
    pub fn core_power_w(&self) -> f64 {
        self.per_core.iter().map(|c| c.power_w).sum()
    }

    /// Area of the FFT/IFFT units of one core (the Table VI metric).
    pub fn fft_units_area_mm2(&self) -> f64 {
        self.per_core.iter().find(|c| c.name == "I/FFTU").map(|c| c.area_mm2).unwrap_or(0.0)
    }

    /// Total chip area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.core_area_mm2() * self.cores as f64
            + self.uncore.iter().map(|c| c.area_mm2).sum::<f64>()
    }

    /// Total chip power in W.
    pub fn total_power_w(&self) -> f64 {
        self.core_power_w() * self.cores as f64 + self.uncore.iter().map(|c| c.power_w).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn table_iii_totals_reproduce() {
        let m = AreaModel::new(&StrixConfig::paper_default());
        // Paper: core 9.38 mm² / 6.21 W; total 141.37 mm² / 77.14 W.
        assert!(close(m.core_area_mm2(), 9.38, 0.02), "{}", m.core_area_mm2());
        assert!(close(m.core_power_w(), 6.21, 0.02), "{}", m.core_power_w());
        assert!(close(m.total_area_mm2(), 141.37, 0.02), "{}", m.total_area_mm2());
        assert!(close(m.total_power_w(), 77.14, 0.02), "{}", m.total_power_w());
    }

    #[test]
    fn table_iii_fft_row_reproduces() {
        let m = AreaModel::new(&StrixConfig::paper_default());
        // Paper: I/FFTU 7.23 mm² (four units of 1.81 mm²).
        assert!(close(m.fft_units_area_mm2(), 7.23, 0.02), "{}", m.fft_units_area_mm2());
    }

    #[test]
    fn table_vi_fft_unit_areas() {
        // Folded 8192-pt: 1.81 mm²; non-folded 16384-pt: 3.13 mm².
        assert!(close(AreaModel::fft_unit_area_mm2(8192.0, 4.0), 1.81, 0.01));
        assert!(close(AreaModel::fft_unit_area_mm2(16384.0, 4.0), 3.13, 0.01));
    }

    #[test]
    fn table_vi_core_area_ratio() {
        // Paper: 13.87 vs 9.38 mm² → 1.48× core-area reduction.
        let folded = AreaModel::new(&StrixConfig::paper_default());
        let plain = AreaModel::new(&StrixConfig::paper_non_folded());
        let ratio = plain.core_area_mm2() / folded.core_area_mm2();
        assert!((1.35..1.60).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn area_scales_with_scratchpad_capacity() {
        let mut cfg = StrixConfig::paper_default();
        cfg.global_scratchpad_bytes *= 2;
        let m = AreaModel::new(&cfg);
        let base = AreaModel::new(&StrixConfig::paper_default());
        assert!(m.total_area_mm2() > base.total_area_mm2() + 50.0);
    }

    #[test]
    fn component_lists_are_complete() {
        let m = AreaModel::new(&StrixConfig::paper_default());
        assert_eq!(m.per_core_components().len(), 6);
        assert_eq!(m.uncore_components().len(), 3);
        for c in m.per_core_components().iter().chain(m.uncore_components()) {
            assert!(c.area_mm2 > 0.0 && c.power_w > 0.0, "{}", c.name);
        }
    }
}
