//! Cycle-level model of the **Strix** streaming TFHE accelerator.
//!
//! Strix (MICRO 2023) attacks the *blind-rotation fragmentation* problem
//! of TFHE programmable bootstrapping with **two-level ciphertext
//! batching**:
//!
//! * **device-level batching** — `TvLP` Homomorphic Streaming Cores
//!   (HSCs) work on different ciphertexts while sharing one stream of
//!   bootstrapping-key material, and
//! * **core-level batching** — each HSC pipelines a stream of
//!   ciphertexts through its six-stage PBS cluster (rotator →
//!   decomposer → FFT → VMA → IFFT → accumulator) so that one
//!   bootstrapping-key fetch is reused across the whole stream.
//!
//! This crate reproduces the paper's custom simulator (§VI-B): it
//! converts workloads into computational graphs of bootstrapping /
//! keyswitching nodes, decomposes them into blind-rotation fragments,
//! and derives latency, throughput, bandwidth demand and per-unit
//! utilisation from first-principles timing models of every functional
//! unit, the two-level scratchpad hierarchy, the multicast NoC and the
//! HBM channels. An area/power model calibrated on Table III covers the
//! hardware-cost side of the evaluation, including the FFT folding
//! ablation of Table VI.
//!
//! # Example
//!
//! ```
//! use strix_core::{StrixConfig, StrixSimulator};
//! use strix_tfhe::TfheParameters;
//!
//! # fn main() -> Result<(), strix_core::SimError> {
//! let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i())?;
//! let report = sim.pbs_report(1 << 14);
//! // Strix sustains tens of thousands of bootstraps per second (Table V).
//! assert!(report.throughput_pbs_per_s > 50_000.0);
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod batch;
pub mod config;
mod engine;
mod error;
pub mod graph;
pub mod memory;
pub mod noc;
pub mod pipeline;
pub mod trace;
pub mod units;

pub use batch::BatchGeometry;
pub use config::{HbmConfig, StrixConfig};
pub use engine::{EnergyReport, GraphReport, NodeReport, PbsReport, StrixSimulator};
pub use error::SimError;
pub use graph::{Workload, WorkloadNode};
