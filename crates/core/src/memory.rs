//! Memory-system model: scratchpad hierarchy and HBM streaming (§IV-B).
//!
//! * The **global scratchpad** (21 MB, double-buffered) stages the
//!   bootstrapping-key and keyswitching-key slices shared by all cores
//!   plus per-core private ciphertext sections.
//! * Each **local scratchpad** (0.625 MB) holds the intermediate test
//!   vectors of the core-level batch — its capacity *determines* the
//!   core-level batch size (§IV-C), the central quantity of the paper's
//!   two-level batching.
//! * **HBM** streams one Fourier-domain GGSW per blind-rotation
//!   iteration. With double buffering the fetch overlaps compute; the
//!   iteration stalls only when the fetch time exceeds the compute
//!   time, which is the compute-/memory-bound boundary explored in
//!   Table VII.

use serde::{Deserialize, Serialize};

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;

/// Derived memory-system quantities for a `(parameters, config)` pair.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Core-level batch size: LWEs streamed per HSC per iteration.
    pub core_batch: usize,
    /// Bytes of one Fourier-domain GGSW (per-iteration bsk traffic).
    pub ggsw_bytes: usize,
    /// Total bootstrapping-key bytes.
    pub bsk_bytes: usize,
    /// Total keyswitching-key bytes.
    pub ksk_bytes: usize,
    /// Bytes of one input LWE ciphertext.
    pub lwe_in_bytes: usize,
    /// Bytes of one output LWE ciphertext (after keyswitch, dimension n).
    pub lwe_out_bytes: usize,
}

impl MemoryModel {
    /// Builds the memory model. The core-level batch size comes from
    /// the shared §IV-C policy ([`crate::batch::BatchGeometry`]), which
    /// derives it from the local-scratchpad capacity unless overridden.
    pub fn new(params: &TfheParameters, config: &StrixConfig) -> Self {
        Self {
            core_batch: crate::batch::BatchGeometry::derive(params, config).core_batch,
            ggsw_bytes: params.fourier_ggsw_bytes(),
            bsk_bytes: params.bootstrap_key_bytes(),
            ksk_bytes: params.keyswitch_key_bytes(),
            lwe_in_bytes: params.lwe_bytes(),
            lwe_out_bytes: params.lwe_bytes(),
        }
    }

    /// Seconds to stream one GGSW from HBM for the next iteration,
    /// assuming the bootstrapping key may burst across the full stack
    /// bandwidth (the global scratchpad's double buffer absorbs the
    /// ksk/io channel traffic).
    pub fn ggsw_fetch_seconds(&self, config: &StrixConfig) -> f64 {
        self.ggsw_bytes as f64 / config.hbm.total_bytes_per_s()
    }

    /// Seconds to stream one GGSW over the dedicated bsk channel group
    /// only (the static 8-of-16 allocation of §VI-A). Used for the
    /// Fig. 8 HBM-occupancy row.
    pub fn ggsw_fetch_seconds_static(&self, config: &StrixConfig) -> f64 {
        self.ggsw_bytes as f64 / config.hbm.bsk_bytes_per_s()
    }

    /// Whether the full bootstrapping key fits in the global scratchpad
    /// (then HBM streaming is only needed once, not per epoch).
    pub fn bsk_resident(&self, config: &StrixConfig) -> bool {
        // Double-buffered: only half the capacity holds live data.
        self.bsk_bytes * 2 <= config.global_scratchpad_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_i_core_batch_from_scratchpad() {
        // 0.8 × 0.625 MB = 512 KiB of PBS-cluster memory over 16 KiB
        // test vectors → 32 LWEs per core.
        let m = MemoryModel::new(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.core_batch, 32);
    }

    #[test]
    fn set_iv_core_batch_is_two() {
        // 512 KiB / 256 KiB test vectors → 2 LWEs per core: exactly the
        // regime where Table VII's bandwidth pressure appears.
        let m = MemoryModel::new(&TfheParameters::set_iv(), &StrixConfig::paper_default());
        assert_eq!(m.core_batch, 2);
    }

    #[test]
    fn core_batch_override_wins() {
        let cfg = StrixConfig::paper_default().with_core_batch(3);
        let m = MemoryModel::new(&TfheParameters::set_i(), &cfg);
        assert_eq!(m.core_batch, 3); // the Fig. 8 example
    }

    #[test]
    fn core_batch_never_zero() {
        // Even a parameter set whose test vector exceeds the scratchpad
        // must stream at batch 1.
        let mut cfg = StrixConfig::paper_default();
        cfg.local_scratchpad_bytes = 1024;
        let m = MemoryModel::new(&TfheParameters::set_iv(), &cfg);
        assert_eq!(m.core_batch, 1);
    }

    #[test]
    fn ggsw_traffic_set_i() {
        let m = MemoryModel::new(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.ggsw_bytes, 64 * 1024);
        // 64 KiB over 300 GB/s ≈ 203 ns ≈ 244 cycles at 1.2 GHz.
        let cfg = StrixConfig::paper_default();
        let cycles = m.ggsw_fetch_seconds(&cfg) * cfg.clock_hz();
        assert!((240.0..250.0).contains(&cycles), "{cycles}");
        // Static 8-channel allocation: twice as long.
        let s = m.ggsw_fetch_seconds_static(&cfg) * cfg.clock_hz();
        assert!((485.0..495.0).contains(&s), "{s}");
    }

    #[test]
    fn set_i_bsk_not_resident() {
        // 31 MB of bootstrapping key (×2 for double buffering) exceeds
        // the 21 MB global scratchpad → per-epoch streaming, as the
        // paper's Fig. 8 HBM row shows.
        let m = MemoryModel::new(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert!(!m.bsk_resident(&StrixConfig::paper_default()));
    }
}
