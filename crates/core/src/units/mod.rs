//! Timing models of the five specialised functional units (§V).
//!
//! Each unit is characterised by two quantities, both in clock cycles:
//!
//! * **occupancy** — how long the unit is busy per LWE per
//!   blind-rotation iteration. The maximum across units is the PBS
//!   cluster's initiation interval (II): a new LWE can enter the
//!   pipeline every II cycles. The ratio `occupancy / II` is the unit's
//!   utilisation, the quantity plotted in Fig. 8 (rotator ≈ 50%, all
//!   others ≈ 100% at the paper's design point).
//! * **pipeline latency** — the fill delay from first input to first
//!   output, contributing to single-ciphertext latency and the stagger
//!   between units in the Fig. 8 timing diagram.
//!
//! All formulas are parameterised by the paper's parallelism taxonomy
//! (`CLP` lanes, `PLP`/`CoLP` replication) and by the folding scheme,
//! which halves the FFT signal length while doubling the lane count of
//! every streaming unit.

mod accumulator;
mod decomposer;
mod fft_unit;
mod rotator;
mod vma;

use serde::{Deserialize, Serialize};

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;

pub use accumulator::accumulator_model;
pub use decomposer::decomposer_model;
pub use fft_unit::{fft_model, fourier_signal_size, ifft_model};
pub use rotator::rotator_model;
pub use vma::vma_model;

/// The six pipeline stages of the PBS cluster, in dataflow order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitKind {
    /// Negacyclic rotation and subtraction.
    Rotator,
    /// Gadget decomposition.
    Decomposer,
    /// Forward FFT of decomposed digit polynomials.
    Fft,
    /// Fourier-domain vector multiply–add against bsk rows.
    Vma,
    /// Inverse FFT back to the time domain.
    Ifft,
    /// Time-domain accumulation into the next accumulator value.
    Accumulator,
}

impl UnitKind {
    /// All PBS-cluster units in pipeline order.
    pub const PIPELINE: [UnitKind; 6] = [
        UnitKind::Rotator,
        UnitKind::Decomposer,
        UnitKind::Fft,
        UnitKind::Vma,
        UnitKind::Ifft,
        UnitKind::Accumulator,
    ];

    /// Display label used in trace output (matches Fig. 8 row names).
    pub fn label(self) -> &'static str {
        match self {
            UnitKind::Rotator => "Rotator",
            UnitKind::Decomposer => "Decomp.",
            UnitKind::Fft => "FFT",
            UnitKind::Vma => "VMA",
            UnitKind::Ifft => "IFFT",
            UnitKind::Accumulator => "Accum.",
        }
    }
}

impl std::fmt::Display for UnitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Timing characterisation of one functional unit for a given
/// `(parameters, configuration)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitModel {
    /// Which unit this is.
    pub kind: UnitKind,
    /// Busy cycles per LWE per blind-rotation iteration.
    pub occupancy_cycles: u64,
    /// Fill latency from first input to first output, in cycles.
    pub pipeline_latency_cycles: u64,
}

impl UnitModel {
    /// Utilisation of this unit when the cluster streams at initiation
    /// interval `ii` (Fig. 8's per-unit shading).
    pub fn utilization(&self, ii: u64) -> f64 {
        if ii == 0 {
            return 0.0;
        }
        self.occupancy_cycles as f64 / ii as f64
    }
}

/// Builds the timing models of all six PBS-cluster units, in pipeline
/// order.
pub fn pbs_units(params: &TfheParameters, config: &StrixConfig) -> Vec<UnitModel> {
    vec![
        rotator_model(params, config),
        decomposer_model(params, config),
        fft_model(params, config),
        vma_model(params, config),
        ifft_model(params, config),
        accumulator_model(params, config),
    ]
}

/// Ceiling division helper shared by the unit formulas.
pub(crate) fn div_ceil_u64(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_i() -> TfheParameters {
        TfheParameters::set_i()
    }

    #[test]
    fn paper_design_point_initiation_interval_is_256() {
        // Derived in §VI: folded FFT at CLP=4 streams one 1024-coeff
        // polynomial every 128 cycles; (k+1)·l_b = 4 digit polynomials
        // over PLP = 2 FFT units gives II = 256 cycles per LWE-iteration.
        let units = pbs_units(&set_i(), &StrixConfig::paper_default());
        let ii = units.iter().map(|u| u.occupancy_cycles).max().unwrap();
        assert_eq!(ii, 256);
    }

    #[test]
    fn rotator_is_half_utilized_others_full() {
        // Fig. 8: decomposer, FFT, VMA, IFFT, accumulator near 100%,
        // rotator at 50%.
        let units = pbs_units(&set_i(), &StrixConfig::paper_default());
        let ii = units.iter().map(|u| u.occupancy_cycles).max().unwrap();
        for u in &units {
            let util = u.utilization(ii);
            if u.kind == UnitKind::Rotator {
                assert!((util - 0.5).abs() < 1e-9, "rotator {util}");
            } else {
                assert!((util - 1.0).abs() < 1e-9, "{:?} {util}", u.kind);
            }
        }
    }

    #[test]
    fn non_folded_initiation_interval_doubles() {
        // Table VI: removing folding halves throughput — II goes from
        // 256 to 512 at set I.
        let units = pbs_units(&set_i(), &StrixConfig::paper_non_folded());
        let ii = units.iter().map(|u| u.occupancy_cycles).max().unwrap();
        assert_eq!(ii, 512);
    }

    #[test]
    fn set_iv_initiation_interval() {
        // Set IV (N = 16384, l_b = 2): II = 2·2·8192/4/2 = 4096 cycles.
        let units = pbs_units(&TfheParameters::set_iv(), &StrixConfig::paper_default());
        let ii = units.iter().map(|u| u.occupancy_cycles).max().unwrap();
        assert_eq!(ii, 4096);
    }

    #[test]
    fn pipeline_order_and_labels() {
        let units = pbs_units(&set_i(), &StrixConfig::paper_default());
        let kinds: Vec<UnitKind> = units.iter().map(|u| u.kind).collect();
        assert_eq!(kinds, UnitKind::PIPELINE);
        assert_eq!(UnitKind::Fft.to_string(), "FFT");
    }

    #[test]
    fn utilization_handles_zero_ii() {
        let u =
            UnitModel { kind: UnitKind::Rotator, occupancy_cycles: 10, pipeline_latency_cycles: 1 };
        assert_eq!(u.utilization(0), 0.0);
    }
}
