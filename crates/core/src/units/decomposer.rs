//! Decomposer unit (§V-B): streaming gadget decomposition.
//!
//! The novel Strix decomposer splits Eq. (3) into a *rounding step*
//! (mask the `β·l` contributing bits, add the carry from the first
//! dropped bit) and an *extraction step* (per-level mask, balance
//! against `B/2`, propagate the carry) — multiplier-free, matching
//! `strix_tfhe::decompose` bit for bit. It consumes one polynomial and
//! emits `l_b` digit polynomials; the paper sizes it with `2·CLP` lanes
//! per instance so its *output* rate matches the FFT units' input rate,
//! making it a 100%-utilised stage (Fig. 8). It runs for
//! `N/CLP × l_b` cycles per polynomial (§V-B).

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;
use crate::units::{div_ceil_u64, UnitKind, UnitModel};

/// Builds the decomposer timing model.
///
/// Occupancy is output-driven: `(k+1)·l_b` digit polynomials of `N`
/// coefficients emitted over `2·CLP`-lane instances replicated `CoLP`
/// times.
pub fn decomposer_model(params: &TfheParameters, config: &StrixConfig) -> UnitModel {
    let k1 = (params.glwe_dimension + 1) as u64;
    let n = params.polynomial_size as u64;
    let l = params.pbs_level as u64;
    let lanes = config.stream_lanes() as u64 * config.colp as u64;
    UnitModel {
        kind: UnitKind::Decomposer,
        occupancy_cycles: div_ceil_u64(k1 * l * n, lanes),
        // Rounding stage + one extraction stage per level + output mux.
        pipeline_latency_cycles: 2 + l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_i_occupancy_is_256() {
        // (k+1)·l_b·N / (2·CLP·CoLP) = 4·1024/16 = 256 cycles — 100%
        // utilised at the 256-cycle design-point II.
        let m = decomposer_model(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.occupancy_cycles, 256);
    }

    #[test]
    fn occupancy_scales_with_levels() {
        // Set II has l_b = 3 (vs 2): 2·3·1024/16 = 384.
        let m = decomposer_model(&TfheParameters::set_ii(), &StrixConfig::paper_default());
        assert_eq!(m.occupancy_cycles, 384);
    }

    #[test]
    fn latency_grows_with_levels() {
        let cfg = StrixConfig::paper_default();
        let l2 = decomposer_model(&TfheParameters::set_i(), &cfg);
        let l3 = decomposer_model(&TfheParameters::set_ii(), &cfg);
        assert_eq!(l3.pipeline_latency_cycles, l2.pipeline_latency_cycles + 1);
    }

    #[test]
    fn matches_paper_per_polynomial_cycle_count() {
        // §V-B: "the decomposer unit operates for N/CLP × l_b cycles for
        // each polynomial" — per (k+1)-polynomial input with CoLP
        // instances this is exactly our occupancy formula.
        let p = TfheParameters::set_i();
        let cfg = StrixConfig::paper_default();
        let per_poly = (p.polynomial_size as u64 / (2 * cfg.clp as u64)) * p.pbs_level as u64;
        let per_lwe = per_poly * (p.glwe_dimension + 1) as u64 / cfg.colp as u64;
        assert_eq!(decomposer_model(&p, &cfg).occupancy_cycles, per_lwe);
    }
}
