//! Rotator unit (§V-C): negacyclic rotation and polynomial subtraction.
//!
//! The rotator reads the accumulator's `(k+1)` polynomials from the
//! local scratchpad, rotates them by the modulus-switched mask element
//! `ã_i` (a lane-aligned cyclic shift plus sign fix-up) and subtracts
//! the unrotated value — Algorithm 1 line 6. It has `2·CLP` lanes per
//! instance and `CoLP` instances, so it is deliberately *over-
//! provisioned*: at the paper's design point it runs at 50% utilisation
//! (Fig. 8), guaranteeing it never back-pressures the decomposer.

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;
use crate::units::{div_ceil_u64, UnitKind, UnitModel};

/// Fixed datapath depth: read, shift, sign fix-up, subtract.
const ROTATOR_PIPE_DEPTH: u64 = 4;

/// Builds the rotator timing model.
pub fn rotator_model(params: &TfheParameters, config: &StrixConfig) -> UnitModel {
    let k1 = (params.glwe_dimension + 1) as u64;
    let n = params.polynomial_size as u64;
    let lanes = config.stream_lanes() as u64 * config.colp as u64;
    UnitModel {
        kind: UnitKind::Rotator,
        occupancy_cycles: div_ceil_u64(k1 * n, lanes),
        pipeline_latency_cycles: ROTATOR_PIPE_DEPTH,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_i_occupancy_is_128() {
        // (k+1)·N / (2·CLP·CoLP) = 2·1024 / 16 = 128 cycles.
        let m = rotator_model(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.occupancy_cycles, 128);
    }

    #[test]
    fn occupancy_scales_with_polynomial_size() {
        let cfg = StrixConfig::paper_default();
        let m1 = rotator_model(&TfheParameters::set_i(), &cfg); // N=1024
        let m3 = rotator_model(&TfheParameters::set_iii(), &cfg); // N=2048
        assert_eq!(m3.occupancy_cycles, 2 * m1.occupancy_cycles);
    }

    #[test]
    fn non_folded_lanes_halve_throughput() {
        let m = rotator_model(&TfheParameters::set_i(), &StrixConfig::paper_non_folded());
        assert_eq!(m.occupancy_cycles, 256);
    }

    #[test]
    fn latency_is_constant_pipe_depth() {
        let m = rotator_model(&TfheParameters::set_iv(), &StrixConfig::paper_default());
        assert_eq!(m.pipeline_latency_cycles, ROTATOR_PIPE_DEPTH);
    }
}
