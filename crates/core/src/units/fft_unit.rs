//! Pipelined (I)FFT unit (§V-A, Fig. 5).
//!
//! The unit is a fully pipelined radix-2 network: `log2(N_fft)` stages
//! of `CLP/2` butterflies each, joined by shuffle units (SHUs) whose
//! delay lines perform the inter-stage data reordering in-stream —
//! eliminating the irregular memory accesses (and matrix transposes)
//! of memory-based NTT designs. After an initial fill of `N_fft/CLP`
//! cycles it accepts a new polynomial every `N_fft/CLP` cycles.
//!
//! With the **folding scheme**, an `N`-coefficient negacyclic transform
//! runs on an `N_fft = N/2`-point pipeline (`strix_fft::NegacyclicFft`
//! is the bit-accurate software model), halving both the per-polynomial
//! cycle count and the delay-line storage — the 2× throughput / 1.7×
//! FFT-area gain of Table VI. Note the pipeline never materialises a
//! natural-order spectrum: the SHUs reorder in-stream and the VMA
//! consumes whatever lane order the last stage emits. The software
//! mirror of that property is `strix_fft::SpectralPlan`'s
//! bit-reversed-spectrum convention, which deletes the bit-reversal
//! permutation pass from both transform directions.
//!
//! The paper's workload-balancing trick (§IV-B) splits the external
//! product's accumulation between the frequency and time domains so the
//! IFFT transforms as many polynomials as the FFT (a 1:1 ratio instead
//! of `l_b`:1), which is why [`ifft_model`] mirrors [`fft_model`] with
//! `CoLP` instances.

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;
use crate::units::{div_ceil_u64, UnitKind, UnitModel};

/// Number of points the FFT pipeline processes per polynomial:
/// `N/2` folded, `N` otherwise.
pub fn fourier_signal_size(params: &TfheParameters, config: &StrixConfig) -> u64 {
    let n = params.polynomial_size as u64;
    if config.folding {
        n / 2
    } else {
        n
    }
}

/// Cycles to stream one polynomial through one FFT unit.
fn per_polynomial_cycles(params: &TfheParameters, config: &StrixConfig) -> u64 {
    div_ceil_u64(fourier_signal_size(params, config), config.clp as u64)
}

/// Pipeline fill latency: the SHU delay lines sum to roughly the
/// per-polynomial streaming time, plus one register per butterfly stage.
fn fill_latency_cycles(params: &TfheParameters, config: &StrixConfig) -> u64 {
    let n_fft = fourier_signal_size(params, config);
    per_polynomial_cycles(params, config) + 2 * (63 - n_fft.leading_zeros() as u64)
}

/// Builds the forward-FFT timing model: `(k+1)·l_b` digit polynomials
/// per LWE-iteration spread over `PLP` unit instances.
pub fn fft_model(params: &TfheParameters, config: &StrixConfig) -> UnitModel {
    let k1 = (params.glwe_dimension + 1) as u64;
    let l = params.pbs_level as u64;
    let polys = k1 * l;
    let occ = div_ceil_u64(polys * per_polynomial_cycles(params, config), config.plp as u64);
    UnitModel {
        kind: UnitKind::Fft,
        occupancy_cycles: occ,
        pipeline_latency_cycles: fill_latency_cycles(params, config),
    }
}

/// Builds the inverse-FFT timing model. Thanks to the frequency/time
/// accumulation split it transforms the same number of polynomials as
/// the forward FFT, over `CoLP` instances.
pub fn ifft_model(params: &TfheParameters, config: &StrixConfig) -> UnitModel {
    let k1 = (params.glwe_dimension + 1) as u64;
    let l = params.pbs_level as u64;
    let polys = k1 * l;
    let occ = div_ceil_u64(polys * per_polynomial_cycles(params, config), config.colp as u64);
    UnitModel {
        kind: UnitKind::Ifft,
        occupancy_cycles: occ,
        pipeline_latency_cycles: fill_latency_cycles(params, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_set_i_streams_a_polynomial_every_128_cycles() {
        let p = TfheParameters::set_i();
        let cfg = StrixConfig::paper_default();
        assert_eq!(fourier_signal_size(&p, &cfg), 512);
        assert_eq!(per_polynomial_cycles(&p, &cfg), 128);
        assert_eq!(fft_model(&p, &cfg).occupancy_cycles, 256);
    }

    #[test]
    fn non_folded_doubles_signal_size() {
        let p = TfheParameters::set_i();
        let cfg = StrixConfig::paper_non_folded();
        assert_eq!(fourier_signal_size(&p, &cfg), 1024);
        assert_eq!(fft_model(&p, &cfg).occupancy_cycles, 512);
    }

    #[test]
    fn ifft_matches_fft_occupancy_at_design_point() {
        // The 1:1 FFT/IFFT balance of §IV-B holds when PLP = CoLP.
        let p = TfheParameters::set_ii();
        let cfg = StrixConfig::paper_default();
        assert_eq!(fft_model(&p, &cfg).occupancy_cycles, ifft_model(&p, &cfg).occupancy_cycles);
    }

    #[test]
    fn fill_latency_includes_delay_lines_and_stages() {
        let p = TfheParameters::set_i();
        let cfg = StrixConfig::paper_default();
        // 512-point pipeline at 4 lanes: 128-cycle delay lines + 2·9
        // stage registers.
        assert_eq!(fft_model(&p, &cfg).pipeline_latency_cycles, 128 + 18);
    }

    #[test]
    fn folding_halves_fill_latency_roughly() {
        let p = TfheParameters::set_iv();
        let folded = fft_model(&p, &StrixConfig::paper_default());
        let plain = fft_model(&p, &StrixConfig::paper_non_folded());
        assert!(plain.pipeline_latency_cycles > folded.pipeline_latency_cycles);
        let ratio = plain.pipeline_latency_cycles as f64 / folded.pipeline_latency_cycles as f64;
        assert!((1.8..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_clp_lanes_cut_streaming_time() {
        let p = TfheParameters::set_iv();
        let base = StrixConfig::paper_default();
        let wide = StrixConfig::paper_default().with_tvlp_clp(2, 16);
        assert_eq!(
            fft_model(&p, &base).occupancy_cycles,
            4 * fft_model(&p, &wide).occupancy_cycles
        );
    }
}
