//! Vector multiply–add unit (§V-C): Fourier-domain external product.
//!
//! The VMA multiplies the transformed digit polynomials against the
//! broadcast bootstrapping-key rows and reduces partial sums through an
//! adder tree. In the PBS cluster it operates on complex fixed-point
//! pairs; per LWE-iteration it performs
//! `(k+1)·l_b × (k+1) × N_fft` complex multiply–accumulates — the
//! matrix–matrix workload of Fig. 3 — over a capacity of
//! `CLP × PLP × CoLP` complex MACs per cycle.

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;
use crate::units::{div_ceil_u64, fourier_signal_size, UnitKind, UnitModel};

/// Builds the PBS-cluster VMA timing model.
pub fn vma_model(params: &TfheParameters, config: &StrixConfig) -> UnitModel {
    let k1 = (params.glwe_dimension + 1) as u64;
    let l = params.pbs_level as u64;
    let n_fft = fourier_signal_size(params, config);
    let cmuls = k1 * l * k1 * n_fft;
    let capacity = (config.clp * config.plp * config.colp) as u64;
    UnitModel {
        kind: UnitKind::Vma,
        occupancy_cycles: div_ceil_u64(cmuls, capacity),
        // Complex multiplier + adder-tree depth over PLP rows.
        pipeline_latency_cycles: 3
            + (config.plp as u64).next_power_of_two().trailing_zeros() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_i_occupancy_is_256() {
        // 2·2·2·512 complex MACs / (4·2·2 per cycle) = 4096/16 = 256.
        let m = vma_model(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.occupancy_cycles, 256);
    }

    #[test]
    fn occupancy_grows_quadratically_with_glwe_dimension() {
        let cfg = StrixConfig::paper_default();
        let mut p = TfheParameters::set_i();
        let base = vma_model(&p, &cfg).occupancy_cycles;
        p.glwe_dimension = 3; // (k+1) goes 2 → 4: work ×4
        assert_eq!(vma_model(&p, &cfg).occupancy_cycles, 4 * base);
    }

    #[test]
    fn non_folded_spectra_double_the_work() {
        let p = TfheParameters::set_i();
        let folded = vma_model(&p, &StrixConfig::paper_default());
        let plain = vma_model(&p, &StrixConfig::paper_non_folded());
        assert_eq!(plain.occupancy_cycles, 2 * folded.occupancy_cycles);
    }

    #[test]
    fn latency_is_small_and_constant_in_n() {
        let cfg = StrixConfig::paper_default();
        let a = vma_model(&TfheParameters::set_i(), &cfg);
        let b = vma_model(&TfheParameters::set_iv(), &cfg);
        assert_eq!(a.pipeline_latency_cycles, b.pipeline_latency_cycles);
        assert!(a.pipeline_latency_cycles < 10);
    }
}
