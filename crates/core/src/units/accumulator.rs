//! Accumulator unit (§V-C): time-domain final accumulation.
//!
//! The IFFT streams partially-accumulated polynomials back to the time
//! domain; the accumulator adds them into the per-column running sums
//! (each lane owns a buffer of `N/(2·CLP)` coefficients) and writes the
//! next accumulator value to the local scratchpad for the following
//! blind-rotation iteration. With the frequency/time accumulation
//! split, it ingests the IFFT's full `(k+1)·l_b`-polynomial stream.

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;
use crate::units::{div_ceil_u64, UnitKind, UnitModel};

/// Builds the accumulator timing model.
pub fn accumulator_model(params: &TfheParameters, config: &StrixConfig) -> UnitModel {
    let k1 = (params.glwe_dimension + 1) as u64;
    let l = params.pbs_level as u64;
    let n = params.polynomial_size as u64;
    let lanes = config.stream_lanes() as u64 * config.colp as u64;
    // IFFT emits (k+1)·l_b polynomials of N real coefficients per
    // LWE-iteration (the folded spectra unfold to N reals).
    let occ = div_ceil_u64(k1 * l * n, lanes);
    // Each lane buffer holds N/(2·CLP) coefficients (§V-C); residency
    // until the column sum completes sets the fill latency.
    let buffer = div_ceil_u64(n, 2 * config.clp as u64);
    UnitModel {
        kind: UnitKind::Accumulator,
        occupancy_cycles: occ,
        pipeline_latency_cycles: buffer.min(64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_i_occupancy_is_256() {
        let m = accumulator_model(&TfheParameters::set_i(), &StrixConfig::paper_default());
        assert_eq!(m.occupancy_cycles, 256);
    }

    #[test]
    fn matches_decomposer_rate() {
        // Decomposer (input side) and accumulator (output side) handle
        // the same coefficient volume per iteration; they must agree so
        // the pipeline has no internal rate mismatch.
        for p in [
            TfheParameters::set_i(),
            TfheParameters::set_ii(),
            TfheParameters::set_iii(),
            TfheParameters::set_iv(),
        ] {
            let cfg = StrixConfig::paper_default();
            assert_eq!(
                accumulator_model(&p, &cfg).occupancy_cycles,
                crate::units::decomposer_model(&p, &cfg).occupancy_cycles,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn buffer_residency_is_capped() {
        let m = accumulator_model(&TfheParameters::set_iv(), &StrixConfig::paper_default());
        assert!(m.pipeline_latency_cycles <= 64);
    }
}
