//! The simulation engine: two-level batching over the HSC array.
//!
//! The engine schedules a workload in **epochs** (§IV-C): each epoch
//! carries `TvLP × core_batch` LWEs — the device-level batch across
//! cores times the core-level batch streaming within each core. The
//! per-iteration period is the maximum of the compute initiation
//! interval times the core batch and the bootstrapping-key fetch time;
//! the latter winning is precisely the memory-bound regime of
//! Table VII. Keyswitching of an epoch is hidden behind the next
//! epoch's blind rotation whenever it fits (§IV-C), so a batch of `E`
//! epochs completes in `BR + (E−1)·max(BR, KS) + KS`.

use serde::{Deserialize, Serialize};

use strix_tfhe::TfheParameters;

use crate::config::StrixConfig;
use crate::graph::{Workload, WorkloadNode};
use crate::memory::MemoryModel;
use crate::pipeline::{KsClusterModel, PbsClusterModel};
use crate::trace::PipelineTrace;
use crate::units::UnitKind;
use crate::SimError;

/// Performance report for a batch of programmable bootstraps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PbsReport {
    /// Number of LWEs in the batch.
    pub num_lwes: usize,
    /// Latency of a single PBS (+ keyswitch), in seconds.
    pub latency_s: f64,
    /// Completion time of the whole batch, in seconds.
    pub total_time_s: f64,
    /// Steady-state throughput in PBS per second.
    pub throughput_pbs_per_s: f64,
    /// Core-level batch size used.
    pub core_batch: usize,
    /// Device-level batch (epoch) size: `TvLP × core_batch`.
    pub epoch_size: usize,
    /// Number of epochs (blind-rotation fragments at the device level).
    pub epochs: usize,
    /// Effective per-iteration period in cycles (after memory stalls).
    pub iteration_cycles: u64,
    /// Compute-only per-iteration period in cycles.
    pub compute_iteration_cycles: u64,
    /// Whether the bootstrapping-key stream limits the iteration period.
    pub memory_bound: bool,
    /// External bandwidth demand at full compute speed, in GB/s
    /// (bsk + ksk + ciphertext I/O) — Table VII's "required bandwidth".
    pub required_bandwidth_gbps: f64,
    /// Per-unit utilisation of the PBS cluster at its own II.
    pub unit_utilization: Vec<(UnitKind, f64)>,
}

/// Per-node timing in a workload-graph run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node label.
    pub label: String,
    /// Execution time in seconds.
    pub time_s: f64,
    /// PBS operations contributed by this node.
    pub pbs_count: usize,
}

/// Report for a full workload-graph run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphReport {
    /// Workload name.
    pub workload: String,
    /// End-to-end execution time in seconds.
    pub total_time_s: f64,
    /// Total PBS count.
    pub total_pbs: usize,
    /// Per-node breakdown.
    pub nodes: Vec<NodeReport>,
}

/// Energy-efficiency estimate combining the Table-III-calibrated power
/// model with simulated steady-state throughput.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Chip power draw in watts.
    pub power_w: f64,
    /// Bootstraps per joule at steady state.
    pub pbs_per_joule: f64,
    /// Microjoules per bootstrap.
    pub microjoules_per_pbs: f64,
}

/// The Strix accelerator simulator for one `(config, parameters)` pair.
#[derive(Clone, Debug)]
pub struct StrixSimulator {
    config: StrixConfig,
    params: TfheParameters,
    pbs: PbsClusterModel,
    ks: KsClusterModel,
    mem: MemoryModel,
}

impl StrixSimulator {
    /// Builds a simulator, validating both the accelerator config and
    /// the TFHE parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if either is invalid.
    pub fn new(config: StrixConfig, params: TfheParameters) -> Result<Self, SimError> {
        config.validate()?;
        params.validate().map_err(|e| SimError::InvalidParameters(e.to_string()))?;
        let pbs = PbsClusterModel::new(&params, &config);
        let ks = KsClusterModel::new(&params, &config);
        let mem = MemoryModel::new(&params, &config);
        Ok(Self { config, params, pbs, ks, mem })
    }

    /// The accelerator configuration.
    #[inline]
    pub fn config(&self) -> &StrixConfig {
        &self.config
    }

    /// The TFHE parameters.
    #[inline]
    pub fn params(&self) -> &TfheParameters {
        &self.params
    }

    /// The PBS-cluster timing model.
    #[inline]
    pub fn pbs_cluster(&self) -> &PbsClusterModel {
        &self.pbs
    }

    /// The keyswitch-cluster timing model.
    #[inline]
    pub fn ks_cluster(&self) -> &KsClusterModel {
        &self.ks
    }

    /// The memory-system model.
    #[inline]
    pub fn memory(&self) -> &MemoryModel {
        &self.mem
    }

    /// The two-level batch shape this simulator schedules in — the same
    /// policy the streaming runtime sizes its epochs with.
    #[inline]
    pub fn batch_geometry(&self) -> crate::batch::BatchGeometry {
        crate::batch::BatchGeometry::explicit(self.config.tvlp, self.mem.core_batch)
    }

    /// Bootstrapping-key delivery cycles per iteration: the slower of
    /// the HBM fetch (full-bandwidth burst, §IV-B double buffering) and
    /// the on-chip multicast broadcast.
    fn bsk_fetch_cycles(&self) -> u64 {
        let hbm =
            (self.mem.ggsw_fetch_seconds(&self.config) * self.config.clock_hz()).ceil() as u64;
        let noc = self.config.noc.bsk_broadcast_cycles(self.mem.ggsw_bytes);
        hbm.max(noc)
    }

    /// Effective iteration period for a core streaming `batch` LWEs.
    fn iteration_cycles(&self, batch: usize) -> u64 {
        self.pbs.iteration_cycles(batch).max(self.bsk_fetch_cycles())
    }

    /// Latency of one PBS (+ keyswitch), in seconds: `n` iterations at
    /// the single-LWE period, the keyswitch, and ciphertext I/O.
    pub fn pbs_latency_s(&self) -> f64 {
        let n = self.params.lwe_dimension as u64;
        let br = n * self.iteration_cycles(1);
        let ks = self.ks.cycles_per_lwe();
        let io_s = (self.mem.lwe_in_bytes + self.mem.lwe_out_bytes) as f64
            / self.config.hbm.io_bytes_per_s();
        self.config.cycles_to_seconds((br + ks) as f64) + io_s
    }

    /// Simulates a batch of `num_lwes` independent bootstraps.
    pub fn pbs_report(&self, num_lwes: usize) -> PbsReport {
        let geometry = self.batch_geometry();
        let cb = geometry.core_batch;
        let epoch_size = geometry.epoch_size();
        let epochs = geometry.epochs_for(num_lwes);
        let n = self.params.lwe_dimension as u64;

        let compute_iter = self.pbs.iteration_cycles(cb);
        let eff_iter = self.iteration_cycles(cb);
        let br_epoch = n * eff_iter;
        let ks_epoch = self.ks.batch_cycles(cb);

        // Two-stage pipeline across epochs: BR then (hidden) KS.
        let steady = br_epoch.max(ks_epoch);
        let total_cycles = br_epoch + steady * (epochs as u64 - 1) + ks_epoch;
        let total_time_s = self.config.cycles_to_seconds(total_cycles as f64);
        let throughput = epoch_size as f64 / self.config.cycles_to_seconds(steady as f64);

        PbsReport {
            num_lwes,
            latency_s: self.pbs_latency_s(),
            total_time_s,
            throughput_pbs_per_s: throughput,
            core_batch: cb,
            epoch_size,
            epochs,
            iteration_cycles: eff_iter,
            compute_iteration_cycles: compute_iter,
            memory_bound: self.bsk_fetch_cycles() > compute_iter,
            required_bandwidth_gbps: self.required_bandwidth_gbps(),
            unit_utilization: self.pbs.utilizations(),
        }
    }

    /// External bandwidth demand at full compute speed (Table VII), in
    /// GB/s ([`crate::config::BANDWIDTH_GB`] bytes): the bsk stream to
    /// keep every iteration fed, the ksk stream to hide keyswitching
    /// under each epoch, and the ciphertext I/O for the epoch.
    pub fn required_bandwidth_gbps(&self) -> f64 {
        let gb = crate::config::BANDWIDTH_GB;
        let cb = self.mem.core_batch;
        let compute_iter_s = self.config.cycles_to_seconds(self.pbs.iteration_cycles(cb) as f64);
        let n = self.params.lwe_dimension as f64;
        let epoch_s = compute_iter_s * n;
        let bsk_rate = self.mem.ggsw_bytes as f64 / compute_iter_s / gb;
        let ksk_rate = self.mem.ksk_bytes as f64 / epoch_s / gb;
        let epoch_lwes = (self.config.tvlp * cb) as f64;
        let io_rate =
            epoch_lwes * (self.mem.lwe_in_bytes + self.mem.lwe_out_bytes) as f64 / epoch_s / gb;
        bsk_rate + ksk_rate + io_rate
    }

    /// Energy efficiency at steady-state throughput: the quantity on
    /// which TFHE ASICs are usually compared against GPUs (a Titan RTX
    /// at its 280 W TDP delivers ≈7 PBS/J at set I; Strix's model gives
    /// three orders of magnitude more).
    pub fn energy_report(&self) -> EnergyReport {
        let power_w = crate::area::AreaModel::new(&self.config).total_power_w();
        let thr = self.pbs_report(1 << 14).throughput_pbs_per_s;
        let pbs_per_joule = thr / power_w;
        EnergyReport { power_w, pbs_per_joule, microjoules_per_pbs: 1e6 / pbs_per_joule }
    }

    /// Runs a workload graph node by node (sequential dependencies).
    pub fn run_graph(&self, workload: &Workload) -> GraphReport {
        let mut nodes = Vec::with_capacity(workload.len());
        let mut total = 0.0f64;
        for node in workload.nodes() {
            let (time_s, pbs_count) = match node {
                WorkloadNode::Pbs { lwes, .. } => (self.pbs_report(*lwes).total_time_s, *lwes),
                WorkloadNode::Linear { outputs, inputs_per_output, .. } => {
                    (self.linear_time_s(*outputs, *inputs_per_output), 0)
                }
            };
            total += time_s;
            nodes.push(NodeReport { label: node.label().to_string(), time_s, pbs_count });
        }
        GraphReport {
            workload: workload.name().to_string(),
            total_time_s: total,
            total_pbs: workload.total_pbs(),
            nodes,
        }
    }

    /// Time for a plaintext-weight linear layer on the integer lanes of
    /// the keyswitch clusters, spread across all cores.
    pub fn linear_time_s(&self, outputs: usize, inputs_per_output: usize) -> f64 {
        let macs =
            outputs as u64 * inputs_per_output as u64 * (self.params.lwe_dimension + 1) as u64;
        let capacity = self.ks.macs_per_cycle() * self.config.tvlp as u64;
        self.config.cycles_to_seconds(macs.div_ceil(capacity) as f64)
    }

    /// Generates the Fig.-8 style pipeline trace for the first
    /// `iterations` blind-rotation iterations with the configured core
    /// batch.
    pub fn trace(&self, iterations: usize) -> PipelineTrace {
        PipelineTrace::generate(
            &self.config,
            self.pbs.units(),
            self.pbs.initiation_interval_cycles(),
            self.iteration_cycles(self.mem.core_batch),
            self.mem.core_batch,
            iterations,
            (self.mem.ggsw_fetch_seconds_static(&self.config) * self.config.clock_hz()).ceil()
                as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(params: TfheParameters) -> StrixSimulator {
        StrixSimulator::new(StrixConfig::paper_default(), params).unwrap()
    }

    #[test]
    fn table_v_set_i_throughput_and_latency() {
        // Paper: 74,696 PBS/s and 0.16 ms.
        let s = sim(TfheParameters::set_i());
        let r = s.pbs_report(4096);
        assert!(
            (70_000.0..80_000.0).contains(&r.throughput_pbs_per_s),
            "throughput {}",
            r.throughput_pbs_per_s
        );
        assert!((0.14e-3..0.18e-3).contains(&r.latency_s), "latency {}", r.latency_s);
    }

    #[test]
    fn table_v_all_sets_throughput_shape() {
        // Paper: 74,696 / 39,600 / 21,104 / 2,368 PBS/s for sets I–IV.
        let expected = [74_696.0, 39_600.0, 21_104.0, 2_368.0];
        for (set, exp) in strix_tfhe::ParameterSet::ALL.iter().zip(expected) {
            let s = sim(set.parameters());
            let thr = s.pbs_report(1 << 14).throughput_pbs_per_s;
            let ratio = thr / exp;
            assert!((0.9..1.1).contains(&ratio), "set {set}: {thr:.0} vs paper {exp:.0}");
        }
    }

    #[test]
    fn folding_doubles_throughput() {
        // Table VI: 74,696 vs 37,472 PBS/s.
        let p = TfheParameters::set_i();
        let folded = sim(p.clone()).pbs_report(4096).throughput_pbs_per_s;
        let plain = StrixSimulator::new(StrixConfig::paper_non_folded(), p)
            .unwrap()
            .pbs_report(4096)
            .throughput_pbs_per_s;
        let ratio = folded / plain;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn tvlp_clp_sweep_matches_table_vii_shape() {
        // Constant product TvLP·CLP = 32 on set IV: full throughput for
        // CLP ≤ 8, memory-bound halving at CLP = 16, quartering at 32.
        let mut throughputs = Vec::new();
        for (tvlp, clp) in [(16, 2), (8, 4), (4, 8), (2, 16), (1, 32)] {
            let cfg = StrixConfig::paper_default().with_tvlp_clp(tvlp, clp);
            let s = StrixSimulator::new(cfg, TfheParameters::set_iv()).unwrap();
            throughputs.push(s.pbs_report(1 << 12).throughput_pbs_per_s);
        }
        assert!((throughputs[0] - throughputs[1]).abs() / throughputs[1] < 0.02);
        assert!((throughputs[1] - throughputs[2]).abs() / throughputs[1] < 0.02);
        assert!(throughputs[3] < 0.6 * throughputs[1], "{throughputs:?}");
        assert!(throughputs[4] < 0.3 * throughputs[1], "{throughputs:?}");
    }

    #[test]
    fn required_bandwidth_grows_with_clp() {
        let mut prev = 0.0;
        for (tvlp, clp) in [(16, 2), (8, 4), (4, 8), (2, 16), (1, 32)] {
            let cfg = StrixConfig::paper_default().with_tvlp_clp(tvlp, clp);
            let s = StrixSimulator::new(cfg, TfheParameters::set_iv()).unwrap();
            let bw = s.required_bandwidth_gbps();
            assert!(bw > prev, "bw must grow with clp: {bw} after {prev}");
            prev = bw;
        }
        // The design point needs roughly one HBM2e stack (paper: 257).
        let s = sim(TfheParameters::set_iv());
        let bw = s.required_bandwidth_gbps();
        assert!((200.0..320.0).contains(&bw), "{bw}");
    }

    #[test]
    fn memory_bound_flag_tracks_regime() {
        let compute = StrixSimulator::new(
            StrixConfig::paper_default().with_tvlp_clp(16, 2),
            TfheParameters::set_iv(),
        )
        .unwrap();
        assert!(!compute.pbs_report(64).memory_bound);
        let memory = StrixSimulator::new(
            StrixConfig::paper_default().with_tvlp_clp(1, 32),
            TfheParameters::set_iv(),
        )
        .unwrap();
        assert!(memory.pbs_report(64).memory_bound);
    }

    #[test]
    fn throughput_is_monotone_in_cores() {
        let p = TfheParameters::set_i();
        let mut prev = 0.0;
        for tvlp in [1, 2, 4, 8] {
            let cfg = StrixConfig { tvlp, ..StrixConfig::paper_default() };
            let s = StrixSimulator::new(cfg, p.clone()).unwrap();
            let thr = s.pbs_report(4096).throughput_pbs_per_s;
            assert!(thr > prev);
            prev = thr;
        }
    }

    #[test]
    fn batch_time_scales_with_epochs() {
        // Each extra epoch adds exactly one steady-state period
        // (epoch_size / throughput): the two-stage BR/KS pipeline.
        let s = sim(TfheParameters::set_i());
        let r1 = s.pbs_report(256);
        let r10 = s.pbs_report(256 * 10);
        assert_eq!(r1.epochs, 1);
        assert_eq!(r10.epochs, 10);
        let added = r10.total_time_s - r1.total_time_s;
        let steady = r10.epoch_size as f64 / r10.throughput_pbs_per_s;
        assert!((added / (9.0 * steady) - 1.0).abs() < 1e-9, "added {added}");
    }

    #[test]
    fn graph_run_sums_nodes() {
        let s = sim(TfheParameters::set_i());
        let w = Workload::new("toy").linear(92, 92, "dense").pbs(92, "relu");
        let r = s.run_graph(&w);
        assert_eq!(r.nodes.len(), 2);
        assert_eq!(r.total_pbs, 92);
        let sum: f64 = r.nodes.iter().map(|n| n.time_s).sum();
        assert!((sum - r.total_time_s).abs() < 1e-12);
        // PBS dominates linear ops (the paper's premise).
        assert!(r.nodes[1].time_s > 10.0 * r.nodes[0].time_s);
    }

    #[test]
    fn narrow_noc_bus_hurts_latency_not_batched_throughput() {
        // A single LWE consumes one GGSW per II (256 cycles): the
        // 512-bit bus needs 1024 cycles per GGSW, quadrupling latency.
        // With the full 32-LWE core batch the same broadcast is reused
        // 32×, so steady throughput is untouched — the §IV-C
        // amortisation applies to the NoC exactly as to HBM.
        let mut cfg = StrixConfig::paper_default();
        cfg.noc.bsk_bus_bits = 512;
        let narrow = StrixSimulator::new(cfg, TfheParameters::set_i()).unwrap();
        let full = sim(TfheParameters::set_i());
        // Blind rotation stretches 4× but the (bus-independent)
        // keyswitch tail dilutes the total to ≈3×.
        let lat_ratio = narrow.pbs_latency_s() / full.pbs_latency_s();
        assert!((2.5..3.5).contains(&lat_ratio), "latency ratio {lat_ratio}");
        let thr_ratio = narrow.pbs_report(4096).throughput_pbs_per_s
            / full.pbs_report(4096).throughput_pbs_per_s;
        assert!((thr_ratio - 1.0).abs() < 1e-9, "throughput ratio {thr_ratio}");
    }

    #[test]
    fn energy_report_scales_with_throughput() {
        let s1 = sim(TfheParameters::set_i());
        let s4 = sim(TfheParameters::set_iv());
        let e1 = s1.energy_report();
        let e4 = s4.energy_report();
        // Same chip, same power; heavier parameters burn more energy
        // per bootstrap.
        assert!((e1.power_w - e4.power_w).abs() < 1e-9);
        assert!(e4.microjoules_per_pbs > 10.0 * e1.microjoules_per_pbs);
        // Headline: ≈973 PBS/J at set I (75,000 PBS/s over 77 W) —
        // two orders beyond a 280 W GPU's ≈7 PBS/J.
        assert!((900.0..1050.0).contains(&e1.pbs_per_joule), "{}", e1.pbs_per_joule);
    }

    #[test]
    fn bsk_stream_rate_is_parameter_independent() {
        // ggsw_bytes / II = (k+1)·16·CLP·PLP bytes per cycle for every
        // k=1 parameter set — the invariant that lets one bus width
        // serve all sets.
        for set in strix_tfhe::ParameterSet::ALL {
            let s = sim(set.parameters());
            let ii = s.pbs_cluster().initiation_interval_cycles();
            let rate = s.memory().ggsw_bytes as u64 / ii;
            assert_eq!(rate, 256, "{set}");
        }
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let mut cfg = StrixConfig::paper_default();
        cfg.tvlp = 0;
        assert!(StrixSimulator::new(cfg, TfheParameters::set_i()).is_err());
        let mut p = TfheParameters::set_i();
        p.polynomial_size = 1000;
        assert!(StrixSimulator::new(StrixConfig::paper_default(), p).is_err());
    }
}
