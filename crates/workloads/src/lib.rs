//! Workload generators for the Strix evaluation.
//!
//! * [`nn`] — the Zama Deep-NN models (NN-20/50/100) of the paper's
//!   Fig. 7: a 28×28 encrypted image through a convolution plus dense
//!   layers of 92 neurons, every activation a ReLU evaluated with one
//!   programmable bootstrap.
//! * [`gates`] — boolean-circuit workloads (adders, comparators,
//!   multiplexer trees) both as abstract graphs for the simulator and
//!   as real homomorphic circuits executed with `strix-tfhe`.
//! * [`mnist`] — synthetic 28×28 images (seeded) standing in for the
//!   MNIST inputs the paper uses; Fig. 7 timing depends only on tensor
//!   shapes, not pixel values.

pub mod gates;
pub mod mnist;
pub mod nn;

pub use nn::{DeepNn, ReluSchedule};
