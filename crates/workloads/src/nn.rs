//! The Zama Deep-NN models (Fig. 7; Chillotti–Joye–Paillier 2021).
//!
//! "The input consists of 28×28 pixels, where each pixel is encrypted
//! with one cipher. The first layer performs a convolution followed by
//! ReLU activation, producing an output image of dimensions
//! [1, 2, 21, 20]. The remaining layers are dense layers with 92
//! neurons on each layer, followed by ReLU activation between each
//! layer." Every ReLU costs one programmable bootstrap (+ keyswitch).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use strix_core::Workload;
use strix_runtime::session::{Program, Wire};
use strix_tfhe::bootstrap::Lut;
use strix_tfhe::torus::encode_fraction;
use strix_tfhe::TfheError;
use strix_tfhe::TfheParameters;

/// Input image side length (MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Convolution output shape `[1, 2, 21, 20]` → 840 activations.
pub const CONV_CHANNELS: usize = 2;
/// Convolution output height.
pub const CONV_OUT_H: usize = 21;
/// Convolution output width.
pub const CONV_OUT_W: usize = 20;
/// Kernel height implied by the output shape (28 − 21 + 1).
pub const KERNEL_H: usize = IMAGE_SIDE - CONV_OUT_H + 1;
/// Kernel width implied by the output shape (28 − 20 + 1).
pub const KERNEL_W: usize = IMAGE_SIDE - CONV_OUT_W + 1;
/// Neurons per dense layer.
pub const DENSE_NEURONS: usize = 92;

/// The model depths evaluated in Fig. 7.
pub const ZAMA_DEPTHS: [usize; 3] = [20, 50, 100];
/// The polynomial sizes evaluated in Fig. 7.
pub const ZAMA_POLY_SIZES: [usize; 3] = [1024, 2048, 4096];

/// A Zama Deep-NN instance: `depth` layers (one convolution plus
/// `depth − 1` dense layers), every activation bootstrapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepNn {
    /// Total layer count (NN-20, NN-50, NN-100).
    pub depth: usize,
    /// TFHE polynomial size for the activations' PBS.
    pub poly_size: usize,
}

impl DeepNn {
    /// Creates a model description.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2` (the model needs the convolution plus at
    /// least one dense layer) or if `poly_size` is not a Fig. 7 size;
    /// [`Self::try_new`] is the fallible equivalent for serving paths.
    pub fn new(depth: usize, poly_size: usize) -> Self {
        Self::try_new(depth, poly_size).expect("valid deep-nn description")
    }

    /// As [`Self::new`], but rejecting a bad description as a
    /// [`TfheError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::InvalidParameters`] if `depth < 2` or
    /// `poly_size` is not one of the paper's Fig. 7 sizes.
    pub fn try_new(depth: usize, poly_size: usize) -> Result<Self, TfheError> {
        if depth < 2 {
            return Err(TfheError::InvalidParameters("deep-nn needs at least two layers"));
        }
        TfheParameters::deep_nn(poly_size)?;
        Ok(Self { depth, poly_size })
    }

    /// Number of convolution activations: `2 × 21 × 20`.
    pub fn conv_outputs(&self) -> usize {
        CONV_CHANNELS * CONV_OUT_H * CONV_OUT_W
    }

    /// Total programmable bootstraps for one inference.
    pub fn total_pbs(&self) -> usize {
        self.conv_outputs() + (self.depth - 1) * DENSE_NEURONS
    }

    /// The TFHE parameters the paper pairs with this polynomial size.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor was built with a struct literal around
    /// the validating constructors and carries an unsupported
    /// `poly_size`.
    pub fn params(&self) -> TfheParameters {
        TfheParameters::deep_nn(self.poly_size).expect("poly size validated at construction")
    }

    /// Builds the computational graph: alternating linear layers and
    /// ReLU PBS batches, in inference order.
    pub fn workload(&self) -> Workload {
        let mut w = Workload::new(format!("NN-{}-N{}", self.depth, self.poly_size));
        // Convolution: each of the 840 outputs sums a KERNEL_H×KERNEL_W
        // window of pixel ciphertexts.
        w = w
            .linear(self.conv_outputs(), KERNEL_H * KERNEL_W, "conv 8x9")
            .pbs(self.conv_outputs(), "conv ReLU");
        let mut inputs = self.conv_outputs();
        for layer in 1..self.depth {
            w = w
                .linear(DENSE_NEURONS, inputs, format!("dense-{layer} {DENSE_NEURONS}x{inputs}"))
                .pbs(DENSE_NEURONS, format!("dense-{layer} ReLU"));
            inputs = DENSE_NEURONS;
        }
        w
    }
}

impl std::fmt::Display for DeepNn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NN-{} (N={})", self.depth, self.poly_size)
    }
}

/// Message precision of the executable ReLU schedule (3-bit space,
/// one padding bit).
pub const RELU_MESSAGE_BITS: u32 = 3;
/// Quantised activations clamp to `0..=RELU_ACTIVATION_MAX`.
pub const RELU_ACTIVATION_MAX: u64 = 2;
/// Widest supported layer: pre-activations must stay inside the
/// positive half of the 3-bit space
/// (`width · RELU_ACTIVATION_MAX + bias ≤ 7`).
pub const RELU_MAX_WIDTH: usize = 3;

/// An *executable* quantised Deep-NN ReLU schedule — the toy-scale
/// counterpart of the Fig. 7 [`DeepNn`] descriptor, sized so it can
/// actually run on the functional TFHE stack in tests and examples.
///
/// `depth` dense layers of `width` neurons each; every neuron computes
/// `Σ wᵢ·xᵢ + b` (weights in `{0, 1}`, bias in `{0, 1}`, drawn
/// deterministically from `seed`) followed by the quantised ReLU
/// activation — one PBS (+ keyswitch) per neuron, exactly the
/// per-activation cost structure of the real Zama models. Activations
/// live in a `3`-bit message space where `[4, 8)` is the negative
/// (two's-complement) half: ReLU zeroes it, and positive values clamp
/// to [`RELU_ACTIVATION_MAX`] so that every reachable pre-activation
/// stays below the padding boundary regardless of depth.
///
/// Deliberately *not* (de)serialisable: the private weight/bias tables
/// carry the pre-activation bound invariant, which a derived
/// `Deserialize` would bypass. Reconstruct from `(depth, width, seed)`
/// instead — construction is deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReluSchedule {
    depth: usize,
    width: usize,
    /// `weights[layer][neuron][input]`, each in `{0, 1}`.
    weights: Vec<Vec<Vec<i64>>>,
    /// `biases[layer][neuron]`, each in `{0, 1}`.
    biases: Vec<Vec<u64>>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl ReluSchedule {
    /// Builds a schedule with deterministic pseudo-random weights.
    /// Every neuron keeps at least one unit weight so no layer goes
    /// dead.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2` (the streaming story needs at least one
    /// dependent stage) or `width` is outside `1..=`[`RELU_MAX_WIDTH`].
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth >= 2, "relu schedule needs at least two layers");
        assert!(
            (1..=RELU_MAX_WIDTH).contains(&width),
            "width must be in 1..={RELU_MAX_WIDTH} to bound pre-activations"
        );
        let mut state = seed ^ 0x5eed_5eed_5eed_5eed;
        let weights = (0..depth)
            .map(|_| {
                (0..width)
                    .map(|j| {
                        let mut row: Vec<i64> =
                            (0..width).map(|_| (splitmix64(&mut state) & 1) as i64).collect();
                        row[j % width] = 1;
                        row
                    })
                    .collect()
            })
            .collect();
        let biases =
            (0..depth).map(|_| (0..width).map(|_| splitmix64(&mut state) & 1).collect()).collect();
        Self { depth, width, weights, biases }
    }

    /// Layer count.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Neurons per layer (also the input activation count).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Programmable bootstraps per inference: one per neuron.
    pub fn total_pbs(&self) -> usize {
        self.depth * self.width
    }

    /// The quantised ReLU over the two's-complement 3-bit space:
    /// negative messages (`[4, 8)`) clamp to zero, positive ones to at
    /// most [`RELU_ACTIVATION_MAX`].
    pub fn activation(m: u64) -> u64 {
        let half = 1u64 << (RELU_MESSAGE_BITS - 1);
        if m < half {
            m.min(RELU_ACTIVATION_MAX)
        } else {
            0
        }
    }

    /// The activation LUT for a given polynomial size.
    ///
    /// # Errors
    ///
    /// Propagates [`TfheError::InvalidParameters`] for degenerate
    /// polynomial sizes.
    pub fn lut(poly_size: usize) -> Result<Lut, TfheError> {
        Lut::from_function(poly_size, RELU_MESSAGE_BITS, Self::activation)
    }

    /// Plaintext reference inference over input activations
    /// (`inputs[i] ≤ RELU_ACTIVATION_MAX`), the model both the
    /// synchronous and the streamed execution must reproduce.
    ///
    /// # Panics
    ///
    /// Panics if the input count differs from the layer width, or if
    /// an input exceeds [`RELU_ACTIVATION_MAX`] — larger inputs can
    /// push a pre-activation across the negacyclic boundary, where the
    /// encrypted path returns negated LUT entries this model does not
    /// (and should not) reproduce. Failing fast here keeps the model a
    /// trustworthy oracle.
    pub fn infer_plain(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.width, "one input activation per neuron");
        assert!(
            inputs.iter().all(|&m| m <= RELU_ACTIVATION_MAX),
            "input activations must be <= {RELU_ACTIVATION_MAX}"
        );
        let mut acts = inputs.to_vec();
        for (layer_w, layer_b) in self.weights.iter().zip(&self.biases) {
            acts = layer_w
                .iter()
                .zip(layer_b)
                .map(|(row, b)| {
                    let sum: u64 =
                        row.iter().zip(&acts).map(|(w, x)| (*w as u64) * x).sum::<u64>() + b;
                    // width <= RELU_MAX_WIDTH, weights in {0,1} and
                    // activations <= RELU_ACTIVATION_MAX bound every
                    // pre-activation inside the 3-bit space; no wrap
                    // to model.
                    debug_assert!(sum < 1 << RELU_MESSAGE_BITS, "pre-activation bound violated");
                    Self::activation(sum)
                })
                .collect();
        }
        acts
    }

    /// Compiles the schedule into a dataflow [`Program`]: `width`
    /// encrypted inputs, one [`RequestOp::LinearLut`]
    /// (weighted sum + bias + ReLU LUT) node per neuron, and the last
    /// layer's activations as outputs. Layers are strictly dependent;
    /// neurons within a layer are independent — the interleaving
    /// structure the streaming runtime exploits across concurrent
    /// inference sessions.
    ///
    /// [`RequestOp::LinearLut`]: strix_runtime::RequestOp::LinearLut
    ///
    /// # Errors
    ///
    /// Propagates LUT construction failures.
    pub fn program(&self, poly_size: usize) -> Result<Program, TfheError> {
        let lut = Arc::new(Self::lut(poly_size)?);
        let mut program = Program::new(self.width);
        let mut acts: Vec<Wire> = (0..self.width).map(Wire::Input).collect();
        for (layer_w, layer_b) in self.weights.iter().zip(&self.biases) {
            acts = layer_w
                .iter()
                .zip(layer_b)
                .map(|(row, b)| {
                    let offset = encode_fraction(*b as i64, RELU_MESSAGE_BITS + 1);
                    program.linear_lut(row.clone(), acts.clone(), offset, Arc::clone(&lut))
                })
                .collect();
        }
        for w in acts {
            program.output(w);
        }
        Ok(program)
    }
}

impl std::fmt::Display for ReluSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "relu-nn-{}x{}", self.depth, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_matches_paper() {
        let nn = DeepNn::new(20, 1024);
        assert_eq!(nn.conv_outputs(), 840); // [1, 2, 21, 20]
        assert_eq!(KERNEL_H, 8);
        assert_eq!(KERNEL_W, 9);
    }

    #[test]
    fn pbs_counts_for_the_three_models() {
        assert_eq!(DeepNn::new(20, 1024).total_pbs(), 840 + 19 * 92);
        assert_eq!(DeepNn::new(50, 1024).total_pbs(), 840 + 49 * 92);
        assert_eq!(DeepNn::new(100, 1024).total_pbs(), 840 + 99 * 92);
    }

    #[test]
    fn workload_graph_matches_pbs_count() {
        for depth in ZAMA_DEPTHS {
            let nn = DeepNn::new(depth, 2048);
            let w = nn.workload();
            assert_eq!(w.total_pbs(), nn.total_pbs(), "depth {depth}");
            // One linear + one PBS node per layer.
            assert_eq!(w.len(), 2 * depth);
        }
    }

    #[test]
    fn params_follow_polynomial_size() {
        for n in ZAMA_POLY_SIZES {
            let nn = DeepNn::new(20, n);
            assert_eq!(nn.params().polynomial_size, n);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DeepNn::new(50, 2048).to_string(), "NN-50 (N=2048)");
    }

    #[test]
    #[should_panic(expected = "at least two layers")]
    fn rejects_degenerate_depth() {
        DeepNn::new(1, 1024);
    }

    #[test]
    fn try_new_rejects_bad_descriptions_as_errors() {
        assert!(DeepNn::try_new(1, 1024).is_err());
        assert!(DeepNn::try_new(20, 512).is_err());
        assert!(DeepNn::try_new(20, 1024).is_ok());
    }

    #[test]
    fn relu_schedule_is_deterministic_and_bounded() {
        let a = ReluSchedule::new(6, 3, 42);
        let b = ReluSchedule::new(6, 3, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, ReluSchedule::new(6, 3, 43), "different seed differs");
        assert_eq!(a.total_pbs(), 18);
        assert_eq!(a.to_string(), "relu-nn-6x3");
        // Every reachable pre-activation stays inside the positive
        // half of the 3-bit space: width·act_max + bias ≤ 7.
        assert!(RELU_MAX_WIDTH as u64 * RELU_ACTIVATION_MAX + 1 < 1 << RELU_MESSAGE_BITS);
        let outs = a.infer_plain(&[2, 1, 0]);
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|&m| m <= RELU_ACTIVATION_MAX));
    }

    #[test]
    fn relu_activation_zeroes_the_negative_half_and_clamps() {
        assert_eq!(ReluSchedule::activation(0), 0);
        assert_eq!(ReluSchedule::activation(1), 1);
        assert_eq!(ReluSchedule::activation(2), 2);
        assert_eq!(ReluSchedule::activation(3), 2); // clamp
        for m in 4..8 {
            assert_eq!(ReluSchedule::activation(m), 0, "negative {m}");
        }
    }

    #[test]
    fn relu_program_compiles_one_request_per_neuron() {
        let nn = ReluSchedule::new(5, 2, 7);
        let program = nn.program(256).unwrap();
        assert_eq!(program.input_count(), 2);
        assert_eq!(program.request_count(), nn.total_pbs());
        assert_eq!(program.outputs().len(), 2);
    }

    #[test]
    fn relu_program_run_sync_matches_plaintext_model() {
        use strix_tfhe::prelude::*;
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 0xDEEB);
        let nn = ReluSchedule::new(4, 2, 99);
        let inputs_plain = [2u64, 1];
        let inputs: Vec<_> = inputs_plain
            .iter()
            .map(|&m| client.encrypt_shortint(m, RELU_MESSAGE_BITS).unwrap().as_lwe().clone())
            .collect();
        let outs = nn.program(params.polynomial_size).unwrap().run_sync(&server, &inputs).unwrap();
        let expected = nn.infer_plain(&inputs_plain);
        for (ct, want) in outs.iter().zip(&expected) {
            let phase = client.decrypt_phase(ct).unwrap();
            let got = strix_tfhe::torus::decode_message(phase, RELU_MESSAGE_BITS + 1);
            assert_eq!(got, *want);
        }
    }
}
