//! The Zama Deep-NN models (Fig. 7; Chillotti–Joye–Paillier 2021).
//!
//! "The input consists of 28×28 pixels, where each pixel is encrypted
//! with one cipher. The first layer performs a convolution followed by
//! ReLU activation, producing an output image of dimensions
//! [1, 2, 21, 20]. The remaining layers are dense layers with 92
//! neurons on each layer, followed by ReLU activation between each
//! layer." Every ReLU costs one programmable bootstrap (+ keyswitch).

use serde::{Deserialize, Serialize};

use strix_core::Workload;
use strix_tfhe::TfheParameters;

/// Input image side length (MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Convolution output shape `[1, 2, 21, 20]` → 840 activations.
pub const CONV_CHANNELS: usize = 2;
/// Convolution output height.
pub const CONV_OUT_H: usize = 21;
/// Convolution output width.
pub const CONV_OUT_W: usize = 20;
/// Kernel height implied by the output shape (28 − 21 + 1).
pub const KERNEL_H: usize = IMAGE_SIDE - CONV_OUT_H + 1;
/// Kernel width implied by the output shape (28 − 20 + 1).
pub const KERNEL_W: usize = IMAGE_SIDE - CONV_OUT_W + 1;
/// Neurons per dense layer.
pub const DENSE_NEURONS: usize = 92;

/// The model depths evaluated in Fig. 7.
pub const ZAMA_DEPTHS: [usize; 3] = [20, 50, 100];
/// The polynomial sizes evaluated in Fig. 7.
pub const ZAMA_POLY_SIZES: [usize; 3] = [1024, 2048, 4096];

/// A Zama Deep-NN instance: `depth` layers (one convolution plus
/// `depth − 1` dense layers), every activation bootstrapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepNn {
    /// Total layer count (NN-20, NN-50, NN-100).
    pub depth: usize,
    /// TFHE polynomial size for the activations' PBS.
    pub poly_size: usize,
}

impl DeepNn {
    /// Creates a model description.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2` (the model needs the convolution plus at
    /// least one dense layer).
    pub fn new(depth: usize, poly_size: usize) -> Self {
        assert!(depth >= 2, "deep-nn needs at least two layers");
        Self { depth, poly_size }
    }

    /// Number of convolution activations: `2 × 21 × 20`.
    pub fn conv_outputs(&self) -> usize {
        CONV_CHANNELS * CONV_OUT_H * CONV_OUT_W
    }

    /// Total programmable bootstraps for one inference.
    pub fn total_pbs(&self) -> usize {
        self.conv_outputs() + (self.depth - 1) * DENSE_NEURONS
    }

    /// The TFHE parameters the paper pairs with this polynomial size.
    pub fn params(&self) -> TfheParameters {
        TfheParameters::deep_nn(self.poly_size)
    }

    /// Builds the computational graph: alternating linear layers and
    /// ReLU PBS batches, in inference order.
    pub fn workload(&self) -> Workload {
        let mut w = Workload::new(format!("NN-{}-N{}", self.depth, self.poly_size));
        // Convolution: each of the 840 outputs sums a KERNEL_H×KERNEL_W
        // window of pixel ciphertexts.
        w = w
            .linear(self.conv_outputs(), KERNEL_H * KERNEL_W, "conv 8x9")
            .pbs(self.conv_outputs(), "conv ReLU");
        let mut inputs = self.conv_outputs();
        for layer in 1..self.depth {
            w = w
                .linear(DENSE_NEURONS, inputs, format!("dense-{layer} {DENSE_NEURONS}x{inputs}"))
                .pbs(DENSE_NEURONS, format!("dense-{layer} ReLU"));
            inputs = DENSE_NEURONS;
        }
        w
    }
}

impl std::fmt::Display for DeepNn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NN-{} (N={})", self.depth, self.poly_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_matches_paper() {
        let nn = DeepNn::new(20, 1024);
        assert_eq!(nn.conv_outputs(), 840); // [1, 2, 21, 20]
        assert_eq!(KERNEL_H, 8);
        assert_eq!(KERNEL_W, 9);
    }

    #[test]
    fn pbs_counts_for_the_three_models() {
        assert_eq!(DeepNn::new(20, 1024).total_pbs(), 840 + 19 * 92);
        assert_eq!(DeepNn::new(50, 1024).total_pbs(), 840 + 49 * 92);
        assert_eq!(DeepNn::new(100, 1024).total_pbs(), 840 + 99 * 92);
    }

    #[test]
    fn workload_graph_matches_pbs_count() {
        for depth in ZAMA_DEPTHS {
            let nn = DeepNn::new(depth, 2048);
            let w = nn.workload();
            assert_eq!(w.total_pbs(), nn.total_pbs(), "depth {depth}");
            // One linear + one PBS node per layer.
            assert_eq!(w.len(), 2 * depth);
        }
    }

    #[test]
    fn params_follow_polynomial_size() {
        for n in ZAMA_POLY_SIZES {
            let nn = DeepNn::new(20, n);
            assert_eq!(nn.params().polynomial_size, n);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DeepNn::new(50, 2048).to_string(), "NN-50 (N=2048)");
    }

    #[test]
    #[should_panic(expected = "at least two layers")]
    fn rejects_degenerate_depth() {
        DeepNn::new(1, 1024);
    }
}
