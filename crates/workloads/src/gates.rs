//! Boolean-circuit workloads: abstract graphs for the simulator and
//! real homomorphic circuits executed with `strix-tfhe`.
//!
//! TFHE's gate bootstrapping makes every two-input gate cost one PBS
//! (+ keyswitch); a circuit's simulator workload is therefore a PBS
//! batch per topological level. The executable counterparts below are
//! used by integration tests and examples to demonstrate end-to-end
//! correctness of the same circuits the graphs describe.

use strix_core::Workload;
use strix_runtime::session::{Program, Wire};
use strix_tfhe::boolean::{BinaryGate, BoolCiphertext};
use strix_tfhe::{ServerKey, TfheError};

/// Simulator workload of a `bits`-bit ripple-carry adder: each bit
/// position costs 5 gates (2 XOR, 2 AND, 1 OR), dependent level by
/// level.
pub fn adder_workload(bits: usize) -> Workload {
    let mut w = Workload::new(format!("ripple-carry-{bits}"));
    for b in 0..bits {
        w = w.pbs(5, format!("bit-{b} full adder"));
    }
    w
}

/// Simulator workload of a `bits × bits` array multiplier:
/// `bits²` partial-product ANDs plus `bits − 1` ripple additions of
/// 5 gates per bit position.
pub fn multiplier_workload(bits: usize) -> Workload {
    let mut w = Workload::new(format!("array-multiplier-{bits}"));
    w = w.pbs(bits * bits, "partial products (AND)");
    for row in 1..bits {
        w = w.pbs(5 * bits, format!("row-{row} adder"));
    }
    w
}

/// Simulator workload of one AES S-box over gate bootstrapping, using
/// the Boyar–Peralta circuit size (32 AND, 83 XOR/XNOR) — every gate
/// one PBS in TFHE.
pub fn aes_sbox_workload() -> Workload {
    Workload::new("aes-sbox").pbs(83, "linear layers (XOR/XNOR)").pbs(32, "nonlinear core (AND)")
}

/// Simulator workload of one fetch–decode–execute cycle of an
/// encrypted `word_bits`-bit processor, the "emulating the CPU, which
/// can run encrypted programs" application of §II-C (VSP, the paper's
/// \[42\]). Gate counts are first-order estimates: an ALU (adder +
/// logic unit), a 16-register file read via MUX trees, and the
/// program-counter increment.
pub fn processor_cycle_workload(word_bits: usize) -> Workload {
    let regfile_muxes = 2 * (16 - 1) * word_bits; // two read ports
    Workload::new(format!("encrypted-cpu-{word_bits}bit"))
        .pbs(regfile_muxes, "register-file read (MUX tree)")
        .pbs(5 * word_bits, "ALU adder")
        .pbs(3 * word_bits, "ALU logic unit")
        .pbs(word_bits, "writeback select")
        .pbs(5 * word_bits, "PC increment")
}

/// Simulator workload of a `bits`-bit equality comparator: one XNOR
/// per bit, then an AND-reduction tree.
pub fn comparator_workload(bits: usize) -> Workload {
    let mut w = Workload::new(format!("comparator-{bits}"));
    w = w.pbs(bits, "bitwise XNOR");
    let mut width = bits;
    let mut level = 0;
    while width > 1 {
        let pairs = width / 2;
        w = w.pbs(pairs, format!("AND reduce level {level}"));
        width = pairs + (width % 2);
        level += 1;
    }
    w
}

/// Homomorphic full adder: returns `(sum, carry_out)`.
///
/// # Errors
///
/// Propagates [`TfheError`] from the underlying gates.
pub fn full_adder(
    server: &ServerKey,
    a: &BoolCiphertext,
    b: &BoolCiphertext,
    carry_in: &BoolCiphertext,
) -> Result<(BoolCiphertext, BoolCiphertext), TfheError> {
    let ab = server.xor(a, b)?;
    let sum = server.xor(&ab, carry_in)?;
    let t1 = server.and(a, b)?;
    let t2 = server.and(&ab, carry_in)?;
    let carry = server.or(&t1, &t2)?;
    Ok((sum, carry))
}

/// Homomorphic ripple-carry addition of two little-endian bit vectors;
/// returns `bits + 1` output bits (the last is the carry out).
///
/// # Errors
///
/// Returns [`TfheError::ParameterMismatch`] if the operand lengths
/// differ, and propagates gate errors.
pub fn ripple_carry_add(
    server: &ServerKey,
    a: &[BoolCiphertext],
    b: &[BoolCiphertext],
) -> Result<Vec<BoolCiphertext>, TfheError> {
    if a.len() != b.len() {
        return Err(TfheError::ParameterMismatch {
            what: "operand bit width",
            left: a.len(),
            right: b.len(),
        });
    }
    let n = server.params().lwe_dimension;
    let mut carry = BoolCiphertext::trivial(n, false);
    let mut out = Vec::with_capacity(a.len() + 1);
    for (x, y) in a.iter().zip(b) {
        let (sum, c) = full_adder(server, x, y, &carry)?;
        out.push(sum);
        carry = c;
    }
    out.push(carry);
    Ok(out)
}

/// Homomorphic equality test of two little-endian bit vectors.
///
/// # Errors
///
/// Returns [`TfheError::ParameterMismatch`] on width mismatch and
/// propagates gate errors.
pub fn equals(
    server: &ServerKey,
    a: &[BoolCiphertext],
    b: &[BoolCiphertext],
) -> Result<BoolCiphertext, TfheError> {
    if a.len() != b.len() {
        return Err(TfheError::ParameterMismatch {
            what: "operand bit width",
            left: a.len(),
            right: b.len(),
        });
    }
    let mut acc: Option<BoolCiphertext> = None;
    for (x, y) in a.iter().zip(b) {
        let eq = server.xnor(x, y)?;
        acc = Some(match acc {
            None => eq,
            Some(prev) => server.and(&prev, &eq)?,
        });
    }
    Ok(acc.unwrap_or_else(|| BoolCiphertext::trivial(server.params().lwe_dimension, true)))
}

/// Homomorphic unsigned greater-than of two little-endian bit vectors:
/// `a > b`.
///
/// Iterates from the least significant bit with the classic recurrence
/// `gt = (a_i AND NOT b_i) OR (gt AND NOT (a_i XOR b_i))`.
///
/// # Errors
///
/// Returns [`TfheError::ParameterMismatch`] on width mismatch and
/// propagates gate errors.
pub fn greater_than(
    server: &ServerKey,
    a: &[BoolCiphertext],
    b: &[BoolCiphertext],
) -> Result<BoolCiphertext, TfheError> {
    if a.len() != b.len() {
        return Err(TfheError::ParameterMismatch {
            what: "operand bit width",
            left: a.len(),
            right: b.len(),
        });
    }
    let n = server.params().lwe_dimension;
    let mut gt = BoolCiphertext::trivial(n, false);
    for (x, y) in a.iter().zip(b) {
        let not_y = server.not(y);
        let x_gt_y = server.and(x, &not_y)?;
        let eq = server.xnor(x, y)?;
        let keep = server.and(&gt, &eq)?;
        gt = server.or(&x_gt_y, &keep)?;
    }
    Ok(gt)
}

/// Compiles a `bits`-bit ripple-carry adder into a dataflow
/// [`Program`] for the streaming runtime: inputs are `a[0..bits]` then
/// `b[0..bits]` (little-endian boolean ciphertexts), outputs are the
/// `bits + 1` sum bits. The first bit position is a half adder; later
/// positions are the 5-gate full adder of [`full_adder`], so the
/// decrypted outputs match [`ripple_carry_add`].
///
/// Each bit level exposes 2–3 independent gates, and independent
/// levels from *concurrent* sessions interleave into shared epochs —
/// the whole point of streaming circuits instead of running them
/// synchronously.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn ripple_carry_adder_program(bits: usize) -> Program {
    let mut p = Program::new(2 * bits);
    let mut carry: Option<Wire> = None;
    for i in 0..bits {
        let a = Wire::Input(i);
        let b = Wire::Input(bits + i);
        let ab = p.gate(BinaryGate::Xor, a, b);
        match carry {
            None => {
                // Half adder: no carry-in at bit 0.
                p.output(ab);
                carry = Some(p.gate(BinaryGate::And, a, b));
            }
            Some(cin) => {
                let sum = p.gate(BinaryGate::Xor, ab, cin);
                p.output(sum);
                let t1 = p.gate(BinaryGate::And, a, b);
                let t2 = p.gate(BinaryGate::And, ab, cin);
                carry = Some(p.gate(BinaryGate::Or, t1, t2));
            }
        }
    }
    p.output(carry.expect("adder needs at least one bit"));
    p
}

/// Compiles a `bits`-bit equality comparator into a dataflow
/// [`Program`]: inputs are `a[0..bits]` then `b[0..bits]`, the single
/// output is `a == b`. One XNOR per bit (all independent — a full
/// level of parallel epoch slots), then a balanced AND-reduction tree
/// mirroring [`comparator_workload`]'s level structure.
///
/// # Panics
///
/// Panics if `bits == 0` (there is no constant-true wire).
pub fn equality_program(bits: usize) -> Program {
    let mut p = Program::new(2 * bits);
    let mut level: Vec<Wire> = (0..bits)
        .map(|i| p.gate(BinaryGate::Xnor, Wire::Input(i), Wire::Input(bits + i)))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2 + 1);
        for pair in level.chunks(2) {
            match pair {
                [x, y] => next.push(p.gate(BinaryGate::And, *x, *y)),
                [x] => next.push(*x),
                _ => unreachable!("chunks(2) yields 1 or 2 wires"),
            }
        }
        level = next;
    }
    match level.first() {
        Some(&w) => p.output(w),
        // Zero-width comparison is trivially true, but there is no
        // constant wire; keep the degenerate case out of the DAG by
        // requiring at least one bit.
        None => panic!("equality comparator needs at least one bit"),
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use strix_tfhe::prelude::*;

    fn keys() -> (ClientKey, ServerKey) {
        generate_keys(&TfheParameters::testing_fast(), 1234)
    }

    fn encrypt_bits(client: &mut ClientKey, value: u64, bits: usize) -> Vec<BoolCiphertext> {
        (0..bits).map(|i| client.encrypt_bool((value >> i) & 1 == 1)).collect()
    }

    fn decrypt_bits(client: &ClientKey, cts: &[BoolCiphertext]) -> u64 {
        cts.iter().enumerate().map(|(i, c)| (client.decrypt_bool(c) as u64) << i).sum()
    }

    #[test]
    fn adder_workload_counts() {
        let w = adder_workload(8);
        assert_eq!(w.total_pbs(), 40);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn comparator_workload_counts() {
        // 8 XNOR + 4 + 2 + 1 AND = 15 gates.
        let w = comparator_workload(8);
        assert_eq!(w.total_pbs(), 15);
    }

    #[test]
    fn multiplier_workload_counts() {
        // 8² partial products + 7 rows × 40 adder gates.
        let w = multiplier_workload(8);
        assert_eq!(w.total_pbs(), 64 + 7 * 40);
    }

    #[test]
    fn aes_sbox_is_boyar_peralta_sized() {
        assert_eq!(aes_sbox_workload().total_pbs(), 115);
    }

    #[test]
    fn processor_cycle_scales_with_word_size() {
        let w16 = processor_cycle_workload(16);
        let w32 = processor_cycle_workload(32);
        assert_eq!(w16.total_pbs() * 2, w32.total_pbs());
        // A 16-bit encrypted CPU cycle costs several hundred PBS — the
        // scale that motivates throughput-oriented accelerators.
        assert!(w16.total_pbs() > 500, "{}", w16.total_pbs());
    }

    #[test]
    fn ripple_carry_adds_correctly() {
        let (mut client, server) = keys();
        for (a, b) in [(3u64, 5u64), (7, 1), (0, 0), (6, 7)] {
            let ca = encrypt_bits(&mut client, a, 3);
            let cb = encrypt_bits(&mut client, b, 3);
            let sum = ripple_carry_add(&server, &ca, &cb).unwrap();
            assert_eq!(sum.len(), 4);
            assert_eq!(decrypt_bits(&client, &sum), a + b, "{a}+{b}");
        }
    }

    #[test]
    fn equality_test() {
        let (mut client, server) = keys();
        let a = encrypt_bits(&mut client, 0b101, 3);
        let b = encrypt_bits(&mut client, 0b101, 3);
        let c = encrypt_bits(&mut client, 0b100, 3);
        assert!(client.decrypt_bool(&equals(&server, &a, &b).unwrap()));
        assert!(!client.decrypt_bool(&equals(&server, &a, &c).unwrap()));
    }

    #[test]
    fn greater_than_test() {
        let (mut client, server) = keys();
        for (a, b) in [(5u64, 3u64), (3, 5), (4, 4), (7, 0)] {
            let ca = encrypt_bits(&mut client, a, 3);
            let cb = encrypt_bits(&mut client, b, 3);
            let gt = greater_than(&server, &ca, &cb).unwrap();
            assert_eq!(client.decrypt_bool(&gt), a > b, "{a}>{b}");
        }
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let (mut client, server) = keys();
        let a = encrypt_bits(&mut client, 1, 2);
        let b = encrypt_bits(&mut client, 1, 3);
        assert!(ripple_carry_add(&server, &a, &b).is_err());
        assert!(equals(&server, &a, &b).is_err());
        assert!(greater_than(&server, &a, &b).is_err());
    }

    #[test]
    fn empty_equality_is_trivially_true() {
        let (client, server) = keys();
        let e = equals(&server, &[], &[]).unwrap();
        assert!(client.decrypt_bool(&e));
    }

    #[test]
    fn adder_program_shape_matches_gate_counts() {
        let p = ripple_carry_adder_program(4);
        assert_eq!(p.input_count(), 8);
        assert_eq!(p.outputs().len(), 5);
        // Half adder (2 gates) + 3 full adders (5 gates each).
        assert_eq!(p.request_count(), 2 + 3 * 5);
    }

    #[test]
    fn equality_program_shape_matches_comparator_workload() {
        for bits in [1usize, 2, 5, 8] {
            let p = equality_program(bits);
            assert_eq!(p.input_count(), 2 * bits, "{bits} bits");
            assert_eq!(p.outputs().len(), 1);
            assert_eq!(p.request_count(), comparator_workload(bits).total_pbs(), "{bits} bits");
        }
    }

    #[test]
    fn adder_program_run_sync_matches_gate_execution() {
        let (mut client, server) = keys();
        const BITS: usize = 3;
        for (a, b) in [(5u64, 3u64), (7, 7)] {
            let ca = encrypt_bits(&mut client, a, BITS);
            let cb = encrypt_bits(&mut client, b, BITS);
            let inputs: Vec<_> = ca.iter().chain(&cb).map(|c| c.as_lwe().clone()).collect();
            let program = ripple_carry_adder_program(BITS);
            let outs = program.run_sync(&server, &inputs).unwrap();
            let decoded: u64 = outs
                .iter()
                .enumerate()
                .map(|(i, ct)| {
                    let phase = client.decrypt_phase(ct).unwrap();
                    (strix_tfhe::bootstrap::decode_bool(phase) as u64) << i
                })
                .sum();
            assert_eq!(decoded, a + b, "{a}+{b}");
            // ...and agrees with the synchronous ServerKey circuit.
            let reference = ripple_carry_add(&server, &ca, &cb).unwrap();
            let ref_decoded = decrypt_bits(&client, &reference);
            assert_eq!(decoded, ref_decoded);
        }
    }

    #[test]
    fn equality_program_run_sync_matches_equals() {
        let (mut client, server) = keys();
        const BITS: usize = 4;
        for (a, b) in [(9u64, 9u64), (9, 10)] {
            let ca = encrypt_bits(&mut client, a, BITS);
            let cb = encrypt_bits(&mut client, b, BITS);
            let inputs: Vec<_> = ca.iter().chain(&cb).map(|c| c.as_lwe().clone()).collect();
            let outs = equality_program(BITS).run_sync(&server, &inputs).unwrap();
            let phase = client.decrypt_phase(&outs[0]).unwrap();
            assert_eq!(strix_tfhe::bootstrap::decode_bool(phase), a == b, "{a}=={b}");
        }
    }
}
