//! Synthetic MNIST-like inputs.
//!
//! The paper encrypts 28×28-pixel MNIST images pixel-per-ciphertext.
//! We do not ship the MNIST dataset; a seeded generator produces images
//! with the same shape and an MNIST-like sparsity pattern (a bright
//! blob on a dark background). Every Fig. 7 quantity depends only on
//! the tensor shapes, so this substitution is timing-neutral.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::nn::IMAGE_SIDE;

/// A synthetic 28×28 grayscale image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntheticImage {
    pixels: Vec<u8>,
}

impl SyntheticImage {
    /// Generates a deterministic image for a seed: a Gaussian-ish blob
    /// of bright pixels around a random centre, mimicking a digit's
    /// foreground/background statistics.
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let cx = rng.gen_range(9..19) as f64;
        let cy = rng.gen_range(9..19) as f64;
        let spread = rng.gen_range(3.0..6.0);
        let mut pixels = vec![0u8; IMAGE_SIDE * IMAGE_SIDE];
        for y in 0..IMAGE_SIDE {
            for x in 0..IMAGE_SIDE {
                let d2 = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)) / (spread * spread);
                let intensity = (255.0 * (-d2).exp()) as u8;
                let noise = rng.gen_range(0..8);
                pixels[y * IMAGE_SIDE + x] = intensity.saturating_add(noise);
            }
        }
        Self { pixels }
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of range.
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        assert!(x < IMAGE_SIDE && y < IMAGE_SIDE, "pixel ({x},{y}) out of range");
        self.pixels[y * IMAGE_SIDE + x]
    }

    /// Flat pixel slice, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Number of pixels (28 × 28 = 784, the paper's per-image PBS
    /// parallelism bound for `TvLP`).
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Always false — images have a fixed shape.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Quantises pixels to `bits`-bit messages for shortint encryption.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8.
    pub fn quantize(&self, bits: u32) -> Vec<u64> {
        assert!((1..=8).contains(&bits), "quantisation must be 1–8 bits");
        self.pixels.iter().map(|&p| (p as u64) >> (8 - bits)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_has_784_pixels() {
        let img = SyntheticImage::generate(7);
        assert_eq!(img.len(), 784);
        assert!(!img.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(SyntheticImage::generate(42), SyntheticImage::generate(42));
        assert_ne!(SyntheticImage::generate(42), SyntheticImage::generate(43));
    }

    #[test]
    fn blob_is_brighter_than_background() {
        let img = SyntheticImage::generate(1);
        let max = *img.pixels().iter().max().unwrap();
        let corner = img.pixel(0, 0);
        assert!(max > 128, "blob too dim: {max}");
        assert!(corner < 64, "background too bright: {corner}");
    }

    #[test]
    fn quantization_bounds() {
        let img = SyntheticImage::generate(3);
        for bits in 1..=8 {
            let q = img.quantize(bits);
            let bound = 1u64 << bits;
            assert!(q.iter().all(|&v| v < bound), "bits {bits}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pixel_bounds_checked() {
        SyntheticImage::generate(0).pixel(28, 0);
    }
}
