//! Tagged requests and responses flowing through the runtime.

use std::sync::Arc;
use std::time::{Duration, Instant};

use strix_tfhe::boolean::BinaryGate;
use strix_tfhe::bootstrap::Lut;
use strix_tfhe::lwe::LweCiphertext;

use crate::error::RuntimeError;
use crate::trace::SpanId;

/// Identifies one client stream. Per-client request order is preserved
/// end to end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// Identifies one tenant — one key domain. Every request carries a
/// tenant id; an epoch only ever holds requests of a single tenant, so
/// the worker can pin that tenant's server key for the epoch's whole
/// PBS+KS run (the third batching level above TvLP × CLP: group by
/// *key* before grouping by ciphertext).
///
/// Single-tenant deployments never mention tenants: the default id 0
/// routes everything through one key exactly as before.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// The homomorphic operation a request asks for.
///
/// LUTs are shared by `Arc`: many requests typically evaluate the same
/// function, and a batch mixes operations freely — batching shares the
/// *key* material, not the test vectors.
#[derive(Clone, Debug)]
pub enum RequestOp {
    /// Programmable bootstrap with this LUT, then keyswitch back to the
    /// small (`n`) key: the full PBS+KS flow of the paper's workloads.
    Lut(Arc<Lut>),
    /// Raw programmable bootstrap only; the output stays under the
    /// extracted (`k·N`) key.
    Bootstrap(Arc<Lut>),
    /// Keyswitch only; the input must be under the extracted key.
    Keyswitch,
    /// A two-input boolean gate as one request: the gate recipe's
    /// linear combination of the request ciphertext and `other`, then
    /// the shared sign-LUT bootstrap, then keyswitch. Exposes the
    /// [`strix_tfhe::boolean`] gate recipes through the batcher so a
    /// circuit level streams as ordinary epoch slots.
    Gate {
        /// Which gate to evaluate.
        gate: BinaryGate,
        /// The second gate input (the first is [`Request::ct`]).
        other: LweCiphertext,
    },
    /// Linear-combination preamble then LUT: computes
    /// `weights[0]·ct + Σ weights[i+1]·extra[i] + offset` on the small
    /// key, bootstraps the sum with `lut`, and keyswitches back — one
    /// request per neuron of a Deep-NN dense layer.
    LinearLut {
        /// Per-input integer weights; `weights[0]` scales
        /// [`Request::ct`], `weights[i + 1]` scales `extra[i]`.
        weights: Vec<i64>,
        /// Additional input ciphertexts beyond [`Request::ct`].
        extra: Vec<LweCiphertext>,
        /// Constant torus offset added after the weighted sum.
        offset: u64,
        /// The LUT applied by the bootstrap.
        lut: Arc<Lut>,
    },
}

impl RequestOp {
    /// Whether this operation contains a programmable bootstrap (and
    /// thus counts toward PBS/s throughput).
    pub fn is_pbs(&self) -> bool {
        !matches!(self, RequestOp::Keyswitch)
    }

    /// Whether this operation carries a fused linear preamble (a gate
    /// recipe or an explicit weighted sum) ahead of its bootstrap.
    pub fn is_fused_linear(&self) -> bool {
        matches!(self, RequestOp::Gate { .. } | RequestOp::LinearLut { .. })
    }

    /// The request class this operation belongs to, for per-class
    /// latency attribution in the metrics.
    pub fn class(&self) -> RequestClass {
        match self {
            RequestOp::Lut(_) => RequestClass::Lut,
            RequestOp::Bootstrap(_) => RequestClass::Bootstrap,
            RequestOp::Keyswitch => RequestClass::Keyswitch,
            RequestOp::Gate { .. } => RequestClass::Gate,
            RequestOp::LinearLut { .. } => RequestClass::LinearLut,
        }
    }
}

/// The request classes the metrics attribute latency to — one per
/// [`RequestOp`] variant, so the report can show where each kind of
/// request spends its time (queue wait vs batch wait vs execution).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// PBS + keyswitch ([`RequestOp::Lut`]).
    Lut,
    /// Raw PBS ([`RequestOp::Bootstrap`]).
    Bootstrap,
    /// Keyswitch only ([`RequestOp::Keyswitch`]).
    Keyswitch,
    /// Boolean gate ([`RequestOp::Gate`]).
    Gate,
    /// Fused linear + LUT ([`RequestOp::LinearLut`]).
    LinearLut,
}

impl RequestClass {
    /// All classes, in a fixed order (the metrics index by position).
    pub const ALL: [RequestClass; 5] = [
        RequestClass::Lut,
        RequestClass::Bootstrap,
        RequestClass::Keyswitch,
        RequestClass::Gate,
        RequestClass::LinearLut,
    ];

    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Lut => "lut",
            RequestClass::Bootstrap => "bootstrap",
            RequestClass::Keyswitch => "keyswitch",
            RequestClass::Gate => "gate",
            RequestClass::LinearLut => "linear-lut",
        }
    }

    /// Position in [`Self::ALL`].
    pub(crate) fn index(self) -> usize {
        match self {
            RequestClass::Lut => 0,
            RequestClass::Bootstrap => 1,
            RequestClass::Keyswitch => 2,
            RequestClass::Gate => 3,
            RequestClass::LinearLut => 4,
        }
    }
}

/// One in-flight request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Originating client.
    pub client: ClientId,
    /// The tenant (key domain) this request executes under.
    pub tenant: TenantId,
    /// Position in the client's stream (0-based, strictly increasing).
    pub seq: u64,
    /// Trace span carried through every runtime layer.
    pub span: SpanId,
    /// Input ciphertext.
    pub ct: LweCiphertext,
    /// Operation to perform.
    pub op: RequestOp,
    /// Submission timestamp, for end-to-end latency accounting.
    pub submitted_at: Instant,
    /// When the batcher pulled this request into its open batch
    /// (`submitted_at → batched_at` is the ingress queue wait).
    pub batched_at: Option<Instant>,
    /// When the open batch flushed as an epoch
    /// (`batched_at → flushed_at` is the batch-formation wait).
    pub flushed_at: Option<Instant>,
}

impl Request {
    /// Builds a fresh request, submitted now, not yet batched, under
    /// the default (single-tenant) key domain.
    pub fn new(client: ClientId, seq: u64, span: SpanId, ct: LweCiphertext, op: RequestOp) -> Self {
        Self {
            client,
            tenant: TenantId::default(),
            seq,
            span,
            ct,
            op,
            submitted_at: Instant::now(),
            batched_at: None,
            flushed_at: None,
        }
    }

    /// Routes this request to a specific tenant's key domain.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// The completed counterpart of a [`Request`].
#[derive(Clone, Debug)]
pub struct Response {
    /// Originating client.
    pub client: ClientId,
    /// The request's position in the client's stream.
    pub seq: u64,
    /// The request's trace span, so callers can correlate responses
    /// with exported trace slices.
    pub span: SpanId,
    /// The output ciphertext, or the failure.
    pub result: Result<LweCiphertext, RuntimeError>,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// The epoch this request was batched into.
    pub epoch: u64,
}

impl Response {
    /// Unwraps the ciphertext.
    ///
    /// # Errors
    ///
    /// Returns the carried [`RuntimeError`] for failed requests.
    pub fn into_ciphertext(self) -> Result<LweCiphertext, RuntimeError> {
        self.result
    }
}

/// A flushed device-level batch: up to `TvLP × core_batch` requests
/// executed as one unit against shared key material.
#[derive(Clone, Debug)]
pub struct Epoch {
    /// Monotonic epoch number (flush order).
    pub id: u64,
    /// The single tenant whose key this epoch executes under (epochs
    /// never mix tenants — that is the point of key-major batching).
    pub tenant: TenantId,
    /// The batched requests, in arrival order.
    pub requests: Vec<Request>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        let lut = Arc::new(Lut::sign(64, 1));
        assert!(RequestOp::Lut(Arc::clone(&lut)).is_pbs());
        assert!(RequestOp::Bootstrap(Arc::clone(&lut)).is_pbs());
        assert!(!RequestOp::Keyswitch.is_pbs());
        let gate = RequestOp::Gate { gate: BinaryGate::And, other: LweCiphertext::trivial(4, 0) };
        assert!(gate.is_pbs() && gate.is_fused_linear());
        let lin = RequestOp::LinearLut { weights: vec![1], extra: vec![], offset: 0, lut };
        assert!(lin.is_pbs() && lin.is_fused_linear());
        assert!(!RequestOp::Keyswitch.is_fused_linear());
    }

    #[test]
    fn classes_cover_every_op_and_have_stable_labels() {
        let lut = Arc::new(Lut::sign(64, 1));
        assert_eq!(RequestOp::Lut(Arc::clone(&lut)).class(), RequestClass::Lut);
        assert_eq!(RequestOp::Keyswitch.class(), RequestClass::Keyswitch);
        assert_eq!(
            RequestOp::Gate { gate: BinaryGate::Xor, other: LweCiphertext::trivial(4, 0) }.class(),
            RequestClass::Gate
        );
        for (i, class) in RequestClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert!(!class.label().is_empty());
        }
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId(3).to_string(), "client-3");
    }

    #[test]
    fn requests_default_to_tenant_zero_and_route_explicitly() {
        let lut = Arc::new(Lut::sign(64, 1));
        let req = Request::new(
            ClientId(1),
            0,
            SpanId(0),
            LweCiphertext::trivial(4, 0),
            RequestOp::Lut(lut),
        );
        assert_eq!(req.tenant, TenantId::default());
        assert_eq!(req.tenant, TenantId(0));
        let routed = req.with_tenant(TenantId(9));
        assert_eq!(routed.tenant, TenantId(9));
        assert_eq!(TenantId(9).to_string(), "tenant-9");
    }
}
