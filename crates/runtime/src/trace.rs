//! End-to-end request tracing: span ids, stage-boundary events and a
//! Chrome-trace / Perfetto exporter.
//!
//! The paper's whole argument is a latency *attribution* story — the
//! two-level batcher deliberately trades queueing delay for occupancy —
//! so the runtime must be able to say where a request's time went, not
//! just how much there was. Every request is assigned a [`SpanId`] at
//! submission; the span is carried through
//! [`Request`](crate::request::Request) → ingress queue → batcher →
//! worker → [`Response`](crate::request::Response), and each layer
//! records a stage-boundary timestamp into the shared [`Tracer`]:
//!
//! | stage | recorded by | meaning |
//! |---|---|---|
//! | `Submitted` | client handle | `submit()` called |
//! | `Enqueued` | client handle | ingress `push` returned (gap from `Submitted` = backpressure wait) |
//! | `BatchOpened` | batcher | popped into the open batch |
//! | `EpochFlushed` | batcher | the batch became an [`Epoch`](crate::request::Epoch) |
//! | `PbsStart`/`PbsEnd` | worker | the epoch's batched blind rotation ran |
//! | `KsStart`/`KsEnd` | worker | the epoch's batched keyswitch tail ran |
//! | `Completed` | worker | response handed to the client registry |
//!
//! Events live in a **bounded ring buffer** (oldest evicted first, the
//! eviction count is reported) behind a mutex whose critical section is
//! a single `VecDeque` push — recording is a few tens of nanoseconds
//! against a multi-millisecond PBS, and sampling (`sample_every`)
//! drops the cost to zero for untraced spans without touching the lock.
//!
//! [`Tracer::chrome_trace_json`] renders the ring as a Chrome
//! trace-event JSON array (`ph: "X"` complete events) that
//! <https://ui.perfetto.dev> and `chrome://tracing` open directly: one
//! track per client, with `queue-wait` / `batch-wait` / `execute`
//! slices per request and `pbs` / `keyswitch` sub-slices from the
//! epoch's execution timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::request::ClientId;
use crate::sync::lock_unpoisoned;

/// Identifies one request end to end, across every runtime layer.
///
/// Allocated by [`Tracer::next_span`]; ids are unique per runtime and
/// strictly increasing in submission order, which is what makes
/// `sample_every`-based sampling uniform over the request stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span-{}", self.0)
    }
}

/// A stage boundary in the life of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceStage {
    /// `submit()` was called on the client handle.
    Submitted,
    /// The ingress queue accepted the request (backpressure resolved).
    Enqueued,
    /// The batcher popped the request into its open batch.
    BatchOpened,
    /// The open batch flushed as an epoch.
    EpochFlushed,
    /// The epoch's batched PBS began executing.
    PbsStart,
    /// The epoch's batched PBS finished.
    PbsEnd,
    /// The epoch's batched keyswitch began executing.
    KsStart,
    /// The epoch's batched keyswitch finished.
    KsEnd,
    /// The response was delivered.
    Completed,
}

impl TraceStage {
    /// Short label used by the exporter and debug output.
    pub fn label(self) -> &'static str {
        match self {
            TraceStage::Submitted => "submitted",
            TraceStage::Enqueued => "enqueued",
            TraceStage::BatchOpened => "batch-opened",
            TraceStage::EpochFlushed => "epoch-flushed",
            TraceStage::PbsStart => "pbs-start",
            TraceStage::PbsEnd => "pbs-end",
            TraceStage::KsStart => "ks-start",
            TraceStage::KsEnd => "ks-end",
            TraceStage::Completed => "completed",
        }
    }
}

/// One recorded stage boundary.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// The request's span.
    pub span: SpanId,
    /// Originating client.
    pub client: ClientId,
    /// Position in the client's stream.
    pub seq: u64,
    /// The epoch the request was batched into, once known.
    pub epoch: Option<u64>,
    /// Which boundary this is.
    pub stage: TraceStage,
    /// Microseconds since the tracer's origin (runtime start).
    pub at_us: u64,
}

/// Tracer configuration, set through
/// [`RuntimeConfig`](crate::runtime::RuntimeConfig).
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Master switch; a disabled tracer records nothing and allocates
    /// nothing beyond the span counter.
    pub enabled: bool,
    /// Ring capacity in events (~9 events per traced request). When
    /// full, the oldest events are evicted and counted.
    pub capacity: usize,
    /// Trace one request in `sample_every` (1 = all). Untraced spans
    /// skip every recording call before the lock.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { enabled: true, capacity: 1 << 16, sample_every: 1 }
    }
}

impl TraceConfig {
    /// A tracer that records nothing (still allocates span ids).
    pub fn disabled() -> Self {
        Self { enabled: false, capacity: 0, sample_every: 1 }
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: std::collections::VecDeque<TraceEvent>,
    evicted: u64,
}

/// The shared trace sink: allocates spans, records stage boundaries
/// into a bounded ring, exports Chrome trace JSON.
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    origin: Instant,
    next_span: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl Tracer {
    /// Creates a tracer; `origin` (time zero of exported traces) is now.
    pub fn new(config: TraceConfig) -> Self {
        Self {
            config,
            origin: Instant::now(),
            next_span: AtomicU64::new(0),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// A tracer that records nothing (spans still allocate, so request
    /// plumbing is identical with tracing on or off).
    pub fn disabled() -> Self {
        Self::new(TraceConfig::disabled())
    }

    /// The active configuration.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Allocates the next span id.
    pub fn next_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Whether events for `span` are recorded (sampling decision —
    /// constant per span, so a request is traced fully or not at all).
    #[inline]
    pub fn traces(&self, span: SpanId) -> bool {
        self.config.enabled
            && self.config.capacity > 0
            && span.0.is_multiple_of(self.config.sample_every.max(1))
    }

    /// Records a stage boundary for `span` at time `now`.
    #[inline]
    pub fn record(
        &self,
        span: SpanId,
        client: ClientId,
        seq: u64,
        epoch: Option<u64>,
        stage: TraceStage,
    ) {
        self.record_at(span, client, seq, epoch, stage, Instant::now());
    }

    /// As [`Self::record`] with an explicit timestamp — used when one
    /// measured instant (an epoch's PBS start, say) applies to many
    /// spans.
    pub fn record_at(
        &self,
        span: SpanId,
        client: ClientId,
        seq: u64,
        epoch: Option<u64>,
        stage: TraceStage,
        at: Instant,
    ) {
        if !self.traces(span) {
            return;
        }
        let at_us =
            at.saturating_duration_since(self.origin).as_micros().min(u64::MAX as u128) as u64;
        let event = TraceEvent { span, client, seq, epoch, stage, at_us };
        let mut ring = lock_unpoisoned(&self.ring);
        if ring.events.len() >= self.config.capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(event);
    }

    /// A snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock_unpoisoned(&self.ring).events.iter().copied().collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        lock_unpoisoned(&self.ring).evicted
    }

    /// Builds the Chrome trace-event representation of the buffer: one
    /// `ph: "X"` complete event per contiguous stage interval of each
    /// span. The `tid` is the client id (one track per client in the
    /// viewer), `pid` is a constant runtime process.
    pub fn chrome_trace(&self) -> Vec<ChromeTraceEvent> {
        chrome_events(&self.events())
    }

    /// Renders [`Self::chrome_trace`] as the JSON array form of the
    /// Chrome trace-event format, accepted by `chrome://tracing` and
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        // lint:allow(panic) plain structs of numbers and strings cannot fail to serialize
        serde_json::to_string(&self.chrome_trace()).expect("trace serialization is infallible")
    }
}

/// One Chrome trace-event "complete" record (`ph: "X"`). Field names
/// follow the trace-event format spec, which is why they are terse.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChromeTraceEvent {
    /// Slice name (`queue-wait`, `batch-wait`, `execute`, `pbs`,
    /// `keyswitch`).
    pub name: String,
    /// Category (`request` for per-span slices, `epoch` for the
    /// execution sub-slices).
    pub cat: String,
    /// Phase; always `"X"` (complete event with duration).
    pub ph: String,
    /// Start, microseconds since the tracer origin.
    pub ts: u64,
    /// Duration in microseconds.
    pub dur: u64,
    /// Process id (constant — one runtime).
    pub pid: u64,
    /// Thread id: the client id, so each client is one track.
    pub tid: u64,
    /// Span/seq/epoch breadcrumbs shown in the viewer's detail pane.
    pub args: ChromeTraceArgs,
}

/// The `args` payload of a [`ChromeTraceEvent`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChromeTraceArgs {
    /// Span id.
    pub span: u64,
    /// Per-client sequence number.
    pub seq: u64,
    /// Epoch id, once the request was batched.
    pub epoch: Option<u64>,
}

/// The slice decomposition the exporter emits per span: each entry is
/// (slice name, category, start stage, end stage).
const SLICES: [(&str, &str, TraceStage, TraceStage); 5] = [
    ("queue-wait", "request", TraceStage::Submitted, TraceStage::BatchOpened),
    ("batch-wait", "request", TraceStage::BatchOpened, TraceStage::EpochFlushed),
    ("execute", "request", TraceStage::EpochFlushed, TraceStage::Completed),
    ("pbs", "epoch", TraceStage::PbsStart, TraceStage::PbsEnd),
    ("keyswitch", "epoch", TraceStage::KsStart, TraceStage::KsEnd),
];

fn chrome_events(events: &[TraceEvent]) -> Vec<ChromeTraceEvent> {
    use std::collections::HashMap;
    // Group stage timestamps per span. A span evicted halfway through
    // the ring simply yields the slices whose endpoints both survive.
    struct SpanAcc {
        client: u64,
        seq: u64,
        epoch: Option<u64>,
        stages: HashMap<TraceStage, u64>,
    }
    let mut spans: Vec<(SpanId, SpanAcc)> = Vec::new();
    let mut index: HashMap<SpanId, usize> = HashMap::new();
    for e in events {
        let i = *index.entry(e.span).or_insert_with(|| {
            spans.push((
                e.span,
                SpanAcc { client: e.client.0, seq: e.seq, epoch: None, stages: HashMap::new() },
            ));
            spans.len() - 1
        });
        let acc = &mut spans[i].1;
        if acc.epoch.is_none() {
            acc.epoch = e.epoch;
        }
        acc.stages.insert(e.stage, e.at_us);
    }
    let mut out = Vec::new();
    for (span, acc) in &spans {
        for &(name, cat, start, end) in &SLICES {
            let (Some(&t0), Some(&t1)) = (acc.stages.get(&start), acc.stages.get(&end)) else {
                continue;
            };
            out.push(ChromeTraceEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                ph: "X".to_string(),
                ts: t0,
                dur: t1.saturating_sub(t0),
                pid: 1,
                tid: acc.client,
                args: ChromeTraceArgs { span: span.0, seq: acc.seq, epoch: acc.epoch },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn record_lifecycle(tracer: &Tracer, span: SpanId, client: u64, epoch: u64) {
        let t0 = Instant::now();
        let stages = [
            (TraceStage::Submitted, 0, None),
            (TraceStage::Enqueued, 5, None),
            (TraceStage::BatchOpened, 10, None),
            (TraceStage::EpochFlushed, 20, Some(epoch)),
            (TraceStage::PbsStart, 21, Some(epoch)),
            (TraceStage::PbsEnd, 40, Some(epoch)),
            (TraceStage::KsStart, 40, Some(epoch)),
            (TraceStage::KsEnd, 45, Some(epoch)),
            (TraceStage::Completed, 50, Some(epoch)),
        ];
        for (stage, offset_us, ep) in stages {
            tracer.record_at(
                span,
                ClientId(client),
                0,
                ep,
                stage,
                t0 + Duration::from_micros(offset_us),
            );
        }
    }

    #[test]
    fn span_ids_are_unique_and_increasing() {
        let tracer = Tracer::default();
        let a = tracer.next_span();
        let b = tracer.next_span();
        assert!(b > a);
        assert_eq!(a.to_string(), "span-0");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let span = tracer.next_span();
        assert!(!tracer.traces(span));
        tracer.record(span, ClientId(0), 0, None, TraceStage::Submitted);
        assert!(tracer.events().is_empty());
    }

    #[test]
    fn sampling_traces_every_nth_span() {
        let tracer = Tracer::new(TraceConfig { enabled: true, capacity: 64, sample_every: 4 });
        let sampled: Vec<bool> = (0..8).map(|_| tracer.traces(tracer.next_span())).collect();
        assert_eq!(sampled, [true, false, false, false, true, false, false, false]);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let tracer = Tracer::new(TraceConfig { enabled: true, capacity: 4, sample_every: 1 });
        for _ in 0..6 {
            let span = tracer.next_span();
            tracer.record(span, ClientId(0), 0, None, TraceStage::Submitted);
        }
        assert_eq!(tracer.events().len(), 4);
        assert_eq!(tracer.evicted(), 2);
        // Oldest evicted first: the survivors are the last four spans.
        assert_eq!(tracer.events()[0].span, SpanId(2));
    }

    #[test]
    fn chrome_export_builds_slices_from_stage_pairs() {
        let tracer = Tracer::default();
        let span = tracer.next_span();
        record_lifecycle(&tracer, span, 3, 7);
        let slices = tracer.chrome_trace();
        assert_eq!(slices.len(), SLICES.len());
        let queue = slices.iter().find(|s| s.name == "queue-wait").unwrap();
        assert_eq!(queue.dur, 10);
        assert_eq!(queue.tid, 3);
        assert_eq!(queue.args.epoch, Some(7));
        let pbs = slices.iter().find(|s| s.name == "pbs").unwrap();
        assert_eq!(pbs.dur, 19);
        assert_eq!(pbs.cat, "epoch");
        let exec = slices.iter().find(|s| s.name == "execute").unwrap();
        assert_eq!(exec.dur, 30);
        assert_eq!(exec.ph, "X");
    }

    #[test]
    fn chrome_export_json_round_trips_through_serde() {
        let tracer = Tracer::default();
        record_lifecycle(&tracer, tracer.next_span(), 1, 0);
        record_lifecycle(&tracer, tracer.next_span(), 2, 0);
        let json = tracer.chrome_trace_json();
        let parsed: Vec<ChromeTraceEvent> = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed, tracer.chrome_trace());
        let again = serde_json::to_string(&parsed).unwrap();
        assert_eq!(json, again, "export is a serde fixed point");
    }

    #[test]
    fn partial_spans_emit_only_complete_slices() {
        let tracer = Tracer::default();
        let span = tracer.next_span();
        tracer.record(span, ClientId(0), 0, None, TraceStage::Submitted);
        tracer.record(span, ClientId(0), 0, None, TraceStage::BatchOpened);
        // No flush/completion yet: only the queue-wait slice exists.
        let slices = tracer.chrome_trace();
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].name, "queue-wait");
    }
}
