//! Runtime error type.

use strix_tfhe::TfheError;

/// Errors surfaced by the streaming runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// The runtime has shut down and no further requests are accepted
    /// (or no further responses will arrive).
    Shutdown,
    /// The underlying homomorphic operation failed.
    Tfhe(TfheError),
    /// A response was expected but the worker pool dropped the request
    /// (should not happen under the drain-on-shutdown contract).
    Lost,
    /// A dataflow program is malformed (bad wire reference, input
    /// count mismatch, weight arity mismatch).
    Program(&'static str),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Shutdown => write!(f, "runtime has shut down"),
            RuntimeError::Tfhe(e) => write!(f, "homomorphic operation failed: {e}"),
            RuntimeError::Lost => write!(f, "request was lost by the worker pool"),
            RuntimeError::Program(why) => write!(f, "malformed dataflow program: {why}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Tfhe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TfheError> for RuntimeError {
    fn from(e: TfheError) -> Self {
        RuntimeError::Tfhe(e)
    }
}
