//! Runtime error type.

use strix_tfhe::TfheError;

/// Errors surfaced by the streaming runtime.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// The runtime has shut down and no further requests are accepted
    /// (or no further responses will arrive).
    Shutdown,
    /// The underlying homomorphic operation failed.
    Tfhe(TfheError),
    /// A response was expected but the worker pool dropped the request
    /// (should not happen under the drain-on-shutdown contract).
    Lost,
    /// A dataflow program is malformed (bad wire reference, input
    /// count mismatch, weight arity mismatch).
    Program(&'static str),
    /// The static noise analyzer rejected a program at admission: some
    /// request node's predicted decision margin falls below the
    /// executor's threshold, so a decryption error would be likelier
    /// than the service guarantees. Raised before any request of the
    /// session is enqueued.
    NoiseBudgetExceeded {
        /// Index of the offending program node.
        node: usize,
        /// Predicted decision margin at that node, in standard
        /// deviations of the accumulated noise.
        margin_sigmas: f64,
        /// Minimum margin the admission policy requires.
        threshold_sigmas: f64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Shutdown => write!(f, "runtime has shut down"),
            RuntimeError::Tfhe(e) => write!(f, "homomorphic operation failed: {e}"),
            RuntimeError::Lost => write!(f, "request was lost by the worker pool"),
            RuntimeError::Program(why) => write!(f, "malformed dataflow program: {why}"),
            RuntimeError::NoiseBudgetExceeded { node, margin_sigmas, threshold_sigmas } => write!(
                f,
                "noise budget exceeded: program node {node} has a predicted decision margin \
                 of {margin_sigmas:.2} sigmas, below the admission threshold of \
                 {threshold_sigmas:.2} sigmas"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Tfhe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TfheError> for RuntimeError {
    fn from(e: TfheError) -> Self {
        RuntimeError::Tfhe(e)
    }
}
