//! Runtime metrics: per-request latency percentiles, achieved PBS/s,
//! the batch-occupancy histogram, per-class latency attribution,
//! sampled per-stage PBS breakdowns and windowed time series — the
//! production counterpart of the simulator's [`strix_core::PbsReport`]
//! and the data source for `BENCH_service.json`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use strix_tfhe::profiler::{PbsStage, StageTimings};

use crate::request::RequestClass;
use crate::sync::lock_unpoisoned;

/// Number of buckets in the occupancy histogram (bucket `i` covers
/// `(i/10, (i+1)/10]` of the epoch capacity, with 0 occupancy in
/// bucket 0).
pub const OCCUPANCY_BUCKETS: usize = 10;

/// Reservoir size for latency percentiles. The sink is designed for an
/// indefinitely running server, so per-request state must stay
/// bounded: up to this many samples the percentiles are exact, beyond
/// it they come from a uniform reservoir (algorithm R).
pub const LATENCY_RESERVOIR: usize = 1 << 16;

/// How many time windows the sink retains. Together with the window
/// length this bounds the time-series state regardless of uptime.
pub const WINDOW_RING: usize = 64;

/// Version of the [`RuntimeReport`] JSON schema. Consumers of
/// `BENCH_service.json` (and of serialized reports generally) should
/// check this before interpreting fields; it bumps on any
/// breaking/renaming change, not on pure additions.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Everything the worker knows about one completed request, handed to
/// [`MetricsSink::record_request`] in one piece.
#[derive(Clone, Copy, Debug)]
pub struct RequestRecord {
    /// When the client submitted the request.
    pub submitted_at: Instant,
    /// Submit-to-completion latency.
    pub latency: Duration,
    /// Time from submission to the batcher pulling the request into
    /// its open batch (ingress queueing).
    pub queue_wait: Duration,
    /// Time from batch entry to the epoch flushing (batch formation).
    pub batch_wait: Duration,
    /// Time from epoch flush to completion (epoch queueing plus
    /// execution).
    pub execute: Duration,
    /// The request's class, for attribution.
    pub class: RequestClass,
    /// Whether a linear preamble was fused ahead of the bootstrap.
    pub fused_linear: bool,
    /// Whether the request succeeded.
    pub ok: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct ClassAccum {
    completed: usize,
    failed: usize,
    queue_wait_ns: u128,
    batch_wait_ns: u128,
    execute_ns: u128,
    latency_ns: u128,
}

/// One live accumulation window (fixed length, ring-bounded).
#[derive(Clone, Copy, Debug, Default)]
struct WindowAccum {
    index: u64,
    completed: usize,
    failed: usize,
    pbs_completed: usize,
    epochs: usize,
    occupancy_sum: f64,
    max_queue_depth: usize,
}

#[derive(Debug, Default)]
struct MetricsInner {
    /// Uniform reservoir of latency samples (bounded).
    latencies_us: Vec<u64>,
    /// Total latency samples offered to the reservoir.
    latency_seen: u64,
    max_latency_us: u64,
    /// xorshift state for reservoir replacement.
    rng_state: u64,
    epochs: usize,
    occupancy_sum: f64,
    occupancy_histogram: [usize; OCCUPANCY_BUCKETS],
    /// Epochs whose execution-thread usage was recorded (workers
    /// record these; the batcher records the occupancy above).
    executed_epochs: usize,
    threads_used_sum: u64,
    threads_budget_sum: u64,
    max_threads_used: usize,
    pbs_completed: usize,
    /// PBS jobs executed per kernel, `[classical, multi_bit]`, as
    /// reported by the executors' epoch executions.
    kernel_jobs: [usize; 2],
    fused_linear_completed: usize,
    completed: usize,
    failed: usize,
    first_submit: Option<Instant>,
    last_complete: Option<Instant>,
    /// Per-class attribution accumulators, indexed by
    /// [`RequestClass::index`].
    classes: [ClassAccum; 5],
    /// Per-stage nanoseconds from sampled (probed) epochs, indexed in
    /// [`PbsStage::ALL`] order.
    stage_ns: [u128; 9],
    sampled_epochs: usize,
    sampled_pbs: usize,
    /// Ring of recent time windows, oldest first.
    windows: std::collections::VecDeque<WindowAccum>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Advances `last_complete` to `now`, never backwards.
///
/// `now` is sampled by the caller **before** taking the metrics lock,
/// so two workers completing epochs concurrently may apply their
/// timestamps out of order; the max-guard makes the measurement window
/// (`first_submit → last_complete`) monotonically non-shrinking under
/// any interleaving.
#[inline]
fn note_completion(slot: &mut Option<Instant>, now: Instant) {
    match slot {
        Some(last) if *last >= now => {}
        _ => *slot = Some(now),
    }
}

/// Shared sink the batcher and workers record into.
#[derive(Debug)]
pub struct MetricsSink {
    inner: Mutex<MetricsInner>,
    /// Time zero of the windowed series.
    origin: Instant,
    /// Length of one accumulation window.
    window: Duration,
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::with_window(Duration::from_secs(1))
    }
}

impl MetricsSink {
    /// Creates a sink whose time series buckets into windows of the
    /// given length (clamped to ≥ 1 ms). The default is 1 s.
    pub fn with_window(window: Duration) -> Self {
        Self {
            inner: Mutex::new(MetricsInner::default()),
            origin: Instant::now(),
            window: window.max(Duration::from_millis(1)),
        }
    }

    /// The live window for time `now`, advancing (and bounding) the
    /// ring as needed. Events landing behind the newest window are
    /// folded into it — the series is monotone by construction.
    fn window_mut<'a>(&self, inner: &'a mut MetricsInner, now: Instant) -> &'a mut WindowAccum {
        let idx = (now.saturating_duration_since(self.origin).as_nanos()
            / self.window.as_nanos().max(1)) as u64;
        let need_new = match inner.windows.back() {
            Some(back) => back.index < idx,
            None => true,
        };
        if need_new {
            inner.windows.push_back(WindowAccum { index: idx, ..WindowAccum::default() });
            if inner.windows.len() > WINDOW_RING {
                inner.windows.pop_front();
            }
        }
        // lint:allow(panic) the ring is seeded with one window at construction and never fully drained
        inner.windows.back_mut().expect("ring has a live window")
    }

    /// Records one flushed epoch of `len` requests against `capacity`.
    pub fn record_epoch(&self, len: usize, capacity: usize) {
        let now = Instant::now();
        let occ = len.min(capacity) as f64 / capacity.max(1) as f64;
        let mut inner = lock_unpoisoned(&self.inner);
        inner.epochs += 1;
        inner.occupancy_sum += occ;
        let bucket =
            ((occ * OCCUPANCY_BUCKETS as f64).ceil() as usize).clamp(1, OCCUPANCY_BUCKETS) - 1;
        inner.occupancy_histogram[bucket] += 1;
        let w = self.window_mut(&mut inner, now);
        w.epochs += 1;
        w.occupancy_sum += occ;
    }

    /// Records the intra-epoch thread plan of one executed epoch:
    /// `used` threads planned for its PBS jobs against the executor's
    /// configured `budget`. Both clamp to at least 1 (an epoch always
    /// occupies at least its worker thread).
    pub fn record_epoch_threads(&self, used: usize, budget: usize) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.executed_epochs += 1;
        inner.threads_used_sum += used.max(1) as u64;
        inner.threads_budget_sum += budget.max(1) as u64;
        inner.max_threads_used = inner.max_threads_used.max(used.max(1));
    }

    /// Records how many of one executed epoch's PBS jobs ran through
    /// each kernel — the observable of the per-request-class kernel
    /// dispatch. Feeds [`RuntimeReport::pbs_jobs_classical`] and
    /// [`RuntimeReport::pbs_jobs_multi_bit`].
    pub fn record_kernel_jobs(&self, classical: usize, multi_bit: usize) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.kernel_jobs[0] += classical;
        inner.kernel_jobs[1] += multi_bit;
    }

    /// Records the ingress queue depth observed at a batcher flush, so
    /// the windowed series carries a queue-depth gauge next to the
    /// throughput counters.
    pub fn record_queue_depth(&self, depth: usize) {
        let now = Instant::now();
        let mut inner = lock_unpoisoned(&self.inner);
        let w = self.window_mut(&mut inner, now);
        w.max_queue_depth = w.max_queue_depth.max(depth);
    }

    /// Records the per-stage timings of one **sampled** (probed) epoch
    /// carrying `pbs_jobs` bootstraps, taken over the production
    /// blocked kernel. Feeds [`RuntimeReport::pbs_stage_breakdown`].
    pub fn record_stage_sample(&self, timings: &StageTimings, pbs_jobs: usize) {
        if pbs_jobs == 0 {
            return;
        }
        let mut inner = lock_unpoisoned(&self.inner);
        inner.sampled_epochs += 1;
        inner.sampled_pbs += pbs_jobs;
        for (slot, &stage) in inner.stage_ns.iter_mut().zip(PbsStage::ALL.iter()) {
            *slot += timings.total_for(stage).as_nanos();
        }
    }

    /// Records one completed request.
    pub fn record_request(&self, record: RequestRecord) {
        // Taken once, before the lock: see [`note_completion`] for the
        // ordering contract this preserves.
        let now = Instant::now();
        let is_pbs = record.class != RequestClass::Keyswitch;
        let mut inner = lock_unpoisoned(&self.inner);
        let us = record.latency.as_micros().min(u64::MAX as u128) as u64;
        inner.latency_seen += 1;
        inner.max_latency_us = inner.max_latency_us.max(us);
        if inner.latencies_us.len() < LATENCY_RESERVOIR {
            inner.latencies_us.push(us);
        } else {
            // Algorithm R: keep each of the `latency_seen` samples in
            // the reservoir with equal probability.
            let seen = inner.latency_seen;
            let j = splitmix64(&mut inner.rng_state) % seen;
            if (j as usize) < LATENCY_RESERVOIR {
                inner.latencies_us[j as usize] = us;
            }
        }
        let class = &mut inner.classes[record.class.index()];
        if record.ok {
            class.completed += 1;
            class.queue_wait_ns += record.queue_wait.as_nanos();
            class.batch_wait_ns += record.batch_wait.as_nanos();
            class.execute_ns += record.execute.as_nanos();
            class.latency_ns += record.latency.as_nanos();
        } else {
            class.failed += 1;
        }
        if record.ok {
            inner.completed += 1;
            if is_pbs {
                inner.pbs_completed += 1;
            }
            if record.fused_linear {
                inner.fused_linear_completed += 1;
            }
        } else {
            inner.failed += 1;
        }
        let first = inner.first_submit.get_or_insert(record.submitted_at);
        if record.submitted_at < *first {
            *first = record.submitted_at;
        }
        note_completion(&mut inner.last_complete, now);
        let w = self.window_mut(&mut inner, now);
        if record.ok {
            w.completed += 1;
            if is_pbs {
                w.pbs_completed += 1;
            }
        } else {
            w.failed += 1;
        }
    }

    /// Produces a snapshot report. `epoch_capacity` is the configured
    /// `TvLP × core_batch` the occupancy is measured against.
    ///
    /// Percentiles are exact up to [`LATENCY_RESERVOIR`] samples and
    /// reservoir estimates beyond; `max_latency_us` is always exact.
    /// The ingress-queue gauges are zero here — the runtime fills them
    /// from the live queue, which owns the high-water mark.
    pub fn report(&self, epoch_capacity: usize) -> RuntimeReport {
        let window_s = self.window.as_secs_f64();
        // Snapshot under the lock, sort outside it: record_request on
        // the workers never waits behind a percentile computation.
        let (mut sorted, snapshot) = {
            let inner = lock_unpoisoned(&self.inner);
            let elapsed_s = match (inner.first_submit, inner.last_complete) {
                (Some(first), Some(last)) if last > first => (last - first).as_secs_f64(),
                _ => 0.0,
            };
            let mean_occ =
                if inner.epochs == 0 { 0.0 } else { inner.occupancy_sum / inner.epochs as f64 };
            let mean_threads = if inner.executed_epochs == 0 {
                0.0
            } else {
                inner.threads_used_sum as f64 / inner.executed_epochs as f64
            };
            let thread_occ = if inner.threads_budget_sum == 0 {
                0.0
            } else {
                inner.threads_used_sum as f64 / inner.threads_budget_sum as f64
            };
            let latency_attribution = RequestClass::ALL
                .iter()
                .map(|&class| {
                    let acc = inner.classes[class.index()];
                    let mean = |ns: u128| {
                        if acc.completed == 0 {
                            0.0
                        } else {
                            ns as f64 / 1e3 / acc.completed as f64
                        }
                    };
                    ClassLatency {
                        class: class.label().to_string(),
                        completed: acc.completed,
                        failed: acc.failed,
                        mean_queue_wait_us: mean(acc.queue_wait_ns),
                        mean_batch_wait_us: mean(acc.batch_wait_ns),
                        mean_execute_us: mean(acc.execute_ns),
                        mean_latency_us: mean(acc.latency_ns),
                    }
                })
                .filter(|c| c.completed + c.failed > 0)
                .collect();
            let pbs_stage_breakdown = if inner.sampled_pbs == 0 {
                None
            } else {
                let us = |stage: PbsStage| {
                    // lint:allow(panic) PbsStage::ALL enumerates every variant by construction
                    let i = PbsStage::ALL.iter().position(|&s| s == stage).expect("stage in ALL");
                    inner.stage_ns[i] as f64 / 1e3 / inner.sampled_pbs as f64
                };
                Some(PbsStageBreakdown {
                    sampled_epochs: inner.sampled_epochs,
                    sampled_pbs: inner.sampled_pbs,
                    modswitch_us: us(PbsStage::ModSwitch),
                    rotate_us: us(PbsStage::Rotate),
                    decompose_us: us(PbsStage::Decompose),
                    forward_fft_us: us(PbsStage::Fft),
                    vma_us: us(PbsStage::VectorMultiply),
                    inverse_fft_us: us(PbsStage::IfftAccumulate),
                    sample_extract_us: us(PbsStage::SampleExtract),
                    keyswitch_us: us(PbsStage::KeySwitch),
                    linear_ops_us: us(PbsStage::LinearOps),
                })
            };
            let windows = inner
                .windows
                .iter()
                .map(|w| MetricsWindow {
                    start_s: w.index as f64 * window_s,
                    duration_s: window_s,
                    completed: w.completed,
                    failed: w.failed,
                    pbs_completed: w.pbs_completed,
                    epochs: w.epochs,
                    pbs_per_s: w.pbs_completed as f64 / window_s,
                    mean_occupancy: if w.epochs == 0 {
                        0.0
                    } else {
                        w.occupancy_sum / w.epochs as f64
                    },
                    max_queue_depth: w.max_queue_depth,
                })
                .collect();
            (
                inner.latencies_us.clone(),
                RuntimeReport {
                    schema_version: REPORT_SCHEMA_VERSION,
                    requests_completed: inner.completed,
                    requests_failed: inner.failed,
                    fused_linear_completed: inner.fused_linear_completed,
                    epochs: inner.epochs,
                    epoch_capacity,
                    p50_latency_us: 0,
                    p90_latency_us: 0,
                    p99_latency_us: 0,
                    max_latency_us: inner.max_latency_us,
                    achieved_pbs_per_s: if elapsed_s > 0.0 {
                        inner.pbs_completed as f64 / elapsed_s
                    } else {
                        0.0
                    },
                    pbs_jobs_classical: inner.kernel_jobs[0],
                    pbs_jobs_multi_bit: inner.kernel_jobs[1],
                    fft_backend: String::new(),
                    mean_batch_occupancy: mean_occ,
                    occupancy_histogram: inner.occupancy_histogram.to_vec(),
                    mean_threads_per_epoch: mean_threads,
                    thread_occupancy: thread_occ,
                    max_threads_per_epoch: inner.max_threads_used,
                    ingress_queue_depth: 0,
                    ingress_queue_high_water: 0,
                    tenants_registered: 0,
                    key_cache_hits: 0,
                    key_cache_misses: 0,
                    key_cache_evictions: 0,
                    key_cache_resident_bytes: 0,
                    key_cache_budget_bytes: 0,
                    latency_attribution,
                    pbs_stage_breakdown,
                    windows,
                    elapsed_s,
                },
            )
        };
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        RuntimeReport {
            p50_latency_us: pct(0.50),
            p90_latency_us: pct(0.90),
            p99_latency_us: pct(0.99),
            ..snapshot
        }
    }
}

/// Mean per-request latency attribution for one request class: where
/// the time of an average completed request of this class went.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// Stable class label ([`RequestClass::label`]).
    pub class: String,
    /// Completed requests of this class.
    pub completed: usize,
    /// Failed requests of this class.
    pub failed: usize,
    /// Mean time queued in the ingress before the batcher pulled the
    /// request (µs).
    pub mean_queue_wait_us: f64,
    /// Mean time waiting in the open batch for the epoch to flush (µs).
    pub mean_batch_wait_us: f64,
    /// Mean time from epoch flush to completion — epoch queueing plus
    /// execution (µs).
    pub mean_execute_us: f64,
    /// Mean end-to-end latency (µs); the three waits above sum to
    /// within scheduling jitter of this.
    pub mean_latency_us: f64,
}

/// Per-stage µs of one average production PBS, from sampled epochs
/// executed through the timing probe over the production blocked
/// kernel (every `profile_every`-th epoch).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PbsStageBreakdown {
    /// How many epochs were sampled.
    pub sampled_epochs: usize,
    /// Total PBS jobs across the sampled epochs (the normalizer).
    pub sampled_pbs: usize,
    /// Modulus switching (per PBS, µs).
    pub modswitch_us: f64,
    /// Negacyclic rotation (per PBS, µs).
    pub rotate_us: f64,
    /// Gadget decomposition (per PBS, µs).
    pub decompose_us: f64,
    /// Forward FFT (per PBS, µs).
    pub forward_fft_us: f64,
    /// Fourier-domain multiply–accumulate (per PBS, µs).
    pub vma_us: f64,
    /// Inverse FFT + accumulation (per PBS, µs).
    pub inverse_fft_us: f64,
    /// Sample extraction (per PBS, µs).
    pub sample_extract_us: f64,
    /// Keyswitching (per PBS, µs).
    pub keyswitch_us: f64,
    /// Linear preambles and other linear ops (per PBS, µs).
    pub linear_ops_us: f64,
}

/// One fixed-length window of the recent time series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsWindow {
    /// Window start, seconds since the sink was created.
    pub start_s: f64,
    /// Window length in seconds.
    pub duration_s: f64,
    /// Requests completed in this window.
    pub completed: usize,
    /// Requests failed in this window.
    pub failed: usize,
    /// PBS-bearing requests completed in this window.
    pub pbs_completed: usize,
    /// Epochs flushed in this window.
    pub epochs: usize,
    /// Achieved PBS/s over the window.
    pub pbs_per_s: f64,
    /// Mean epoch occupancy over the window's flushed epochs.
    pub mean_occupancy: f64,
    /// Highest ingress-queue depth sampled in this window.
    pub max_queue_depth: usize,
}

/// A snapshot of the runtime's achieved performance, shaped to sit next
/// to the simulator's `PbsReport` in the bench tables and to serialize
/// into `BENCH_service.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuntimeReport {
    /// JSON schema version ([`REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Successfully completed requests.
    pub requests_completed: usize,
    /// Failed requests (shape mismatches etc.).
    pub requests_failed: usize,
    /// Completed requests that fused a linear preamble (boolean gates,
    /// Deep-NN neurons) ahead of their bootstrap — the multi-input ops
    /// streamed by the session/dataflow layer.
    pub fused_linear_completed: usize,
    /// Number of flushed epochs.
    pub epochs: usize,
    /// Configured epoch capacity `TvLP × core_batch`.
    pub epoch_capacity: usize,
    /// Median end-to-end latency in microseconds.
    pub p50_latency_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_latency_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_latency_us: u64,
    /// Worst observed latency in microseconds.
    pub max_latency_us: u64,
    /// Achieved programmable bootstraps per second (wall clock, first
    /// submit to last completion).
    pub achieved_pbs_per_s: f64,
    /// PBS jobs executed through the classical kernel, across all
    /// epochs (absent in reports from older schema versions).
    #[serde(default)]
    pub pbs_jobs_classical: usize,
    /// PBS jobs executed through the grouped multi-bit kernel, across
    /// all epochs (absent in reports from older schema versions).
    #[serde(default)]
    pub pbs_jobs_multi_bit: usize,
    /// Resolved SIMD kernel backend label the executor's spectral
    /// transforms ran on (`"portable"` / `"avx2"` / `"avx512"`; never
    /// `"auto"`). Filled by the runtime at report time; empty for
    /// synthetic executors and reports from older schema versions.
    #[serde(default)]
    pub fft_backend: String,
    /// Mean epoch occupancy in `[0, 1]`.
    pub mean_batch_occupancy: f64,
    /// Epoch count per occupancy decile (`(i/10, (i+1)/10]`).
    pub occupancy_histogram: Vec<usize>,
    /// Mean intra-epoch threads per executed epoch, as planned by the
    /// executor for the epoch's PBS jobs (keyswitch-only epochs run on
    /// the worker thread alone and count as 1).
    pub mean_threads_per_epoch: f64,
    /// Mean planned threads over configured thread budget in `[0, 1]`
    /// — below 1.0 means epochs flushed with too few PBS jobs to fill
    /// the pool.
    pub thread_occupancy: f64,
    /// Largest intra-epoch thread count any epoch planned.
    pub max_threads_per_epoch: usize,
    /// Requests currently buffered in the ingress queue (filled by the
    /// runtime at report time; backpressure builds here).
    pub ingress_queue_depth: usize,
    /// Highest ingress-queue depth ever observed (filled by the
    /// runtime at report time).
    pub ingress_queue_high_water: usize,
    /// Tenants registered in the multi-tenant key registry (filled by
    /// the runtime at report time; 0 for single-tenant deployments and
    /// reports from older schema versions).
    #[serde(default)]
    pub tenants_registered: usize,
    /// Key-registry resolves served from an already-resident key.
    #[serde(default)]
    pub key_cache_hits: u64,
    /// Key-registry resolves that had to expand the seeded transport
    /// form into a resident key.
    #[serde(default)]
    pub key_cache_misses: u64,
    /// Resident keys dropped to fit the registry's byte budget.
    #[serde(default)]
    pub key_cache_evictions: u64,
    /// Estimated bytes of resident expanded keys at report time.
    #[serde(default)]
    pub key_cache_resident_bytes: usize,
    /// Configured key-residency budget in bytes (0 when no registry).
    #[serde(default)]
    pub key_cache_budget_bytes: usize,
    /// Mean queue-wait / batch-wait / execute attribution per request
    /// class, for completed requests.
    pub latency_attribution: Vec<ClassLatency>,
    /// Per-stage µs of an average PBS from sampled production epochs;
    /// `None` until the first sampled epoch completes.
    pub pbs_stage_breakdown: Option<PbsStageBreakdown>,
    /// The most recent fixed-length windows of the time series (up to
    /// [`WINDOW_RING`]), oldest first.
    pub windows: Vec<MetricsWindow>,
    /// Wall-clock measurement window in seconds.
    pub elapsed_s: f64,
}

impl RuntimeReport {
    /// A compact human-readable summary block.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "requests: {} ok / {} failed ({} fused-linear) in {:.3} s\n\
             epochs:   {} flushed, capacity {}, mean occupancy {:.1}%\n\
             threads:  {:.1} mean / {} peak per epoch ({:.1}% of budget)\n\
             ingress:  {} queued now, {} high water\n\
             latency:  p50 {:.3} ms | p90 {:.3} ms | p99 {:.3} ms | max {:.3} ms\n\
             rate:     {:.1} PBS/s achieved",
            self.requests_completed,
            self.requests_failed,
            self.fused_linear_completed,
            self.elapsed_s,
            self.epochs,
            self.epoch_capacity,
            self.mean_batch_occupancy * 100.0,
            self.mean_threads_per_epoch,
            self.max_threads_per_epoch,
            self.thread_occupancy * 100.0,
            self.ingress_queue_depth,
            self.ingress_queue_high_water,
            self.p50_latency_us as f64 / 1e3,
            self.p90_latency_us as f64 / 1e3,
            self.p99_latency_us as f64 / 1e3,
            self.max_latency_us as f64 / 1e3,
            self.achieved_pbs_per_s,
        );
        if !self.fft_backend.is_empty() {
            out.push_str(&format!("\nbackend:  {} fft/vma kernels", self.fft_backend));
        }
        if self.pbs_jobs_multi_bit > 0 {
            out.push_str(&format!(
                "\nkernels:  {} classical / {} multi-bit PBS jobs",
                self.pbs_jobs_classical, self.pbs_jobs_multi_bit,
            ));
        }
        if self.tenants_registered > 0 {
            out.push_str(&format!(
                "\ntenants:  {} registered; key cache {} hits / {} misses / {} evictions, \
                 {:.1} of {:.1} MiB resident",
                self.tenants_registered,
                self.key_cache_hits,
                self.key_cache_misses,
                self.key_cache_evictions,
                self.key_cache_resident_bytes as f64 / (1024.0 * 1024.0),
                self.key_cache_budget_bytes as f64 / (1024.0 * 1024.0),
            ));
        }
        for c in &self.latency_attribution {
            out.push_str(&format!(
                "\nclass {:<10} {:>7} ok: queue {:.3} ms | batch {:.3} ms | execute {:.3} ms",
                c.class,
                c.completed,
                c.mean_queue_wait_us / 1e3,
                c.mean_batch_wait_us / 1e3,
                c.mean_execute_us / 1e3,
            ));
        }
        if let Some(b) = &self.pbs_stage_breakdown {
            out.push_str(&format!(
                "\nstages ({} PBS sampled over {} epochs, µs/PBS): \
                 modswitch {:.1} | rotate {:.1} | decompose {:.1} | fft {:.1} | vma {:.1} | \
                 ifft {:.1} | extract {:.1} | keyswitch {:.1}",
                b.sampled_pbs,
                b.sampled_epochs,
                b.modswitch_us,
                b.rotate_us,
                b.decompose_us,
                b.forward_fft_us,
                b.vma_us,
                b.inverse_fft_us,
                b.sample_extract_us,
                b.keyswitch_us,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A success record with the given latency and class, submitted at
    /// `t0`, with a fixed 40/40/20 wait split for attribution tests.
    fn record(t0: Instant, us: u64, class: RequestClass, ok: bool) -> RequestRecord {
        RequestRecord {
            submitted_at: t0,
            latency: Duration::from_micros(us),
            queue_wait: Duration::from_micros(us * 2 / 5),
            batch_wait: Duration::from_micros(us * 2 / 5),
            execute: Duration::from_micros(us / 5),
            class,
            fused_linear: matches!(class, RequestClass::Gate | RequestClass::LinearLut),
            ok,
        }
    }

    #[test]
    fn empty_sink_reports_zeroes() {
        let sink = MetricsSink::default();
        let r = sink.report(256);
        assert_eq!(r.schema_version, REPORT_SCHEMA_VERSION);
        assert_eq!(r.requests_completed, 0);
        assert_eq!(r.p99_latency_us, 0);
        assert_eq!(r.achieved_pbs_per_s, 0.0);
        assert_eq!(r.occupancy_histogram.len(), OCCUPANCY_BUCKETS);
        assert!(r.latency_attribution.is_empty());
        assert!(r.pbs_stage_breakdown.is_none());
        assert!(r.windows.is_empty());
    }

    #[test]
    fn percentiles_from_known_distribution() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        for us in 1..=100u64 {
            sink.record_request(record(t0, us, RequestClass::Lut, true));
        }
        let r = sink.report(4);
        assert_eq!(r.p50_latency_us, 50);
        assert_eq!(r.p90_latency_us, 90);
        assert_eq!(r.p99_latency_us, 99);
        assert_eq!(r.max_latency_us, 100);
        assert_eq!(r.requests_completed, 100);
    }

    #[test]
    fn occupancy_histogram_buckets() {
        let sink = MetricsSink::default();
        sink.record_epoch(4, 4); // 1.00 -> bucket 9
        sink.record_epoch(2, 4); // 0.50 -> bucket 4
        sink.record_epoch(1, 4); // 0.25 -> bucket 2
        let r = sink.report(4);
        assert_eq!(r.epochs, 3);
        assert_eq!(r.occupancy_histogram[9], 1);
        assert_eq!(r.occupancy_histogram[4], 1);
        assert_eq!(r.occupancy_histogram[2], 1);
        assert!((r.mean_batch_occupancy - (1.0 + 0.5 + 0.25) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_storage_is_bounded_but_stats_stay_sane() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        let total = LATENCY_RESERVOIR + 4096;
        for i in 0..total {
            sink.record_request(record(t0, i as u64, RequestClass::Lut, true));
        }
        let r = sink.report(1);
        assert_eq!(r.requests_completed, total);
        // Max is exact even when its sample was evicted.
        assert_eq!(r.max_latency_us, (total - 1) as u64);
        // The reservoir keeps the median near the true middle of the
        // uniform 0..total ramp.
        let expected = total as f64 / 2.0;
        let rel = (r.p50_latency_us as f64 - expected).abs() / expected;
        assert!(rel < 0.1, "reservoir p50 {} vs {expected}", r.p50_latency_us);
    }

    #[test]
    fn thread_occupancy_tracks_used_over_budget() {
        let sink = MetricsSink::default();
        sink.record_epoch_threads(4, 4);
        sink.record_epoch_threads(2, 4);
        sink.record_epoch_threads(1, 4);
        let r = sink.report(8);
        assert!((r.mean_threads_per_epoch - 7.0 / 3.0).abs() < 1e-12);
        assert!((r.thread_occupancy - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(r.max_threads_per_epoch, 4);
        let s = r.summary();
        assert!(s.contains("2.3 mean / 4 peak"), "{s}");
    }

    #[test]
    fn failed_requests_counted_separately() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        sink.record_request(record(t0, 5, RequestClass::Lut, true));
        sink.record_request(record(t0, 5, RequestClass::Gate, false));
        let r = sink.report(1);
        assert_eq!(r.requests_completed, 1);
        assert_eq!(r.requests_failed, 1);
        let gate = r.latency_attribution.iter().find(|c| c.class == "gate").unwrap();
        assert_eq!((gate.completed, gate.failed), (0, 1));
    }

    #[test]
    fn summary_mentions_key_figures() {
        let sink = MetricsSink::default();
        sink.record_epoch(3, 4);
        let s = sink.report(4).summary();
        assert!(s.contains("capacity 4"));
        assert!(s.contains("75.0%"));
    }

    #[test]
    fn out_of_order_completions_never_shrink_the_window() {
        // Two workers sample `now` before the lock; the one that
        // acquires the lock second may carry the *earlier* timestamp.
        // The guard must keep the later one.
        let t0 = Instant::now();
        let later = t0 + Duration::from_millis(10);
        let mut slot = None;
        note_completion(&mut slot, later);
        note_completion(&mut slot, t0); // out-of-order arrival
        assert_eq!(slot, Some(later), "earlier completion must not rewind last_complete");
        note_completion(&mut slot, later + Duration::from_millis(1));
        assert_eq!(slot, Some(later + Duration::from_millis(1)));

        // And end to end: the reported window is non-decreasing across
        // interleaved recordings.
        let sink = MetricsSink::default();
        sink.record_request(record(t0, 10, RequestClass::Lut, true));
        let w1 = sink.report(1).elapsed_s;
        sink.record_request(record(t0, 10, RequestClass::Lut, true));
        let w2 = sink.report(1).elapsed_s;
        assert!(w2 >= w1, "window shrank: {w1} -> {w2}");
    }

    #[test]
    fn per_class_attribution_averages_waits() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        for _ in 0..4 {
            sink.record_request(record(t0, 100, RequestClass::Gate, true));
        }
        sink.record_request(record(t0, 50, RequestClass::Keyswitch, true));
        let r = sink.report(4);
        assert_eq!(r.latency_attribution.len(), 2);
        let gate = r.latency_attribution.iter().find(|c| c.class == "gate").unwrap();
        assert_eq!(gate.completed, 4);
        assert!((gate.mean_queue_wait_us - 40.0).abs() < 1e-9);
        assert!((gate.mean_batch_wait_us - 40.0).abs() < 1e-9);
        assert!((gate.mean_execute_us - 20.0).abs() < 1e-9);
        assert!((gate.mean_latency_us - 100.0).abs() < 1e-9);
        // Keyswitch-only requests do not count toward PBS throughput.
        assert_eq!(r.requests_completed, 5);
        let s = r.summary();
        assert!(s.contains("class gate"), "{s}");
    }

    #[test]
    fn stage_samples_normalize_to_us_per_pbs() {
        let sink = MetricsSink::default();
        let mut t = StageTimings::new();
        t.add(PbsStage::Fft, Duration::from_micros(600));
        t.add(PbsStage::KeySwitch, Duration::from_micros(200));
        sink.record_stage_sample(&t, 4);
        sink.record_stage_sample(&t, 4);
        let r = sink.report(4);
        let b = r.pbs_stage_breakdown.clone().expect("sampled");
        assert_eq!(b.sampled_epochs, 2);
        assert_eq!(b.sampled_pbs, 8);
        assert!((b.forward_fft_us - 150.0).abs() < 1e-9);
        assert!((b.keyswitch_us - 50.0).abs() < 1e-9);
        assert_eq!(b.rotate_us, 0.0);
        assert!(r.summary().contains("stages (8 PBS sampled"), "{}", r.summary());
        // Zero-job samples are ignored entirely.
        sink.record_stage_sample(&t, 0);
        assert_eq!(sink.report(4).pbs_stage_breakdown.unwrap().sampled_epochs, 2);
    }

    #[test]
    fn windows_bucket_events_by_time_and_stay_bounded() {
        // 1 ms windows so the test can cross window boundaries quickly.
        let sink = MetricsSink::with_window(Duration::from_millis(1));
        let t0 = Instant::now();
        sink.record_request(record(t0, 10, RequestClass::Lut, true));
        sink.record_epoch(2, 4);
        sink.record_queue_depth(7);
        std::thread::sleep(Duration::from_millis(3));
        sink.record_request(record(t0, 10, RequestClass::Lut, true));
        sink.record_queue_depth(3);
        let r = sink.report(4);
        assert!(r.windows.len() >= 2, "expected ≥2 windows, got {}", r.windows.len());
        let first = &r.windows[0];
        assert_eq!(first.completed, 1);
        assert_eq!(first.epochs, 1);
        assert_eq!(first.max_queue_depth, 7);
        assert!((first.mean_occupancy - 0.5).abs() < 1e-12);
        let last = r.windows.last().unwrap();
        assert_eq!(last.completed, 1);
        assert_eq!(last.max_queue_depth, 3);
        assert!(last.start_s > first.start_s);
        // Ring stays bounded over a long stream of distinct windows.
        for w in &r.windows {
            assert!((w.duration_s - 1e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn window_ring_is_bounded() {
        let sink = MetricsSink::with_window(Duration::from_millis(1));
        let t0 = Instant::now();
        // Spread events over more than WINDOW_RING windows by forcing
        // the index forward via sleeps in coarse steps. Sleeping 65+
        // real ms is acceptable for a unit test.
        for _ in 0..(WINDOW_RING + 4) {
            sink.record_request(record(t0, 1, RequestClass::Lut, true));
            std::thread::sleep(Duration::from_micros(1100));
        }
        let r = sink.report(1);
        assert!(r.windows.len() <= WINDOW_RING);
        assert_eq!(r.requests_completed, WINDOW_RING + 4, "totals unaffected by eviction");
    }

    #[test]
    fn report_round_trips_through_serde_json() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        sink.record_epoch(3, 4);
        sink.record_request(record(t0, 100, RequestClass::Gate, true));
        let mut t = StageTimings::new();
        t.add(PbsStage::Fft, Duration::from_micros(10));
        sink.record_stage_sample(&t, 1);
        let mut report = sink.report(4);
        report.ingress_queue_depth = 3;
        report.ingress_queue_high_water = 9;
        let json = serde_json::to_string(&report).unwrap();
        let parsed: RuntimeReport = serde_json::from_str(&json).expect("report parses back");
        assert_eq!(parsed.schema_version, REPORT_SCHEMA_VERSION);
        assert_eq!(parsed.requests_completed, report.requests_completed);
        assert_eq!(parsed.ingress_queue_high_water, 9);
        assert_eq!(parsed.latency_attribution, report.latency_attribution);
        assert_eq!(parsed.pbs_stage_breakdown, report.pbs_stage_breakdown);
        assert_eq!(parsed.windows, report.windows);
        // Fixed point: a second serialization is byte-identical.
        assert_eq!(serde_json::to_string(&parsed).unwrap(), json);
    }
}
