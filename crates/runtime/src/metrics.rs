//! Runtime metrics: per-request latency percentiles, achieved PBS/s,
//! and the batch-occupancy histogram — the software counterpart of the
//! simulator's [`strix_core::PbsReport`].

use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::Serialize;

/// Number of buckets in the occupancy histogram (bucket `i` covers
/// `(i/10, (i+1)/10]` of the epoch capacity, with 0 occupancy in
/// bucket 0).
pub const OCCUPANCY_BUCKETS: usize = 10;

/// Reservoir size for latency percentiles. The sink is designed for an
/// indefinitely running server, so per-request state must stay
/// bounded: up to this many samples the percentiles are exact, beyond
/// it they come from a uniform reservoir (algorithm R).
pub const LATENCY_RESERVOIR: usize = 1 << 16;

#[derive(Debug, Default)]
struct MetricsInner {
    /// Uniform reservoir of latency samples (bounded).
    latencies_us: Vec<u64>,
    /// Total latency samples offered to the reservoir.
    latency_seen: u64,
    max_latency_us: u64,
    /// xorshift state for reservoir replacement.
    rng_state: u64,
    epochs: usize,
    occupancy_sum: f64,
    occupancy_histogram: [usize; OCCUPANCY_BUCKETS],
    /// Epochs whose execution-thread usage was recorded (workers
    /// record these; the batcher records the occupancy above).
    executed_epochs: usize,
    threads_used_sum: u64,
    threads_budget_sum: u64,
    max_threads_used: usize,
    pbs_completed: usize,
    fused_linear_completed: usize,
    completed: usize,
    failed: usize,
    first_submit: Option<Instant>,
    last_complete: Option<Instant>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Shared sink the batcher and workers record into.
#[derive(Debug, Default)]
pub struct MetricsSink {
    inner: Mutex<MetricsInner>,
}

impl MetricsSink {
    /// Records one flushed epoch of `len` requests against `capacity`.
    pub fn record_epoch(&self, len: usize, capacity: usize) {
        let occ = len.min(capacity) as f64 / capacity.max(1) as f64;
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.epochs += 1;
        inner.occupancy_sum += occ;
        let bucket =
            ((occ * OCCUPANCY_BUCKETS as f64).ceil() as usize).clamp(1, OCCUPANCY_BUCKETS) - 1;
        inner.occupancy_histogram[bucket] += 1;
    }

    /// Records the intra-epoch thread plan of one executed epoch:
    /// `used` threads planned for its PBS jobs against the executor's
    /// configured `budget`. Both clamp to at least 1 (an epoch always
    /// occupies at least its worker thread).
    pub fn record_epoch_threads(&self, used: usize, budget: usize) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.executed_epochs += 1;
        inner.threads_used_sum += used.max(1) as u64;
        inner.threads_budget_sum += budget.max(1) as u64;
        inner.max_threads_used = inner.max_threads_used.max(used.max(1));
    }

    /// Records one completed request. `fused_linear` marks requests
    /// that carried a linear preamble (gate or weighted-sum ops) fused
    /// ahead of their bootstrap.
    pub fn record_request(
        &self,
        submitted_at: Instant,
        latency: Duration,
        is_pbs: bool,
        fused_linear: bool,
        ok: bool,
    ) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        inner.latency_seen += 1;
        inner.max_latency_us = inner.max_latency_us.max(us);
        if inner.latencies_us.len() < LATENCY_RESERVOIR {
            inner.latencies_us.push(us);
        } else {
            // Algorithm R: keep each of the `latency_seen` samples in
            // the reservoir with equal probability.
            let seen = inner.latency_seen;
            let j = splitmix64(&mut inner.rng_state) % seen;
            if (j as usize) < LATENCY_RESERVOIR {
                inner.latencies_us[j as usize] = us;
            }
        }
        if ok {
            inner.completed += 1;
            if is_pbs {
                inner.pbs_completed += 1;
            }
            if fused_linear {
                inner.fused_linear_completed += 1;
            }
        } else {
            inner.failed += 1;
        }
        let first = inner.first_submit.get_or_insert(submitted_at);
        if submitted_at < *first {
            *first = submitted_at;
        }
        let now = Instant::now();
        match &mut inner.last_complete {
            Some(last) if *last >= now => {}
            slot => *slot = Some(now),
        }
    }

    /// Produces a snapshot report. `epoch_capacity` is the configured
    /// `TvLP × core_batch` the occupancy is measured against.
    ///
    /// Percentiles are exact up to [`LATENCY_RESERVOIR`] samples and
    /// reservoir estimates beyond; `max_latency_us` is always exact.
    pub fn report(&self, epoch_capacity: usize) -> RuntimeReport {
        // Snapshot under the lock, sort outside it: record_request on
        // the workers never waits behind a percentile computation.
        let (mut sorted, snapshot) = {
            let inner = self.inner.lock().expect("metrics lock");
            let elapsed_s = match (inner.first_submit, inner.last_complete) {
                (Some(first), Some(last)) if last > first => (last - first).as_secs_f64(),
                _ => 0.0,
            };
            let mean_occ =
                if inner.epochs == 0 { 0.0 } else { inner.occupancy_sum / inner.epochs as f64 };
            let mean_threads = if inner.executed_epochs == 0 {
                0.0
            } else {
                inner.threads_used_sum as f64 / inner.executed_epochs as f64
            };
            let thread_occ = if inner.threads_budget_sum == 0 {
                0.0
            } else {
                inner.threads_used_sum as f64 / inner.threads_budget_sum as f64
            };
            (
                inner.latencies_us.clone(),
                RuntimeReport {
                    requests_completed: inner.completed,
                    requests_failed: inner.failed,
                    fused_linear_completed: inner.fused_linear_completed,
                    epochs: inner.epochs,
                    epoch_capacity,
                    p50_latency_us: 0,
                    p90_latency_us: 0,
                    p99_latency_us: 0,
                    max_latency_us: inner.max_latency_us,
                    achieved_pbs_per_s: if elapsed_s > 0.0 {
                        inner.pbs_completed as f64 / elapsed_s
                    } else {
                        0.0
                    },
                    mean_batch_occupancy: mean_occ,
                    occupancy_histogram: inner.occupancy_histogram.to_vec(),
                    mean_threads_per_epoch: mean_threads,
                    thread_occupancy: thread_occ,
                    max_threads_per_epoch: inner.max_threads_used,
                    elapsed_s,
                },
            )
        };
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        RuntimeReport {
            p50_latency_us: pct(0.50),
            p90_latency_us: pct(0.90),
            p99_latency_us: pct(0.99),
            ..snapshot
        }
    }
}

/// A snapshot of the runtime's achieved performance, shaped to sit next
/// to the simulator's `PbsReport` in the bench tables.
#[derive(Clone, Debug, Serialize)]
pub struct RuntimeReport {
    /// Successfully completed requests.
    pub requests_completed: usize,
    /// Failed requests (shape mismatches etc.).
    pub requests_failed: usize,
    /// Completed requests that fused a linear preamble (boolean gates,
    /// Deep-NN neurons) ahead of their bootstrap — the multi-input ops
    /// streamed by the session/dataflow layer.
    pub fused_linear_completed: usize,
    /// Number of flushed epochs.
    pub epochs: usize,
    /// Configured epoch capacity `TvLP × core_batch`.
    pub epoch_capacity: usize,
    /// Median end-to-end latency in microseconds.
    pub p50_latency_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_latency_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_latency_us: u64,
    /// Worst observed latency in microseconds.
    pub max_latency_us: u64,
    /// Achieved programmable bootstraps per second (wall clock, first
    /// submit to last completion).
    pub achieved_pbs_per_s: f64,
    /// Mean epoch occupancy in `[0, 1]`.
    pub mean_batch_occupancy: f64,
    /// Epoch count per occupancy decile (`(i/10, (i+1)/10]`).
    pub occupancy_histogram: Vec<usize>,
    /// Mean intra-epoch threads per executed epoch, as planned by the
    /// executor for the epoch's PBS jobs (keyswitch-only epochs run on
    /// the worker thread alone and count as 1).
    pub mean_threads_per_epoch: f64,
    /// Mean planned threads over configured thread budget in `[0, 1]`
    /// — below 1.0 means epochs flushed with too few PBS jobs to fill
    /// the pool.
    pub thread_occupancy: f64,
    /// Largest intra-epoch thread count any epoch planned.
    pub max_threads_per_epoch: usize,
    /// Wall-clock measurement window in seconds.
    pub elapsed_s: f64,
}

impl RuntimeReport {
    /// A compact human-readable summary block.
    pub fn summary(&self) -> String {
        format!(
            "requests: {} ok / {} failed ({} fused-linear) in {:.3} s\n\
             epochs:   {} flushed, capacity {}, mean occupancy {:.1}%\n\
             threads:  {:.1} mean / {} peak per epoch ({:.1}% of budget)\n\
             latency:  p50 {:.3} ms | p90 {:.3} ms | p99 {:.3} ms | max {:.3} ms\n\
             rate:     {:.1} PBS/s achieved",
            self.requests_completed,
            self.requests_failed,
            self.fused_linear_completed,
            self.elapsed_s,
            self.epochs,
            self.epoch_capacity,
            self.mean_batch_occupancy * 100.0,
            self.mean_threads_per_epoch,
            self.max_threads_per_epoch,
            self.thread_occupancy * 100.0,
            self.p50_latency_us as f64 / 1e3,
            self.p90_latency_us as f64 / 1e3,
            self.p99_latency_us as f64 / 1e3,
            self.max_latency_us as f64 / 1e3,
            self.achieved_pbs_per_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sink_reports_zeroes() {
        let sink = MetricsSink::default();
        let r = sink.report(256);
        assert_eq!(r.requests_completed, 0);
        assert_eq!(r.p99_latency_us, 0);
        assert_eq!(r.achieved_pbs_per_s, 0.0);
        assert_eq!(r.occupancy_histogram.len(), OCCUPANCY_BUCKETS);
    }

    #[test]
    fn percentiles_from_known_distribution() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        for us in 1..=100u64 {
            sink.record_request(t0, Duration::from_micros(us), true, false, true);
        }
        let r = sink.report(4);
        assert_eq!(r.p50_latency_us, 50);
        assert_eq!(r.p90_latency_us, 90);
        assert_eq!(r.p99_latency_us, 99);
        assert_eq!(r.max_latency_us, 100);
        assert_eq!(r.requests_completed, 100);
    }

    #[test]
    fn occupancy_histogram_buckets() {
        let sink = MetricsSink::default();
        sink.record_epoch(4, 4); // 1.00 -> bucket 9
        sink.record_epoch(2, 4); // 0.50 -> bucket 4
        sink.record_epoch(1, 4); // 0.25 -> bucket 2
        let r = sink.report(4);
        assert_eq!(r.epochs, 3);
        assert_eq!(r.occupancy_histogram[9], 1);
        assert_eq!(r.occupancy_histogram[4], 1);
        assert_eq!(r.occupancy_histogram[2], 1);
        assert!((r.mean_batch_occupancy - (1.0 + 0.5 + 0.25) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn latency_storage_is_bounded_but_stats_stay_sane() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        let total = LATENCY_RESERVOIR + 4096;
        for i in 0..total {
            sink.record_request(t0, Duration::from_micros(i as u64), true, false, true);
        }
        let r = sink.report(1);
        assert_eq!(r.requests_completed, total);
        // Max is exact even when its sample was evicted.
        assert_eq!(r.max_latency_us, (total - 1) as u64);
        // The reservoir keeps the median near the true middle of the
        // uniform 0..total ramp.
        let expected = total as f64 / 2.0;
        let rel = (r.p50_latency_us as f64 - expected).abs() / expected;
        assert!(rel < 0.1, "reservoir p50 {} vs {expected}", r.p50_latency_us);
    }

    #[test]
    fn thread_occupancy_tracks_used_over_budget() {
        let sink = MetricsSink::default();
        sink.record_epoch_threads(4, 4);
        sink.record_epoch_threads(2, 4);
        sink.record_epoch_threads(1, 4);
        let r = sink.report(8);
        assert!((r.mean_threads_per_epoch - 7.0 / 3.0).abs() < 1e-12);
        assert!((r.thread_occupancy - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(r.max_threads_per_epoch, 4);
        let s = r.summary();
        assert!(s.contains("2.3 mean / 4 peak"), "{s}");
    }

    #[test]
    fn failed_requests_counted_separately() {
        let sink = MetricsSink::default();
        let t0 = Instant::now();
        sink.record_request(t0, Duration::from_micros(5), true, false, true);
        sink.record_request(t0, Duration::from_micros(5), true, true, false);
        let r = sink.report(1);
        assert_eq!(r.requests_completed, 1);
        assert_eq!(r.requests_failed, 1);
    }

    #[test]
    fn summary_mentions_key_figures() {
        let sink = MetricsSink::default();
        sink.record_epoch(3, 4);
        let s = sink.report(4).summary();
        assert!(s.contains("capacity 4"));
        assert!(s.contains("75.0%"));
    }
}
