//! The runtime orchestrator: ingress, batcher, worker pool, client
//! handles and drain-on-shutdown.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use strix_core::BatchGeometry;
use strix_tfhe::lwe::LweCiphertext;

use crate::analyzer::AdmissionPolicy;
use crate::batcher;
use crate::error::RuntimeError;
use crate::executor::{BatchExecutor, KernelPolicy};
use crate::metrics::{MetricsSink, RuntimeReport};
use crate::policy::FlushPolicy;
use crate::queue::BoundedQueue;
use crate::registry::KeyRegistry;
use crate::request::{ClientId, Request, RequestOp, Response, TenantId};
use crate::trace::{TraceConfig, TraceStage, Tracer};
use crate::worker::{self, ClientRegistry};

/// Configuration of a [`Runtime`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// The two-level batch shape (epoch = `tvlp × core_batch`).
    pub geometry: BatchGeometry,
    /// Deadline for the oldest request in an open batch.
    pub max_delay: Duration,
    /// Worker threads executing epochs.
    pub workers: usize,
    /// Intra-epoch threads each worker's executor may use: an epoch's
    /// PBS jobs are sharded across up to this many scoped threads
    /// (bit-identical to sequential execution). Honoured by
    /// [`Runtime::start_tfhe`]; custom executors receive it via
    /// [`TfheExecutor::with_threads`](crate::executor::TfheExecutor::with_threads)-style
    /// constructors.
    pub threads_per_worker: usize,
    /// Ingress queue depth, in requests (backpressure bound).
    pub ingress_depth: usize,
    /// Request tracing configuration (ring capacity, sampling).
    pub trace: TraceConfig,
    /// Execute every Nth epoch through the probed (instrumented)
    /// production kernel to populate the report's per-stage PBS
    /// breakdown; 0 disables sampling. A sampled epoch runs
    /// single-threaded, so with `threads_per_worker > 1` this trades a
    /// sliver of throughput for attribution.
    pub profile_every: u64,
    /// Per-request-class PBS kernel selection for [`Runtime::start_tfhe`].
    /// `None` (the default) follows the server key's parameter set:
    /// multi-bit parameters route everything through the grouped
    /// kernel, classical parameters through the classical one. Classes
    /// routed to a kernel whose key material is absent fall back to
    /// the classical kernel.
    pub kernel_policy: Option<KernelPolicy>,
}

impl RuntimeConfig {
    /// A config mirroring an accelerator batch geometry, with a 10 ms
    /// deadline, two single-threaded workers and an ingress of four
    /// epochs.
    pub fn new(geometry: BatchGeometry) -> Self {
        Self {
            geometry,
            max_delay: Duration::from_millis(10),
            workers: 2,
            threads_per_worker: 1,
            ingress_depth: geometry.epoch_size() * 4,
            trace: TraceConfig::default(),
            profile_every: 16,
            kernel_policy: None,
        }
    }

    /// Overrides the flush deadline.
    pub fn with_max_delay(self, max_delay: Duration) -> Self {
        Self { max_delay, ..self }
    }

    /// Overrides the worker count.
    pub fn with_workers(self, workers: usize) -> Self {
        Self { workers: workers.max(1), ..self }
    }

    /// Overrides the intra-epoch thread budget per worker.
    pub fn with_threads_per_worker(self, threads_per_worker: usize) -> Self {
        Self { threads_per_worker: threads_per_worker.max(1), ..self }
    }

    /// Overrides the tracing configuration.
    pub fn with_trace(self, trace: TraceConfig) -> Self {
        Self { trace, ..self }
    }

    /// Overrides the stage-profiling sampling period (0 disables).
    pub fn with_profile_every(self, profile_every: u64) -> Self {
        Self { profile_every, ..self }
    }

    /// Overrides the per-request-class PBS kernel policy used by
    /// [`Runtime::start_tfhe`].
    pub fn with_kernel_policy(self, kernel_policy: KernelPolicy) -> Self {
        Self { kernel_policy: Some(kernel_policy), ..self }
    }
}

/// The streaming runtime: accepts tagged requests from many concurrent
/// clients, forms `TvLP × core_batch` epochs with a deadline/size
/// hybrid policy, and executes them on a worker pool.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use strix_core::BatchGeometry;
/// use strix_runtime::{Runtime, RuntimeConfig, RequestOp, TfheExecutor};
/// use strix_tfhe::bootstrap::Lut;
/// use strix_tfhe::prelude::*;
///
/// let params = TfheParameters::testing_fast();
/// let (mut client_key, server_key) = generate_keys(&params, 7);
/// let runtime = Runtime::start(
///     RuntimeConfig::new(BatchGeometry::explicit(2, 4)),
///     TfheExecutor::new(Arc::new(server_key)),
/// );
///
/// let lut = Arc::new(Lut::from_function(params.polynomial_size, 2, |m| (m + 1) % 4).unwrap());
/// let mut handle = runtime.client();
/// let ct = client_key.encrypt_shortint(1, 2).unwrap().as_lwe().clone();
/// handle.submit(ct, RequestOp::Lut(lut)).unwrap();
/// let response = handle.recv().unwrap();
/// let phase = client_key.decrypt_phase(&response.result.unwrap()).unwrap();
/// assert_eq!(strix_tfhe::torus::decode_message(phase, 3), 2);
/// let report = runtime.shutdown();
/// assert_eq!(report.requests_completed, 1);
/// ```
pub struct Runtime {
    ingress: Arc<BoundedQueue<Request>>,
    registry: Arc<ClientRegistry>,
    metrics: Arc<MetricsSink>,
    tracer: Arc<Tracer>,
    /// The executor's noise-budget admission policy, captured once at
    /// start-up and shared by every client handle; `None` for
    /// executors that enforce none.
    admission: Option<Arc<AdmissionPolicy>>,
    /// The executor's resolved SIMD kernel backend label, captured once
    /// at start-up; empty for synthetic executors.
    fft_backend: String,
    /// The multi-tenant key registry, when this runtime was started
    /// through [`Self::start_multi_tenant`]: its cache counters are
    /// folded into every report.
    key_registry: Option<Arc<KeyRegistry>>,
    epoch_capacity: usize,
    next_client: AtomicU64,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Starts the batcher and worker threads.
    pub fn start(config: RuntimeConfig, executor: impl BatchExecutor) -> Self {
        Self::start_dyn(config, Arc::new(executor))
    }

    /// Starts a runtime over the TFHE back-end, honouring the config's
    /// `threads_per_worker` and `kernel_policy`: shorthand for
    /// [`Self::start`] with
    /// [`TfheExecutor::with_threads`](crate::executor::TfheExecutor::with_threads)
    /// (or
    /// [`TfheExecutor::with_policy`](crate::executor::TfheExecutor::with_policy)
    /// when a kernel policy is set).
    pub fn start_tfhe(config: RuntimeConfig, server: Arc<strix_tfhe::ServerKey>) -> Self {
        let executor = match config.kernel_policy {
            Some(policy) => crate::executor::TfheExecutor::with_policy(
                server,
                config.threads_per_worker,
                policy,
            ),
            None => crate::executor::TfheExecutor::with_threads(server, config.threads_per_worker),
        };
        Self::start(config, executor)
    }

    /// Starts a multi-tenant runtime over a shared [`KeyRegistry`],
    /// honouring the config's `threads_per_worker` and `kernel_policy`
    /// exactly like [`Self::start_tfhe`]. The batcher partitions its
    /// open window by tenant — epochs never mix key domains — and each
    /// worker resolves the epoch tenant's server key from the registry
    /// (expanding the seeded transport form on first use, under the
    /// registry's LRU residency budget) and pins it for the epoch's
    /// whole PBS+KS run. Open per-tenant streams with
    /// [`Self::client_for`]; the registry's cache counters appear in
    /// every [`RuntimeReport`].
    pub fn start_multi_tenant(config: RuntimeConfig, registry: Arc<KeyRegistry>) -> Self {
        let executor = match config.kernel_policy {
            Some(policy) => crate::executor::MultiTenantExecutor::with_policy(
                Arc::clone(&registry),
                config.threads_per_worker,
                policy,
            ),
            None => crate::executor::MultiTenantExecutor::with_threads(
                Arc::clone(&registry),
                config.threads_per_worker,
            ),
        };
        let mut runtime = Self::start(config, executor);
        runtime.key_registry = Some(registry);
        runtime
    }

    /// As [`Self::start`], for an already-shared executor.
    pub fn start_dyn(config: RuntimeConfig, executor: Arc<dyn BatchExecutor>) -> Self {
        let policy = FlushPolicy::from_geometry(config.geometry, config.max_delay);
        let ingress = Arc::new(BoundedQueue::new(config.ingress_depth.max(1)));
        // Enough in-flight epochs to keep every worker busy plus one
        // being formed.
        let epochs = Arc::new(BoundedQueue::new(config.workers.max(1) + 1));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        let tracer = Arc::new(Tracer::new(config.trace));
        let admission = executor.admission().map(Arc::new);
        let fft_backend = executor.fft_backend().unwrap_or_default();

        let batcher = {
            let (i, e, m, t) = (
                Arc::clone(&ingress),
                Arc::clone(&epochs),
                Arc::clone(&metrics),
                Arc::clone(&tracer),
            );
            std::thread::Builder::new()
                .name("strix-batcher".into())
                .spawn(move || batcher::run(i, e, policy, m, t))
                // lint:allow(panic) thread spawn fails only on resource exhaustion at startup
                .expect("spawn batcher")
        };
        let profile_every = config.profile_every;
        let workers = (0..config.workers.max(1))
            .map(|idx| {
                let (e, x, r, m, t) = (
                    Arc::clone(&epochs),
                    Arc::clone(&executor),
                    Arc::clone(&registry),
                    Arc::clone(&metrics),
                    Arc::clone(&tracer),
                );
                std::thread::Builder::new()
                    .name(format!("strix-worker-{idx}"))
                    .spawn(move || worker::run(e, x, r, m, t, profile_every))
                    // lint:allow(panic) thread spawn fails only on resource exhaustion at startup
                    .expect("spawn worker")
            })
            .collect();

        Self {
            ingress,
            registry,
            metrics,
            tracer,
            admission,
            fft_backend,
            key_registry: None,
            epoch_capacity: policy.max_epoch,
            next_client: AtomicU64::new(0),
            batcher: Some(batcher),
            workers,
        }
    }

    /// Opens a new client stream under the default (single-tenant) key
    /// domain. Handles are independent and may move to their own
    /// threads.
    pub fn client(&self) -> ClientHandle {
        self.client_for(TenantId::default())
    }

    /// Opens a new client stream whose every request routes to
    /// `tenant`'s key domain. On a multi-tenant runtime the tenant must
    /// have key material registered before its first epoch executes;
    /// unregistered tenants fail their requests, they never stall the
    /// pipeline.
    pub fn client_for(&self, tenant: TenantId) -> ClientHandle {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = mpsc::channel();
        self.registry.register(id, tx);
        ClientHandle {
            id,
            tenant,
            ingress: Arc::clone(&self.ingress),
            registry: Arc::clone(&self.registry),
            tracer: Arc::clone(&self.tracer),
            admission: self.admission.clone(),
            rx,
            next_submit: 0,
            next_recv: 0,
            reorder: BTreeMap::new(),
        }
    }

    /// The runtime's tracer — export [`Tracer::chrome_trace_json`]
    /// after (or during) a run to open the request timeline in
    /// Perfetto / `chrome://tracing`.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A live snapshot of the metrics without shutting down.
    pub fn report(&self) -> RuntimeReport {
        let mut report = self.metrics.report(self.epoch_capacity);
        report.ingress_queue_depth = self.ingress.len();
        report.ingress_queue_high_water = self.ingress.high_water();
        report.fft_backend = self.fft_backend.clone();
        self.fill_key_cache_stats(&mut report);
        report
    }

    /// Folds the key registry's cache counters into a report (a no-op
    /// on single-tenant runtimes, whose reports keep the zero
    /// defaults).
    fn fill_key_cache_stats(&self, report: &mut RuntimeReport) {
        if let Some(registry) = &self.key_registry {
            let stats = registry.stats();
            report.tenants_registered = stats.tenants_registered;
            report.key_cache_hits = stats.hits;
            report.key_cache_misses = stats.misses;
            report.key_cache_evictions = stats.evictions;
            report.key_cache_resident_bytes = stats.resident_bytes;
            report.key_cache_budget_bytes = stats.budget_bytes;
        }
    }

    /// Drains and stops the runtime: the ingress closes (further
    /// `submit`s fail), every already-accepted request still executes,
    /// and all threads are joined. Returns the final report.
    pub fn shutdown(mut self) -> RuntimeReport {
        // The high-water mark must be read before the drain empties the
        // queue; the final depth is, by construction, zero.
        let high_water = self.ingress.high_water();
        self.drain_and_join();
        let mut report = self.metrics.report(self.epoch_capacity);
        report.ingress_queue_high_water = high_water.max(self.ingress.high_water());
        report.fft_backend = self.fft_backend.clone();
        self.fill_key_cache_stats(&mut report);
        report
    }

    fn drain_and_join(&mut self) {
        self.ingress.close();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Every response is now delivered; dropping the senders lets
        // client handles see disconnection after draining their
        // buffers instead of blocking forever.
        self.registry.clear();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // A dropped runtime still drains: close and join.
        self.drain_and_join();
    }
}

/// One client's submit/receive endpoint.
///
/// `recv` returns responses **in submission order** regardless of how
/// epochs interleave across workers: a small reorder buffer holds any
/// response that completes ahead of its predecessors.
pub struct ClientHandle {
    id: ClientId,
    /// The key domain every request submitted through this handle
    /// routes to.
    tenant: TenantId,
    ingress: Arc<BoundedQueue<Request>>,
    registry: Arc<ClientRegistry>,
    tracer: Arc<Tracer>,
    admission: Option<Arc<AdmissionPolicy>>,
    rx: Receiver<Response>,
    next_submit: u64,
    next_recv: u64,
    reorder: BTreeMap<u64, Response>,
}

impl ClientHandle {
    /// This stream's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The key domain this handle submits into.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The runtime's noise-budget admission policy, when its executor
    /// enforces one. [`ProgramSession`](crate::session::ProgramSession)
    /// checks every program against it before submitting anything.
    pub fn admission(&self) -> Option<&AdmissionPolicy> {
        self.admission.as_deref()
    }

    /// Submits a request, blocking if the ingress queue is full
    /// (backpressure). Returns the request's sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Shutdown`] after the runtime shut down.
    pub fn submit(&mut self, ct: LweCiphertext, op: RequestOp) -> Result<u64, RuntimeError> {
        let seq = self.next_submit;
        let span = self.tracer.next_span();
        let request = Request::new(self.id, seq, span, ct, op).with_tenant(self.tenant);
        // The Submitted→Enqueued gap is the time `push` blocked on
        // backpressure — visible per request in the exported trace.
        self.tracer.record_at(
            span,
            self.id,
            seq,
            None,
            TraceStage::Submitted,
            request.submitted_at,
        );
        self.ingress.push(request).map_err(|_| RuntimeError::Shutdown)?;
        self.tracer.record(span, self.id, seq, None, TraceStage::Enqueued);
        self.next_submit += 1;
        Ok(seq)
    }

    /// Receives the next response in submission order, blocking until
    /// it is available.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Shutdown`] when the runtime stopped
    /// before producing it.
    pub fn recv(&mut self) -> Result<Response, RuntimeError> {
        loop {
            if let Some(response) = self.reorder.remove(&self.next_recv) {
                self.next_recv += 1;
                return Ok(response);
            }
            match self.rx.recv() {
                Ok(response) => self.buffer(response),
                Err(_) => return Err(RuntimeError::Shutdown),
            }
        }
    }

    /// As [`Self::recv`] with a time limit.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Lost`] on timeout, [`RuntimeError::Shutdown`]
    /// when the runtime stopped.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Response, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(response) = self.reorder.remove(&self.next_recv) {
                self.next_recv += 1;
                return Ok(response);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Lost);
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(response) => self.buffer(response),
                Err(RecvTimeoutError::Timeout) => return Err(RuntimeError::Lost),
                Err(RecvTimeoutError::Disconnected) => return Err(RuntimeError::Shutdown),
            }
        }
    }

    /// Non-blocking receive of the next in-order response, if ready.
    pub fn try_recv(&mut self) -> Option<Response> {
        loop {
            if let Some(response) = self.reorder.remove(&self.next_recv) {
                self.next_recv += 1;
                return Some(response);
            }
            match self.rx.try_recv() {
                Ok(response) => self.buffer(response),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => return None,
            }
        }
    }

    /// Number of submitted requests not yet returned by `recv`.
    /// Responses sitting in the reorder buffer still count as
    /// outstanding — they have not reached the caller.
    pub fn outstanding(&self) -> u64 {
        self.next_submit - self.next_recv
    }

    fn buffer(&mut self, response: Response) {
        // A stale response (already returned to the caller) is dropped
        // explicitly rather than debug-asserted: in release it must not
        // silently shadow a live entry in the reorder buffer.
        if response.seq < self.next_recv {
            return;
        }
        let evicted = self.reorder.insert(response.seq, response);
        // Two in-flight responses for one sequence number can't happen:
        // each submit allocates a fresh seq and workers answer each
        // request exactly once.
        debug_assert!(evicted.is_none(), "duplicate in-flight response");
    }
}

impl Drop for ClientHandle {
    fn drop(&mut self) {
        self.registry.deregister(self.id);
    }
}
