//! The multi-tenant key registry: per-tenant server keys behind an LRU
//! residency cache.
//!
//! A multi-tenant service holds one key domain per tenant, but resident
//! Fourier-domain key material is the expensive part — a `ServerKey`'s
//! bootstrapping keys dominate memory the way the bootstrapping-key
//! *stream* dominates accelerator bandwidth. [`KeyRegistry`] therefore
//! separates the two forms a tenant's key can take:
//!
//! * the **transport form** — a [`SeededServerKey`] (CRS seed plus the
//!   body halves), roughly half the bytes of the expanded key, kept for
//!   every registered tenant, and
//! * the **resident form** — the expanded [`ServerKey`] with its
//!   Fourier bootstrapping keys, materialised lazily on first
//!   [`resolve`](KeyRegistry::resolve) and accounted against a
//!   configurable byte budget using the parameter set's
//!   [`server_key_bytes`](strix_tfhe::TfheParameters::server_key_bytes)
//!   estimator.
//!
//! When materialising a key would exceed the budget, the least
//! recently *resolved* seeded tenant is evicted (its resident key is
//! dropped; the transport form stays, so a later resolve re-expands it
//! deterministically — seeded expansion is bit-reproducible). Tenants
//! registered with an already-expanded key are pinned: they count
//! against the budget but are never evicted, because dropping them
//! would lose the only copy.
//!
//! Residency is tracked per *resolve*, which is per epoch: the worker
//! resolves the epoch's tenant once and pins the `Arc<ServerKey>` for
//! the epoch's whole PBS+KS run, so an eviction can never pull a key
//! out from under in-flight work — the Arc keeps it alive until the
//! epoch completes.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use strix_tfhe::{SeededServerKey, ServerKey, TfheParameters};

use crate::request::TenantId;
use crate::sync::lock_unpoisoned;

/// A snapshot of the registry's cache counters, surfaced in
/// [`RuntimeReport`](crate::metrics::RuntimeReport).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KeyRegistryStats {
    /// Tenants with registered key material (any form).
    pub tenants_registered: usize,
    /// Resolves served from an already-resident key.
    pub hits: u64,
    /// Resolves that had to expand the seeded transport form.
    pub misses: u64,
    /// Resident keys dropped to fit the byte budget.
    pub evictions: u64,
    /// Estimated bytes of currently resident expanded keys.
    pub resident_bytes: usize,
    /// Configured residency budget in bytes.
    pub budget_bytes: usize,
}

enum KeySource {
    /// Compact transport form; the resident key can be re-expanded at
    /// any time, so it is evictable.
    Seeded(Box<SeededServerKey>),
    /// Registered pre-expanded: the resident `Arc` is the only copy,
    /// so the slot is pinned (never evicted).
    Pinned,
}

struct Slot {
    source: KeySource,
    resident: Option<Arc<ServerKey>>,
    /// Logical timestamp of the last resolve (LRU order).
    last_use: u64,
}

#[derive(Default)]
struct Inner {
    slots: HashMap<TenantId, Slot>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    resident_bytes: usize,
}

/// Per-tenant server keys behind an LRU residency cache with a byte
/// budget. Shared by every worker through an `Arc`; all methods take
/// `&self`.
pub struct KeyRegistry {
    params: TfheParameters,
    budget_bytes: usize,
    /// Estimated resident footprint of one expanded key.
    key_bytes: usize,
    inner: Mutex<Inner>,
}

impl KeyRegistry {
    /// An empty registry for one parameter set (every tenant of a
    /// deployment shares the geometry; only the key material differs)
    /// with a residency budget in bytes. A budget smaller than one key
    /// still admits one resident key at a time — the cache never
    /// refuses the key an epoch needs.
    pub fn new(params: TfheParameters, budget_bytes: usize) -> Self {
        let key_bytes = params.server_key_bytes();
        Self { params, budget_bytes, key_bytes, inner: Mutex::new(Inner::default()) }
    }

    /// A registry whose budget holds `resident_keys` expanded keys.
    pub fn with_resident_keys(params: TfheParameters, resident_keys: usize) -> Self {
        let budget = params.server_key_bytes().saturating_mul(resident_keys.max(1));
        Self::new(params, budget)
    }

    /// The shared parameter set.
    pub fn params(&self) -> &TfheParameters {
        &self.params
    }

    /// Estimated resident bytes of one expanded key (the eviction
    /// accounting unit).
    pub fn key_bytes_per_tenant(&self) -> usize {
        self.key_bytes
    }

    /// Registers a tenant by its compact transport form. The key stays
    /// seeded until the first [`resolve`](Self::resolve) materialises
    /// it. Re-registering a tenant replaces its key material and drops
    /// any resident expansion.
    ///
    /// # Panics
    ///
    /// Panics if the seeded key was generated for a different
    /// parameter set than the registry's.
    pub fn register_seeded(&self, tenant: TenantId, key: SeededServerKey) {
        assert_eq!(
            key.params(),
            &self.params,
            "seeded key parameter set differs from the registry's"
        );
        let mut inner = lock_unpoisoned(&self.inner);
        let slot = Slot { source: KeySource::Seeded(Box::new(key)), resident: None, last_use: 0 };
        if let Some(old) = inner.slots.insert(tenant, slot) {
            if old.resident.is_some() {
                inner.resident_bytes = inner.resident_bytes.saturating_sub(self.key_bytes);
            }
        }
    }

    /// Registers a tenant with an already-expanded key. The key is
    /// immediately resident, counts against the budget, and is never
    /// evicted (the registry holds the only copy).
    ///
    /// # Panics
    ///
    /// Panics if the key's parameter set differs from the registry's.
    pub fn register_server_key(&self, tenant: TenantId, key: Arc<ServerKey>) {
        assert_eq!(
            key.params(),
            &self.params,
            "server key parameter set differs from the registry's"
        );
        let mut inner = lock_unpoisoned(&self.inner);
        let slot = Slot { source: KeySource::Pinned, resident: Some(key), last_use: 0 };
        if inner.slots.insert(tenant, slot).is_none_or(|old| old.resident.is_none()) {
            inner.resident_bytes = inner.resident_bytes.saturating_add(self.key_bytes);
        }
    }

    /// Resolves a tenant's resident server key, materialising the
    /// seeded form on a miss and evicting least-recently-used seeded
    /// residents to fit the budget. The returned `Arc` stays valid for
    /// as long as the caller holds it, eviction or not — workers pin
    /// it for an epoch's whole PBS+KS run.
    ///
    /// Returns `None` for a tenant with no registered key.
    ///
    /// Expansion runs under the registry lock: one materialisation at
    /// a time, so concurrent resolves can never overshoot the budget
    /// by racing their expansions.
    pub fn resolve(&self, tenant: TenantId) -> Option<Arc<ServerKey>> {
        let mut inner = lock_unpoisoned(&self.inner);
        let inner = &mut *inner;
        inner.clock += 1;
        let clock = inner.clock;
        let slot = inner.slots.get_mut(&tenant)?;
        slot.last_use = clock;
        if let Some(key) = &slot.resident {
            inner.hits += 1;
            return Some(Arc::clone(key));
        }
        let KeySource::Seeded(seeded) = &slot.source else {
            // A pinned slot is resident by construction; an empty one
            // cannot be rebuilt.
            return None;
        };
        inner.misses += 1;
        let key = Arc::new(seeded.expand());
        slot.resident = Some(Arc::clone(&key));
        inner.resident_bytes = inner.resident_bytes.saturating_add(self.key_bytes);
        // Evict LRU seeded residents until the budget holds, never the
        // key just resolved (the epoch about to run needs it).
        while inner.resident_bytes > self.budget_bytes {
            let victim = inner
                .slots
                .iter()
                .filter(|(id, slot)| {
                    **id != tenant
                        && slot.resident.is_some()
                        && matches!(slot.source, KeySource::Seeded(_))
                })
                .min_by_key(|(_, slot)| slot.last_use)
                .map(|(id, _)| *id);
            let Some(victim) = victim else {
                break; // only pinned keys (or the resolved one) remain
            };
            // lint:allow(panic) the victim id was just found in the map
            let slot = inner.slots.get_mut(&victim).expect("victim slot exists");
            slot.resident = None;
            inner.resident_bytes = inner.resident_bytes.saturating_sub(self.key_bytes);
            inner.evictions += 1;
        }
        Some(key)
    }

    /// Current cache counters.
    pub fn stats(&self) -> KeyRegistryStats {
        let inner = lock_unpoisoned(&self.inner);
        KeyRegistryStats {
            tenants_registered: inner.slots.len(),
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident_bytes: inner.resident_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strix_tfhe::prelude::*;

    fn params() -> TfheParameters {
        TfheParameters::testing_fast()
    }

    fn seeded(seed: u64) -> SeededServerKey {
        let mut client = ClientKey::generate(&params(), seed);
        client.seeded_server_key(seed ^ 0xCE5)
    }

    #[test]
    fn resolve_materialises_once_and_hits_after() {
        let registry = KeyRegistry::with_resident_keys(params(), 2);
        registry.register_seeded(TenantId(1), seeded(11));
        assert!(registry.resolve(TenantId(9)).is_none(), "unknown tenant");
        let a = registry.resolve(TenantId(1)).expect("registered");
        let b = registry.resolve(TenantId(1)).expect("resident");
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same resident key");
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.tenants_registered, 1);
        assert_eq!(stats.resident_bytes, registry.key_bytes_per_tenant());
    }

    #[test]
    fn lru_eviction_respects_budget_and_revives_deterministically() {
        let registry = KeyRegistry::with_resident_keys(params(), 1);
        registry.register_seeded(TenantId(1), seeded(21));
        registry.register_seeded(TenantId(2), seeded(22));
        let first = registry.resolve(TenantId(1)).unwrap();
        let _second = registry.resolve(TenantId(2)).unwrap();
        let stats = registry.stats();
        assert_eq!(stats.evictions, 1, "budget of one key evicts the LRU resident");
        assert_eq!(stats.resident_bytes, registry.key_bytes_per_tenant());
        // The evicted tenant re-expands to a bit-identical key (the
        // held Arc from before the eviction stays valid throughout).
        let revived = registry.resolve(TenantId(1)).unwrap();
        assert!(!Arc::ptr_eq(&first, &revived), "re-expansion allocates fresh material");
        assert_eq!(first.key_bytes(), revived.key_bytes(), "same geometry either way");
        assert_eq!(registry.stats().misses, 3);
    }

    #[test]
    fn pinned_keys_count_but_never_evict() {
        let p = params();
        let registry = KeyRegistry::with_resident_keys(p.clone(), 1);
        let (_, server) = generate_keys(&p, 31);
        registry.register_server_key(TenantId(1), Arc::new(server));
        registry.register_seeded(TenantId(2), seeded(32));
        let pinned = registry.resolve(TenantId(1)).unwrap();
        let _other = registry.resolve(TenantId(2)).unwrap();
        // The seeded tenant's expansion pushed the cache over budget,
        // but the pinned key must survive; the overshoot is tolerated
        // because the epoch being served needs its key resident.
        let again = registry.resolve(TenantId(1)).unwrap();
        assert!(Arc::ptr_eq(&pinned, &again), "pinned key stays resident");
        assert_eq!(registry.stats().evictions, 0);
        assert_eq!(registry.stats().resident_bytes, 2 * registry.key_bytes_per_tenant());
    }
}
