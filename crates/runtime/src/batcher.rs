//! The two-level batcher: turns the live ingress stream into epochs.
//!
//! One batcher thread owns the open batch. It pulls requests in
//! arrival order (which preserves each client's submission order) and
//! flushes an [`Epoch`] to the worker queue when either side of the
//! [`FlushPolicy`] trips:
//!
//! * **batch-full** — `TvLP × core_batch` requests are waiting, the
//!   fragmentation-free case the paper optimises for, or
//! * **deadline** — the oldest open request has waited `max_delay`
//!   *since it was submitted* (`Request::submitted_at`), bounding tail
//!   latency under light load. Time spent queued in the ingress counts
//!   against the deadline: a request that aged in a backed-up ingress
//!   flushes immediately once the batcher pops it, instead of waiting
//!   another full `max_delay` measured from batch-open.
//!
//! On ingress close the batcher flushes the remainder (possibly
//! undersized — losing requests is worse than fragmenting one final
//! epoch) and closes the epoch queue, which lets the workers drain and
//! exit.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::MetricsSink;
use crate::policy::FlushPolicy;
use crate::queue::{BoundedQueue, PopError};
use crate::request::{Epoch, Request};
use crate::trace::{TraceStage, Tracer};

pub(crate) fn run(
    ingress: Arc<BoundedQueue<Request>>,
    epochs: Arc<BoundedQueue<Epoch>>,
    policy: FlushPolicy,
    metrics: Arc<MetricsSink>,
    tracer: Arc<Tracer>,
) {
    let mut open: Vec<Request> = Vec::with_capacity(policy.max_epoch);
    let mut next_epoch = 0u64;

    // Entry into the open batch stamps `batched_at` (closing the
    // ingress queue-wait interval) on the request itself, so latency
    // attribution works even with tracing disabled or sampled out.
    let admit = |open: &mut Vec<Request>, mut request: Request| {
        let now = Instant::now();
        request.batched_at = Some(now);
        tracer.record_at(
            request.span,
            request.client,
            request.seq,
            None,
            TraceStage::BatchOpened,
            now,
        );
        open.push(request);
    };

    let flush = |open: &mut Vec<Request>, next_epoch: &mut u64| {
        if open.is_empty() {
            return;
        }
        metrics.record_epoch(open.len(), policy.max_epoch);
        metrics.record_queue_depth(ingress.len());
        let now = Instant::now();
        let id = *next_epoch;
        for request in open.iter_mut() {
            request.flushed_at = Some(now);
            tracer.record_at(
                request.span,
                request.client,
                request.seq,
                Some(id),
                TraceStage::EpochFlushed,
                now,
            );
        }
        let epoch = Epoch { id, requests: std::mem::take(open) };
        *next_epoch += 1;
        // The epoch queue only closes after this thread exits, so a
        // failed push can't lose requests; still, be explicit.
        if epochs.push(epoch).is_err() {
            // lint:allow(panic) the runtime closes the epoch queue only after joining this thread
            unreachable!("epoch queue closed while batcher alive");
        }
    };

    // A deadline flush first tops the batch up with whatever already
    // waits in the ingress — pops are instant, so an aged backlog must
    // fill epochs instead of collapsing into undersized flushes (one
    // aged request per epoch would be the worst fragmentation case the
    // policy exists to avoid).
    let top_up = |open: &mut Vec<Request>| {
        while !policy.is_full(open.len()) {
            match ingress.pop_timeout(Duration::ZERO) {
                Ok(request) => admit(open, request),
                Err(_) => break,
            }
        }
    };

    loop {
        // A batch is open: wait only until its deadline, measured from
        // the oldest request's *submission* so ingress queueing time
        // counts against the `max_delay` bound. Pop order follows push
        // order, not submission order (a submitter can block on a full
        // ingress while a younger request lands first), so take the
        // true minimum. With nothing pending, wait indefinitely.
        let popped = match open.iter().map(|r| r.submitted_at).min() {
            None => ingress.pop(),
            Some(oldest) => {
                let deadline = oldest + policy.max_delay;
                let now = Instant::now();
                if now >= deadline {
                    top_up(&mut open);
                    flush(&mut open, &mut next_epoch);
                    continue;
                }
                ingress.pop_timeout(deadline - now)
            }
        };

        match popped {
            Ok(request) => {
                admit(&mut open, request);
                if policy.is_full(open.len()) {
                    flush(&mut open, &mut next_epoch);
                }
            }
            Err(PopError::TimedOut) => {
                top_up(&mut open);
                flush(&mut open, &mut next_epoch);
            }
            Err(PopError::Closed) => {
                flush(&mut open, &mut next_epoch);
                break;
            }
        }
    }
    epochs.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use strix_tfhe::lwe::LweCiphertext;

    use crate::request::{ClientId, RequestOp};
    use crate::trace::SpanId;

    fn request(seq: u64) -> Request {
        Request::new(
            ClientId(0),
            seq,
            SpanId(seq),
            LweCiphertext::trivial(4, 0),
            RequestOp::Keyswitch,
        )
    }

    fn harness(
        policy: FlushPolicy,
    ) -> (Arc<BoundedQueue<Request>>, Arc<BoundedQueue<Epoch>>, std::thread::JoinHandle<()>) {
        let ingress = Arc::new(BoundedQueue::new(1024));
        let epochs = Arc::new(BoundedQueue::new(1024));
        let metrics = Arc::new(MetricsSink::default());
        let tracer = Arc::new(Tracer::default());
        let handle = {
            let (i, e) = (Arc::clone(&ingress), Arc::clone(&epochs));
            std::thread::spawn(move || run(i, e, policy, metrics, tracer))
        };
        (ingress, epochs, handle)
    }

    #[test]
    fn flushes_on_batch_full() {
        let policy = FlushPolicy { max_epoch: 4, max_delay: Duration::from_secs(10) };
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..8 {
            ingress.push(request(seq)).unwrap();
        }
        let first = epochs.pop().unwrap();
        let second = epochs.pop().unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(first.requests.len(), 4);
        assert_eq!(second.requests.len(), 4);
        // Arrival order is preserved across the flush boundary.
        let seqs: Vec<u64> = first.requests.iter().chain(&second.requests).map(|r| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn flushes_on_deadline_when_undersized() {
        let policy = FlushPolicy { max_epoch: 64, max_delay: Duration::from_millis(20) };
        let (ingress, epochs, handle) = harness(policy);
        ingress.push(request(0)).unwrap();
        let t0 = Instant::now();
        let epoch = epochs.pop().unwrap();
        assert!(t0.elapsed() < Duration::from_secs(2), "deadline flush too slow");
        assert_eq!(epoch.requests.len(), 1);
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn deadline_counts_from_submission_not_batch_open() {
        // Regression test for the `open_since` bug: a request that
        // already aged past `max_delay` while queued in the ingress
        // must flush immediately. The old logic restarted the clock
        // when the batcher popped it, so with the 500 ms deadline it
        // would only flush after the full extra 500 ms. (The back-date
        // is kept to 2 s so a freshly booted machine's monotonic clock
        // can still represent it.)
        let policy = FlushPolicy { max_epoch: 64, max_delay: Duration::from_millis(500) };
        let (ingress, epochs, handle) = harness(policy);
        let mut aged = request(0);
        aged.submitted_at = Instant::now()
            .checked_sub(Duration::from_secs(2))
            .expect("system uptime exceeds two seconds");
        ingress.push(aged).unwrap();
        let t0 = Instant::now();
        let epoch = epochs.pop().unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "pre-aged request waited {:?}; deadline logic is measuring from batch-open",
            t0.elapsed()
        );
        assert_eq!(epoch.requests.len(), 1);

        // A *fresh* request still waits out its own deadline rather
        // than flushing eagerly (no regression in the other direction):
        // nothing flushes in the first instants after the push.
        ingress.push(request(1)).unwrap();
        assert!(matches!(epochs.pop_timeout(Duration::from_millis(50)), Err(PopError::TimedOut)));
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn aged_backlog_fills_epochs_instead_of_singleton_flushes() {
        // When a backlog has aged past the deadline, every expired
        // flush must first top up from the queued requests: 8 aged
        // requests with max_epoch 4 form 2 full epochs, not 8
        // singletons.
        let policy = FlushPolicy { max_epoch: 4, max_delay: Duration::from_millis(100) };
        // Enqueue the whole backlog *before* the batcher starts so the
        // test is deterministic (no race with the batcher's pops).
        let ingress = Arc::new(BoundedQueue::new(1024));
        let epochs = Arc::new(BoundedQueue::new(1024));
        let aged_at = Instant::now()
            .checked_sub(Duration::from_secs(2))
            .expect("system uptime exceeds two seconds");
        for seq in 0..8 {
            let mut r = request(seq);
            r.submitted_at = aged_at;
            ingress.push(r).unwrap();
        }
        let handle = {
            let (i, e) = (Arc::clone(&ingress), Arc::clone(&epochs));
            let metrics = Arc::new(MetricsSink::default());
            let tracer = Arc::new(Tracer::default());
            std::thread::spawn(move || run(i, e, policy, metrics, tracer))
        };
        let first = epochs.pop().unwrap();
        let second = epochs.pop().unwrap();
        assert_eq!(first.requests.len(), 4, "aged backlog must fill the epoch");
        assert_eq!(second.requests.len(), 4);
        let seqs: Vec<u64> = first.requests.iter().chain(&second.requests).map(|r| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn flush_stamps_batch_and_flush_times() {
        let policy = FlushPolicy { max_epoch: 2, max_delay: Duration::from_secs(10) };
        let (ingress, epochs, handle) = harness(policy);
        ingress.push(request(0)).unwrap();
        ingress.push(request(1)).unwrap();
        let epoch = epochs.pop().unwrap();
        for r in &epoch.requests {
            let batched = r.batched_at.expect("batcher stamps batched_at");
            let flushed = r.flushed_at.expect("batcher stamps flushed_at");
            assert!(r.submitted_at <= batched && batched <= flushed);
        }
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn close_flushes_remainder_and_closes_epochs() {
        let policy = FlushPolicy { max_epoch: 64, max_delay: Duration::from_secs(10) };
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..5 {
            ingress.push(request(seq)).unwrap();
        }
        ingress.close();
        handle.join().unwrap();
        let epoch = epochs.pop().unwrap();
        assert_eq!(epoch.requests.len(), 5);
        assert!(matches!(epochs.pop(), Err(PopError::Closed)));
    }
}
