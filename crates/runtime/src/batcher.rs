//! The two-level batcher: turns the live ingress stream into epochs.
//!
//! One batcher thread owns the open batches — one per tenant, because
//! an [`Epoch`] only ever executes under a single tenant's key (the
//! key-major batching level above `TvLP × core_batch`). It pulls
//! requests in arrival order (which preserves each client's submission
//! order), partitions them by [`TenantId`], and flushes an epoch to
//! the worker queue when either side of the [`FlushPolicy`] trips for
//! some tenant:
//!
//! * **batch-full** — `TvLP × core_batch` requests of one tenant are
//!   waiting, the fragmentation-free case the paper optimises for, or
//! * **deadline** — a tenant's oldest open request has waited
//!   `max_delay` *since it was submitted* (`Request::submitted_at`),
//!   bounding tail latency under light load. Time spent queued in the
//!   ingress counts against the deadline: a request that aged in a
//!   backed-up ingress flushes immediately once the batcher pops it,
//!   instead of waiting another full `max_delay` measured from
//!   batch-open.
//!
//! Flush arbitration across tenants is **deficit round robin**: a
//! rotation visits every tenant with pending work, credits it
//! [`FlushPolicy::quantum`] requests, and lets it emit full epochs
//! only while it has credit — so a hog tenant with an endless backlog
//! cannot monopolise the epoch stream while others hold full batches.
//! Deadline flushes bypass the quota entirely (the latency bound is a
//! guarantee, not a share), and a single-tenant stream with the
//! default quantum (one full epoch per visit) behaves exactly like
//! the un-partitioned batcher.
//!
//! On ingress close the batcher flushes every remainder (possibly
//! undersized — losing requests is worse than fragmenting one final
//! epoch) and closes the epoch queue, which lets the workers drain and
//! exit.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::MetricsSink;
use crate::policy::FlushPolicy;
use crate::queue::{BoundedQueue, PopError};
use crate::request::{Epoch, Request, TenantId};
use crate::trace::{TraceStage, Tracer};

/// One tenant's open batch plus its DRR bookkeeping. Slots live in the
/// rotation ring in first-seen order and persist once created (tenant
/// counts are small and bounded by the deployment).
struct TenantBatch {
    tenant: TenantId,
    requests: Vec<Request>,
    /// Unspent DRR credit, in requests.
    deficit: usize,
}

struct Batcher {
    ingress: Arc<BoundedQueue<Request>>,
    epochs: Arc<BoundedQueue<Epoch>>,
    policy: FlushPolicy,
    metrics: Arc<MetricsSink>,
    tracer: Arc<Tracer>,
    /// Per-tenant open batches, in rotation order.
    ring: Vec<TenantBatch>,
    /// Rotation start for the next flush scan.
    cursor: usize,
    next_epoch: u64,
}

impl Batcher {
    /// Entry into a tenant's open batch stamps `batched_at` (closing
    /// the ingress queue-wait interval) on the request itself, so
    /// latency attribution works even with tracing disabled or sampled
    /// out.
    fn admit(&mut self, mut request: Request) {
        let now = Instant::now();
        request.batched_at = Some(now);
        self.tracer.record_at(
            request.span,
            request.client,
            request.seq,
            None,
            TraceStage::BatchOpened,
            now,
        );
        let tenant = request.tenant;
        match self.ring.iter_mut().find(|slot| slot.tenant == tenant) {
            Some(slot) => slot.requests.push(request),
            None => self.ring.push(TenantBatch { tenant, requests: vec![request], deficit: 0 }),
        }
    }

    /// The earliest submission across every open batch — the next
    /// deadline the main loop must wake for. Pop order follows push
    /// order, not submission order (a submitter can block on a full
    /// ingress while a younger request lands first), so take the true
    /// minimum.
    fn oldest_submission(&self) -> Option<Instant> {
        self.ring.iter().flat_map(|s| s.requests.iter().map(|r| r.submitted_at)).min()
    }

    fn any_full(&self) -> bool {
        self.ring.iter().any(|s| self.policy.is_full(s.requests.len()))
    }

    /// Emits one epoch of up to `chunk` requests from the front of
    /// slot `idx`'s batch.
    fn emit(&mut self, idx: usize, chunk: usize) {
        let slot = &mut self.ring[idx];
        let take = chunk.min(slot.requests.len());
        if take == 0 {
            return;
        }
        let tenant = slot.tenant;
        let mut requests: Vec<Request> = slot.requests.drain(..take).collect();
        self.metrics.record_epoch(requests.len(), self.policy.max_epoch);
        self.metrics.record_queue_depth(self.ingress.len());
        let now = Instant::now();
        let id = self.next_epoch;
        for request in requests.iter_mut() {
            request.flushed_at = Some(now);
            self.tracer.record_at(
                request.span,
                request.client,
                request.seq,
                Some(id),
                TraceStage::EpochFlushed,
                now,
            );
        }
        self.next_epoch += 1;
        // The epoch queue only closes after this thread exits, so a
        // failed push can't lose requests; still, be explicit.
        if self.epochs.push(Epoch { id, tenant, requests }).is_err() {
            // lint:allow(panic) the runtime closes the epoch queue only after joining this thread
            unreachable!("epoch queue closed while batcher alive");
        }
    }

    /// One DRR rotation over the tenant ring, starting at the cursor.
    /// Every visited tenant with pending work earns `quantum` credit;
    /// full batches spend credit to emit epochs, overdue batches
    /// (`now` past their oldest request's deadline) and drain
    /// rotations (`drain`, on ingress close) emit unconditionally,
    /// chunked at `max_epoch`. A tenant whose batch empties forfeits
    /// leftover credit — classic DRR, so idle tenants cannot hoard.
    fn rotation_flush(&mut self, now: Option<Instant>, drain: bool) {
        let n = self.ring.len();
        if n == 0 {
            return;
        }
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            if self.ring[idx].requests.is_empty() {
                continue;
            }
            let quantum = self.policy.quantum;
            self.ring[idx].deficit = self.ring[idx].deficit.saturating_add(quantum);
            loop {
                let slot = &self.ring[idx];
                let len = slot.requests.len();
                if len == 0 {
                    break;
                }
                let overdue = drain
                    || now.is_some_and(|now| {
                        slot.requests
                            .iter()
                            .map(|r| r.submitted_at)
                            .min()
                            .is_some_and(|oldest| now >= oldest + self.policy.max_delay)
                    });
                let chunk = len.min(self.policy.max_epoch);
                let emits = overdue || (self.policy.is_full(len) && slot.deficit >= chunk);
                if !emits {
                    break;
                }
                self.emit(idx, chunk);
                let slot = &mut self.ring[idx];
                slot.deficit = slot.deficit.saturating_sub(chunk);
            }
            if self.ring[idx].requests.is_empty() {
                self.ring[idx].deficit = 0;
            }
        }
        self.cursor = (self.cursor + 1) % n;
    }

    /// A deadline flush first tops the batches up with whatever
    /// already waits in the ingress — pops are instant, so an aged
    /// backlog must fill epochs instead of collapsing into undersized
    /// flushes (one aged request per epoch would be the worst
    /// fragmentation case the policy exists to avoid). Stops as soon
    /// as some tenant's batch fills: the rotation that follows emits
    /// it, and the main loop tops up again on the next pass.
    fn top_up(&mut self) {
        while !self.any_full() {
            match self.ingress.pop_timeout(Duration::ZERO) {
                Ok(request) => self.admit(request),
                Err(_) => break,
            }
        }
    }
}

pub(crate) fn run(
    ingress: Arc<BoundedQueue<Request>>,
    epochs: Arc<BoundedQueue<Epoch>>,
    policy: FlushPolicy,
    metrics: Arc<MetricsSink>,
    tracer: Arc<Tracer>,
) {
    let epochs_queue = Arc::clone(&epochs);
    let mut batcher = Batcher {
        ingress,
        epochs,
        policy,
        metrics,
        tracer,
        ring: Vec::new(),
        cursor: 0,
        next_epoch: 0,
    };

    loop {
        // Batches are open: wait only until the earliest deadline,
        // measured from the oldest request's *submission* so ingress
        // queueing time counts against the `max_delay` bound. With
        // nothing pending, wait indefinitely.
        let popped = match batcher.oldest_submission() {
            None => batcher.ingress.pop(),
            Some(oldest) => {
                let deadline = oldest + policy.max_delay;
                let now = Instant::now();
                if now >= deadline {
                    batcher.top_up();
                    batcher.rotation_flush(Some(Instant::now()), false);
                    continue;
                }
                batcher.ingress.pop_timeout(deadline - now)
            }
        };

        match popped {
            Ok(request) => {
                batcher.admit(request);
                if batcher.any_full() {
                    batcher.rotation_flush(None, false);
                }
            }
            Err(PopError::TimedOut) => {
                batcher.top_up();
                batcher.rotation_flush(Some(Instant::now()), false);
            }
            Err(PopError::Closed) => {
                batcher.rotation_flush(None, true);
                break;
            }
        }
    }
    epochs_queue.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use strix_tfhe::lwe::LweCiphertext;

    use crate::request::{ClientId, RequestOp};
    use crate::trace::SpanId;

    fn request(seq: u64) -> Request {
        Request::new(
            ClientId(0),
            seq,
            SpanId(seq),
            LweCiphertext::trivial(4, 0),
            RequestOp::Keyswitch,
        )
    }

    fn harness(
        policy: FlushPolicy,
    ) -> (Arc<BoundedQueue<Request>>, Arc<BoundedQueue<Epoch>>, std::thread::JoinHandle<()>) {
        let ingress = Arc::new(BoundedQueue::new(1024));
        let epochs = Arc::new(BoundedQueue::new(1024));
        let metrics = Arc::new(MetricsSink::default());
        let tracer = Arc::new(Tracer::default());
        let handle = {
            let (i, e) = (Arc::clone(&ingress), Arc::clone(&epochs));
            std::thread::spawn(move || run(i, e, policy, metrics, tracer))
        };
        (ingress, epochs, handle)
    }

    #[test]
    fn flushes_on_batch_full() {
        let policy = FlushPolicy::new(4, Duration::from_secs(10));
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..8 {
            ingress.push(request(seq)).unwrap();
        }
        let first = epochs.pop().unwrap();
        let second = epochs.pop().unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(first.requests.len(), 4);
        assert_eq!(second.requests.len(), 4);
        // Arrival order is preserved across the flush boundary.
        let seqs: Vec<u64> = first.requests.iter().chain(&second.requests).map(|r| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn flushes_on_deadline_when_undersized() {
        let policy = FlushPolicy::new(64, Duration::from_millis(20));
        let (ingress, epochs, handle) = harness(policy);
        ingress.push(request(0)).unwrap();
        let t0 = Instant::now();
        let epoch = epochs.pop().unwrap();
        assert!(t0.elapsed() < Duration::from_secs(2), "deadline flush too slow");
        assert_eq!(epoch.requests.len(), 1);
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn deadline_counts_from_submission_not_batch_open() {
        // Regression test for the `open_since` bug: a request that
        // already aged past `max_delay` while queued in the ingress
        // must flush immediately. The old logic restarted the clock
        // when the batcher popped it, so with the 500 ms deadline it
        // would only flush after the full extra 500 ms. (The back-date
        // is kept to 2 s so a freshly booted machine's monotonic clock
        // can still represent it.)
        let policy = FlushPolicy::new(64, Duration::from_millis(500));
        let (ingress, epochs, handle) = harness(policy);
        let mut aged = request(0);
        aged.submitted_at = Instant::now()
            .checked_sub(Duration::from_secs(2))
            .expect("system uptime exceeds two seconds");
        ingress.push(aged).unwrap();
        let t0 = Instant::now();
        let epoch = epochs.pop().unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "pre-aged request waited {:?}; deadline logic is measuring from batch-open",
            t0.elapsed()
        );
        assert_eq!(epoch.requests.len(), 1);

        // A *fresh* request still waits out its own deadline rather
        // than flushing eagerly (no regression in the other direction):
        // nothing flushes in the first instants after the push.
        ingress.push(request(1)).unwrap();
        assert!(matches!(epochs.pop_timeout(Duration::from_millis(50)), Err(PopError::TimedOut)));
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn aged_backlog_fills_epochs_instead_of_singleton_flushes() {
        // When a backlog has aged past the deadline, every expired
        // flush must first top up from the queued requests: 8 aged
        // requests with max_epoch 4 form 2 full epochs, not 8
        // singletons.
        let policy = FlushPolicy::new(4, Duration::from_millis(100));
        // Enqueue the whole backlog *before* the batcher starts so the
        // test is deterministic (no race with the batcher's pops).
        let ingress = Arc::new(BoundedQueue::new(1024));
        let epochs = Arc::new(BoundedQueue::new(1024));
        let aged_at = Instant::now()
            .checked_sub(Duration::from_secs(2))
            .expect("system uptime exceeds two seconds");
        for seq in 0..8 {
            let mut r = request(seq);
            r.submitted_at = aged_at;
            ingress.push(r).unwrap();
        }
        let handle = {
            let (i, e) = (Arc::clone(&ingress), Arc::clone(&epochs));
            let metrics = Arc::new(MetricsSink::default());
            let tracer = Arc::new(Tracer::default());
            std::thread::spawn(move || run(i, e, policy, metrics, tracer))
        };
        let first = epochs.pop().unwrap();
        let second = epochs.pop().unwrap();
        assert_eq!(first.requests.len(), 4, "aged backlog must fill the epoch");
        assert_eq!(second.requests.len(), 4);
        let seqs: Vec<u64> = first.requests.iter().chain(&second.requests).map(|r| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn flush_stamps_batch_and_flush_times() {
        let policy = FlushPolicy::new(2, Duration::from_secs(10));
        let (ingress, epochs, handle) = harness(policy);
        ingress.push(request(0)).unwrap();
        ingress.push(request(1)).unwrap();
        let epoch = epochs.pop().unwrap();
        for r in &epoch.requests {
            let batched = r.batched_at.expect("batcher stamps batched_at");
            let flushed = r.flushed_at.expect("batcher stamps flushed_at");
            assert!(r.submitted_at <= batched && batched <= flushed);
        }
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn close_flushes_remainder_and_closes_epochs() {
        let policy = FlushPolicy::new(64, Duration::from_secs(10));
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..5 {
            ingress.push(request(seq)).unwrap();
        }
        ingress.close();
        handle.join().unwrap();
        let epoch = epochs.pop().unwrap();
        assert_eq!(epoch.requests.len(), 5);
        assert!(matches!(epochs.pop(), Err(PopError::Closed)));
    }

    #[test]
    fn tenants_never_share_an_epoch() {
        // Interleaved arrivals from two tenants partition into
        // single-tenant epochs with per-tenant arrival order intact.
        let policy = FlushPolicy::new(4, Duration::from_secs(10));
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..8u64 {
            for t in [1u64, 2] {
                ingress.push(request(seq * 2 + t).with_tenant(TenantId(t))).unwrap();
            }
        }
        ingress.close();
        handle.join().unwrap();
        let mut per_tenant: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        let mut epoch_count = 0;
        while let Ok(epoch) = epochs.pop() {
            epoch_count += 1;
            assert!(
                epoch.requests.iter().all(|r| r.tenant == epoch.tenant),
                "epoch {} mixes tenants",
                epoch.id
            );
            per_tenant
                .entry(epoch.tenant.0)
                .or_default()
                .extend(epoch.requests.iter().map(|r| r.seq));
        }
        assert_eq!(epoch_count, 4, "8 + 8 requests at max_epoch 4");
        for t in [1u64, 2] {
            let seqs = &per_tenant[&t];
            assert_eq!(seqs.len(), 8);
            assert!(seqs.windows(2).all(|w| w[0] < w[1]), "tenant {t} order broken: {seqs:?}");
        }
        assert!(matches!(epochs.pop(), Err(PopError::Closed)));
    }

    #[test]
    fn full_tenants_flush_in_rotation() {
        // Alternating arrivals: each tenant fills its batch in turn,
        // so the epoch stream alternates tenants instead of letting
        // the first tenant emit everything before the second starts.
        let policy = FlushPolicy::new(2, Duration::from_secs(10));
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..4u64 {
            ingress.push(request(seq).with_tenant(TenantId(seq % 2))).unwrap();
        }
        ingress.close();
        handle.join().unwrap();
        let mut tenants = Vec::new();
        while let Ok(epoch) = epochs.pop() {
            assert_eq!(epoch.requests.len(), 2);
            tenants.push(epoch.tenant.0);
        }
        tenants.sort_unstable();
        assert_eq!(tenants, [0, 1], "each tenant emits exactly one full epoch");
    }

    #[test]
    fn quantum_gates_full_batch_flushes_until_credit_accrues() {
        // quantum 1 with max_epoch 2: a full batch needs two rotation
        // visits' worth of credit before it may emit, so the first
        // full trigger does NOT flush and the third admit (second
        // rotation) does. Deadline and drain flushes bypass the quota.
        let policy = FlushPolicy::new(2, Duration::from_secs(10)).with_quantum(1);
        let (ingress, epochs, handle) = harness(policy);
        ingress.push(request(0)).unwrap();
        ingress.push(request(1)).unwrap();
        // Full, but only 1 credit after the first rotation: no epoch.
        assert!(matches!(epochs.pop_timeout(Duration::from_millis(100)), Err(PopError::TimedOut)));
        ingress.push(request(2)).unwrap();
        // Second rotation: credit reaches 2, the full chunk emits.
        let epoch = epochs.pop_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(epoch.requests.len(), 2);
        assert_eq!(epoch.requests[0].seq, 0);
        // The drain flush emits the remainder regardless of credit.
        ingress.close();
        handle.join().unwrap();
        assert_eq!(epochs.pop().unwrap().requests.len(), 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Pushes the whole arrival sequence, closes the ingress and
        /// runs the batcher to completion on this thread, returning
        /// the emitted epochs in flush order. A far-future deadline
        /// keeps the run timing-free: only batch-full and drain
        /// flushes can fire, so the epoch stream is a deterministic
        /// function of the arrival sequence.
        fn run_to_completion(policy: FlushPolicy, arrivals: Vec<Request>) -> Vec<Epoch> {
            let capacity = arrivals.len().max(1);
            let ingress = Arc::new(BoundedQueue::new(capacity));
            let epochs = Arc::new(BoundedQueue::new(capacity));
            for r in arrivals {
                ingress.push(r).unwrap();
            }
            ingress.close();
            run(
                Arc::clone(&ingress),
                Arc::clone(&epochs),
                policy,
                Arc::new(MetricsSink::default()),
                Arc::new(Tracer::default()),
            );
            let mut out = Vec::new();
            while let Ok(epoch) = epochs.pop() {
                out.push(epoch);
            }
            out
        }

        proptest! {
            #[test]
            fn epochs_never_mix_tenants_and_preserve_per_tenant_order(
                tenants in prop::collection::vec(0u64..4, 1..80),
                max_epoch in 1usize..8,
            ) {
                let policy = FlushPolicy::new(max_epoch, Duration::from_secs(1000));
                let arrivals: Vec<Request> = tenants
                    .iter()
                    .enumerate()
                    .map(|(seq, &t)| request(seq as u64).with_tenant(TenantId(t)))
                    .collect();
                let epochs = run_to_completion(policy, arrivals);
                let mut per_tenant: std::collections::HashMap<u64, Vec<u64>> =
                    Default::default();
                for epoch in &epochs {
                    prop_assert!(!epoch.requests.is_empty());
                    prop_assert!(epoch.requests.len() <= max_epoch);
                    prop_assert!(
                        epoch.requests.iter().all(|r| r.tenant == epoch.tenant),
                        "epoch {} mixes tenants",
                        epoch.id
                    );
                    per_tenant
                        .entry(epoch.tenant.0)
                        .or_default()
                        .extend(epoch.requests.iter().map(|r| r.seq));
                }
                // Nothing lost, nothing duplicated, and every tenant's
                // requests flush in their arrival order.
                let mut expected: std::collections::HashMap<u64, Vec<u64>> =
                    Default::default();
                for (seq, &t) in tenants.iter().enumerate() {
                    expected.entry(t).or_default().push(seq as u64);
                }
                prop_assert_eq!(per_tenant, expected);
            }

            #[test]
            fn drr_rotation_bounds_every_tenants_wait(
                tenant_count in 2usize..5,
                max_epoch in 1usize..5,
                epochs_per_tenant in 1usize..4,
            ) {
                // Equal saturated backlogs with arrivals interleaved
                // round robin: DRR must emit epochs round robin too, so
                // at any prefix of the flush order no tenant is more
                // than one epoch ahead of another — a full batch waits
                // at most one epoch per competing tenant, never a whole
                // competing backlog.
                let policy = FlushPolicy::new(max_epoch, Duration::from_secs(1000));
                let mut arrivals = Vec::new();
                let mut seq = 0u64;
                for _ in 0..epochs_per_tenant * max_epoch {
                    for t in 0..tenant_count as u64 {
                        arrivals.push(request(seq).with_tenant(TenantId(t)));
                        seq += 1;
                    }
                }
                let epochs = run_to_completion(policy, arrivals);
                prop_assert_eq!(epochs.len(), tenant_count * epochs_per_tenant);
                let mut counts = vec![0usize; tenant_count];
                for epoch in &epochs {
                    prop_assert_eq!(
                        epoch.requests.len(),
                        max_epoch,
                        "saturated epochs must flush full"
                    );
                    counts[epoch.tenant.0 as usize] += 1;
                    let lo = counts.iter().copied().min().unwrap_or(0);
                    let hi = counts.iter().copied().max().unwrap_or(0);
                    prop_assert!(hi - lo <= 1, "unfair epoch prefix: {:?}", counts);
                }
            }
        }
    }
}
