//! The two-level batcher: turns the live ingress stream into epochs.
//!
//! One batcher thread owns the open batch. It pulls requests in
//! arrival order (which preserves each client's submission order) and
//! flushes an [`Epoch`] to the worker queue when either side of the
//! [`FlushPolicy`] trips:
//!
//! * **batch-full** — `TvLP × core_batch` requests are waiting, the
//!   fragmentation-free case the paper optimises for, or
//! * **deadline** — the oldest open request has waited `max_delay`,
//!   bounding tail latency under light load.
//!
//! On ingress close the batcher flushes the remainder (possibly
//! undersized — losing requests is worse than fragmenting one final
//! epoch) and closes the epoch queue, which lets the workers drain and
//! exit.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::MetricsSink;
use crate::policy::FlushPolicy;
use crate::queue::{BoundedQueue, PopError};
use crate::request::{Epoch, Request};

pub(crate) fn run(
    ingress: Arc<BoundedQueue<Request>>,
    epochs: Arc<BoundedQueue<Epoch>>,
    policy: FlushPolicy,
    metrics: Arc<MetricsSink>,
) {
    let mut open: Vec<Request> = Vec::with_capacity(policy.max_epoch);
    let mut open_since = Instant::now();
    let mut next_epoch = 0u64;

    let flush = |open: &mut Vec<Request>, next_epoch: &mut u64| {
        if open.is_empty() {
            return;
        }
        metrics.record_epoch(open.len(), policy.max_epoch);
        let epoch = Epoch { id: *next_epoch, requests: std::mem::take(open) };
        *next_epoch += 1;
        // The epoch queue only closes after this thread exits, so a
        // failed push can't lose requests; still, be explicit.
        if epochs.push(epoch).is_err() {
            unreachable!("epoch queue closed while batcher alive");
        }
    };

    loop {
        let popped = if open.is_empty() {
            // Nothing pending: wait indefinitely for work.
            ingress.pop()
        } else {
            // A batch is open: wait only until its deadline.
            let deadline = open_since + policy.max_delay;
            let now = Instant::now();
            if now >= deadline {
                flush(&mut open, &mut next_epoch);
                continue;
            }
            ingress.pop_timeout(deadline - now)
        };

        match popped {
            Ok(request) => {
                if open.is_empty() {
                    open_since = Instant::now();
                }
                open.push(request);
                if policy.is_full(open.len()) {
                    flush(&mut open, &mut next_epoch);
                }
            }
            Err(PopError::TimedOut) => {
                flush(&mut open, &mut next_epoch);
            }
            Err(PopError::Closed) => {
                flush(&mut open, &mut next_epoch);
                break;
            }
        }
    }
    epochs.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    use strix_tfhe::lwe::LweCiphertext;

    use crate::request::{ClientId, RequestOp};

    fn request(seq: u64) -> Request {
        Request {
            client: ClientId(0),
            seq,
            ct: LweCiphertext::trivial(4, 0),
            op: RequestOp::Keyswitch,
            submitted_at: Instant::now(),
        }
    }

    fn harness(
        policy: FlushPolicy,
    ) -> (Arc<BoundedQueue<Request>>, Arc<BoundedQueue<Epoch>>, std::thread::JoinHandle<()>) {
        let ingress = Arc::new(BoundedQueue::new(1024));
        let epochs = Arc::new(BoundedQueue::new(1024));
        let metrics = Arc::new(MetricsSink::default());
        let handle = {
            let (i, e) = (Arc::clone(&ingress), Arc::clone(&epochs));
            std::thread::spawn(move || run(i, e, policy, metrics))
        };
        (ingress, epochs, handle)
    }

    #[test]
    fn flushes_on_batch_full() {
        let policy = FlushPolicy { max_epoch: 4, max_delay: Duration::from_secs(10) };
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..8 {
            ingress.push(request(seq)).unwrap();
        }
        let first = epochs.pop().unwrap();
        let second = epochs.pop().unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(first.requests.len(), 4);
        assert_eq!(second.requests.len(), 4);
        // Arrival order is preserved across the flush boundary.
        let seqs: Vec<u64> = first.requests.iter().chain(&second.requests).map(|r| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn flushes_on_deadline_when_undersized() {
        let policy = FlushPolicy { max_epoch: 64, max_delay: Duration::from_millis(20) };
        let (ingress, epochs, handle) = harness(policy);
        ingress.push(request(0)).unwrap();
        let t0 = Instant::now();
        let epoch = epochs.pop().unwrap();
        assert!(t0.elapsed() < Duration::from_secs(2), "deadline flush too slow");
        assert_eq!(epoch.requests.len(), 1);
        ingress.close();
        handle.join().unwrap();
    }

    #[test]
    fn close_flushes_remainder_and_closes_epochs() {
        let policy = FlushPolicy { max_epoch: 64, max_delay: Duration::from_secs(10) };
        let (ingress, epochs, handle) = harness(policy);
        for seq in 0..5 {
            ingress.push(request(seq)).unwrap();
        }
        ingress.close();
        handle.join().unwrap();
        let epoch = epochs.pop().unwrap();
        assert_eq!(epoch.requests.len(), 5);
        assert!(matches!(epochs.pop(), Err(PopError::Closed)));
    }
}
