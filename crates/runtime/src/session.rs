//! The session/dataflow layer: multi-stage homomorphic programs
//! streamed through the runtime.
//!
//! The paper's flagship evaluations — gate-level circuits and the Zama
//! Deep-NN (Fig. 7) — are *multi-stage* programs: every PBS output
//! feeds the next circuit level or dense layer. A single client
//! executing such a program synchronously keeps only its current
//! frontier in flight, so epochs flush undersized (the fragmentation
//! cost of Fig. 2). This module lets many clients hold whole programs
//! open against the runtime at once: each [`ProgramSession`]
//! auto-submits every operation whose inputs have resolved, the
//! batcher interleaves *independent* stages from concurrent sessions
//! into full `TvLP × core_batch` epochs, and responses route back into
//! the waiting DAG through the client handle's existing reorder
//! machinery.
//!
//! A [`Program`] is a DAG over [`Wire`]s (program inputs or node
//! outputs) with three node kinds:
//!
//! * a two-input boolean gate ([`RequestOp::Gate`]) — one epoch slot,
//! * a linear-combination preamble plus LUT ([`RequestOp::LinearLut`])
//!   — one epoch slot per Deep-NN neuron,
//! * NOT — a free local negation, no runtime round trip.
//!
//! [`Program::run_sync`] is the synchronous reference execution over a
//! [`ServerKey`]; it performs the same linear-preamble → bootstrap →
//! keyswitch pipeline as the streamed path, so the two produce
//! bit-identical ciphertexts (the batch bootstrap is bit-identical to
//! the sequential one by construction).

use std::collections::HashMap;
use std::sync::Arc;

use strix_tfhe::boolean::{gate_sign_lut, BinaryGate};
use strix_tfhe::bootstrap::Lut;
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::ServerKey;

use crate::error::RuntimeError;
use crate::executor::linear_preamble;
use crate::request::{RequestOp, Response};
use crate::runtime::ClientHandle;

/// A value reference inside a [`Program`]: one of the program's
/// encrypted inputs, or the output of an earlier node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Wire {
    /// The `i`-th program input ciphertext.
    Input(usize),
    /// The output of node `n`.
    Node(usize),
}

#[derive(Clone, Debug)]
pub(crate) enum NodeOp {
    /// Two-input boolean gate: one runtime request.
    Gate(BinaryGate),
    /// Local negation: resolved without a runtime round trip.
    Not,
    /// `Σ weights[i]·inputs[i] + offset`, then `lut`, then keyswitch:
    /// one runtime request.
    LinearLut { weights: Vec<i64>, offset: u64, lut: Arc<Lut> },
}

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) op: NodeOp,
    pub(crate) inputs: Vec<Wire>,
}

/// A dependency-carrying multi-stage homomorphic program: a DAG of
/// gate / linear-LUT / NOT nodes over encrypted inputs.
///
/// Built incrementally — every builder method returns the [`Wire`]
/// carrying the new node's output, and may only reference wires that
/// already exist, so a `Program` is acyclic by construction.
#[derive(Clone, Debug, Default)]
pub struct Program {
    input_count: usize,
    pub(crate) nodes: Vec<Node>,
    outputs: Vec<Wire>,
}

impl Program {
    /// A program over `input_count` encrypted inputs.
    pub fn new(input_count: usize) -> Self {
        Self { input_count, nodes: Vec::new(), outputs: Vec::new() }
    }

    /// Number of encrypted inputs the program expects.
    #[inline]
    pub fn input_count(&self) -> usize {
        self.input_count
    }

    /// Total node count (including free NOT nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes that cost one runtime request (everything but
    /// NOT) — the program's PBS budget.
    pub fn request_count(&self) -> usize {
        self.nodes.iter().filter(|n| !matches!(n.op, NodeOp::Not)).count()
    }

    /// The declared output wires, in order.
    #[inline]
    pub fn outputs(&self) -> &[Wire] {
        &self.outputs
    }

    fn check_wire(&self, w: Wire) {
        let valid = match w {
            Wire::Input(i) => i < self.input_count,
            Wire::Node(n) => n < self.nodes.len(),
        };
        assert!(valid, "wire {w:?} does not exist yet in this program");
    }

    /// Appends a two-input boolean gate node.
    ///
    /// # Panics
    ///
    /// Panics if either wire does not exist yet (construction-time
    /// programming error; nothing has been submitted).
    pub fn gate(&mut self, gate: BinaryGate, a: Wire, b: Wire) -> Wire {
        self.check_wire(a);
        self.check_wire(b);
        self.nodes.push(Node { op: NodeOp::Gate(gate), inputs: vec![a, b] });
        Wire::Node(self.nodes.len() - 1)
    }

    /// Appends a free NOT node (no runtime request).
    ///
    /// # Panics
    ///
    /// Panics if the wire does not exist yet.
    pub fn not(&mut self, a: Wire) -> Wire {
        self.check_wire(a);
        self.nodes.push(Node { op: NodeOp::Not, inputs: vec![a] });
        Wire::Node(self.nodes.len() - 1)
    }

    /// Appends a linear-combination + LUT node:
    /// `Σ weights[i]·inputs[i] + offset`, bootstrapped through `lut`
    /// and keyswitched back to the small key — the shape of one
    /// Deep-NN neuron (weighted activations, bias, activation LUT).
    ///
    /// # Panics
    ///
    /// Panics if `weights` and `inputs` differ in length, `inputs` is
    /// empty, or any wire does not exist yet.
    pub fn linear_lut(
        &mut self,
        weights: Vec<i64>,
        inputs: Vec<Wire>,
        offset: u64,
        lut: Arc<Lut>,
    ) -> Wire {
        assert!(!inputs.is_empty(), "linear node needs at least one input");
        assert_eq!(weights.len(), inputs.len(), "one weight per input wire");
        for &w in &inputs {
            self.check_wire(w);
        }
        self.nodes.push(Node { op: NodeOp::LinearLut { weights, offset, lut }, inputs });
        Wire::Node(self.nodes.len() - 1)
    }

    /// Declares `wire` as the next program output.
    ///
    /// # Panics
    ///
    /// Panics if the wire does not exist yet.
    pub fn output(&mut self, wire: Wire) {
        self.check_wire(wire);
        self.outputs.push(wire);
    }

    /// Marks the nodes the output set transitively depends on. Both
    /// execution paths schedule exactly this set, so a dead node can
    /// neither cost a bootstrap nor fail a run on either path.
    pub(crate) fn needed_nodes(&self) -> Vec<bool> {
        let mut needed = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self
            .outputs
            .iter()
            .filter_map(|&w| match w {
                Wire::Node(i) => Some(i),
                Wire::Input(_) => None,
            })
            .collect();
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut needed[i], true) {
                continue;
            }
            for &w in &self.nodes[i].inputs {
                if let Wire::Node(j) = w {
                    stack.push(j);
                }
            }
        }
        needed
    }

    /// Synchronous reference execution over a [`ServerKey`]: every
    /// node runs in submission order through the same linear-preamble
    /// → bootstrap → keyswitch pipeline as the streamed path, so the
    /// outputs are bit-identical to a [`ProgramSession`] run against a
    /// [`TfheExecutor`](crate::executor::TfheExecutor) built on the
    /// same key.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Program`] if `inputs` mismatches the program's
    /// input count, [`RuntimeError::Tfhe`] if a node's homomorphic
    /// operation fails.
    pub fn run_sync(
        &self,
        server: &ServerKey,
        inputs: &[LweCiphertext],
    ) -> Result<Vec<LweCiphertext>, RuntimeError> {
        if inputs.len() != self.input_count {
            return Err(RuntimeError::Program("input count mismatch"));
        }
        let sign = gate_sign_lut(server.params().polynomial_size);
        let needed = self.needed_nodes();
        let mut values: Vec<Option<LweCiphertext>> = vec![None; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if !needed[idx] {
                continue; // same pruning as the streamed session
            }
            let value_of = |w: Wire| -> Result<&LweCiphertext, RuntimeError> {
                match w {
                    Wire::Input(i) => Ok(&inputs[i]),
                    Wire::Node(n) => values[n]
                        .as_ref()
                        .ok_or(RuntimeError::Program("needed node referenced before it resolved")),
                }
            };
            let out = match &node.op {
                NodeOp::Not => {
                    let mut ct = value_of(node.inputs[0])?.clone();
                    ct.negate();
                    ct
                }
                NodeOp::Gate(gate) => {
                    let recipe = gate.recipe();
                    let sum = linear_preamble(
                        value_of(node.inputs[0])?,
                        &recipe.weights(),
                        std::slice::from_ref(value_of(node.inputs[1])?),
                        recipe.offset(),
                    )?;
                    let boot = server.bootstrap_key().bootstrap(&sum, &sign)?;
                    server.keyswitch_key().keyswitch(&boot)?
                }
                NodeOp::LinearLut { weights, offset, lut } => {
                    let extra: Vec<LweCiphertext> = node.inputs[1..]
                        .iter()
                        .map(|&w| Ok(value_of(w)?.clone()))
                        .collect::<Result<_, RuntimeError>>()?;
                    let sum = linear_preamble(value_of(node.inputs[0])?, weights, &extra, *offset)?;
                    let boot = server.bootstrap_key().bootstrap(&sum, lut)?;
                    server.keyswitch_key().keyswitch(&boot)?
                }
            };
            values[idx] = Some(out);
        }
        self.outputs
            .iter()
            .map(|&w| {
                Ok(match w {
                    Wire::Input(i) => inputs[i].clone(),
                    Wire::Node(n) => values[n]
                        .as_ref()
                        .ok_or(RuntimeError::Program("output depends on an unresolved node"))?
                        .clone(),
                })
            })
            .collect()
    }
}

/// One client's in-flight execution of a [`Program`] against the
/// streaming runtime.
///
/// The session holds the DAG plus the resolved values, auto-submits
/// every node whose inputs have resolved (the *frontier* — independent
/// nodes ship together so concurrent sessions fill epochs), routes
/// responses back into pending nodes, and completes when the output
/// set resolves. Only nodes the outputs actually depend on are
/// scheduled.
///
/// The client handle is borrowed per call so callers can multiplex,
/// but the session assumes exclusive use of the handle while it runs:
/// every response received must answer one of its submissions.
///
/// Responses are absorbed in submission order (the handle's in-order
/// contract), so *within one session* a fast later response waits for
/// its slower predecessors before unblocking dependents. Epochs are
/// filled across *concurrent* sessions, where no such coupling exists;
/// per-client order is the price of the existing reorder machinery.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use strix_core::BatchGeometry;
/// use strix_runtime::session::{Program, ProgramSession, Wire};
/// use strix_runtime::{Runtime, RuntimeConfig, TfheExecutor};
/// use strix_tfhe::boolean::BinaryGate;
/// use strix_tfhe::prelude::*;
///
/// let params = TfheParameters::testing_fast();
/// let (mut client_key, server_key) = generate_keys(&params, 11);
/// let runtime = Runtime::start(
///     RuntimeConfig::new(BatchGeometry::explicit(2, 2)),
///     TfheExecutor::new(Arc::new(server_key)),
/// );
///
/// // half adder: sum = a XOR b, carry = a AND b
/// let mut program = Program::new(2);
/// let sum = program.gate(BinaryGate::Xor, Wire::Input(0), Wire::Input(1));
/// let carry = program.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
/// program.output(sum);
/// program.output(carry);
///
/// let inputs = vec![
///     client_key.encrypt_bool(true).into_lwe(),
///     client_key.encrypt_bool(true).into_lwe(),
/// ];
/// let mut handle = runtime.client();
/// let session = ProgramSession::new(&program, inputs).unwrap();
/// let outputs = session.run(&mut handle).unwrap();
/// assert!(!strix_tfhe::bootstrap::decode_bool(
///     client_key.decrypt_phase(&outputs[0]).unwrap()
/// )); // 1 XOR 1 = 0
/// assert!(strix_tfhe::bootstrap::decode_bool(
///     client_key.decrypt_phase(&outputs[1]).unwrap()
/// )); // 1 AND 1 = 1
/// runtime.shutdown();
/// ```
pub struct ProgramSession<'p> {
    program: &'p Program,
    inputs: Vec<LweCiphertext>,
    node_values: Vec<Option<LweCiphertext>>,
    /// Unresolved node-input references per needed node (multiplicity
    /// counted, so a node consuming the same wire twice waits once per
    /// reference).
    unresolved: Vec<usize>,
    /// Needed nodes waiting on each node's value, one entry per
    /// reference.
    dependents: Vec<Vec<usize>>,
    /// Needed nodes whose inputs are all resolved but which have not
    /// been dispatched yet.
    ready: Vec<usize>,
    /// Submitted sequence numbers awaiting their response.
    in_flight: HashMap<u64, usize>,
    /// Needed nodes not yet resolved.
    outstanding_nodes: usize,
    /// Whether the handle's admission policy has vetted this program.
    /// Checked once, on the first `submit_ready`, *before* anything is
    /// enqueued — a rejected program never reaches the batcher.
    admission_checked: bool,
}

impl<'p> ProgramSession<'p> {
    /// Binds a program to its input ciphertexts.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Program`] if `inputs` mismatches the program's
    /// declared input count.
    pub fn new(program: &'p Program, inputs: Vec<LweCiphertext>) -> Result<Self, RuntimeError> {
        if inputs.len() != program.input_count {
            return Err(RuntimeError::Program("input count mismatch"));
        }
        let n = program.nodes.len();
        let needed = program.needed_nodes();
        let mut unresolved = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut ready = Vec::new();
        let mut outstanding_nodes = 0;
        for (i, node) in program.nodes.iter().enumerate() {
            if !needed[i] {
                continue;
            }
            outstanding_nodes += 1;
            for &w in &node.inputs {
                if let Wire::Node(j) = w {
                    unresolved[i] += 1;
                    dependents[j].push(i);
                }
            }
            if unresolved[i] == 0 {
                ready.push(i);
            }
        }

        Ok(Self {
            program,
            inputs,
            node_values: vec![None; n],
            unresolved,
            dependents,
            ready,
            in_flight: HashMap::new(),
            outstanding_nodes,
            admission_checked: false,
        })
    }

    fn wire_value(&self, w: Wire) -> Result<&LweCiphertext, RuntimeError> {
        match w {
            Wire::Input(i) => Ok(&self.inputs[i]),
            Wire::Node(n) => self.node_values[n]
                .as_ref()
                .ok_or(RuntimeError::Program("wire scheduled before it resolved")),
        }
    }

    /// Marks node `n` resolved and promotes newly unblocked dependents
    /// onto the ready frontier.
    fn resolve(&mut self, n: usize, value: LweCiphertext) {
        debug_assert!(self.node_values[n].is_none(), "node resolved twice");
        self.node_values[n] = Some(value);
        self.outstanding_nodes -= 1;
        // A node resolves exactly once; its dependent list is consumed.
        for d in std::mem::take(&mut self.dependents[n]) {
            self.unresolved[d] -= 1;
            if self.unresolved[d] == 0 {
                self.ready.push(d);
            }
        }
    }

    /// Submits every ready node: NOT nodes resolve locally (which can
    /// unblock further nodes within the same call), gate and
    /// linear-LUT nodes become runtime requests.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoiseBudgetExceeded`] if the handle carries an
    /// admission policy and the program's predicted noise margin falls
    /// below its threshold (checked once, before anything is enqueued);
    /// [`RuntimeError::Shutdown`] if the runtime stopped accepting
    /// requests.
    pub fn submit_ready(&mut self, handle: &mut ClientHandle) -> Result<(), RuntimeError> {
        if !self.admission_checked {
            if let Some(policy) = handle.admission() {
                policy.admit(self.program)?;
            }
            self.admission_checked = true;
        }
        while let Some(n) = self.ready.pop() {
            match &self.program.nodes[n].op {
                NodeOp::Not => {
                    let mut ct = self.wire_value(self.program.nodes[n].inputs[0])?.clone();
                    ct.negate();
                    self.resolve(n, ct);
                }
                NodeOp::Gate(gate) => {
                    let node = &self.program.nodes[n];
                    let ct = self.wire_value(node.inputs[0])?.clone();
                    let other = self.wire_value(node.inputs[1])?.clone();
                    let seq = handle.submit(ct, RequestOp::Gate { gate: *gate, other })?;
                    self.in_flight.insert(seq, n);
                }
                NodeOp::LinearLut { weights, offset, lut } => {
                    let node = &self.program.nodes[n];
                    let ct = self.wire_value(node.inputs[0])?.clone();
                    let extra: Vec<LweCiphertext> = node.inputs[1..]
                        .iter()
                        .map(|&w| Ok(self.wire_value(w)?.clone()))
                        .collect::<Result<_, RuntimeError>>()?;
                    let op = RequestOp::LinearLut {
                        weights: weights.clone(),
                        extra,
                        offset: *offset,
                        lut: Arc::clone(lut),
                    };
                    let seq = handle.submit(ct, op)?;
                    self.in_flight.insert(seq, n);
                }
            }
        }
        Ok(())
    }

    /// Routes one response back into its pending node.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Program`] if the response does not answer one of
    /// this session's submissions; the carried error if the node's
    /// request failed.
    pub fn absorb(&mut self, response: Response) -> Result<(), RuntimeError> {
        let node = self
            .in_flight
            .remove(&response.seq)
            .ok_or(RuntimeError::Program("response does not belong to this session"))?;
        let ct = response.result?;
        self.resolve(node, ct);
        Ok(())
    }

    /// Whether every node the output set depends on has resolved.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.outstanding_nodes == 0
    }

    /// Number of submitted requests still awaiting a response.
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Drives the session to completion: submits the frontier, blocks
    /// on responses, resubmits as stages unblock, and returns the
    /// program's outputs in declaration order.
    ///
    /// On failure the session first drains its remaining in-flight
    /// responses, so the handle is left clean and can run further
    /// sessions.
    ///
    /// # Errors
    ///
    /// Propagates submission, response and per-node execution errors.
    pub fn run(mut self, handle: &mut ClientHandle) -> Result<Vec<LweCiphertext>, RuntimeError> {
        match self.run_inner(handle) {
            Ok(outputs) => Ok(outputs),
            Err(e) => {
                // Discard the responses of requests already submitted:
                // a leftover would otherwise surface as a foreign
                // sequence number to the handle's next session.
                while !self.in_flight.is_empty() {
                    match handle.recv() {
                        Ok(response) => {
                            self.in_flight.remove(&response.seq);
                        }
                        Err(_) => break,
                    }
                }
                Err(e)
            }
        }
    }

    fn run_inner(&mut self, handle: &mut ClientHandle) -> Result<Vec<LweCiphertext>, RuntimeError> {
        loop {
            self.submit_ready(handle)?;
            if self.is_complete() {
                break;
            }
            let response = handle.recv()?;
            self.absorb(response)?;
        }
        self.program
            .outputs
            .iter()
            .map(|&w| Ok(self.wire_value(w)?.clone()))
            .collect::<Result<Vec<_>, RuntimeError>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(len: usize) -> Program {
        let mut p = Program::new(len + 1);
        let mut acc = Wire::Input(0);
        for i in 0..len {
            acc = p.gate(BinaryGate::Xor, acc, Wire::Input(i + 1));
        }
        p.output(acc);
        p
    }

    #[test]
    fn builder_counts_requests_and_outputs() {
        let mut p = Program::new(2);
        let x = p.gate(BinaryGate::Xor, Wire::Input(0), Wire::Input(1));
        let n = p.not(x);
        p.output(n);
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.request_count(), 1); // NOT is free
        assert_eq!(p.outputs(), &[Wire::Node(1)]);
        assert_eq!(p.input_count(), 2);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn builder_rejects_dangling_wires() {
        let mut p = Program::new(1);
        p.gate(BinaryGate::And, Wire::Input(0), Wire::Node(5));
    }

    #[test]
    fn session_rejects_input_count_mismatch() {
        let p = xor_chain(2);
        let err = ProgramSession::new(&p, vec![]).err().unwrap();
        assert!(matches!(err, RuntimeError::Program(_)));
    }

    #[test]
    fn unneeded_nodes_are_not_scheduled() {
        let mut p = Program::new(2);
        let used = p.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
        let _dead = p.gate(BinaryGate::Or, Wire::Input(0), Wire::Input(1));
        p.output(used);
        let inputs = vec![LweCiphertext::trivial(4, 0), LweCiphertext::trivial(4, 0)];
        let session = ProgramSession::new(&p, inputs).unwrap();
        // Only the AND feeding the output is scheduled; the dead OR is
        // pruned from both the outstanding count and the frontier.
        assert_eq!(session.outstanding_nodes, 1);
        assert_eq!(session.ready, vec![0]);
    }

    #[test]
    fn run_sync_skips_dead_nodes_like_the_streamed_path() {
        // A dead node consuming a malformed wire must not fail (or
        // cost a bootstrap in) either execution path: both prune it.
        let mut p = Program::new(2);
        let live = p.not(Wire::Input(0));
        let _dead = p.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
        p.output(live);
        let params = strix_tfhe::TfheParameters::testing_fast();
        let (mut client, server) = strix_tfhe::generate_keys(&params, 31);
        let inputs = vec![
            client.encrypt_bool(true).into_lwe(),
            LweCiphertext::trivial(7, 0), // wrong dimension, dead-only
        ];
        let outs = p.run_sync(&server, &inputs).expect("dead node must not execute");
        assert_eq!(outs.len(), 1);
    }

    #[test]
    fn passthrough_output_completes_without_requests() {
        let mut p = Program::new(1);
        p.output(Wire::Input(0));
        let session = ProgramSession::new(&p, vec![LweCiphertext::trivial(4, 9)]).unwrap();
        assert!(session.is_complete());
        assert_eq!(session.in_flight(), 0);
    }
}
