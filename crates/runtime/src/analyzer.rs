//! Static noise-budget verification for [`Program`] DAGs.
//!
//! TFHE decryption is probabilistic: every ciphertext carries Gaussian
//! noise, linear preambles amplify it by the squared weights, and each
//! programmable bootstrap both *consumes* the accumulated noise (the
//! blind rotation decides which LUT box the phase lands in) and
//! *resets* it to the kernel's fixed output level. A program whose
//! weighted sums push the pre-bootstrap noise too close to a LUT's box
//! boundary will silently flip bits at some per-gate probability — a
//! failure mode no amount of testing on one key seed reliably catches.
//!
//! This module is an abstract interpreter over that noise semantics:
//! it walks a program's DAG once, propagating a per-wire noise
//! *variance* through the same kernel-aware model `strix-tfhe`
//! validates against measurement ([`strix_tfhe::noise`]), and reports
//! the *decision margin* of every bootstrap — the distance from the
//! encoded message to the nearest LUT box boundary, in standard
//! deviations of the predicted accumulated noise. A margin of `k`
//! sigmas bounds the per-node error probability by `erfc(k/√2)/2`
//! (≈ 1e-9 at 6σ, ≈ 7.7e-24 at 10σ).
//!
//! Per-node variance rules:
//!
//! * **input wire** — fresh encryption variance
//!   ([`noise::fresh_lwe_variance`]);
//! * **NOT** — negation preserves variance;
//! * **gate** — the recipe's linear preamble `w₀·a + w₁·b + offset`
//!   accumulates `w₀²·var(a) + w₁²·var(b)`, plus the modulus-switch
//!   rounding variance; the decision distance is the recipe's own
//!   worst-case distance to a sign-LUT boundary (1/8 for the
//!   unit-weight gates, 1/4 for XOR/XNOR — the ±2 weights double the
//!   noise but the offsets also double the distance). The output
//!   resets to the PBS output variance of the class's kernel plus the
//!   keyswitch tail;
//! * **linear LUT** — identically, with the node's own weights
//!   (`Σ wᵢ²·var(inputᵢ)`) and the LUT's own decision distance
//!   (`2^-(p+2)` for a `p`-bit table).
//!
//! Dead nodes (pruned by both execution paths) are skipped, so a
//! program is judged exactly on the requests it will submit.
//!
//! [`AdmissionPolicy`] packages the analysis with a rejection
//! threshold: the runtime captures one from its executor at start-up
//! ([`crate::BatchExecutor::admission`]) and every
//! [`ProgramSession`](crate::session::ProgramSession) vets its program
//! *before the first request is enqueued*, surfacing
//! [`RuntimeError::NoiseBudgetExceeded`] at admission instead of a
//! wrong decryption at the client.

use strix_tfhe::noise;
use strix_tfhe::{PbsKernel, TfheParameters};

use crate::error::RuntimeError;
use crate::executor::KernelPolicy;
use crate::request::RequestClass;
use crate::session::{NodeOp, Program, Wire};

/// Default minimum decision margin, in sigmas, required at every
/// bootstrap. 6σ bounds the per-node error probability at roughly
/// 1e-9 — comfortably below the per-gate failure rates published for
/// gate-bootstrapped TFHE parameter sets, while still rejecting
/// programs whose weighted preambles genuinely overdrive the budget.
pub const DEFAULT_THRESHOLD_SIGMAS: f64 = 6.0;

/// The analyzer's verdict on one request node (gate or linear LUT):
/// how much noise arrives at its bootstrap and how far the encoding
/// keeps it from a wrong LUT box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireReport {
    /// Index of the program node this report describes.
    pub node: usize,
    /// Predicted variance of the noise entering the node's blind
    /// rotation: the weighted input variances plus the modulus-switch
    /// rounding term.
    pub decision_variance: f64,
    /// Distance from the encoded message to the nearest LUT box
    /// boundary (torus units): 1/8 for gates, `2^-(p+2)` for a `p`-bit
    /// LUT.
    pub decision_distance: f64,
    /// The decision margin in standard deviations:
    /// `distance / √variance`. The analyzer's per-node figure of
    /// merit.
    pub margin_sigmas: f64,
    /// Sum of squared preamble weights — the factor by which the
    /// node's linear stage amplifies its input variance.
    pub linear_gain: f64,
    /// The PBS kernel the node's class resolves to under the policy.
    pub kernel: PbsKernel,
    /// Variance of the wire the node hands downstream (PBS output for
    /// its kernel, plus the keyswitch tail).
    pub output_variance: f64,
}

/// The full static-analysis report for one program: one [`WireReport`]
/// per live request node, plus aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramAnalysis {
    /// Per-request-node reports, in node order (NOT and dead nodes
    /// carry no bootstrap and are absent).
    pub reports: Vec<WireReport>,
    /// Position in `reports` of the node with the smallest margin,
    /// `None` for a program with no request nodes.
    pub worst: Option<usize>,
    /// Largest squared-weight gain of any live preamble.
    pub max_linear_gain: f64,
    /// Longest chain of request nodes from any input to any output —
    /// the program's critical bootstrap depth.
    pub pbs_depth: usize,
    /// The threshold the analysis was judged against.
    pub threshold_sigmas: f64,
}

impl ProgramAnalysis {
    /// The report of the tightest node, if the program bootstraps at
    /// all.
    pub fn worst_report(&self) -> Option<&WireReport> {
        self.worst.map(|i| &self.reports[i])
    }

    /// Smallest margin across the program, in sigmas; infinite for a
    /// program with no bootstraps (nothing can mis-decide).
    pub fn worst_margin_sigmas(&self) -> f64 {
        self.worst_report().map_or(f64::INFINITY, |r| r.margin_sigmas)
    }

    /// Whether every node clears the threshold.
    pub fn passes(&self) -> bool {
        self.worst_margin_sigmas() >= self.threshold_sigmas
    }
}

/// A noise-budget admission policy: the parameter set and per-class
/// kernel selection to analyze against, plus the margin threshold to
/// enforce.
///
/// The [`KernelPolicy`] here should be the *effective* one — each
/// class resolved to the kernel the executor will actually dispatch
/// (classical fallback included), which is what
/// [`TfheExecutor::admission`](crate::TfheExecutor) constructs.
#[derive(Clone, Debug)]
pub struct AdmissionPolicy {
    params: TfheParameters,
    policy: KernelPolicy,
    threshold_sigmas: f64,
}

impl AdmissionPolicy {
    /// A policy over `params`, dispatching per `policy`, at the
    /// [`DEFAULT_THRESHOLD_SIGMAS`] threshold.
    pub fn new(params: TfheParameters, policy: KernelPolicy) -> Self {
        Self { params, policy, threshold_sigmas: DEFAULT_THRESHOLD_SIGMAS }
    }

    /// Overrides the margin threshold (sigmas). Non-positive admits
    /// every well-formed program.
    pub fn with_threshold(mut self, sigmas: f64) -> Self {
        self.threshold_sigmas = sigmas;
        self
    }

    /// The threshold this policy enforces, in sigmas.
    pub fn threshold_sigmas(&self) -> f64 {
        self.threshold_sigmas
    }

    /// Runs the abstract interpretation and returns the full report,
    /// pass or fail.
    pub fn analyze(&self, program: &Program) -> ProgramAnalysis {
        analyze(program, &self.params, &self.policy, self.threshold_sigmas)
    }

    /// Analyzes `program` and accepts or rejects it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoiseBudgetExceeded`] carrying the offending
    /// node and its predicted margin when any live request node falls
    /// below the threshold.
    pub fn admit(&self, program: &Program) -> Result<ProgramAnalysis, RuntimeError> {
        let analysis = self.analyze(program);
        match analysis.worst_report() {
            Some(worst) if worst.margin_sigmas < analysis.threshold_sigmas => {
                Err(RuntimeError::NoiseBudgetExceeded {
                    node: worst.node,
                    margin_sigmas: worst.margin_sigmas,
                    threshold_sigmas: analysis.threshold_sigmas,
                })
            }
            _ => Ok(analysis),
        }
    }
}

/// Walks `program`'s DAG once, propagating per-wire noise variance
/// under `params` with each request class dispatched per `policy`, and
/// reports every live bootstrap's decision margin against
/// `threshold_sigmas`.
///
/// Builder methods guarantee every node's inputs precede it, so a
/// single forward pass visits producers before consumers.
pub fn analyze(
    program: &Program,
    params: &TfheParameters,
    policy: &KernelPolicy,
    threshold_sigmas: f64,
) -> ProgramAnalysis {
    let needed = program.needed_nodes();
    let input_variance = noise::fresh_lwe_variance(params);
    let ms = noise::modswitch_variance(params);
    // Per-node wire state: variance handed downstream, and bootstrap
    // depth up to and including the node.
    let mut variances = vec![0.0f64; program.nodes.len()];
    let mut depths = vec![0usize; program.nodes.len()];
    let mut reports = Vec::new();
    let mut max_linear_gain: f64 = 0.0;
    let mut pbs_depth = 0usize;

    let wire_state = |variances: &[f64], depths: &[usize], w: Wire| match w {
        Wire::Input(_) => (input_variance, 0usize),
        Wire::Node(n) => (variances[n], depths[n]),
    };

    for (idx, node) in program.nodes.iter().enumerate() {
        if !needed[idx] {
            continue;
        }
        // (weights over the node's inputs, decision distance, class)
        let bootstrap = match &node.op {
            NodeOp::Not => {
                let (var, depth) = wire_state(&variances, &depths, node.inputs[0]);
                variances[idx] = var;
                depths[idx] = depth;
                None
            }
            NodeOp::Gate(gate) => Some((
                gate.recipe().weights().to_vec(),
                gate.recipe().decision_distance(),
                RequestClass::Gate,
            )),
            NodeOp::LinearLut { weights, lut, .. } => {
                Some((weights.clone(), lut.decision_distance(), RequestClass::LinearLut))
            }
        };
        let Some((weights, distance, class)) = bootstrap else {
            continue;
        };
        let mut decision_variance = ms;
        let mut linear_gain = 0.0;
        let mut depth_in = 0usize;
        for (&w, &input) in weights.iter().zip(&node.inputs) {
            let (var, depth) = wire_state(&variances, &depths, input);
            let gain = (w as f64) * (w as f64);
            decision_variance += gain * var;
            linear_gain += gain;
            depth_in = depth_in.max(depth);
        }
        let kernel = policy.kernel_for(class);
        let output_variance = noise::lut_output_variance_for(params, kernel);
        let margin = noise::margin_sigmas(distance, decision_variance);
        variances[idx] = output_variance;
        depths[idx] = depth_in + 1;
        pbs_depth = pbs_depth.max(depths[idx]);
        max_linear_gain = max_linear_gain.max(linear_gain);
        reports.push(WireReport {
            node: idx,
            decision_variance,
            decision_distance: distance,
            margin_sigmas: margin,
            linear_gain,
            kernel,
            output_variance,
        });
    }

    let worst = reports
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.margin_sigmas.total_cmp(&b.margin_sigmas))
        .map(|(i, _)| i);
    ProgramAnalysis { reports, worst, max_linear_gain, pbs_depth, threshold_sigmas }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use strix_tfhe::boolean::BinaryGate;
    use strix_tfhe::bootstrap::Lut;

    use super::*;

    fn params() -> TfheParameters {
        TfheParameters::testing_fast()
    }

    fn classical() -> KernelPolicy {
        KernelPolicy::uniform(PbsKernel::Classical)
    }

    #[test]
    fn gate_program_matches_closed_form_gate_margin() {
        // A single gate over fresh inputs: the analyzer's weighted-sum
        // rule must reduce exactly to the closed-form gate model when
        // the weights are ±1 and the inputs carry bootstrap-output
        // variance — so pin the fresh-input case against the same
        // formula assembled by hand.
        let p = params();
        let mut program = Program::new(2);
        let g = program.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
        program.output(g);
        let analysis = analyze(&program, &p, &classical(), DEFAULT_THRESHOLD_SIGMAS);
        assert_eq!(analysis.reports.len(), 1);
        let r = &analysis.reports[0];
        let expected = 2.0 * noise::fresh_lwe_variance(&p) + noise::modswitch_variance(&p);
        assert!((r.decision_variance - expected).abs() / expected < 1e-12);
        assert_eq!(r.decision_distance, noise::GATE_DECISION_DISTANCE);
        assert_eq!(analysis.pbs_depth, 1);
    }

    #[test]
    fn chained_gates_see_bootstrap_output_variance() {
        // Second-level gates consume keyswitched bootstrap outputs, so
        // their decision variance is exactly the closed-form
        // gate_decision_variance (2·(pbs+ks) + ms) — the model the
        // measured-noise suite validates.
        let p = params();
        let mut program = Program::new(2);
        let a = program.gate(BinaryGate::Xor, Wire::Input(0), Wire::Input(1));
        let b = program.gate(BinaryGate::Xor, Wire::Input(0), Wire::Input(1));
        let top = program.gate(BinaryGate::And, a, b);
        program.output(top);
        let analysis = analyze(&program, &p, &classical(), DEFAULT_THRESHOLD_SIGMAS);
        let top_report = analysis.reports.iter().find(|r| r.node == 2).unwrap();
        let expected = noise::gate_decision_variance_for(&p, PbsKernel::Classical);
        assert!((top_report.decision_variance - expected).abs() / expected < 1e-12);
        let expected_margin = noise::gate_margin_sigmas_for(&p, PbsKernel::Classical);
        assert!((top_report.margin_sigmas - expected_margin).abs() / expected_margin < 1e-12);
        assert_eq!(analysis.pbs_depth, 2);
    }

    #[test]
    fn xor_weights_amplify_variance_four_fold() {
        let p = params();
        let mut and_prog = Program::new(2);
        let g = and_prog.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
        and_prog.output(g);
        let mut xor_prog = Program::new(2);
        let g = xor_prog.gate(BinaryGate::Xor, Wire::Input(0), Wire::Input(1));
        xor_prog.output(g);
        let and = analyze(&and_prog, &p, &classical(), 0.0);
        let xor = analyze(&xor_prog, &p, &classical(), 0.0);
        let and_input_var = and.reports[0].decision_variance - noise::modswitch_variance(&p);
        let xor_input_var = xor.reports[0].decision_variance - noise::modswitch_variance(&p);
        assert!((xor_input_var / and_input_var - 4.0).abs() < 1e-9);
        assert_eq!(xor.reports[0].linear_gain, 8.0);
        assert_eq!(and.reports[0].linear_gain, 2.0);
        // ...but the XOR offsets also double the decision distance, so
        // the two gates keep comparable margins.
        assert_eq!(xor.reports[0].decision_distance, 0.25);
        assert_eq!(and.reports[0].decision_distance, 0.125);
    }

    #[test]
    fn not_nodes_are_free_and_transparent() {
        let p = params();
        let mut program = Program::new(2);
        let g = program.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
        let n = program.not(g);
        let top = program.gate(BinaryGate::Or, n, Wire::Input(0));
        program.output(top);
        let analysis = analyze(&program, &p, &classical(), DEFAULT_THRESHOLD_SIGMAS);
        // Two reports (the gates); NOT contributes no bootstrap and
        // passes its input variance through unchanged.
        assert_eq!(analysis.reports.len(), 2);
        assert_eq!(analysis.pbs_depth, 2);
        let top_report = analysis.reports.iter().find(|r| r.node == 2).unwrap();
        let expected = noise::lut_output_variance_for(&p, PbsKernel::Classical)
            + noise::fresh_lwe_variance(&p)
            + noise::modswitch_variance(&p);
        assert!((top_report.decision_variance - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn dead_nodes_are_not_analyzed() {
        let p = params();
        let mut program = Program::new(2);
        let live = program.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
        // A dead node with absurd weights must not fail admission: the
        // session never submits it.
        let lut = Arc::new(Lut::from_function(p.polynomial_size, 2, |m| m).unwrap());
        let _dead = program.linear_lut(vec![1 << 20], vec![Wire::Input(0)], 0, lut);
        program.output(live);
        let analysis = analyze(&program, &p, &classical(), DEFAULT_THRESHOLD_SIGMAS);
        assert_eq!(analysis.reports.len(), 1);
        assert_eq!(analysis.reports[0].node, 0);
        assert!(analysis.passes());
    }

    #[test]
    fn passthrough_program_has_infinite_margin() {
        let p = params();
        let mut program = Program::new(1);
        program.output(Wire::Input(0));
        let analysis = analyze(&program, &p, &classical(), DEFAULT_THRESHOLD_SIGMAS);
        assert!(analysis.reports.is_empty());
        assert_eq!(analysis.worst, None);
        assert_eq!(analysis.worst_margin_sigmas(), f64::INFINITY);
        assert!(analysis.passes());
        assert_eq!(analysis.pbs_depth, 0);
    }

    #[test]
    fn admission_rejects_overweighted_linear_lut() {
        let p = params();
        let lut = Arc::new(Lut::from_function(p.polynomial_size, 2, |m| m).unwrap());
        let mut program = Program::new(2);
        let node = program.linear_lut(
            vec![1 << 16, 1 << 16],
            vec![Wire::Input(0), Wire::Input(1)],
            0,
            Arc::clone(&lut),
        );
        program.output(node);
        let policy = AdmissionPolicy::new(p, classical());
        let err = policy.admit(&program).unwrap_err();
        match err {
            RuntimeError::NoiseBudgetExceeded { node, margin_sigmas, threshold_sigmas } => {
                assert_eq!(node, 0);
                assert!(margin_sigmas < threshold_sigmas);
                assert_eq!(threshold_sigmas, DEFAULT_THRESHOLD_SIGMAS);
            }
            other => panic!("expected NoiseBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn multi_bit_kernel_changes_output_variance_only() {
        let p = params();
        let mut program = Program::new(2);
        let a = program.gate(BinaryGate::And, Wire::Input(0), Wire::Input(1));
        let top = program.gate(BinaryGate::And, a, Wire::Input(0));
        program.output(top);
        let mb = KernelPolicy::uniform(PbsKernel::MultiBit { grouping_factor: 3 });
        let classical_run = analyze(&program, &p, &classical(), 0.0);
        let mb_run = analyze(&program, &p, &mb, 0.0);
        // First-level gates see fresh inputs either way...
        assert_eq!(classical_run.reports[0].decision_variance, mb_run.reports[0].decision_variance);
        // ...while the second level inherits each kernel's output
        // level, so the variances (and kernels) differ.
        assert_ne!(classical_run.reports[1].decision_variance, mb_run.reports[1].decision_variance);
        assert_eq!(mb_run.reports[1].kernel, PbsKernel::MultiBit { grouping_factor: 3 });
    }

    #[test]
    fn threshold_zero_admits_everything_well_formed() {
        let p = params();
        let lut = Arc::new(Lut::from_function(p.polynomial_size, 2, |m| m).unwrap());
        let mut program = Program::new(1);
        let node = program.linear_lut(vec![1 << 20], vec![Wire::Input(0)], 0, lut);
        program.output(node);
        let policy = AdmissionPolicy::new(p, classical()).with_threshold(0.0);
        assert!(policy.admit(&program).is_ok());
    }
}
