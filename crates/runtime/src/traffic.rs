//! Open-loop traffic generation for demos, tests and benches.
//!
//! Open-loop means arrivals follow their own clock and do not wait for
//! responses — the regime a deployed FHE service actually faces, and
//! the one where batch occupancy and queueing latency trade off. Three
//! processes cover the interesting shapes:
//!
//! * **Poisson** — memoryless arrivals at a mean rate (steady load),
//! * **Bursty** — on/off bursts (the fragmentation-adversarial case),
//! * **Backlog** — everything at once (saturation; measures peak
//!   throughput and full-epoch occupancy).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The arrival process of one client stream.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival times with the given mean rate.
    Poisson {
        /// Mean arrivals per second.
        rate_hz: f64,
    },
    /// Bursts of back-to-back requests separated by idle gaps.
    Bursty {
        /// Requests per burst.
        burst: usize,
        /// Arrival rate inside a burst, per second.
        rate_hz: f64,
        /// Idle gap between bursts.
        idle: Duration,
    },
    /// All requests arrive immediately (saturation).
    Backlog,
}

/// A deterministic open-loop schedule generator: same seed, same
/// schedule — so experiments and regression tests reproduce exactly.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopTrafficGen {
    /// Arrival process shared by every client.
    pub process: ArrivalProcess,
    /// Base seed; each client stream derives its own generator.
    pub seed: u64,
}

impl OpenLoopTrafficGen {
    /// Creates a generator.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        Self { process, seed }
    }

    /// The inter-arrival delays for `client`'s first `n` requests
    /// (delay *before* each request).
    pub fn inter_arrivals(&self, client: u64, n: usize) -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ client.wrapping_mul(0x9e3779b97f4a7c15));
        (0..n).map(|i| self.delay(&mut rng, i)).collect()
    }

    fn delay(&self, rng: &mut StdRng, index: usize) -> Duration {
        match self.process {
            ArrivalProcess::Poisson { rate_hz } => {
                assert!(rate_hz > 0.0, "poisson rate must be positive");
                let u: f64 = rng.gen();
                // Inverse-CDF of the exponential; clamp u away from 1.
                let delay_s = -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate_hz;
                Duration::from_secs_f64(delay_s)
            }
            ArrivalProcess::Bursty { burst, rate_hz, idle } => {
                assert!(rate_hz > 0.0, "burst rate must be positive");
                let burst = burst.max(1);
                if index > 0 && index.is_multiple_of(burst) {
                    idle
                } else {
                    Duration::from_secs_f64(1.0 / rate_hz)
                }
            }
            ArrivalProcess::Backlog => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_matches_rate() {
        let gen = OpenLoopTrafficGen::new(ArrivalProcess::Poisson { rate_hz: 1000.0 }, 7);
        let delays = gen.inter_arrivals(0, 20_000);
        let mean_s: f64 =
            delays.iter().map(Duration::as_secs_f64).sum::<f64>() / delays.len() as f64;
        let ratio = mean_s * 1000.0;
        assert!((0.95..1.05).contains(&ratio), "mean off by {ratio}");
    }

    #[test]
    fn poisson_is_deterministic_per_client_and_distinct_across() {
        let gen = OpenLoopTrafficGen::new(ArrivalProcess::Poisson { rate_hz: 50.0 }, 3);
        assert_eq!(gen.inter_arrivals(1, 64), gen.inter_arrivals(1, 64));
        assert_ne!(gen.inter_arrivals(1, 64), gen.inter_arrivals(2, 64));
    }

    #[test]
    fn bursty_inserts_idle_gaps() {
        let gen = OpenLoopTrafficGen::new(
            ArrivalProcess::Bursty { burst: 4, rate_hz: 1000.0, idle: Duration::from_millis(50) },
            0,
        );
        let delays = gen.inter_arrivals(0, 12);
        assert_eq!(delays[4], Duration::from_millis(50));
        assert_eq!(delays[8], Duration::from_millis(50));
        assert!(delays[1] < Duration::from_millis(2));
    }

    #[test]
    fn backlog_is_all_zero() {
        let gen = OpenLoopTrafficGen::new(ArrivalProcess::Backlog, 0);
        assert!(gen.inter_arrivals(5, 32).iter().all(|d| d.is_zero()));
    }
}
