//! A bounded blocking MPSC/MPMC queue built on `Mutex` + `Condvar`.
//!
//! The ingress side gives the runtime natural backpressure: when the
//! batcher falls behind, client `submit` calls block instead of growing
//! an unbounded buffer. Closing the queue is the shutdown signal — no
//! new items are accepted, but **everything already enqueued is still
//! drained** by consumers, which is what makes drain-on-shutdown
//! lossless.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::sync::lock_unpoisoned;
use std::time::{Duration, Instant};

/// Why a push was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is closed; the item is handed back.
    Closed(T),
}

/// Why a pop returned no item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopError {
    /// The timeout expired with the queue still empty.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Highest depth the queue ever reached — the backpressure gauge
    /// surfaced in `RuntimeReport`.
    high_water: usize,
}

/// A bounded blocking queue; all handles share it through `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false, high_water: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocking push: waits while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] with the item if the queue closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                inner.high_water = inner.high_water.max(inner.items.len());
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocking pop: waits until an item arrives or the queue is closed
    /// *and* drained.
    ///
    /// # Errors
    ///
    /// Returns [`PopError::Closed`] once the queue is closed and empty.
    pub fn pop(&self) -> Result<T, PopError> {
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Ok(item);
            }
            if inner.closed {
                return Err(PopError::Closed);
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Pop with a deadline: waits at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`PopError::TimedOut`] if the timeout expired while the queue
    /// stayed empty; [`PopError::Closed`] once closed and drained.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        let deadline = Instant::now() + timeout;
        let mut inner = lock_unpoisoned(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Ok(item);
            }
            if inner.closed {
                return Err(PopError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PopError::TimedOut);
            }
            let (guard, _result) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
        }
    }

    /// Closes the queue: pending pushes fail, pops drain the remainder.
    pub fn close(&self) {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).items.len()
    }

    /// Whether the queue currently buffers nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest depth the queue ever reached. A high-water mark near
    /// capacity means submitters have been blocking on backpressure.
    pub fn high_water(&self) -> usize {
        lock_unpoisoned(&self.inner).high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Ok(1));
        assert_eq!(q.pop(), Ok(2));
        assert_eq!(q.pop(), Err(PopError::Closed));
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let q = BoundedQueue::new(8);
        assert_eq!(q.high_water(), 0);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.high_water(), 3);
        q.pop().unwrap();
        q.pop().unwrap();
        assert_eq!(q.len(), 1);
        // Draining never lowers the mark...
        assert_eq!(q.high_water(), 3);
        q.push(4).unwrap();
        // ...and refilling below the peak doesn't move it either.
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn pop_timeout_expires() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let t0 = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), Err(PopError::TimedOut));
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn full_queue_blocks_until_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1u32).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop().unwrap(), 1);
        pusher.join().unwrap();
        assert_eq!(q.pop().unwrap(), 2);
    }

    #[test]
    fn close_wakes_blocked_push_with_the_item() {
        // A submitter blocked on backpressure when shutdown arrives
        // must get its item handed back — never deadlock, never lose
        // it silently. The pusher provably blocks (full queue), then
        // close() must wake it onto the closed branch.
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(1));
        // Wait until the pusher is parked in the not_full wait (the
        // queue stays full the whole time, so it cannot complete).
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(PushError::Closed(1)));
        // The pre-close item still drains.
        assert_eq!(q.pop(), Ok(0));
        assert_eq!(q.pop(), Err(PopError::Closed));
    }

    #[test]
    fn close_wakes_blocked_pop_after_drain() {
        // The mirror race: a consumer blocked on an empty queue when
        // shutdown arrives must see Closed, not hang.
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(popper.join().unwrap(), Err(PopError::Closed));
    }

    #[test]
    fn shutdown_race_accounts_for_every_item() {
        // Multi-producer stress against a mid-stream close: every
        // attempted push either lands (and is drained) or is rejected
        // with the item handed back — accepted + rejected == attempted,
        // nothing dropped, nothing duplicated. A tiny capacity keeps
        // producers constantly blocking on backpressure so the
        // close-vs-blocked-push race is actually exercised, and the
        // consumer keeps draining after close (drain-on-shutdown).
        //
        // Deterministic by construction: the consumer itself closes the
        // queue after draining CLOSE_AFTER items, so at close time at
        // most CLOSE_AFTER + capacity of the 2000 attempted items have
        // been accepted — the rest must come back as rejections.
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: u32 = 500;
        const CLOSE_AFTER: usize = 500;
        let q = Arc::new(BoundedQueue::new(2));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut rejected = Vec::new();
                    for i in 0..PER_PRODUCER {
                        let item = (p as u32) * PER_PRODUCER + i;
                        if let Err(PushError::Closed(returned)) = q.push(item) {
                            // The exact item must come back.
                            assert_eq!(returned, item);
                            rejected.push(returned);
                        }
                    }
                    rejected
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut drained = Vec::new();
                while let Ok(item) = q.pop() {
                    drained.push(item);
                    if drained.len() == CLOSE_AFTER {
                        // Slam the door mid-stream with producers still
                        // pushing, then keep draining the remainder.
                        q.close();
                    }
                }
                drained
            })
        };
        let mut seen: Vec<u32> = Vec::new();
        for handle in producers {
            seen.extend(handle.join().unwrap());
        }
        let rejected = seen.len();
        seen.extend(consumer.join().unwrap());
        // At close time at most CLOSE_AFTER + capacity + PRODUCERS
        // items (drained, buffered, or mid-push) had been accepted, so
        // a large majority must have bounced.
        let total = PRODUCERS * PER_PRODUCER as usize;
        assert!(rejected >= total - CLOSE_AFTER - 2 - PRODUCERS);
        // Every attempted item is accounted for exactly once, whether
        // it went through or bounced.
        seen.sort_unstable();
        let expected: Vec<u32> = (0..(PRODUCERS as u32) * PER_PRODUCER).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BoundedQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..100u32 {
                    q.push(i).unwrap();
                }
                q.close();
            })
        };
        let mut seen = Vec::new();
        while let Ok(item) = q.pop() {
            seen.push(item);
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }
}
