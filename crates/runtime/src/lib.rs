//! **strix-runtime** — a streaming two-level batch scheduler serving
//! concurrent PBS request streams end-to-end.
//!
//! The Strix paper's headline is an *end-to-end streaming
//! architecture*: requests arrive continuously and the accelerator
//! stays saturated by forming device-level (`TvLP`) and core-level
//! batches from the live stream (§IV-C). `strix-core` models that
//! analytically; this crate is the software subsystem that actually
//! does it against the functional TFHE stack:
//!
//! 1. an **ingress queue** ([`queue::BoundedQueue`]) accepting tagged
//!    PBS / keyswitch requests from many concurrent clients, with
//!    backpressure and per-client ordering,
//! 2. a **two-level batcher** ([`batcher`]) grouping pending requests
//!    into epochs of `TvLP × core_batch`
//!    ([`strix_core::BatchGeometry`]) under a deadline/size hybrid
//!    [`FlushPolicy`] — flush on batch-full (fragmentation-free, the
//!    Fig. 2 argument) or on deadline (bounded tail latency),
//! 3. a **worker pool** ([`worker`]) executing each epoch through a
//!    [`BatchExecutor`]; the TFHE back-end drives
//!    `BootstrapKey::bootstrap_batch_parallel`, which shards the epoch
//!    across `threads_per_worker` scoped threads — each shard's
//!    key-major loop reuses one bootstrapping-key fetch exactly as an
//!    HSC amortises its bsk stream, and every shard runs on its own
//!    allocation-free `PbsScratch`,
//! 4. a **metrics layer** ([`metrics`]) producing a [`RuntimeReport`]
//!    (latency percentiles, achieved PBS/s, batch-occupancy histogram,
//!    per-epoch thread occupancy, per-class latency attribution, a
//!    sampled per-stage PBS breakdown and a windowed time series) that
//!    sits next to the simulator's `PbsReport` in `strix-bench`,
//!    backed by an end-to-end **tracing layer** ([`trace`]) whose
//!    Chrome trace-event export opens in Perfetto,
//! 5. a **session/dataflow layer** ([`session`]) streaming multi-stage
//!    programs — circuit DAGs and Deep-NN ReLU schedules — through the
//!    same batcher: each [`ProgramSession`] keeps its whole ready
//!    frontier in flight, so independent stages from many concurrent
//!    clients interleave into full epochs instead of each client
//!    serialising on its own dependencies.
//!
//! [`OpenLoopTrafficGen`] supplies Poisson / bursty / backlog arrival
//! schedules for the demo (`examples/streaming_server.rs`), the
//! integration tests and the benches.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use strix_core::BatchGeometry;
//! use strix_runtime::{RequestOp, Runtime, RuntimeConfig, TfheExecutor};
//! use strix_tfhe::bootstrap::Lut;
//! use strix_tfhe::prelude::*;
//!
//! let params = TfheParameters::testing_fast();
//! let (mut key, server) = generate_keys(&params, 1);
//! let runtime = Runtime::start(
//!     RuntimeConfig::new(BatchGeometry::explicit(2, 2)),
//!     TfheExecutor::new(Arc::new(server)),
//! );
//! let relu = Arc::new(
//!     Lut::from_function(params.polynomial_size, 3, |m| if m < 4 { m } else { 0 }).unwrap(),
//! );
//! let mut client = runtime.client();
//! for m in [2u64, 6] {
//!     let ct = key.encrypt_shortint(m, 3).unwrap().as_lwe().clone();
//!     client.submit(ct, RequestOp::Lut(Arc::clone(&relu))).unwrap();
//! }
//! let out: Vec<u64> = (0..2)
//!     .map(|_| {
//!         let ct = client.recv().unwrap().result.unwrap();
//!         let phase = key.decrypt_phase(&ct).unwrap();
//!         strix_tfhe::torus::decode_message(phase, 4)
//!     })
//!     .collect();
//! assert_eq!(out, [2, 0]); // ReLU(2), ReLU(-2)
//! runtime.shutdown();
//! ```

pub mod analyzer;
pub mod batcher;
mod error;
pub mod executor;
pub mod metrics;
pub mod policy;
pub mod queue;
pub mod registry;
pub mod request;
mod runtime;
pub mod session;
mod sync;
pub mod trace;
pub mod traffic;
pub mod worker;

pub use analyzer::{AdmissionPolicy, ProgramAnalysis, WireReport, DEFAULT_THRESHOLD_SIGMAS};
pub use error::RuntimeError;
pub use executor::{
    BatchExecutor, EpochExecution, KernelPolicy, MultiTenantExecutor, TfheExecutor,
};
pub use metrics::{
    ClassLatency, MetricsSink, MetricsWindow, PbsStageBreakdown, RequestRecord, RuntimeReport,
    REPORT_SCHEMA_VERSION,
};
pub use policy::FlushPolicy;
pub use registry::{KeyRegistry, KeyRegistryStats};
pub use request::{ClientId, Epoch, Request, RequestClass, RequestOp, Response, TenantId};
pub use runtime::{ClientHandle, Runtime, RuntimeConfig};
pub use session::{Program, ProgramSession, Wire};
pub use trace::{SpanId, TraceConfig, TraceStage, Tracer};
pub use traffic::{ArrivalProcess, OpenLoopTrafficGen};
