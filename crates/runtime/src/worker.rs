//! The worker pool: executes flushed epochs and routes responses.
//!
//! Workers pull epochs from the batcher's queue, run them through the
//! [`BatchExecutor`], record metrics
//! and deliver each response to its client's channel. Multiple workers
//! may complete epochs out of flush order — the per-client reorder
//! buffer in [`ClientHandle`](crate::runtime::ClientHandle) restores
//! per-client sequencing at the receive side.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};

use crate::error::RuntimeError;
use crate::executor::BatchExecutor;
use crate::metrics::MetricsSink;
use crate::queue::BoundedQueue;
use crate::request::{ClientId, Epoch, Response};

/// Routes responses to per-client channels.
#[derive(Default)]
pub(crate) struct ClientRegistry {
    senders: Mutex<HashMap<ClientId, Sender<Response>>>,
}

impl ClientRegistry {
    pub(crate) fn register(&self, id: ClientId, tx: Sender<Response>) {
        self.senders.lock().expect("registry lock").insert(id, tx);
    }

    pub(crate) fn deregister(&self, id: ClientId) {
        self.senders.lock().expect("registry lock").remove(&id);
    }

    /// Drops every sender. Called after the workers have drained and
    /// joined: receivers then observe disconnection once their
    /// buffered responses are consumed, which is what lets
    /// `ClientHandle::recv` report shutdown instead of blocking.
    pub(crate) fn clear(&self) {
        self.senders.lock().expect("registry lock").clear();
    }

    fn deliver(&self, response: Response) {
        let senders = self.senders.lock().expect("registry lock");
        if let Some(tx) = senders.get(&response.client) {
            // A dropped handle just discards its remaining responses.
            let _ = tx.send(response);
        }
    }
}

pub(crate) fn run(
    epochs: Arc<BoundedQueue<Epoch>>,
    executor: Arc<dyn BatchExecutor>,
    registry: Arc<ClientRegistry>,
    metrics: Arc<MetricsSink>,
) {
    while let Ok(epoch) = epochs.pop() {
        let expected = epoch.requests.len();
        // Thread usage scales with the PBS-bearing subset of the epoch
        // (keyswitch-only requests never shard), so record against that
        // count, not the raw epoch size.
        let pbs_len = epoch.requests.iter().filter(|r| r.op.is_pbs()).count();
        metrics.record_epoch_threads(executor.planned_threads(pbs_len), executor.max_threads());
        let mut results: Vec<Result<_, RuntimeError>> = executor
            .execute(&epoch.requests)
            .into_iter()
            .map(|r| r.map_err(RuntimeError::Tfhe))
            .collect();
        // An executor that breaks its one-result-per-request contract
        // must not strand clients: surplus results are dropped, missing
        // ones surface as explicit losses.
        results.truncate(expected);
        results.resize_with(expected, || Err(RuntimeError::Lost));
        for (request, result) in epoch.requests.into_iter().zip(results) {
            let latency = request.submitted_at.elapsed();
            metrics.record_request(
                request.submitted_at,
                latency,
                request.op.is_pbs(),
                request.op.is_fused_linear(),
                result.is_ok(),
            );
            registry.deliver(Response {
                client: request.client,
                seq: request.seq,
                result,
                latency,
                epoch: epoch.id,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Instant;

    use strix_tfhe::lwe::LweCiphertext;
    use strix_tfhe::TfheError;

    use crate::request::{Request, RequestOp};

    /// Echoes the input ciphertext back; fails on dimension 0.
    struct EchoExecutor;

    impl BatchExecutor for EchoExecutor {
        fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
            batch
                .iter()
                .map(|r| {
                    if r.ct.dimension() == 0 {
                        Err(TfheError::InvalidParameters("zero dimension"))
                    } else {
                        Ok(r.ct.clone())
                    }
                })
                .collect()
        }
    }

    #[test]
    fn worker_delivers_to_the_right_client() {
        let epochs = Arc::new(BoundedQueue::new(8));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        registry.register(ClientId(1), tx_a);
        registry.register(ClientId(2), tx_b);

        let make = |client: u64, seq: u64, body: u64| Request {
            client: ClientId(client),
            seq,
            ct: LweCiphertext::trivial(4, body),
            op: RequestOp::Keyswitch,
            submitted_at: Instant::now(),
        };
        epochs
            .push(Epoch { id: 0, requests: vec![make(1, 0, 10), make(2, 0, 20), make(1, 1, 11)] })
            .unwrap();
        epochs.close();

        run(epochs, Arc::new(EchoExecutor), Arc::clone(&registry), Arc::clone(&metrics));

        let a0 = rx_a.recv().unwrap();
        let a1 = rx_a.recv().unwrap();
        let b0 = rx_b.recv().unwrap();
        assert_eq!((a0.seq, a0.result.unwrap().body()), (0, 10));
        assert_eq!((a1.seq, a1.result.unwrap().body()), (1, 11));
        assert_eq!((b0.seq, b0.result.unwrap().body()), (0, 20));
        assert_eq!(metrics.report(3).requests_completed, 3);
    }

    /// Violates the executor contract: returns one result too few.
    struct ShortExecutor;

    impl BatchExecutor for ShortExecutor {
        fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
            batch.iter().take(batch.len().saturating_sub(1)).map(|r| Ok(r.ct.clone())).collect()
        }
    }

    #[test]
    fn short_executor_results_surface_as_losses_not_hangs() {
        let epochs = Arc::new(BoundedQueue::new(8));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        let (tx, rx) = mpsc::channel();
        registry.register(ClientId(1), tx);
        let make = |seq: u64| Request {
            client: ClientId(1),
            seq,
            ct: LweCiphertext::trivial(4, seq),
            op: RequestOp::Keyswitch,
            submitted_at: Instant::now(),
        };
        epochs.push(Epoch { id: 0, requests: vec![make(0), make(1)] }).unwrap();
        epochs.close();
        run(epochs, Arc::new(ShortExecutor), registry, Arc::clone(&metrics));

        let first = rx.recv().unwrap();
        assert!(first.result.is_ok());
        let second = rx.recv().unwrap();
        assert_eq!(second.seq, 1);
        assert!(matches!(second.result, Err(RuntimeError::Lost)), "missing result must surface");
        let report = metrics.report(2);
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.requests_failed, 1);
    }

    #[test]
    fn dropped_client_does_not_wedge_the_worker() {
        let epochs = Arc::new(BoundedQueue::new(8));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        // No registered client at all.
        epochs
            .push(Epoch {
                id: 0,
                requests: vec![Request {
                    client: ClientId(9),
                    seq: 0,
                    ct: LweCiphertext::trivial(4, 1),
                    op: RequestOp::Keyswitch,
                    submitted_at: Instant::now(),
                }],
            })
            .unwrap();
        epochs.close();
        run(epochs, Arc::new(EchoExecutor), registry, Arc::clone(&metrics));
        assert_eq!(metrics.report(1).requests_completed, 1);
    }
}
