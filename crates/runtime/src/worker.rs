//! The worker pool: executes flushed epochs and routes responses.
//!
//! Workers pull epochs from the batcher's queue, run them through the
//! [`BatchExecutor`], record metrics
//! and deliver each response to its client's channel. Multiple workers
//! may complete epochs out of flush order — the per-client reorder
//! buffer in [`ClientHandle`](crate::runtime::ClientHandle) restores
//! per-client sequencing at the receive side.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::RuntimeError;
use crate::executor::BatchExecutor;
use crate::metrics::{MetricsSink, RequestRecord};
use crate::queue::BoundedQueue;
use crate::request::{ClientId, Epoch, Response};
use crate::sync::lock_unpoisoned;
use crate::trace::{TraceStage, Tracer};

/// Routes responses to per-client channels.
#[derive(Default)]
pub(crate) struct ClientRegistry {
    senders: Mutex<HashMap<ClientId, Sender<Response>>>,
}

impl ClientRegistry {
    pub(crate) fn register(&self, id: ClientId, tx: Sender<Response>) {
        lock_unpoisoned(&self.senders).insert(id, tx);
    }

    pub(crate) fn deregister(&self, id: ClientId) {
        lock_unpoisoned(&self.senders).remove(&id);
    }

    /// Drops every sender. Called after the workers have drained and
    /// joined: receivers then observe disconnection once their
    /// buffered responses are consumed, which is what lets
    /// `ClientHandle::recv` report shutdown instead of blocking.
    pub(crate) fn clear(&self) {
        lock_unpoisoned(&self.senders).clear();
    }

    fn deliver(&self, response: Response) {
        let senders = lock_unpoisoned(&self.senders);
        if let Some(tx) = senders.get(&response.client) {
            // A dropped handle just discards its remaining responses.
            let _ = tx.send(response);
        }
    }
}

pub(crate) fn run(
    epochs: Arc<BoundedQueue<Epoch>>,
    executor: Arc<dyn BatchExecutor>,
    registry: Arc<ClientRegistry>,
    metrics: Arc<MetricsSink>,
    tracer: Arc<Tracer>,
    profile_every: u64,
) {
    while let Ok(epoch) = epochs.pop() {
        let expected = epoch.requests.len();
        // Thread usage scales with the PBS-bearing subset of the epoch
        // (keyswitch-only requests never shard), so record against that
        // count, not the raw epoch size.
        let pbs_len = epoch.requests.iter().filter(|r| r.op.is_pbs()).count();
        metrics.record_epoch_threads(executor.planned_threads(pbs_len), executor.max_threads());
        // Sampling decision: every `profile_every`-th epoch (by flush
        // id, so it's deterministic and uniform across workers with no
        // shared counter) runs the probed production kernel and feeds
        // the per-stage breakdown. 0 disables sampling entirely.
        let profiled = profile_every > 0 && epoch.id % profile_every == 0;
        let execution = executor.execute_epoch(&epoch.requests, profiled);
        if let Some((timings, pbs_jobs)) = &execution.stage_sample {
            metrics.record_stage_sample(timings, *pbs_jobs);
        }
        // Per-kernel dispatch accounting: which kernel the epoch's PBS
        // jobs actually ran through (after any classical fallback).
        let [classical_jobs, multi_bit_jobs] = execution.kernel_jobs;
        if classical_jobs + multi_bit_jobs > 0 {
            metrics.record_kernel_jobs(classical_jobs, multi_bit_jobs);
        }
        // The epoch-level execution timeline applies to every
        // PBS-bearing span in the epoch: the batched blind rotation and
        // the batched keyswitch tail are shared work, so each traced
        // request shows the same pbs/keyswitch sub-slices.
        for request in epoch.requests.iter().filter(|r| r.op.is_pbs()) {
            for (span, stage) in [
                (execution.pbs_span, (TraceStage::PbsStart, TraceStage::PbsEnd)),
                (execution.ks_span, (TraceStage::KsStart, TraceStage::KsEnd)),
            ] {
                if let Some((t0, t1)) = span {
                    let id = Some(epoch.id);
                    tracer.record_at(request.span, request.client, request.seq, id, stage.0, t0);
                    tracer.record_at(request.span, request.client, request.seq, id, stage.1, t1);
                }
            }
        }
        let mut results: Vec<Result<_, RuntimeError>> =
            execution.results.into_iter().map(|r| r.map_err(RuntimeError::Tfhe)).collect();
        // An executor that breaks its one-result-per-request contract
        // must not strand clients: surplus results are dropped, missing
        // ones surface as explicit losses.
        results.truncate(expected);
        results.resize_with(expected, || Err(RuntimeError::Lost));
        for (request, result) in epoch.requests.into_iter().zip(results) {
            let completed_at = Instant::now();
            let latency = completed_at.saturating_duration_since(request.submitted_at);
            // The batcher stamps both waypoints; epochs injected by
            // tests may omit them, in which case the missing interval
            // collapses to zero rather than inventing time.
            let batched = request.batched_at.unwrap_or(request.submitted_at);
            let flushed = request.flushed_at.unwrap_or(batched);
            metrics.record_request(RequestRecord {
                submitted_at: request.submitted_at,
                latency,
                queue_wait: batched.saturating_duration_since(request.submitted_at),
                batch_wait: flushed.saturating_duration_since(batched),
                execute: completed_at.saturating_duration_since(flushed),
                class: request.op.class(),
                fused_linear: request.op.is_fused_linear(),
                ok: result.is_ok(),
            });
            tracer.record_at(
                request.span,
                request.client,
                request.seq,
                Some(epoch.id),
                TraceStage::Completed,
                completed_at,
            );
            registry.deliver(Response {
                client: request.client,
                seq: request.seq,
                span: request.span,
                result,
                latency,
                epoch: epoch.id,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    use strix_tfhe::lwe::LweCiphertext;
    use strix_tfhe::TfheError;

    use crate::request::{Request, RequestOp, TenantId};
    use crate::trace::SpanId;

    /// Echoes the input ciphertext back; fails on dimension 0.
    struct EchoExecutor;

    impl BatchExecutor for EchoExecutor {
        fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
            batch
                .iter()
                .map(|r| {
                    if r.ct.dimension() == 0 {
                        Err(TfheError::InvalidParameters("zero dimension"))
                    } else {
                        Ok(r.ct.clone())
                    }
                })
                .collect()
        }
    }

    #[test]
    fn worker_delivers_to_the_right_client() {
        let epochs = Arc::new(BoundedQueue::new(8));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        let (tx_a, rx_a) = mpsc::channel();
        let (tx_b, rx_b) = mpsc::channel();
        registry.register(ClientId(1), tx_a);
        registry.register(ClientId(2), tx_b);

        let make = |client: u64, seq: u64, body: u64| {
            Request::new(
                ClientId(client),
                seq,
                SpanId(client * 100 + seq),
                LweCiphertext::trivial(4, body),
                RequestOp::Keyswitch,
            )
        };
        epochs
            .push(Epoch {
                id: 0,
                tenant: TenantId::default(),
                requests: vec![make(1, 0, 10), make(2, 0, 20), make(1, 1, 11)],
            })
            .unwrap();
        epochs.close();

        run(
            epochs,
            Arc::new(EchoExecutor),
            Arc::clone(&registry),
            Arc::clone(&metrics),
            Arc::new(Tracer::default()),
            0,
        );

        let a0 = rx_a.recv().unwrap();
        let a1 = rx_a.recv().unwrap();
        let b0 = rx_b.recv().unwrap();
        assert_eq!((a0.seq, a0.result.unwrap().body()), (0, 10));
        assert_eq!((a1.seq, a1.result.unwrap().body()), (1, 11));
        assert_eq!((b0.seq, b0.result.unwrap().body()), (0, 20));
        assert_eq!(metrics.report(3).requests_completed, 3);
    }

    /// Violates the executor contract: returns one result too few.
    struct ShortExecutor;

    impl BatchExecutor for ShortExecutor {
        fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
            batch.iter().take(batch.len().saturating_sub(1)).map(|r| Ok(r.ct.clone())).collect()
        }
    }

    #[test]
    fn short_executor_results_surface_as_losses_not_hangs() {
        let epochs = Arc::new(BoundedQueue::new(8));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        let (tx, rx) = mpsc::channel();
        registry.register(ClientId(1), tx);
        let make = |seq: u64| {
            Request::new(
                ClientId(1),
                seq,
                SpanId(seq),
                LweCiphertext::trivial(4, seq),
                RequestOp::Keyswitch,
            )
        };
        epochs
            .push(Epoch { id: 0, tenant: TenantId::default(), requests: vec![make(0), make(1)] })
            .unwrap();
        epochs.close();
        run(
            epochs,
            Arc::new(ShortExecutor),
            registry,
            Arc::clone(&metrics),
            Arc::new(Tracer::default()),
            0,
        );

        let first = rx.recv().unwrap();
        assert!(first.result.is_ok());
        let second = rx.recv().unwrap();
        assert_eq!(second.seq, 1);
        assert!(matches!(second.result, Err(RuntimeError::Lost)), "missing result must surface");
        let report = metrics.report(2);
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.requests_failed, 1);
    }

    #[test]
    fn dropped_client_does_not_wedge_the_worker() {
        let epochs = Arc::new(BoundedQueue::new(8));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        // No registered client at all.
        epochs
            .push(Epoch {
                id: 0,
                tenant: TenantId::default(),
                requests: vec![Request::new(
                    ClientId(9),
                    0,
                    SpanId(0),
                    LweCiphertext::trivial(4, 1),
                    RequestOp::Keyswitch,
                )],
            })
            .unwrap();
        epochs.close();
        run(
            epochs,
            Arc::new(EchoExecutor),
            registry,
            Arc::clone(&metrics),
            Arc::new(Tracer::default()),
            0,
        );
        assert_eq!(metrics.report(1).requests_completed, 1);
    }

    /// Counts how often it was asked for a profiled execution.
    struct ProfileCountingExecutor(Mutex<Vec<(u64, bool)>>);

    impl BatchExecutor for ProfileCountingExecutor {
        fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
            batch.iter().map(|r| Ok(r.ct.clone())).collect()
        }

        fn execute_epoch(
            &self,
            batch: &[Request],
            profiled: bool,
        ) -> crate::executor::EpochExecution {
            self.0.lock().unwrap().push((batch[0].seq, profiled));
            crate::executor::EpochExecution::from_results(self.execute(batch))
        }
    }

    #[test]
    fn every_nth_epoch_is_profiled() {
        let epochs = Arc::new(BoundedQueue::new(16));
        let registry = Arc::new(ClientRegistry::default());
        let metrics = Arc::new(MetricsSink::default());
        let exec = Arc::new(ProfileCountingExecutor(Mutex::new(Vec::new())));
        for id in 0..6u64 {
            epochs
                .push(Epoch {
                    id,
                    tenant: TenantId::default(),
                    requests: vec![Request::new(
                        ClientId(1),
                        id,
                        SpanId(id),
                        LweCiphertext::trivial(4, 0),
                        RequestOp::Keyswitch,
                    )],
                })
                .unwrap();
        }
        epochs.close();
        run(
            Arc::clone(&epochs),
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
            registry,
            metrics,
            Arc::new(Tracer::default()),
            3,
        );
        let seen = exec.0.lock().unwrap().clone();
        let profiled: Vec<bool> = seen.iter().map(|&(_, p)| p).collect();
        assert_eq!(profiled, [true, false, false, true, false, false]);
    }
}
