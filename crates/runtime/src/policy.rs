//! The deadline/size hybrid flush policy.
//!
//! The paper's Fig. 2 argument: undersized blind-rotation batches waste
//! the bootstrapping-key stream (fragmentation), so the scheduler
//! should wait for a full `TvLP × core_batch` epoch — but a live
//! service cannot wait forever, so a deadline bounds the total wait of
//! the *oldest* request in an open batch, measured from its
//! `submitted_at` timestamp. Ingress queueing time counts against the
//! bound: `max_delay` limits submit-to-flush scheduling delay, not
//! merely time spent in an open batch. Flush whichever trips first:
//! batch-full (throughput-optimal) or deadline (latency-bounded).

use std::time::Duration;

use strix_core::BatchGeometry;

/// When the batcher flushes an open epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush as soon as this many requests are batched — the epoch
    /// size `TvLP × core_batch` of the mirrored accelerator config.
    pub max_epoch: usize,
    /// Flush when the oldest batched request has waited this long
    /// since submission (ingress queueing included).
    pub max_delay: Duration,
}

impl FlushPolicy {
    /// Policy mirroring an accelerator batch geometry with the given
    /// deadline.
    pub fn from_geometry(geometry: BatchGeometry, max_delay: Duration) -> Self {
        Self { max_epoch: geometry.epoch_size(), max_delay }
    }

    /// Whether an open batch of `len` requests must flush now.
    #[inline]
    pub fn is_full(&self, len: usize) -> bool {
        len >= self.max_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sets_epoch() {
        let p =
            FlushPolicy::from_geometry(BatchGeometry::explicit(8, 32), Duration::from_millis(5));
        assert_eq!(p.max_epoch, 256);
        assert!(!p.is_full(255));
        assert!(p.is_full(256));
    }
}
