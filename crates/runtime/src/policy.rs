//! The deadline/size hybrid flush policy.
//!
//! The paper's Fig. 2 argument: undersized blind-rotation batches waste
//! the bootstrapping-key stream (fragmentation), so the scheduler
//! should wait for a full `TvLP × core_batch` epoch — but a live
//! service cannot wait forever, so a deadline bounds the total wait of
//! the *oldest* request in an open batch, measured from its
//! `submitted_at` timestamp. Ingress queueing time counts against the
//! bound: `max_delay` limits submit-to-flush scheduling delay, not
//! merely time spent in an open batch. Flush whichever trips first:
//! batch-full (throughput-optimal) or deadline (latency-bounded).
//!
//! With multiple tenants the batcher keeps one open batch per tenant
//! (epochs never mix keys) and arbitrates flushes with deficit round
//! robin: each rotation visit credits a tenant [`FlushPolicy::quantum`]
//! requests, and a tenant only spends credit on batch-full flushes.
//! Deadline flushes always go through — the latency bound is a
//! guarantee, not a quota — so the quantum shapes throughput sharing
//! under saturation without ever stretching the tail.

use std::time::Duration;

use strix_core::BatchGeometry;

/// When the batcher flushes an open epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush as soon as this many requests are batched — the epoch
    /// size `TvLP × core_batch` of the mirrored accelerator config.
    pub max_epoch: usize,
    /// Flush when the oldest batched request has waited this long
    /// since submission (ingress queueing included).
    pub max_delay: Duration,
    /// Deficit-round-robin credit (in requests) granted to each tenant
    /// with pending work per flush rotation. A tenant spends credit
    /// when a *full* batch flushes; deadline flushes bypass the quota.
    /// One full epoch per visit (`quantum == max_epoch`) reproduces
    /// the single-tenant policy exactly, which is why
    /// [`Self::from_geometry`] defaults to it.
    pub quantum: usize,
}

impl FlushPolicy {
    /// A policy flushing full epochs or on deadline, with the fair
    /// default of one full epoch of DRR credit per rotation visit.
    pub fn new(max_epoch: usize, max_delay: Duration) -> Self {
        Self { max_epoch, max_delay, quantum: max_epoch }
    }

    /// Policy mirroring an accelerator batch geometry with the given
    /// deadline.
    pub fn from_geometry(geometry: BatchGeometry, max_delay: Duration) -> Self {
        Self::new(geometry.epoch_size(), max_delay)
    }

    /// Overrides the DRR quantum (clamped to at least 1: zero credit
    /// would starve every full-batch flush forever).
    #[must_use]
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Whether an open batch of `len` requests must flush now.
    #[inline]
    pub fn is_full(&self, len: usize) -> bool {
        len >= self.max_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sets_epoch() {
        let p =
            FlushPolicy::from_geometry(BatchGeometry::explicit(8, 32), Duration::from_millis(5));
        assert_eq!(p.max_epoch, 256);
        assert_eq!(p.quantum, 256, "default credit is one full epoch per visit");
        assert!(!p.is_full(255));
        assert!(p.is_full(256));
    }

    #[test]
    fn quantum_override_clamps_to_one() {
        let p = FlushPolicy::new(8, Duration::from_millis(5)).with_quantum(0);
        assert_eq!(p.quantum, 1);
        assert_eq!(p.with_quantum(3).quantum, 3);
    }
}
