//! Poison-tolerant lock acquisition shared by the runtime's internal
//! `Mutex`-protected state.
//!
//! A poisoned mutex means some thread panicked while holding the lock.
//! For the runtime's bookkeeping state (queues, metric counters, trace
//! rings, the response registry) the data is still structurally valid —
//! every critical section either completes its update or leaves the
//! previous consistent value — so recovering the guard is strictly
//! better than cascading the panic into unrelated client threads.

use std::sync::{Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}
