//! Batch execution back-ends.
//!
//! The scheduler is execution-agnostic: workers hand each flushed
//! epoch to a [`BatchExecutor`]. The production back-end is
//! [`TfheExecutor`], which drives `strix-tfhe`'s key-major batched
//! bootstrap so one pass over the bootstrapping key serves the whole
//! epoch — the software realisation of core-level batching. Tests use
//! lightweight synthetic executors to exercise scheduling behaviour in
//! isolation.

use std::sync::Arc;

use strix_tfhe::bootstrap::PbsJob;
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::{ServerKey, TfheError};

use crate::request::{Request, RequestOp};

/// Executes one epoch of requests.
pub trait BatchExecutor: Send + Sync + 'static {
    /// Runs every request, returning one result per request **in the
    /// same order**.
    fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>>;
}

/// The TFHE back-end: batched PBS with amortised bootstrapping-key
/// access, plus keyswitching where the operation asks for it.
pub struct TfheExecutor {
    server: Arc<ServerKey>,
}

impl TfheExecutor {
    /// Wraps a server key.
    pub fn new(server: Arc<ServerKey>) -> Self {
        Self { server }
    }
}

impl BatchExecutor for TfheExecutor {
    fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
        // Collect every PBS-bearing request into one key-major batch;
        // keyswitch-only requests run directly. Shape validation
        // happens here, per job, so one malformed request fails alone
        // instead of poisoning (or serialising) the shared batch call.
        let bsk = self.server.bootstrap_key();
        let mut results: Vec<Option<Result<LweCiphertext, TfheError>>> =
            batch.iter().map(|_| None).collect();
        let mut pbs_indices = Vec::new();
        let mut jobs: Vec<PbsJob<'_>> = Vec::new();
        for (i, req) in batch.iter().enumerate() {
            match &req.op {
                RequestOp::Lut(lut) | RequestOp::Bootstrap(lut) => {
                    match bsk.check_shape(&req.ct, lut) {
                        Ok(()) => {
                            pbs_indices.push(i);
                            jobs.push(PbsJob { ct: &req.ct, lut });
                        }
                        Err(e) => results[i] = Some(Err(e)),
                    }
                }
                RequestOp::Keyswitch => {
                    results[i] = Some(self.server.keyswitch_key().keyswitch(&req.ct));
                }
            }
        }

        // With shapes pre-validated the batch call cannot mismatch;
        // still, an unexpected error fails its jobs rather than
        // panicking the worker thread.
        match bsk.bootstrap_batch(&jobs) {
            Ok(booted) => {
                for (&i, out) in pbs_indices.iter().zip(booted) {
                    results[i] = Some(match &batch[i].op {
                        RequestOp::Lut(_) => self.server.keyswitch_key().keyswitch(&out),
                        _ => Ok(out),
                    });
                }
            }
            Err(e) => {
                for &i in &pbs_indices {
                    results[i] = Some(Err(e.clone()));
                }
            }
        }

        results.into_iter().map(|r| r.expect("every request receives a result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use strix_tfhe::bootstrap::Lut;
    use strix_tfhe::prelude::*;

    use crate::request::ClientId;

    fn request(client: u64, seq: u64, ct: LweCiphertext, op: RequestOp) -> Request {
        Request { client: ClientId(client), seq, ct, op, submitted_at: Instant::now() }
    }

    #[test]
    fn mixed_epoch_executes_all_op_kinds() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 42);
        let server = Arc::new(server);
        let exec = TfheExecutor::new(Arc::clone(&server));
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| (m + 1) % 4).unwrap());

        let ct0 = client.encrypt_shortint(1, p).unwrap().as_lwe().clone();
        let ct1 = client.encrypt_shortint(2, p).unwrap().as_lwe().clone();
        // A keyswitch-only request needs an extracted-dimension input.
        let big = server
            .bootstrap_key()
            .bootstrap(
                client.encrypt_shortint(3, p).unwrap().as_lwe(),
                &Lut::from_function(params.polynomial_size, p, |m| m).unwrap(),
            )
            .unwrap();

        let batch = vec![
            request(0, 0, ct0, RequestOp::Lut(Arc::clone(&lut))),
            request(1, 0, big, RequestOp::Keyswitch),
            request(0, 1, ct1, RequestOp::Bootstrap(Arc::clone(&lut))),
        ];
        let results = exec.execute(&batch);
        assert_eq!(results.len(), 3);

        let decode = |ct: &LweCiphertext, bits: u32| {
            let phase = client.decrypt_phase(ct).unwrap();
            strix_tfhe::torus::decode_message(phase, bits + 1)
        };
        // Lut(+1) on 1 -> 2, keyswitched to dimension n.
        let out0 = results[0].as_ref().unwrap();
        assert_eq!(out0.dimension(), params.lwe_dimension);
        assert_eq!(decode(out0, p), 2);
        // Keyswitch of identity(3) -> 3.
        let out1 = results[1].as_ref().unwrap();
        assert_eq!(out1.dimension(), params.lwe_dimension);
        assert_eq!(decode(out1, p), 3);
        // Raw bootstrap stays at the extracted dimension; (2+1)=3.
        let out2 = results[2].as_ref().unwrap();
        assert_eq!(out2.dimension(), params.extracted_lwe_dimension());
        assert_eq!(decode(out2, p), 3);
    }

    #[test]
    fn malformed_request_fails_alone_not_the_epoch() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 43);
        let exec = TfheExecutor::new(Arc::new(server));
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| m).unwrap());

        let good = client.encrypt_shortint(2, p).unwrap().as_lwe().clone();
        let bad = LweCiphertext::trivial(7, 0); // wrong dimension
        let batch = vec![
            request(0, 0, good, RequestOp::Lut(Arc::clone(&lut))),
            request(1, 0, bad, RequestOp::Lut(lut)),
        ];
        let results = exec.execute(&batch);
        assert!(results[0].is_ok(), "healthy request must survive");
        assert!(results[1].is_err(), "malformed request must fail");
        let phase = client.decrypt_phase(results[0].as_ref().unwrap()).unwrap();
        assert_eq!(strix_tfhe::torus::decode_message(phase, p + 1), 2);
    }
}
