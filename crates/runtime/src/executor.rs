//! Batch execution back-ends.
//!
//! The scheduler is execution-agnostic: workers hand each flushed
//! epoch to a [`BatchExecutor`]. The production back-end is
//! [`TfheExecutor`], which drives `strix-tfhe`'s key-major batched
//! bootstrap so one pass over the bootstrapping key serves the whole
//! epoch — the software realisation of core-level batching. Tests use
//! lightweight synthetic executors to exercise scheduling behaviour in
//! isolation.

use std::sync::Arc;
use std::time::Instant;

use strix_tfhe::boolean::gate_sign_lut;
use strix_tfhe::bootstrap::{Lut, MultiBitBootstrapKey, PbsJob};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::profiler::{PbsStage, StageTimings};
use strix_tfhe::{PbsKernel, ServerKey, TfheError};

use crate::analyzer::AdmissionPolicy;
use crate::registry::KeyRegistry;
use crate::request::{Request, RequestClass, RequestOp};

/// Per-request-class PBS kernel selection, mirroring the
/// CLASSICAL-vs-MULTI_BIT dispatch of GPU TFHE back-ends: a default
/// kernel plus optional per-[`RequestClass`] overrides, resolved per
/// request at epoch execution time.
///
/// The policy expresses *intent*; the executor resolves it against the
/// key material actually present. A class routed to
/// [`PbsKernel::MultiBit`] falls back to the classical kernel when the
/// server key carries no grouped bootstrapping key (the grouping factor
/// inside the policy's `MultiBit` variant is advisory — the server key
/// holds exactly one grouped key, generated at the parameter set's
/// grouping factor).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelPolicy {
    default: PbsKernel,
    overrides: [Option<PbsKernel>; RequestClass::ALL.len()],
}

impl KernelPolicy {
    /// A policy routing every request class through `kernel`.
    pub fn uniform(kernel: PbsKernel) -> Self {
        Self { default: kernel, overrides: [None; RequestClass::ALL.len()] }
    }

    /// Overrides the kernel for one request class.
    pub fn with_class(mut self, class: RequestClass, kernel: PbsKernel) -> Self {
        self.overrides[class.index()] = Some(kernel);
        self
    }

    /// The kernel this policy selects for `class`.
    pub fn kernel_for(&self, class: RequestClass) -> PbsKernel {
        self.overrides[class.index()].unwrap_or(self.default)
    }

    /// The default kernel (used by classes without an override).
    pub fn default_kernel(&self) -> PbsKernel {
        self.default
    }
}

/// Computes the linear preamble
/// `weights[0]·ct + Σ weights[i+1]·extra[i] + offset` shared by gate
/// and [`RequestOp::LinearLut`] requests (and by the synchronous
/// reference path in
/// [`Program::run_sync`](crate::session::Program::run_sync), so the
/// two executions stay bit-identical).
///
/// # Errors
///
/// Returns [`TfheError::ParameterMismatch`] if the weight count does
/// not match the input count or the input dimensions disagree.
pub(crate) fn linear_preamble(
    ct: &LweCiphertext,
    weights: &[i64],
    extra: &[LweCiphertext],
    offset: u64,
) -> Result<LweCiphertext, TfheError> {
    if weights.len() != extra.len() + 1 {
        return Err(TfheError::ParameterMismatch {
            what: "linear weights vs inputs",
            left: weights.len(),
            right: extra.len() + 1,
        });
    }
    let mut acc = ct.clone();
    acc.scalar_mul_assign(weights[0]);
    for (w, x) in weights[1..].iter().zip(extra) {
        acc.add_scaled_assign(x, *w)?;
    }
    acc.plaintext_add_assign(offset);
    Ok(acc)
}

/// What one epoch's execution produced, beyond the results themselves:
/// the coarse execution timeline the tracer turns into `pbs` /
/// `keyswitch` slices, and — on sampled epochs — the per-stage timing
/// breakdown from the probed production kernel.
pub struct EpochExecution {
    /// One result per request, in request order.
    pub results: Vec<Result<LweCiphertext, TfheError>>,
    /// When the epoch's batched blind rotation started and ended
    /// (absent if the epoch carried no PBS jobs).
    pub pbs_span: Option<(Instant, Instant)>,
    /// When the epoch's post-PBS batched keyswitch tail started and
    /// ended (absent if nothing needed switching back).
    pub ks_span: Option<(Instant, Instant)>,
    /// Per-stage timings and the PBS job count they cover, present only
    /// when the epoch was executed through the probed kernel.
    pub stage_sample: Option<(StageTimings, usize)>,
    /// How many of the epoch's PBS jobs ran through each kernel, as
    /// `[classical, multi_bit]` — the observable of the per-class
    /// kernel dispatch, recorded into the metrics by the worker.
    pub kernel_jobs: [usize; 2],
}

impl EpochExecution {
    /// Wraps bare results with no timeline — what synthetic executors
    /// and the default trait impl produce.
    pub fn from_results(results: Vec<Result<LweCiphertext, TfheError>>) -> Self {
        Self { results, pbs_span: None, ks_span: None, stage_sample: None, kernel_jobs: [0, 0] }
    }
}

/// Executes one epoch of requests.
pub trait BatchExecutor: Send + Sync + 'static {
    /// Runs every request, returning one result per request **in the
    /// same order**.
    fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>>;

    /// Runs one epoch and reports its execution timeline; when
    /// `profiled` is set the back-end should execute through its
    /// instrumented path and attach a per-stage sample. The default
    /// delegates to [`Self::execute`] with no timeline, so synthetic
    /// test executors need not care.
    fn execute_epoch(&self, batch: &[Request], profiled: bool) -> EpochExecution {
        let _ = profiled;
        EpochExecution::from_results(self.execute(batch))
    }

    /// How many threads [`Self::execute`] will use for a batch
    /// carrying `batch_len` PBS jobs (workers pass the PBS-bearing
    /// request count, since keyswitch-only requests never shard).
    /// Recorded into the metrics so the report can show per-epoch
    /// thread occupancy.
    fn planned_threads(&self, batch_len: usize) -> usize {
        let _ = batch_len;
        1
    }

    /// The thread budget this executor was configured with (the
    /// denominator of the thread-occupancy metric).
    fn max_threads(&self) -> usize {
        1
    }

    /// The static noise-budget admission policy programs submitted
    /// through this executor must satisfy, if it enforces one. The
    /// runtime captures it at start-up and every
    /// [`ProgramSession`](crate::session::ProgramSession) checks its
    /// program against it before the first request is enqueued.
    /// Synthetic executors (no key material, no noise model) return
    /// `None`: nothing is checked.
    fn admission(&self) -> Option<AdmissionPolicy> {
        None
    }

    /// The resolved SIMD kernel backend this executor's spectral
    /// transforms run on (a [`strix_tfhe::StrixFftBackend`] label,
    /// never `"auto"`). Captured once at runtime start-up and surfaced
    /// in [`RuntimeReport`](crate::metrics::RuntimeReport) next to the
    /// kernel job counters. Synthetic executors perform no transforms
    /// and return `None`.
    fn fft_backend(&self) -> Option<String> {
        None
    }
}

/// The TFHE back-end: batched PBS with amortised bootstrapping-key
/// access — optionally split across an intra-epoch thread pool
/// ([`strix_tfhe::bootstrap::BootstrapKey::bootstrap_batch_parallel`])
/// — plus batched keyswitching where the operation asks for it. Both
/// tails of Algorithm 2 run batched: the post-PBS keyswitches are
/// sharded across the same thread budget as the blind rotation
/// ([`strix_tfhe::keyswitch::KeySwitchKey::keyswitch_batch_parallel`]),
/// and keyswitch-only requests form one batch per epoch (one digit
/// buffer, no per-request allocation), borrowed straight from the
/// request structures.
pub struct TfheExecutor {
    server: Arc<ServerKey>,
    threads: usize,
    /// Per-request-class kernel selection, resolved against the server
    /// key's material at epoch execution time.
    policy: KernelPolicy,
    /// The sign LUT shared by every gate request, built once per
    /// executor instead of once per gate.
    gate_lut: Lut,
    /// Minimum predicted decision margin (in sigmas) the admission
    /// analyzer requires of every submitted program.
    admission_threshold_sigmas: f64,
}

impl TfheExecutor {
    /// Wraps a server key; epochs execute on the calling worker thread
    /// alone.
    pub fn new(server: Arc<ServerKey>) -> Self {
        Self::with_threads(server, 1)
    }

    /// Wraps a server key with an intra-epoch thread budget: each
    /// epoch's PBS jobs are sharded across up to `threads` scoped
    /// threads sharing the bootstrapping key, bit-identically to the
    /// sequential path. `threads` is clamped to at least 1.
    ///
    /// The kernel policy follows the server key's parameter set: a key
    /// generated for [`PbsKernel::MultiBit`] parameters routes every
    /// class through the grouped kernel, a classical key through the
    /// classical one. Use [`Self::with_policy`] to override per class.
    pub fn with_threads(server: Arc<ServerKey>, threads: usize) -> Self {
        let policy = KernelPolicy::uniform(server.params().pbs_kernel);
        Self::with_policy(server, threads, policy)
    }

    /// Wraps a server key with an explicit per-class kernel policy.
    /// Classes the policy routes to a kernel whose key material the
    /// server key does not carry fall back to the classical kernel
    /// (always present).
    pub fn with_policy(server: Arc<ServerKey>, threads: usize, policy: KernelPolicy) -> Self {
        let gate_lut = gate_sign_lut(server.params().polynomial_size);
        Self {
            server,
            threads: threads.max(1),
            policy,
            gate_lut,
            admission_threshold_sigmas: crate::analyzer::DEFAULT_THRESHOLD_SIGMAS,
        }
    }

    /// Overrides the admission threshold: the minimum predicted
    /// decision margin, in standard deviations of the accumulated
    /// noise, the static analyzer requires of every program node. A
    /// non-positive threshold admits everything.
    pub fn with_admission_threshold(mut self, sigmas: f64) -> Self {
        self.admission_threshold_sigmas = sigmas;
        self
    }

    /// The kernel policy this executor dispatches with.
    pub fn kernel_policy(&self) -> KernelPolicy {
        self.policy
    }

    /// The grouped bootstrapping key `class` routes through, when the
    /// policy selects the multi-bit kernel **and** the server key
    /// carries the material; `None` means the classical kernel.
    fn multi_bit_for(&self, class: RequestClass) -> Option<&MultiBitBootstrapKey> {
        multi_bit_on_key(&self.server, &self.policy, class)
    }

    /// The kernel `class` actually executes with, after resolving the
    /// policy's intent against the server key's material: the grouped
    /// key's own grouping factor when multi-bit is selected and
    /// present, the classical kernel otherwise.
    pub fn effective_kernel(&self, class: RequestClass) -> PbsKernel {
        match self.multi_bit_for(class) {
            Some(mb) => PbsKernel::MultiBit { grouping_factor: mb.grouping_factor() },
            None => PbsKernel::Classical,
        }
    }
}

/// Block-aware intra-epoch thread plan shared by the TFHE executors:
/// the blocked CMUX amortises each key row over up to `CMUX_JOB_BLOCK`
/// accumulators, so a shard smaller than one block trades that
/// locality for thread count. Cap the shard count at one block per
/// thread (the keyswitch tail, which has no blocking, shards with the
/// plain thread budget instead). Bit-identity holds for any split.
fn plan_threads(threads: usize, batch_len: usize) -> usize {
    let max_useful = batch_len.div_ceil(strix_tfhe::scratch::CMUX_JOB_BLOCK);
    threads.min(max_useful).max(1)
}

/// The grouped bootstrapping key `class` routes through on `server`,
/// when the policy selects the multi-bit kernel **and** the key
/// carries the material; `None` means the classical kernel.
fn multi_bit_on_key<'a>(
    server: &'a ServerKey,
    policy: &KernelPolicy,
    class: RequestClass,
) -> Option<&'a MultiBitBootstrapKey> {
    match policy.kernel_for(class) {
        PbsKernel::MultiBit { .. } => server.multi_bit_bootstrap_key(),
        PbsKernel::Classical => None,
    }
}

/// Runs one epoch of requests against a specific server key — the
/// shared body of [`TfheExecutor`] (one fixed key for the runtime's
/// lifetime) and [`MultiTenantExecutor`] (the epoch's tenant key,
/// resolved from the [`KeyRegistry`] and pinned for the whole PBS+KS
/// run by the borrow held here).
fn execute_epoch_on_key(
    server: &ServerKey,
    threads: usize,
    policy: &KernelPolicy,
    gate_lut: &Lut,
    batch: &[Request],
    profiled: bool,
) -> EpochExecution {
    // Collect every PBS-bearing request into one key-major batch;
    // keyswitch-only requests run directly. Shape validation
    // happens here, per job, so one malformed request fails alone
    // instead of poisoning (or serialising) the shared batch call.
    let bsk = server.bootstrap_key();
    let mut timings = StageTimings::new();
    let mut pbs_span = None;
    let mut ks_span = None;
    let mut results: Vec<Option<Result<LweCiphertext, TfheError>>> =
        batch.iter().map(|_| None).collect();
    // Fused linear preambles are materialised first so the borrowed
    // PBS jobs below can reference them alongside the plain request
    // ciphertexts. A failed preamble fails its request alone.
    let preamble_t0 = Instant::now();
    let mut preambles: Vec<Option<LweCiphertext>> = batch.iter().map(|_| None).collect();
    for (i, req) in batch.iter().enumerate() {
        let combined = match &req.op {
            RequestOp::Gate { gate, other } => {
                let recipe = gate.recipe();
                Some(linear_preamble(
                    &req.ct,
                    &recipe.weights(),
                    std::slice::from_ref(other),
                    recipe.offset(),
                ))
            }
            RequestOp::LinearLut { weights, extra, offset, .. } => {
                Some(linear_preamble(&req.ct, weights, extra, *offset))
            }
            _ => None,
        };
        match combined {
            Some(Ok(ct)) => preambles[i] = Some(ct),
            Some(Err(e)) => results[i] = Some(Err(e)),
            None => {}
        }
    }
    if profiled {
        timings.add(PbsStage::LinearOps, preamble_t0.elapsed());
    }

    let ksk = server.keyswitch_key();
    let mbsk = server.multi_bit_bootstrap_key();
    // One job list per kernel: each request's class resolves
    // through the policy (with classical fallback when the grouped
    // key is absent), so one epoch may mix kernels freely while
    // each kernel still runs as a single key-major batch.
    let mut pbs_indices = Vec::new();
    let mut jobs: Vec<PbsJob<'_>> = Vec::new();
    let mut mb_indices = Vec::new();
    let mut mb_jobs: Vec<PbsJob<'_>> = Vec::new();
    // Keyswitch-only requests are collected and run as ONE batch
    // (one digit buffer per epoch) instead of one allocating
    // `keyswitch` call per request. Dimensions are validated here,
    // per request, so a malformed input fails alone instead of
    // poisoning the shared batch call.
    let mut ks_only_slots = Vec::new();
    let mut ks_only_inputs: Vec<&LweCiphertext> = Vec::new();
    for (i, req) in batch.iter().enumerate() {
        if results[i].is_some() {
            continue; // preamble already failed this request
        }
        let job = match &req.op {
            RequestOp::Lut(lut) | RequestOp::Bootstrap(lut) => Some((&req.ct, lut.as_ref())),
            RequestOp::Gate { .. } => preambles[i].as_ref().map(|ct| (ct, gate_lut)),
            RequestOp::LinearLut { lut, .. } => preambles[i].as_ref().map(|ct| (ct, lut.as_ref())),
            RequestOp::Keyswitch => {
                if req.ct.dimension() == ksk.input_dimension() {
                    ks_only_slots.push(i);
                    ks_only_inputs.push(&req.ct);
                } else {
                    results[i] = Some(Err(TfheError::ParameterMismatch {
                        what: "lwe dimension",
                        left: req.ct.dimension(),
                        right: ksk.input_dimension(),
                    }));
                }
                None
            }
        };
        if let Some((ct, lut)) = job {
            if let Some(mb) = multi_bit_on_key(server, policy, req.op.class()) {
                match mb.check_shape(ct, lut) {
                    Ok(()) => {
                        mb_indices.push(i);
                        mb_jobs.push(PbsJob { ct, lut });
                    }
                    Err(e) => results[i] = Some(Err(e)),
                }
            } else {
                match bsk.check_shape(ct, lut) {
                    Ok(()) => {
                        pbs_indices.push(i);
                        jobs.push(PbsJob { ct, lut });
                    }
                    Err(e) => results[i] = Some(Err(e)),
                }
            }
        }
    }

    // With dimensions pre-validated the batch call cannot fail;
    // an unexpected error still fails only its own requests.
    // Keyswitching has no job blocking, so it shards with the
    // plain thread budget, not the block-aware PBS plan.
    if !ks_only_inputs.is_empty() {
        match ksk
            .keyswitch_batch_parallel(&ks_only_inputs, threads.min(ks_only_inputs.len()).max(1))
        {
            Ok(switched) => {
                for (&i, out) in ks_only_slots.iter().zip(switched) {
                    results[i] = Some(Ok(out));
                }
            }
            Err(e) => {
                for &i in &ks_only_slots {
                    results[i] = Some(Err(e.clone()));
                }
            }
        }
    }

    // With shapes pre-validated the batch call cannot mismatch;
    // still, an unexpected error fails its jobs rather than
    // panicking the worker thread.
    //
    // A profiled (sampled) epoch runs the probed production kernel
    // instead — same blocked CMUX loop, single-threaded, with each
    // stage bracketed by `TimingProbe`. Bit-identical output; the
    // sampling cost is losing intra-epoch parallelism for this one
    // epoch, which is why it's every Nth epoch, not all of them.
    // Both kernels run their batch inside one PBS span: the
    // classical jobs first, then the grouped multi-bit jobs. On
    // sampled epochs both probed kernels accumulate into the same
    // per-stage timings (the stages are shared vocabulary).
    let pbs_t0 = Instant::now();
    let classical_result = if profiled {
        bsk.bootstrap_batch_profiled(&jobs, &mut timings)
    } else {
        bsk.bootstrap_batch_parallel(&jobs, plan_threads(threads, jobs.len()))
    };
    let multi_bit_result = match mbsk {
        Some(mb) if !mb_jobs.is_empty() => {
            if profiled {
                mb.bootstrap_batch_profiled(&mb_jobs, &mut timings)
            } else {
                mb.bootstrap_batch_parallel(&mb_jobs, plan_threads(threads, mb_jobs.len()))
            }
        }
        _ => Ok(Vec::new()),
    };
    let total_pbs = jobs.len() + mb_jobs.len();
    if total_pbs > 0 {
        pbs_span = Some((pbs_t0, Instant::now()));
    }
    // Keyswitch the Lut/Gate/LinearLut outputs of BOTH kernels as
    // one batch (they all carry the extracted dimension the key
    // expects); Bootstrap-op outputs pass through raw.
    let mut ks_slots = Vec::new();
    let mut ks_inputs = Vec::new();
    for (indices, booted_result) in
        [(&pbs_indices, classical_result), (&mb_indices, multi_bit_result)]
    {
        match booted_result {
            Ok(booted) => {
                for (&i, out) in indices.iter().zip(booted) {
                    match &batch[i].op {
                        RequestOp::Lut(_)
                        | RequestOp::Gate { .. }
                        | RequestOp::LinearLut { .. } => {
                            ks_slots.push(i);
                            ks_inputs.push(out);
                        }
                        _ => results[i] = Some(Ok(out)),
                    }
                }
            }
            Err(e) => {
                for &i in indices {
                    results[i] = Some(Err(e.clone()));
                }
            }
        }
    }
    // The Algorithm-2 tail shares the epoch's thread
    // budget: sharded like the blind rotation, bit-identical
    // to the sequential batch. On sampled epochs its wall
    // time lands in the KeySwitch stage bucket.
    let ks_t0 = Instant::now();
    let switched_result =
        ksk.keyswitch_batch_parallel(&ks_inputs, threads.min(ks_inputs.len()).max(1));
    if !ks_inputs.is_empty() {
        let ks_t1 = Instant::now();
        ks_span = Some((ks_t0, ks_t1));
        if profiled {
            timings.add(PbsStage::KeySwitch, ks_t1 - ks_t0);
        }
    }
    match switched_result {
        Ok(switched) => {
            for (&i, out) in ks_slots.iter().zip(switched) {
                results[i] = Some(Ok(out));
            }
        }
        // Unreachable with pre-validated shapes (PBS always
        // emits the extracted dimension), but an error must
        // fail its requests, not the worker.
        Err(e) => {
            for &i in &ks_slots {
                results[i] = Some(Err(e.clone()));
            }
        }
    }

    let kernel_jobs = [jobs.len(), mb_jobs.len()];
    let results = results
        .into_iter()
        // lint:allow(panic) every request is routed to exactly one of the fill paths above
        .map(|r| r.expect("every request receives a result"))
        .collect();
    let stage_sample = (profiled && total_pbs > 0).then_some((timings, total_pbs));
    EpochExecution { results, pbs_span, ks_span, stage_sample, kernel_jobs }
}

impl BatchExecutor for TfheExecutor {
    fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
        self.execute_epoch(batch, false).results
    }

    fn execute_epoch(&self, batch: &[Request], profiled: bool) -> EpochExecution {
        execute_epoch_on_key(
            &self.server,
            self.threads,
            &self.policy,
            &self.gate_lut,
            batch,
            profiled,
        )
    }

    fn planned_threads(&self, batch_len: usize) -> usize {
        plan_threads(self.threads, batch_len)
    }

    fn max_threads(&self) -> usize {
        self.threads
    }

    fn admission(&self) -> Option<AdmissionPolicy> {
        // The policy resolves each class's *effective* kernel (the one
        // the epoch loop above will dispatch to), so the analyzer
        // predicts exactly what execution does — including classical
        // fallback when the grouped key is absent.
        let mut effective = KernelPolicy::uniform(self.effective_kernel(RequestClass::Gate));
        for class in RequestClass::ALL {
            effective = effective.with_class(class, self.effective_kernel(class));
        }
        Some(
            AdmissionPolicy::new(self.server.params().clone(), effective)
                .with_threshold(self.admission_threshold_sigmas),
        )
    }

    fn fft_backend(&self) -> Option<String> {
        Some(self.server.bootstrap_key().fft().backend().label().to_string())
    }
}

/// The multi-tenant TFHE back-end: the same key-major epoch execution
/// as [`TfheExecutor`], but with the server key resolved per epoch from
/// a shared [`KeyRegistry`] instead of fixed at construction. Epochs
/// are single-tenant by construction (the batcher partitions its open
/// window by tenant), so one [`resolve`](KeyRegistry::resolve) pins the
/// epoch's key — as an `Arc`, safe against concurrent eviction — for
/// the whole PBS+KS run: the third batching level, grouping by *key*
/// above the TvLP × core_batch grouping by ciphertext.
pub struct MultiTenantExecutor {
    registry: Arc<KeyRegistry>,
    threads: usize,
    policy: KernelPolicy,
    gate_lut: Lut,
    admission_threshold_sigmas: f64,
}

impl MultiTenantExecutor {
    /// Wraps a key registry; epochs execute on the calling worker
    /// thread alone.
    pub fn new(registry: Arc<KeyRegistry>) -> Self {
        Self::with_threads(registry, 1)
    }

    /// Wraps a key registry with an intra-epoch thread budget (clamped
    /// to at least 1). The kernel policy follows the registry's shared
    /// parameter set, exactly like [`TfheExecutor::with_threads`].
    pub fn with_threads(registry: Arc<KeyRegistry>, threads: usize) -> Self {
        let policy = KernelPolicy::uniform(registry.params().pbs_kernel);
        Self::with_policy(registry, threads, policy)
    }

    /// Wraps a key registry with an explicit per-class kernel policy.
    pub fn with_policy(registry: Arc<KeyRegistry>, threads: usize, policy: KernelPolicy) -> Self {
        let gate_lut = gate_sign_lut(registry.params().polynomial_size);
        Self {
            registry,
            threads: threads.max(1),
            policy,
            gate_lut,
            admission_threshold_sigmas: crate::analyzer::DEFAULT_THRESHOLD_SIGMAS,
        }
    }

    /// Overrides the admission threshold (see
    /// [`TfheExecutor::with_admission_threshold`]).
    pub fn with_admission_threshold(mut self, sigmas: f64) -> Self {
        self.admission_threshold_sigmas = sigmas;
        self
    }

    /// The shared registry this executor resolves epoch keys from.
    pub fn registry(&self) -> &Arc<KeyRegistry> {
        &self.registry
    }

    /// The kernel `class` executes with under the registry's shared
    /// parameter set: every tenant's key is generated from the same
    /// parameters, so the effective kernel is uniform across tenants.
    fn effective_kernel(&self, class: RequestClass) -> PbsKernel {
        match (self.policy.kernel_for(class), self.registry.params().pbs_kernel) {
            (PbsKernel::MultiBit { .. }, actual @ PbsKernel::MultiBit { .. }) => actual,
            _ => PbsKernel::Classical,
        }
    }
}

impl BatchExecutor for MultiTenantExecutor {
    fn execute(&self, batch: &[Request]) -> Vec<Result<LweCiphertext, TfheError>> {
        self.execute_epoch(batch, false).results
    }

    fn execute_epoch(&self, batch: &[Request], profiled: bool) -> EpochExecution {
        let Some(first) = batch.first() else {
            return EpochExecution::from_results(Vec::new());
        };
        debug_assert!(
            batch.iter().all(|r| r.tenant == first.tenant),
            "epochs must be single-tenant"
        );
        match self.registry.resolve(first.tenant) {
            // The Arc pins the key for the whole epoch: a concurrent
            // eviction drops residency, not the material under us.
            Some(server) => execute_epoch_on_key(
                &server,
                self.threads,
                &self.policy,
                &self.gate_lut,
                batch,
                profiled,
            ),
            None => EpochExecution::from_results(
                batch
                    .iter()
                    .map(|_| {
                        Err(TfheError::InvalidParameters(
                            "no key registered for the request's tenant",
                        ))
                    })
                    .collect(),
            ),
        }
    }

    fn planned_threads(&self, batch_len: usize) -> usize {
        plan_threads(self.threads, batch_len)
    }

    fn max_threads(&self) -> usize {
        self.threads
    }

    fn admission(&self) -> Option<AdmissionPolicy> {
        let mut effective = KernelPolicy::uniform(self.effective_kernel(RequestClass::Gate));
        for class in RequestClass::ALL {
            effective = effective.with_class(class, self.effective_kernel(class));
        }
        Some(
            AdmissionPolicy::new(self.registry.params().clone(), effective)
                .with_threshold(self.admission_threshold_sigmas),
        )
    }

    fn fft_backend(&self) -> Option<String> {
        // Resolved from the parameter set's backend selection (the
        // same dispatch every expanded key's FFT plan goes through),
        // so the label is available before any key is resident.
        self.registry.params().fft_backend.resolve().ok().map(|b| b.label().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strix_tfhe::bootstrap::Lut;
    use strix_tfhe::prelude::*;

    use crate::request::ClientId;
    use crate::trace::SpanId;

    fn request(client: u64, seq: u64, ct: LweCiphertext, op: RequestOp) -> Request {
        Request::new(ClientId(client), seq, SpanId(seq), ct, op)
    }

    #[test]
    fn mixed_epoch_executes_all_op_kinds() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 42);
        let server = Arc::new(server);
        let exec = TfheExecutor::new(Arc::clone(&server));
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| (m + 1) % 4).unwrap());

        let ct0 = client.encrypt_shortint(1, p).unwrap().as_lwe().clone();
        let ct1 = client.encrypt_shortint(2, p).unwrap().as_lwe().clone();
        // A keyswitch-only request needs an extracted-dimension input.
        let big = server
            .bootstrap_key()
            .bootstrap(
                client.encrypt_shortint(3, p).unwrap().as_lwe(),
                &Lut::from_function(params.polynomial_size, p, |m| m).unwrap(),
            )
            .unwrap();

        let batch = vec![
            request(0, 0, ct0, RequestOp::Lut(Arc::clone(&lut))),
            request(1, 0, big, RequestOp::Keyswitch),
            request(0, 1, ct1, RequestOp::Bootstrap(Arc::clone(&lut))),
        ];
        let results = exec.execute(&batch);
        assert_eq!(results.len(), 3);

        let decode = |ct: &LweCiphertext, bits: u32| {
            let phase = client.decrypt_phase(ct).unwrap();
            strix_tfhe::torus::decode_message(phase, bits + 1)
        };
        // Lut(+1) on 1 -> 2, keyswitched to dimension n.
        let out0 = results[0].as_ref().unwrap();
        assert_eq!(out0.dimension(), params.lwe_dimension);
        assert_eq!(decode(out0, p), 2);
        // Keyswitch of identity(3) -> 3.
        let out1 = results[1].as_ref().unwrap();
        assert_eq!(out1.dimension(), params.lwe_dimension);
        assert_eq!(decode(out1, p), 3);
        // Raw bootstrap stays at the extracted dimension; (2+1)=3.
        let out2 = results[2].as_ref().unwrap();
        assert_eq!(out2.dimension(), params.extracted_lwe_dimension());
        assert_eq!(decode(out2, p), 3);
    }

    #[test]
    fn threaded_executor_matches_single_threaded_bitwise() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 44);
        let server = Arc::new(server);
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| (3 * m) % 4).unwrap());
        // 5 requests: uneven across 2 threads.
        let batch: Vec<Request> = (0..5u64)
            .map(|i| {
                let ct = client.encrypt_shortint(i % 4, p).unwrap().as_lwe().clone();
                request(i, 0, ct, RequestOp::Lut(Arc::clone(&lut)))
            })
            .collect();
        let sequential = TfheExecutor::new(Arc::clone(&server)).execute(&batch);
        let threaded = TfheExecutor::with_threads(Arc::clone(&server), 2);
        assert_eq!(threaded.planned_threads(batch.len()), 2);
        assert_eq!(threaded.planned_threads(1), 1);
        assert_eq!(threaded.max_threads(), 2);
        let parallel = threaded.execute(&batch);
        for (s, t) in sequential.iter().zip(&parallel) {
            assert_eq!(s.as_ref().unwrap(), t.as_ref().unwrap());
        }
    }

    #[test]
    fn profiled_epoch_matches_plain_epoch_and_carries_a_stage_sample() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 45);
        let server = Arc::new(server);
        let exec = TfheExecutor::new(Arc::clone(&server));
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| (m + 1) % 4).unwrap());
        let batch: Vec<Request> = (0..3u64)
            .map(|i| {
                let ct = client.encrypt_shortint(i % 4, p).unwrap().as_lwe().clone();
                request(i, 0, ct, RequestOp::Lut(Arc::clone(&lut)))
            })
            .collect();

        let plain = exec.execute_epoch(&batch, false);
        let profiled = exec.execute_epoch(&batch, true);
        // Same blocked kernel either way: outputs are bit-identical.
        for (a, b) in plain.results.iter().zip(&profiled.results) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        assert!(plain.stage_sample.is_none(), "unsampled epochs carry no stage data");
        let (timings, pbs) =
            profiled.stage_sample.as_ref().expect("profiled epoch carries stage data");
        let pbs = *pbs;
        assert_eq!(pbs, 3);
        assert!(timings.total_for(PbsStage::Fft) > std::time::Duration::ZERO);
        assert!(timings.total_for(PbsStage::KeySwitch) > std::time::Duration::ZERO);
        // Both executions report a coherent timeline: PBS before KS.
        for exec_out in [&plain, &profiled] {
            let (p0, p1) = exec_out.pbs_span.expect("PBS span");
            let (k0, k1) = exec_out.ks_span.expect("KS span");
            assert!(p0 <= p1 && p1 <= k0 && k0 <= k1);
        }
    }

    #[test]
    fn keyswitch_only_epoch_has_no_pbs_span() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 46);
        let server = Arc::new(server);
        let exec = TfheExecutor::new(Arc::clone(&server));
        let p = 2u32;
        let big = server
            .bootstrap_key()
            .bootstrap(
                client.encrypt_shortint(1, p).unwrap().as_lwe(),
                &Lut::from_function(params.polynomial_size, p, |m| m).unwrap(),
            )
            .unwrap();
        let out = exec.execute_epoch(&[request(0, 0, big, RequestOp::Keyswitch)], true);
        assert!(out.results[0].is_ok());
        assert!(out.pbs_span.is_none());
        assert!(out.stage_sample.is_none(), "no PBS jobs, nothing to normalise against");
    }

    #[test]
    fn gate_requests_match_server_key_gates_bitwise() {
        use strix_tfhe::boolean::BinaryGate;
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 77);
        let server = Arc::new(server);
        let exec = TfheExecutor::new(Arc::clone(&server));
        for gate in BinaryGate::ALL {
            for bits in 0..4u8 {
                let (x, y) = (bits & 1 != 0, bits & 2 != 0);
                let cx = client.encrypt_bool(x);
                let cy = client.encrypt_bool(y);
                let batch = vec![request(
                    0,
                    0,
                    cx.as_lwe().clone(),
                    RequestOp::Gate { gate, other: cy.as_lwe().clone() },
                )];
                let streamed = exec.execute(&batch).pop().unwrap().unwrap();
                let reference = server.binary_gate(gate, &cx, &cy).unwrap();
                // Same linear preamble, same deterministic PBS+KS: the
                // batched gate is bit-identical to the synchronous one.
                assert_eq!(&streamed, reference.as_lwe(), "{gate}({x}, {y})");
            }
        }
    }

    #[test]
    fn linear_lut_request_fuses_weighted_sum_and_lut() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 78);
        let exec = TfheExecutor::new(Arc::new(server));
        let p = 3u32;
        // A toy neuron: 2·m0 + m1 + 1, clamped by an identity LUT over
        // the 3-bit space (sum stays below 8, no wrap).
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| m).unwrap());
        let m0 = 2u64;
        let m1 = 1u64;
        let ct0 = client.encrypt_shortint(m0, p).unwrap().as_lwe().clone();
        let ct1 = client.encrypt_shortint(m1, p).unwrap().as_lwe().clone();
        let offset = strix_tfhe::torus::encode_fraction(1, p + 1); // +1 message
        let op = RequestOp::LinearLut {
            weights: vec![2, 1],
            extra: vec![ct1],
            offset,
            lut: Arc::clone(&lut),
        };
        let out = exec.execute(&[request(0, 0, ct0, op)]).pop().unwrap().unwrap();
        assert_eq!(out.dimension(), params.lwe_dimension, "keyswitched back to n");
        let phase = client.decrypt_phase(&out).unwrap();
        assert_eq!(strix_tfhe::torus::decode_message(phase, p + 1), 2 * m0 + m1 + 1);
    }

    #[test]
    fn linear_preamble_arity_mismatch_fails_the_request_alone() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 79);
        let exec = TfheExecutor::new(Arc::new(server));
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| m).unwrap());
        let good_ct = client.encrypt_shortint(1, p).unwrap().as_lwe().clone();
        let bad_op = RequestOp::LinearLut {
            weights: vec![1, 1, 1], // three weights, two inputs
            extra: vec![client.encrypt_shortint(0, p).unwrap().as_lwe().clone()],
            offset: 0,
            lut: Arc::clone(&lut),
        };
        let batch = vec![
            request(0, 0, good_ct.clone(), RequestOp::Lut(Arc::clone(&lut))),
            request(1, 0, good_ct, bad_op),
        ];
        let results = exec.execute(&batch);
        assert!(results[0].is_ok(), "healthy request must survive");
        assert!(
            matches!(results[1], Err(TfheError::ParameterMismatch { .. })),
            "arity mismatch must fail its own request"
        );
    }

    #[test]
    fn multi_bit_policy_dispatches_and_decrypts_like_classical() {
        let params =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 });
        let (mut client, server) = generate_keys(&params, 91);
        let server = Arc::new(server);
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| (m + 1) % 4).unwrap());
        let batch: Vec<Request> = (0..5u64)
            .map(|i| {
                let ct = client.encrypt_shortint(i % 4, p).unwrap().as_lwe().clone();
                request(i, 0, ct, RequestOp::Lut(Arc::clone(&lut)))
            })
            .collect();

        // The default policy follows the parameter set: multi-bit.
        let grouped = TfheExecutor::new(Arc::clone(&server));
        assert_eq!(
            grouped.kernel_policy().kernel_for(RequestClass::Lut),
            PbsKernel::MultiBit { grouping_factor: 2 }
        );
        let grouped_exec = grouped.execute_epoch(&batch, false);
        assert_eq!(grouped_exec.kernel_jobs, [0, 5]);
        // Forcing the classical kernel on the same server key must
        // yield the same decoded messages (the kernels are
        // decrypt-identical, not bit-identical).
        let classical = TfheExecutor::with_policy(
            Arc::clone(&server),
            1,
            KernelPolicy::uniform(PbsKernel::Classical),
        );
        let classical_exec = classical.execute_epoch(&batch, false);
        assert_eq!(classical_exec.kernel_jobs, [5, 0]);
        for (i, (g, c)) in grouped_exec.results.iter().zip(&classical_exec.results).enumerate() {
            let decode = |ct: &LweCiphertext| {
                let phase = client.decrypt_phase(ct).unwrap();
                strix_tfhe::torus::decode_message(phase, p + 1)
            };
            let expected = (i as u64 % 4 + 1) % 4;
            assert_eq!(decode(g.as_ref().unwrap()), expected, "multi-bit request {i}");
            assert_eq!(decode(c.as_ref().unwrap()), expected, "classical request {i}");
        }
    }

    #[test]
    fn per_class_policy_splits_one_epoch_across_kernels() {
        let params =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 });
        let (mut client, server) = generate_keys(&params, 92);
        let server = Arc::new(server);
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| (3 * m) % 4).unwrap());
        // Lut requests ride the grouped kernel, raw bootstraps stay
        // classical: one epoch, two key-major batches.
        let policy = KernelPolicy::uniform(PbsKernel::Classical)
            .with_class(RequestClass::Lut, PbsKernel::MultiBit { grouping_factor: 2 });
        assert_eq!(policy.default_kernel(), PbsKernel::Classical);
        let exec = TfheExecutor::with_policy(Arc::clone(&server), 1, policy);
        let batch = vec![
            request(
                0,
                0,
                client.encrypt_shortint(1, p).unwrap().as_lwe().clone(),
                RequestOp::Lut(Arc::clone(&lut)),
            ),
            request(
                1,
                0,
                client.encrypt_shortint(2, p).unwrap().as_lwe().clone(),
                RequestOp::Bootstrap(Arc::clone(&lut)),
            ),
            request(
                0,
                1,
                client.encrypt_shortint(3, p).unwrap().as_lwe().clone(),
                RequestOp::Lut(Arc::clone(&lut)),
            ),
        ];
        let epoch = exec.execute_epoch(&batch, false);
        assert_eq!(epoch.kernel_jobs, [1, 2]);
        let decode = |ct: &LweCiphertext| {
            let phase = client.decrypt_phase(ct).unwrap();
            strix_tfhe::torus::decode_message(phase, p + 1)
        };
        assert_eq!(decode(epoch.results[0].as_ref().unwrap()), 3);
        assert_eq!(decode(epoch.results[1].as_ref().unwrap()), 2 * 3 % 4);
        assert_eq!(decode(epoch.results[2].as_ref().unwrap()), 3 * 3 % 4);
    }

    #[test]
    fn multi_bit_policy_without_grouped_key_falls_back_to_classical() {
        // A classical server key carries no grouped key material: a
        // policy asking for multi-bit must degrade to the classical
        // kernel instead of failing the epoch.
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 93);
        let server = Arc::new(server);
        assert!(server.multi_bit_bootstrap_key().is_none());
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| m).unwrap());
        let exec = TfheExecutor::with_policy(
            Arc::clone(&server),
            1,
            KernelPolicy::uniform(PbsKernel::MultiBit { grouping_factor: 2 }),
        );
        let ct = client.encrypt_shortint(2, p).unwrap().as_lwe().clone();
        let epoch = exec.execute_epoch(&[request(0, 0, ct, RequestOp::Lut(lut))], false);
        assert_eq!(epoch.kernel_jobs, [1, 0], "fallback runs classically");
        let phase = client.decrypt_phase(epoch.results[0].as_ref().unwrap()).unwrap();
        assert_eq!(strix_tfhe::torus::decode_message(phase, p + 1), 2);
    }

    #[test]
    fn malformed_request_fails_alone_not_the_epoch() {
        let params = TfheParameters::testing_fast();
        let (mut client, server) = generate_keys(&params, 43);
        let exec = TfheExecutor::new(Arc::new(server));
        let p = 2u32;
        let lut = Arc::new(Lut::from_function(params.polynomial_size, p, |m| m).unwrap());

        let good = client.encrypt_shortint(2, p).unwrap().as_lwe().clone();
        let bad = LweCiphertext::trivial(7, 0); // wrong dimension
        let batch = vec![
            request(0, 0, good, RequestOp::Lut(Arc::clone(&lut))),
            request(1, 0, bad, RequestOp::Lut(lut)),
        ];
        let results = exec.execute(&batch);
        assert!(results[0].is_ok(), "healthy request must survive");
        assert!(results[1].is_err(), "malformed request must fail");
        let phase = client.decrypt_phase(results[0].as_ref().unwrap()).unwrap();
        assert_eq!(strix_tfhe::torus::decode_message(phase, p + 1), 2);
    }
}
