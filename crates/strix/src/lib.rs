//! **Strix** — an end-to-end reproduction of the MICRO 2023 paper
//! *"Strix: An End-to-End Streaming Architecture with Two-Level
//! Ciphertext Batching for Fully Homomorphic Encryption with
//! Programmable Bootstrapping"*.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! * [`tfhe`] — a from-scratch TFHE implementation (LWE/GLWE/GGSW,
//!   programmable bootstrapping, keyswitching, boolean gates, LUT
//!   evaluation) that serves as both the functional substrate and the
//!   measured CPU baseline,
//! * [`fft`] — negacyclic FFT kernels with the paper's folding scheme,
//! * [`core`] — the cycle-level Strix accelerator model (functional
//!   units, HSC pipeline, memory system, two-level batching scheduler,
//!   area/power model),
//! * [`baselines`] — CPU/GPU/published-accelerator comparison models,
//! * [`workloads`] — gate circuits and the Zama Deep-NN models,
//! * [`runtime`] — the streaming two-level batch scheduler serving
//!   concurrent PBS request streams against the `tfhe` stack.
//!
//! # Which crate do I want?
//!
//! *Encrypting data and running homomorphic circuits*: use [`tfhe`]
//! (start from [`tfhe::prelude`]). *Estimating how fast the Strix
//! accelerator executes a workload*: build a [`core::StrixSimulator`]
//! and feed it a [`core::Workload`]. *Regenerating the paper's tables
//! and figures*: run the bench targets of the `strix-bench` crate.
//!
//! # Example: a homomorphic gate next to its accelerator estimate
//!
//! ```
//! use strix::tfhe::prelude::*;
//! use strix::core::{StrixConfig, StrixSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Functional path: encrypt, evaluate, decrypt.
//! let params = TfheParameters::testing_fast();
//! let (mut client, server) = generate_keys(&params, 7);
//! let a = client.encrypt_bool(true);
//! let b = client.encrypt_bool(true);
//! assert!(client.decrypt_bool(&server.and(&a, &b)?));
//!
//! // Performance path: how fast would Strix bootstrap 1024 LWEs?
//! let sim = StrixSimulator::new(StrixConfig::paper_default(), TfheParameters::set_i())?;
//! let report = sim.pbs_report(1024);
//! assert!(report.throughput_pbs_per_s > 1_000.0);
//! # Ok(())
//! # }
//! ```

pub use strix_baselines as baselines;
pub use strix_core as core;
pub use strix_fft as fft;
pub use strix_runtime as runtime;
pub use strix_tfhe as tfhe;
pub use strix_workloads as workloads;
