//! Correctness of the grouped (multi-bit) blind-rotation kernel
//! against the classical kernel it replaces.
//!
//! The contract pinned here: for any epoch shape — grouping factor
//! g ∈ {2, 3}, polynomial size N ∈ {512, 1024}, job counts that do not
//! divide the CMUX job block, LWE dimensions that leave a remainder
//! group, zero-rotation (trivial-mask) jobs — the grouped kernel must
//! decode to the same message the classical kernel produces, and its
//! parallel path must be *bit*-identical to its sequential path.

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;

use strix_tfhe::bootstrap::{Lut, PbsJob};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::prelude::*;
use strix_tfhe::torus::decode_message;

const MESSAGE_BITS: u32 = 2;

/// One keyed configuration of the kernel matrix. Key generation is the
/// expensive part, so the four (g, N, n) combinations are built once and
/// shared by every proptest case; the client sits behind a mutex because
/// encryption advances its noise rng.
struct Fixture {
    params: TfheParameters,
    client: Mutex<ClientKey>,
    server: ServerKey,
    lut: Lut,
}

impl Fixture {
    fn encrypt(&self, m: u64) -> LweCiphertext {
        let mut client = self.client.lock().unwrap();
        client.encrypt_shortint(m, MESSAGE_BITS).unwrap().as_lwe().clone()
    }

    /// A zero-rotation job: every mask digit mod-switches to zero, so
    /// both kernels take their explicit skip path.
    fn trivial(&self, m: u64) -> LweCiphertext {
        let pt = m << (64 - MESSAGE_BITS - 1);
        LweCiphertext::trivial(self.params.lwe_dimension, pt)
    }

    fn decode(&self, ct: &LweCiphertext) -> u64 {
        let client = self.client.lock().unwrap();
        let phase = client.decrypt_phase(ct).unwrap();
        decode_message(phase, MESSAGE_BITS + 1)
    }
}

fn lut_fn(m: u64) -> u64 {
    (3 * m + 1) % 4
}

/// The kernel matrix: g ∈ {2, 3} × N ∈ {512, 1024}, with LWE dimensions
/// chosen so the group split exercises an exact divide (14 = 7·2), a
/// width-1 remainder (13 mod 2, 13 mod 3) and a width-2 remainder
/// (14 mod 3).
fn fixtures() -> &'static Vec<Fixture> {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        [(2usize, 512usize, 14usize), (2, 1024, 13), (3, 512, 14), (3, 1024, 13)]
            .iter()
            .map(|&(g, poly, n)| {
                let mut params = TfheParameters::testing_fast();
                params.name = format!("mb-test-g{g}-n{poly}");
                params.lwe_dimension = n;
                params.polynomial_size = poly;
                params.pbs_kernel = PbsKernel::MultiBit { grouping_factor: g };
                params.validate().unwrap();
                let seed = 0xC0FFEE ^ (g as u64) << 16 ^ poly as u64;
                let (client, server) = generate_keys(&params, seed);
                assert!(server.multi_bit_bootstrap_key().is_some());
                let lut = Lut::from_function(poly, MESSAGE_BITS, lut_fn).unwrap();
                Fixture { params, client: Mutex::new(client), server, lut }
            })
            .collect()
    })
}

proptest! {
    // PBS-heavy properties: each case runs three full batches.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every kernel-matrix entry and any epoch shape, the grouped
    /// kernel decodes like the classical kernel, and its parallel path
    /// is bit-identical to its sequential path.
    #[test]
    fn grouped_kernel_decodes_identically_to_classical(
        fixture_idx in 0usize..4,
        // (message, use a zero-rotation trivial ciphertext?) per job;
        // lengths 1..6 straddle the CMUX job block of 4.
        job_spec in prop::collection::vec((0u64..4, any::<bool>()), 1..6),
        threads in 1usize..=5,
    ) {
        let fx = &fixtures()[fixture_idx];
        let cts: Vec<LweCiphertext> = job_spec
            .iter()
            .map(|&(m, trivial)| if trivial { fx.trivial(m) } else { fx.encrypt(m) })
            .collect();
        let jobs: Vec<PbsJob<'_>> =
            cts.iter().map(|ct| PbsJob { ct, lut: &fx.lut }).collect();

        let classical = fx.server.bootstrap_key().bootstrap_batch(&jobs).unwrap();
        let mbsk = fx.server.multi_bit_bootstrap_key().unwrap();
        let grouped = mbsk.bootstrap_batch(&jobs).unwrap();
        let grouped_parallel = mbsk.bootstrap_batch_parallel(&jobs, threads).unwrap();
        prop_assert_eq!(
            &grouped_parallel, &grouped,
            "parallel grouped path diverged ({} jobs, {} threads, {})",
            jobs.len(), threads, fx.params.name
        );

        for (i, &(m, trivial)) in job_spec.iter().enumerate() {
            let expected = lut_fn(m);
            prop_assert_eq!(
                fx.decode(&classical[i]), expected,
                "classical kernel wrong at job {} ({})", i, &fx.params.name
            );
            prop_assert_eq!(
                fx.decode(&grouped[i]), expected,
                "grouped kernel wrong at job {} ({})", i, &fx.params.name
            );
            if trivial {
                // Zero rotations hit the skip path in both kernels, so
                // the two accumulators — and hence the extracted
                // outputs — agree bit for bit.
                prop_assert_eq!(
                    &grouped[i], &classical[i],
                    "zero-rotation job {} not a bit-exact passthrough ({})",
                    i, &fx.params.name
                );
            }
        }
    }
}

#[test]
fn grouped_batch_matches_grouped_singles() {
    // Batched (job-blocked) execution must agree bit for bit with the
    // one-job-at-a-time path on every kernel-matrix entry.
    for fx in fixtures() {
        let cts: Vec<LweCiphertext> = (0..5).map(|m| fx.encrypt(m % 4)).collect();
        let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &fx.lut }).collect();
        let mbsk = fx.server.multi_bit_bootstrap_key().unwrap();
        let batched = mbsk.bootstrap_batch(&jobs).unwrap();
        for (job, out) in jobs.iter().zip(&batched) {
            let single = mbsk.bootstrap(job.ct, job.lut).unwrap();
            assert_eq!(&single, out, "{}", fx.params.name);
        }
    }
}

#[test]
fn all_zero_blocks_take_the_early_return_bit_exactly() {
    // Five zero-rotation jobs straddle the CMUX job block of 4, so the
    // grouped kernel's whole-block early return fires (no job in the
    // block is active) as well as the partial-block path. Both must be
    // bit-exact passthroughs, matching the classical oracle's skip.
    for fx in fixtures() {
        let cts: Vec<LweCiphertext> = (0..5).map(|m| fx.trivial(m % 4)).collect();
        let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &fx.lut }).collect();
        let classical = fx.server.bootstrap_key().bootstrap_batch(&jobs).unwrap();
        let grouped = fx.server.multi_bit_bootstrap_key().unwrap().bootstrap_batch(&jobs).unwrap();
        assert_eq!(grouped, classical, "{}", fx.params.name);
        for (i, (out, &m)) in grouped.iter().zip([0u64, 1, 2, 3, 0].iter()).enumerate() {
            assert_eq!(fx.decode(out), lut_fn(m), "job {i} ({})", fx.params.name);
        }
    }
}

#[test]
fn forced_portable_backend_matches_the_detected_backend_on_grouped_pbs() {
    // Same contract as the classical-kernel test in `soa_cmux.rs`, for
    // the grouped path: the monomial-MAC combined-GGSW assembly now
    // runs through the backend VMA kernels, so a multi-bit key forced
    // to the portable tier must produce byte-equal outputs to one on
    // the auto-detected tier.
    use strix_tfhe::bootstrap::MultiBitBootstrapKey;
    use strix_tfhe::StrixFftBackend;

    let fx = &fixtures()[1]; // g = 2, N = 1024, n = 13 (width-1 remainder)
    let portable_key = MultiBitBootstrapKey::generate_for_benchmark(
        &fx.params.clone().with_fft_backend(StrixFftBackend::Portable),
        2,
    );
    let auto_key = MultiBitBootstrapKey::generate_for_benchmark(&fx.params, 2);
    let cts: Vec<LweCiphertext> = (0..5).map(|m| fx.trivial(m % 4)).collect();
    // Dense masks too: trivial jobs alone would skip every CMUX.
    let dense: Vec<LweCiphertext> = (0..5)
        .map(|j| {
            let mut state = 0xD1CEu64 + j;
            let next = |s: &mut u64| {
                *s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = *s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            LweCiphertext::from_raw(
                (0..=fx.params.lwe_dimension).map(|_| next(&mut state)).collect(),
            )
        })
        .collect();
    for cts in [&cts, &dense] {
        let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &fx.lut }).collect();
        assert_eq!(
            portable_key.bootstrap_batch(&jobs).unwrap(),
            auto_key.bootstrap_batch(&jobs).unwrap(),
            "auto backend ({}) diverged from portable on the grouped kernel",
            auto_key.fft().backend()
        );
    }
}

#[test]
fn empty_epoch_and_shape_mismatch_are_handled() {
    let fx = &fixtures()[0];
    let mbsk = fx.server.multi_bit_bootstrap_key().unwrap();
    assert!(mbsk.bootstrap_batch(&[]).unwrap().is_empty());
    assert!(mbsk.bootstrap_batch_parallel(&[], 4).unwrap().is_empty());
    // A ciphertext of the wrong dimension is rejected, not mangled.
    let bad = LweCiphertext::trivial(fx.params.lwe_dimension + 1, 0);
    assert!(mbsk.check_shape(&bad, &fx.lut).is_err());
}
