//! Statistical validation of the kernel-aware noise model.
//!
//! The noise module predicts the output variance of both blind-rotation
//! kernels ([`noise::pbs_output_variance_for`]). These tests pin the
//! implementation to the theory: over ≥1k samples the *measured*
//! standard deviation of PBS output error must sit inside a tolerance
//! band around the prediction, for the classical kernel and for the
//! grouped multi-bit kernel. A silent corruption of the FFT path, the
//! gadget decomposition or the grouped-GGSW assembly shows up here as a
//! band violation long before it flips a decoded message.
//!
//! Seeds are fixed, so the suite is deterministic.

use strix_tfhe::bootstrap::{Lut, PbsJob};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::noise::{error_std, measure_error, pbs_output_variance_for};
use strix_tfhe::prelude::*;

const MESSAGE_BITS: u32 = 2;
const MESSAGE: u64 = 1;
const SAMPLES: usize = 1024;

/// Bootstraps `SAMPLES` fresh encryptions of a fixed message through
/// the kernel the parameter set selects and returns the sample standard
/// deviation of the output torus error.
///
/// The identity LUT keeps the expected plaintext at the encoding of
/// `MESSAGE`; with fresh noise at 2⁻²⁰ the mod-switch never leaves the
/// redundant LUT bucket, so the measured error is exactly the
/// blind-rotation accumulation noise the model predicts.
fn measured_pbs_std(params: &TfheParameters, seed: u64) -> f64 {
    let (mut client, server) = generate_keys(params, seed);
    let lut = Lut::from_function(params.polynomial_size, MESSAGE_BITS, |m| m).unwrap();
    let expected_pt = MESSAGE << (64 - MESSAGE_BITS - 1);
    let cts: Vec<LweCiphertext> = (0..SAMPLES)
        .map(|_| client.encrypt_shortint(MESSAGE, MESSAGE_BITS).unwrap().as_lwe().clone())
        .collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
    let outputs = match params.pbs_kernel {
        PbsKernel::Classical => server.bootstrap_key().bootstrap_batch(&jobs).unwrap(),
        PbsKernel::MultiBit { .. } => {
            server.multi_bit_bootstrap_key().unwrap().bootstrap_batch(&jobs).unwrap()
        }
    };
    let errors: Vec<f64> =
        outputs.iter().map(|ct| measure_error(&client, ct, expected_pt)).collect();
    error_std(&errors)
}

/// Fixed seeds make the measurement deterministic, and empirically the
/// model lands within a few percent of measurement (ratios ≈ 0.97–0.98
/// on all kernels), so the band is tight. It is two-sided on purpose:
/// measured noise far *below* prediction would mean the kernel is not
/// doing the work the model charges it for.
fn assert_within_band(measured: f64, predicted: f64, label: &str) {
    let ratio = measured / predicted;
    eprintln!("{label}: measured {measured:.3e} / predicted {predicted:.3e} = {ratio:.3}");
    assert!(
        (0.8..=1.25).contains(&ratio),
        "{label}: measured std {measured:e} vs predicted {predicted:e} (ratio {ratio:.3})"
    );
}

#[test]
fn classical_kernel_noise_matches_prediction() {
    let params = TfheParameters::testing_fast();
    let predicted = pbs_output_variance_for(&params, PbsKernel::Classical).sqrt();
    let measured = measured_pbs_std(&params, 0x5EED_0001);
    assert_within_band(measured, predicted, "classical");
}

#[test]
fn multi_bit_kernel_noise_matches_prediction() {
    for g in [2usize, 3] {
        let kernel = PbsKernel::MultiBit { grouping_factor: g };
        let params = TfheParameters::testing_fast().with_kernel(kernel);
        let predicted = pbs_output_variance_for(&params, kernel).sqrt();
        let measured = measured_pbs_std(&params, 0x5EED_0002 + g as u64);
        assert_within_band(measured, predicted, &format!("multi-bit g={g}"));
    }
}

#[test]
fn multi_bit_noise_exceeds_classical_as_the_model_orders_them() {
    // The grouped kernel trades noise for fewer external products: per
    // original key bit its key-noise term carries 2^g/g ≥ 2× the
    // classical weight, so at equal parameters the model — and the
    // measurement — must order multi-bit above classical. With ≥1k
    // samples the estimator's own spread (~2%) cannot flip a √2 gap.
    let classical = TfheParameters::testing_fast();
    let multi_bit =
        TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 });
    let predicted_classical = pbs_output_variance_for(&classical, classical.pbs_kernel).sqrt();
    let predicted_mb = pbs_output_variance_for(&multi_bit, multi_bit.pbs_kernel).sqrt();
    assert!(predicted_mb > predicted_classical);

    let measured_classical = measured_pbs_std(&classical, 0x5EED_0010);
    let measured_mb = measured_pbs_std(&multi_bit, 0x5EED_0011);
    assert!(
        measured_mb > measured_classical,
        "measured multi-bit std {measured_mb:e} not above classical {measured_classical:e}"
    );
}
