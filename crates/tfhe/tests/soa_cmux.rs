//! Bit-identity of the coefficient-batched (SoA, job-blocked) CMUX
//! path against the per-job interleaved oracle, across parameter
//! shapes and job counts.
//!
//! The blocked batch path (`blind_rotate_batch_with`) re-schedules the
//! external product across jobs — batched split-complex FFTs, a
//! row-major VMA over each block, a batched inverse — but performs the
//! same per-job arithmetic in the same per-job order as the oracle
//! (`blind_rotate_with` → `external_product_scratch`). These tests pin
//! that equivalence at the bit level, including:
//!
//! * every combination of k ∈ {1, 2}, N ∈ {512, 1024, 2048} and
//!   level ∈ {2, 3} (first-stage radix of the half-size kernel flips
//!   between the sizes, and the digit-batch shape (k+1)·l covers
//!   4/6/9),
//! * job counts that do **not** divide `CMUX_JOB_BLOCK` (partial final
//!   blocks) and jobs whose masks modulus-switch to zero rotations
//!   (skipped inside a block),
//! * the parallel sharded entry point (`bootstrap_batch_parallel`).
//!
//! Keys here are timing-equivalent trivial keys with dense pseudo-
//! random ciphertext masks: bit-identity is a property of the
//! *arithmetic schedule*, not of key secrecy, and trivial keys make
//! N = 2048 keygen instant. Semantic correctness of the blocked path
//! on real encrypted keys is covered by the bootstrap test module
//! (`batched_bootstrap_matches_single_per_job` et al.).

use std::sync::OnceLock;

use proptest::prelude::*;

use strix_tfhe::bootstrap::{BootstrapKey, Lut, PbsJob};
use strix_tfhe::lwe::LweCiphertext;
use strix_tfhe::scratch::CMUX_JOB_BLOCK;
use strix_tfhe::torus::encode_fraction;
use strix_tfhe::{StrixFftBackend, TfheParameters};

/// Small LWE dimension: enough blind-rotation iterations to exercise
/// many (entry, block) steps while keeping 2048-point transforms fast.
const TEST_LWE_DIM: usize = 12;

fn shaped_params(k: usize, n: usize, level: usize) -> TfheParameters {
    let mut p = TfheParameters::set_ii();
    p.name = format!("soa-test-k{k}-n{n}-l{level}");
    p.lwe_dimension = TEST_LWE_DIM;
    p.glwe_dimension = k;
    p.polynomial_size = n;
    p.pbs_level = level;
    p.validate().expect("test parameter shape must be valid");
    p
}

/// splitmix64 — dense pseudo-random torus values so every mask element
/// modulus-switches to a non-trivial rotation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_ct(seed: u64, dim: usize) -> LweCiphertext {
    let mut state = seed;
    LweCiphertext::from_raw((0..=dim).map(|_| splitmix(&mut state)).collect())
}

/// Per-job oracle: the PR 4 scratch path, one job at a time.
fn oracle_outputs(bsk: &BootstrapKey, jobs: &[PbsJob<'_>]) -> Vec<LweCiphertext> {
    let mut scratch = bsk.scratch();
    jobs.iter()
        .map(|job| bsk.blind_rotate_with(job.ct, job.lut, &mut scratch).unwrap().sample_extract())
        .collect()
}

#[test]
fn blocked_cmux_is_bit_identical_to_per_job_oracle_across_shapes() {
    for k in [1usize, 2] {
        for n in [512usize, 1024, 2048] {
            for level in [2usize, 3] {
                let params = shaped_params(k, n, level);
                let bsk = BootstrapKey::generate_for_benchmark(&params);
                let lut = Lut::sign(n, encode_fraction(1, 3));
                // CMUX_JOB_BLOCK + 1 jobs: one full block plus a
                // partial block of one.
                let cts: Vec<LweCiphertext> = (0..CMUX_JOB_BLOCK as u64 + 1)
                    .map(|j| random_ct(0xA5A5 + j + (k * n * level) as u64, TEST_LWE_DIM))
                    .collect();
                let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
                let blocked = bsk.bootstrap_batch(&jobs).unwrap();
                let oracle = oracle_outputs(&bsk, &jobs);
                assert_eq!(blocked, oracle, "k={k} n={n} level={level}");
            }
        }
    }
}

#[test]
fn blocked_cmux_handles_zero_rotations_inside_a_block() {
    // A trivial ciphertext (all-zero mask) skips every CMUX; mixing it
    // into a block with active jobs must leave both its own output and
    // its neighbours' outputs bit-identical to the oracle.
    let params = shaped_params(1, 512, 2);
    let bsk = BootstrapKey::generate_for_benchmark(&params);
    let lut = Lut::sign(512, encode_fraction(1, 3));
    let mut cts: Vec<LweCiphertext> =
        (0..6u64).map(|j| random_ct(0xBEEF + j, TEST_LWE_DIM)).collect();
    cts[1] = LweCiphertext::trivial(TEST_LWE_DIM, encode_fraction(1, 3));
    cts[4] = LweCiphertext::trivial(TEST_LWE_DIM, 0);
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
    assert_eq!(bsk.bootstrap_batch(&jobs).unwrap(), oracle_outputs(&bsk, &jobs));
}

#[test]
fn forced_portable_backend_is_bit_identical_to_the_detected_backend() {
    // The SIMD backends promise bit-identity with the portable scalar
    // kernels; the strongest end-to-end statement is two keys over the
    // same parameters — one forced portable, one on the auto-detected
    // tier — producing byte-equal PBS outputs. On hosts where auto
    // resolves to portable this degenerates to a self-comparison,
    // which is fine: it then costs one extra keygen, not coverage.
    for n in [1024usize, 2048] {
        let params = shaped_params(1, n, 2);
        let portable_key = BootstrapKey::generate_for_benchmark(
            &params.clone().with_fft_backend(StrixFftBackend::Portable),
        );
        let auto_key = BootstrapKey::generate_for_benchmark(&params);
        let lut = Lut::sign(n, encode_fraction(1, 3));
        let cts: Vec<LweCiphertext> =
            (0..4u64).map(|j| random_ct(0xF0CA + j + n as u64, TEST_LWE_DIM)).collect();
        let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();
        assert_eq!(
            portable_key.bootstrap_batch(&jobs).unwrap(),
            auto_key.bootstrap_batch(&jobs).unwrap(),
            "n={n}: auto backend ({}) diverged from portable",
            auto_key.fft().backend()
        );
    }
}

/// Shared fixture for the proptest cases (keygen once, not per case).
fn fixture() -> &'static (TfheParameters, BootstrapKey, Lut, Lut) {
    static FIXTURE: OnceLock<(TfheParameters, BootstrapKey, Lut, Lut)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params = shaped_params(1, 512, 3);
        let bsk = BootstrapKey::generate_for_benchmark(&params);
        let lut_sign = Lut::sign(512, encode_fraction(1, 3));
        let lut_id = Lut::from_function(512, 2, |m| m).unwrap();
        (params, bsk, lut_sign, lut_id)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random job counts (including counts ≠ 0 mod CMUX_JOB_BLOCK),
    /// random masks, mixed LUTs: blocked batch == per-job oracle,
    /// bit for bit, and the parallel sharded path agrees too.
    #[test]
    fn blocked_batch_matches_oracle_for_uneven_job_counts(
        job_count in 1usize..=2 * CMUX_JOB_BLOCK + 3,
        seed in any::<u64>(),
        threads in 1usize..=5,
    ) {
        let (_, bsk, lut_sign, lut_id) = fixture();
        let cts: Vec<LweCiphertext> =
            (0..job_count as u64).map(|j| random_ct(seed ^ j, TEST_LWE_DIM)).collect();
        let jobs: Vec<PbsJob<'_>> = cts
            .iter()
            .enumerate()
            .map(|(i, ct)| PbsJob { ct, lut: if i % 2 == 0 { lut_sign } else { lut_id } })
            .collect();
        let oracle = oracle_outputs(bsk, &jobs);
        prop_assert_eq!(&bsk.bootstrap_batch(&jobs).unwrap(), &oracle);
        prop_assert_eq!(&bsk.bootstrap_batch_parallel(&jobs, threads).unwrap(), &oracle);
    }
}

#[test]
fn profiled_batch_is_bit_identical_and_records_all_cmux_stages() {
    use strix_tfhe::profiler::{PbsStage, StageTimings};
    let (_, bsk, lut_sign, _) = fixture();
    let cts: Vec<LweCiphertext> = (0..5u64).map(|j| random_ct(0xCAFE + j, TEST_LWE_DIM)).collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: lut_sign }).collect();
    let mut timings = StageTimings::new();
    let profiled = bsk.bootstrap_batch_profiled(&jobs, &mut timings).unwrap();
    assert_eq!(profiled, bsk.bootstrap_batch(&jobs).unwrap());
    for stage in [
        PbsStage::ModSwitch,
        PbsStage::Rotate,
        PbsStage::Decompose,
        PbsStage::Fft,
        PbsStage::VectorMultiply,
        PbsStage::IfftAccumulate,
        PbsStage::SampleExtract,
    ] {
        assert!(timings.total_for(stage) > std::time::Duration::ZERO, "{stage:?} not recorded");
    }
}
