//! Consistency of the probed (profiled) execution paths with the
//! production kernel they instrument.
//!
//! Two properties keep the production stage breakdown trustworthy now
//! that the runtime samples epochs through `bootstrap_batch_profiled`:
//!
//! 1. **Accounting** — the per-stage times must sum to (almost all of)
//!    the measured wall time of the profiled call: if a meaningful
//!    fraction of the kernel ran outside every probe bracket, the
//!    breakdown would misattribute it.
//! 2. **Bit-identity** — `TimingProbe` must not perturb the arithmetic:
//!    probed outputs equal `NoProbe` outputs bit for bit, on real
//!    encrypted keys, for both the PBS and the keyswitch.

use std::time::{Duration, Instant};

use strix_tfhe::bootstrap::{Lut, PbsJob};
use strix_tfhe::prelude::*;
use strix_tfhe::profiler::{PbsStage, StageTimings};

#[test]
fn probed_stage_times_sum_to_the_measured_wall_time() {
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 321);
    let bsk = server.bootstrap_key();
    let lut = Lut::from_function(params.polynomial_size, 2, |m| m).unwrap();
    let cts: Vec<_> =
        (0..6u64).map(|i| client.encrypt_shortint(i % 4, 2).unwrap().as_lwe().clone()).collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();

    // Warm up caches and the FFT twiddle tables so the measured run is
    // representative, then measure the profiled call.
    let mut warmup = StageTimings::new();
    bsk.bootstrap_batch_profiled(&jobs, &mut warmup).unwrap();
    let mut timings = StageTimings::new();
    let t0 = Instant::now();
    bsk.bootstrap_batch_profiled(&jobs, &mut timings).unwrap();
    let wall = t0.elapsed();

    let sum = timings.total();
    // The probes nest no regions and bracket every heavy loop, so the
    // sum can only fall short of wall time by loop glue, and can only
    // exceed it by `Instant` measurement noise. Tolerances are
    // deliberately loose: this runs in debug CI on shared hardware.
    assert!(
        sum <= wall + wall / 4 + Duration::from_millis(1),
        "stage sum {sum:?} exceeds wall time {wall:?}"
    );
    assert!(
        sum >= wall / 2,
        "stage sum {sum:?} accounts for under half of wall time {wall:?} — \
         a heavy region is running outside every probe bracket"
    );
}

#[test]
fn probed_bootstrap_is_bit_identical_to_production_on_real_keys() {
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 654);
    let bsk = server.bootstrap_key();
    let lut = Lut::from_function(params.polynomial_size, 2, |m| (m + 3) % 4).unwrap();
    let cts: Vec<_> =
        (0..5u64).map(|i| client.encrypt_shortint(i % 4, 2).unwrap().as_lwe().clone()).collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();

    let production = bsk.bootstrap_batch(&jobs).unwrap();
    let mut timings = StageTimings::new();
    let probed = bsk.bootstrap_batch_profiled(&jobs, &mut timings).unwrap();
    assert_eq!(probed, production, "TimingProbe must not perturb the arithmetic");

    // Single-job probed path agrees too.
    let mut single_timings = StageTimings::new();
    let single = bsk.bootstrap_profiled(&cts[0], &lut, &mut single_timings).unwrap();
    assert_eq!(single, production[0]);
    assert!(single_timings.total_for(PbsStage::Fft) > Duration::ZERO);
}

#[test]
fn probed_multi_bit_bootstrap_is_bit_identical_to_production() {
    // The grouped kernel threads the same `Probe` machinery through its
    // assembly/decompose/FFT loops; the probes must not perturb it.
    let params =
        TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 });
    let (mut client, server) = generate_keys(&params, 246);
    let mbsk = server.multi_bit_bootstrap_key().expect("multi-bit params carry the grouped key");
    let lut = Lut::from_function(params.polynomial_size, 2, |m| (m + 3) % 4).unwrap();
    let cts: Vec<_> =
        (0..5u64).map(|i| client.encrypt_shortint(i % 4, 2).unwrap().as_lwe().clone()).collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();

    let production = mbsk.bootstrap_batch(&jobs).unwrap();
    let mut timings = StageTimings::new();
    let probed = mbsk.bootstrap_batch_profiled(&jobs, &mut timings).unwrap();
    assert_eq!(probed, production, "TimingProbe must not perturb the grouped kernel");
    // The grouped kernel's signature stages all ran under a probe: the
    // combined-GGSW assembly accounts to VectorMultiply and there is no
    // per-entry rotate stage.
    assert!(timings.total_for(PbsStage::Fft) > Duration::ZERO);
    assert!(timings.total_for(PbsStage::VectorMultiply) > Duration::ZERO);
}

#[test]
fn probed_multi_bit_stage_times_sum_to_the_measured_wall_time() {
    let params =
        TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 });
    let (mut client, server) = generate_keys(&params, 135);
    let mbsk = server.multi_bit_bootstrap_key().unwrap();
    let lut = Lut::from_function(params.polynomial_size, 2, |m| m).unwrap();
    let cts: Vec<_> =
        (0..6u64).map(|i| client.encrypt_shortint(i % 4, 2).unwrap().as_lwe().clone()).collect();
    let jobs: Vec<PbsJob<'_>> = cts.iter().map(|ct| PbsJob { ct, lut: &lut }).collect();

    let mut warmup = StageTimings::new();
    mbsk.bootstrap_batch_profiled(&jobs, &mut warmup).unwrap();
    let mut timings = StageTimings::new();
    let t0 = Instant::now();
    mbsk.bootstrap_batch_profiled(&jobs, &mut timings).unwrap();
    let wall = t0.elapsed();

    let sum = timings.total();
    assert!(
        sum <= wall + wall / 4 + Duration::from_millis(1),
        "stage sum {sum:?} exceeds wall time {wall:?}"
    );
    assert!(
        sum >= wall / 2,
        "stage sum {sum:?} accounts for under half of wall time {wall:?} — \
         a heavy region of the grouped kernel runs outside every probe bracket"
    );
}

#[test]
fn probed_keyswitch_is_bit_identical_to_production() {
    let params = TfheParameters::testing_fast();
    let (mut client, server) = generate_keys(&params, 987);
    let lut = Lut::from_function(params.polynomial_size, 2, |m| m).unwrap();
    let big = server
        .bootstrap_key()
        .bootstrap(client.encrypt_shortint(2, 2).unwrap().as_lwe(), &lut)
        .unwrap();
    let ksk = server.keyswitch_key();
    let production = ksk.keyswitch(&big).unwrap();
    let mut timings = StageTimings::new();
    let probed = ksk.keyswitch_profiled(&big, &mut timings).unwrap();
    assert_eq!(probed, production);
    assert!(timings.total_for(PbsStage::KeySwitch) > Duration::ZERO);
}
