//! Property-based tests of the TFHE data structures and their
//! invariants: gadget decomposition, torus codecs, ciphertext algebra.

use std::sync::OnceLock;

use proptest::prelude::*;

use strix_tfhe::bootstrap::{BootstrapKey, Lut, PbsJob};
use strix_tfhe::decompose::DecompositionParams;
use strix_tfhe::glwe::GlweSecretKey;
use strix_tfhe::lwe::{LweCiphertext, LweSecretKey};
use strix_tfhe::poly::TorusPolynomial;
use strix_tfhe::rng::NoiseSampler;
use strix_tfhe::torus;
use strix_tfhe::TfheParameters;

fn decomp_strategy() -> impl Strategy<Value = DecompositionParams> {
    (1u32..=16, 1usize..=4)
        .prop_filter("fits torus", |(b, l)| (*b as usize) * *l <= 64)
        .prop_map(|(base_log, level)| DecompositionParams::new(base_log, level))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decomposition_reconstructs_closest_representable(
        a in any::<u64>(),
        decomp in decomp_strategy(),
    ) {
        let digits = decomp.decompose(a);
        prop_assert_eq!(decomp.recompose(&digits), decomp.closest_representable(a));
    }

    #[test]
    fn decomposition_digits_are_balanced(
        a in any::<u64>(),
        decomp in decomp_strategy(),
    ) {
        let half = 1i64 << (decomp.base_log - 1);
        for d in decomp.decompose(a) {
            prop_assert!(d >= -half && d <= half, "digit {d} for base 2^{}", decomp.base_log);
        }
    }

    #[test]
    fn rounding_error_is_within_half_gadget_step(
        a in any::<u64>(),
        decomp in decomp_strategy(),
    ) {
        let r = decomp.closest_representable(a);
        let err = (a.wrapping_sub(r) as i64).unsigned_abs();
        let rep_bits = decomp.represented_bits();
        let bound = if rep_bits >= 64 { 0 } else { 1u64 << (64 - rep_bits - 1) };
        prop_assert!(err <= bound, "a={a} err={err} bound={bound}");
    }

    #[test]
    fn modulus_switch_error_bounded(a in any::<u64>(), bits in 1u32..=24) {
        let switched = torus::modulus_switch(a, bits);
        prop_assert!(switched < (1u64 << bits));
        let approx = switched as f64 / (1u64 << bits) as f64;
        let exact = a as f64 / 2.0f64.powi(64);
        let mut err = (approx - exact).abs();
        err = err.min(1.0 - err);
        prop_assert!(err <= 0.5 / (1u64 << bits) as f64 + 1e-15, "err {err}");
    }

    #[test]
    fn fraction_encoding_is_additive(
        a in -8i64..8,
        b in -8i64..8,
        denom in 4u32..=16,
    ) {
        let ea = torus::encode_fraction(a, denom);
        let eb = torus::encode_fraction(b, denom);
        prop_assert_eq!(ea.wrapping_add(eb), torus::encode_fraction(a + b, denom));
    }

    #[test]
    fn lwe_addition_is_homomorphic(
        m1 in 0u64..16,
        m2 in 0u64..16,
        seed in any::<u64>(),
    ) {
        let mut rng = NoiseSampler::from_seed(seed);
        let sk = LweSecretKey::generate(64, &mut rng);
        let std = 2.0f64.powi(-30);
        let mut c1 = sk.encrypt(torus::encode_fraction(m1 as i64, 5), std, &mut rng);
        let c2 = sk.encrypt(torus::encode_fraction(m2 as i64, 5), std, &mut rng);
        c1.add_assign(&c2).unwrap();
        let phase = sk.decrypt_phase(&c1).unwrap();
        prop_assert_eq!(torus::decode_message(phase, 5), (m1 + m2) % 32);
    }

    #[test]
    fn lwe_negation_then_addition_cancels(
        m in 0u64..16,
        seed in any::<u64>(),
    ) {
        let mut rng = NoiseSampler::from_seed(seed);
        let sk = LweSecretKey::generate(32, &mut rng);
        let std = 2.0f64.powi(-30);
        let ct = sk.encrypt(torus::encode_fraction(m as i64, 5), std, &mut rng);
        let mut neg = ct.clone();
        neg.negate();
        neg.add_assign(&ct).unwrap();
        let phase = sk.decrypt_phase(&neg).unwrap();
        prop_assert_eq!(torus::decode_message(phase, 5), 0);
    }

    #[test]
    fn trivial_ciphertexts_decrypt_exactly(pt in any::<u64>(), dim in 1usize..256) {
        let mut rng = NoiseSampler::from_seed(1);
        let sk = LweSecretKey::generate(dim, &mut rng);
        let ct = LweCiphertext::trivial(dim, pt);
        prop_assert_eq!(sk.decrypt_phase(&ct).unwrap(), pt);
    }

    #[test]
    fn polynomial_rotation_by_two_n_is_identity(
        coeffs in prop::collection::vec(any::<u64>(), 16),
        r in 0usize..32,
    ) {
        let p = TorusPolynomial::from_coeffs(coeffs);
        let forward = p.rotate_right(r);
        let back = forward.rotate_left(r);
        prop_assert_eq!(back, p);
    }

    #[test]
    fn f64_torus_conversion_round_trips_small_values(v in -(1i64 << 40)..(1i64 << 40)) {
        prop_assert_eq!(torus::f64_to_torus(v as f64), v as u64);
    }

    #[test]
    fn signed_interpretation_matches_twos_complement(t in any::<u64>()) {
        let signed = torus::torus_to_f64_signed(t);
        prop_assert_eq!(signed, t as i64 as f64);
    }
}

/// A real bootstrapping key plus a pair of distinct LUTs, generated
/// once for the whole parallel-equivalence property (key generation is
/// the expensive part; the ciphertexts vary per case).
fn pbs_fixture() -> &'static (TfheParameters, BootstrapKey, Vec<Lut>) {
    static FIXTURE: OnceLock<(TfheParameters, BootstrapKey, Vec<Lut>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params = TfheParameters::testing_fast();
        let mut rng = NoiseSampler::from_seed(0xE90C);
        let lwe_sk = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let glwe_sk =
            GlweSecretKey::generate(params.glwe_dimension, params.polynomial_size, &mut rng);
        let bsk = BootstrapKey::generate(&lwe_sk, &glwe_sk, &params, &mut rng);
        let luts = vec![
            Lut::sign(params.polynomial_size, torus::encode_fraction(1, 3)),
            Lut::from_function(params.polynomial_size, 2, |m| (3 * m + 1) % 4).unwrap(),
        ];
        (params, bsk, luts)
    })
}

proptest! {
    // PBS-heavy property: fewer cases, each covering a random epoch.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `bootstrap_batch_parallel` must be *bit*-identical to the
    /// sequential key-major path for any epoch shape — including job
    /// counts that do not divide evenly across the thread count and
    /// epochs smaller than the thread count.
    #[test]
    fn parallel_epoch_is_bit_identical_to_sequential(
        job_count in 0usize..10,
        threads in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let (params, bsk, luts) = pbs_fixture();
        let mut rng = NoiseSampler::from_seed(seed);
        let cts: Vec<LweCiphertext> = (0..job_count)
            .map(|_| {
                let mut raw = vec![0u64; params.lwe_dimension + 1];
                rng.fill_uniform(&mut raw);
                LweCiphertext::from_raw(raw)
            })
            .collect();
        let jobs: Vec<PbsJob<'_>> = cts
            .iter()
            .enumerate()
            .map(|(i, ct)| PbsJob { ct, lut: &luts[i % luts.len()] })
            .collect();
        let sequential = bsk.bootstrap_batch(&jobs).unwrap();
        let parallel = bsk.bootstrap_batch_parallel(&jobs, threads).unwrap();
        prop_assert_eq!(parallel, sequential, "jobs={} threads={}", job_count, threads);
    }
}
