//! GLWE ciphertexts — the paper's test-vector matrices
//! `tv[k+1] = [A_1(X), …, A_k(X), B(X)]`.
//!
//! A GLWE ciphertext generalises LWE to polynomial rings: the mask is a
//! vector of `k` torus polynomials and the body satisfies
//! `B = Σ A_j·S_j + M + E` in `T_q[X]/(X^N+1)`. During programmable
//! bootstrapping the accumulator (`tv` in Algorithm 1) is a GLWE
//! ciphertext that the blind rotation rotates one secret bit at a time.

use serde::{Deserialize, Serialize};

use crate::lwe::{LweCiphertext, LweSecretKey};
use crate::poly::TorusPolynomial;
use crate::rng::NoiseSampler;
use crate::TfheError;

/// A binary GLWE secret key: `k` polynomials of `N` binary coefficients.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlweSecretKey {
    polys: Vec<TorusPolynomial>,
}

impl GlweSecretKey {
    /// Samples a fresh binary key with `k` polynomials of size `N`.
    pub fn generate(glwe_dimension: usize, poly_size: usize, rng: &mut NoiseSampler) -> Self {
        let polys = (0..glwe_dimension)
            .map(|_| {
                let mut p = TorusPolynomial::zero(poly_size);
                rng.fill_binary(p.coeffs_mut());
                p
            })
            .collect();
        Self { polys }
    }

    /// GLWE mask length `k`.
    #[inline]
    pub fn dimension(&self) -> usize {
        self.polys.len()
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_size(&self) -> usize {
        self.polys[0].size()
    }

    /// Borrow of the key polynomials.
    #[inline]
    pub fn polys(&self) -> &[TorusPolynomial] {
        &self.polys
    }

    /// Flattens the key into the LWE key of dimension `k·N` under which
    /// sample-extracted ciphertexts decrypt (§II-E: the PBS output key).
    pub fn to_extracted_lwe_key(&self) -> LweSecretKey {
        let mut bits = Vec::with_capacity(self.dimension() * self.poly_size());
        for p in &self.polys {
            bits.extend_from_slice(p.coeffs());
        }
        LweSecretKey::from_bits(bits)
    }

    /// Encrypts a message polynomial.
    pub fn encrypt(
        &self,
        message: &TorusPolynomial,
        noise_std: f64,
        rng: &mut NoiseSampler,
    ) -> GlweCiphertext {
        assert_eq!(message.size(), self.poly_size(), "message polynomial size mismatch");
        let n = self.poly_size();
        let mut masks = Vec::with_capacity(self.dimension());
        for _ in 0..self.dimension() {
            let mut m = TorusPolynomial::zero(n);
            rng.fill_uniform(m.coeffs_mut());
            masks.push(m);
        }
        let mut body = TorusPolynomial::zero(n);
        for (b, &m) in body.coeffs_mut().iter_mut().zip(message.coeffs()) {
            *b = m.wrapping_add(rng.gaussian_torus(noise_std));
        }
        for (mask, key) in masks.iter().zip(&self.polys) {
            let prod = poly_mul_binary(mask, key);
            body.add_assign(&prod);
        }
        GlweCiphertext { masks, body }
    }

    /// Encrypts `message` under caller-supplied mask polynomials.
    ///
    /// Seeded key transport draws the masks from a shared CRS stream so
    /// only the body has to be stored; generation and expansion both
    /// call this with identical masks, which keeps the two sides of the
    /// transport bit-identical by construction. Noise still comes from
    /// the private `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the mask vector or message does not match the key
    /// shape (internal key-generation invariant, not a runtime path).
    pub(crate) fn encrypt_with_mask(
        &self,
        masks: Vec<TorusPolynomial>,
        message: &TorusPolynomial,
        noise_std: f64,
        rng: &mut NoiseSampler,
    ) -> GlweCiphertext {
        assert_eq!(masks.len(), self.dimension(), "mask vector length mismatch");
        assert_eq!(message.size(), self.poly_size(), "message polynomial size mismatch");
        let n = self.poly_size();
        let mut body = TorusPolynomial::zero(n);
        for (b, &m) in body.coeffs_mut().iter_mut().zip(message.coeffs()) {
            *b = m.wrapping_add(rng.gaussian_torus(noise_std));
        }
        for (mask, key) in masks.iter().zip(&self.polys) {
            assert_eq!(mask.size(), n, "mask polynomial size mismatch");
            let prod = poly_mul_binary(mask, key);
            body.add_assign(&prod);
        }
        GlweCiphertext { masks, body }
    }

    /// Computes the phase `B − Σ A_j·S_j = M + E`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn decrypt_phase(&self, ct: &GlweCiphertext) -> Result<TorusPolynomial, TfheError> {
        if ct.dimension() != self.dimension() {
            return Err(TfheError::ParameterMismatch {
                what: "glwe dimension",
                left: ct.dimension(),
                right: self.dimension(),
            });
        }
        if ct.poly_size() != self.poly_size() {
            return Err(TfheError::ParameterMismatch {
                what: "polynomial size",
                left: ct.poly_size(),
                right: self.poly_size(),
            });
        }
        let mut phase = ct.body.clone();
        for (mask, key) in ct.masks.iter().zip(&self.polys) {
            let prod = poly_mul_binary(mask, key);
            phase.sub_assign(&prod);
        }
        Ok(phase)
    }
}

/// Exact negacyclic product of a torus polynomial with a binary
/// polynomial (secret keys are binary, so this stays exact and avoids
/// FFT noise inside key operations).
fn poly_mul_binary(torus: &TorusPolynomial, binary: &TorusPolynomial) -> TorusPolynomial {
    let n = torus.size();
    let mut out = TorusPolynomial::zero(n);
    for (i, &b) in binary.coeffs().iter().enumerate() {
        if b == 0 {
            continue;
        }
        for (j, &t) in torus.coeffs().iter().enumerate() {
            let k = i + j;
            if k < n {
                out[k] = out[k].wrapping_add(t);
            } else {
                out[k - n] = out[k - n].wrapping_sub(t);
            }
        }
    }
    out
}

/// A GLWE ciphertext `[A_1(X), …, A_k(X), B(X)]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlweCiphertext {
    masks: Vec<TorusPolynomial>,
    body: TorusPolynomial,
}

impl GlweCiphertext {
    /// A noiseless encryption of `message` under any key: zero masks.
    ///
    /// This is how the initial test vector enters the blind rotation.
    pub fn trivial(glwe_dimension: usize, message: TorusPolynomial) -> Self {
        let n = message.size();
        Self { masks: vec![TorusPolynomial::zero(n); glwe_dimension], body: message }
    }

    /// The all-zero ciphertext (trivial encryption of zero).
    pub fn zero(glwe_dimension: usize, poly_size: usize) -> Self {
        Self::trivial(glwe_dimension, TorusPolynomial::zero(poly_size))
    }

    /// Reassembles a ciphertext from CRS-regenerated masks and a stored
    /// body — the expansion half of seeded key transport.
    ///
    /// # Panics
    ///
    /// Panics on a mask/body size mismatch.
    pub(crate) fn from_parts(masks: Vec<TorusPolynomial>, body: TorusPolynomial) -> Self {
        for mask in &masks {
            assert_eq!(mask.size(), body.size(), "mask polynomial size mismatch");
        }
        Self { masks, body }
    }

    /// GLWE mask length `k`.
    #[inline]
    pub fn dimension(&self) -> usize {
        self.masks.len()
    }

    /// Polynomial size `N`.
    #[inline]
    pub fn poly_size(&self) -> usize {
        self.body.size()
    }

    /// The mask polynomials `A_1 … A_k`.
    #[inline]
    pub fn masks(&self) -> &[TorusPolynomial] {
        &self.masks
    }

    /// The body polynomial `B`.
    #[inline]
    pub fn body(&self) -> &TorusPolynomial {
        &self.body
    }

    /// Iterates over all `k+1` polynomials, masks first then body —
    /// the row order of the paper's test-vector matrix.
    pub fn polys(&self) -> impl Iterator<Item = &TorusPolynomial> {
        self.masks.iter().chain(std::iter::once(&self.body))
    }

    /// Mutable access to polynomial `j` (`j = k` is the body).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if `j > k`. Indexing
    /// mistakes surface as an error the caller can route around
    /// instead of a panic that would take a serving thread down.
    pub fn poly_mut(&mut self, j: usize) -> Result<&mut TorusPolynomial, TfheError> {
        let k = self.masks.len();
        if j < k {
            Ok(&mut self.masks[j])
        } else if j == k {
            Ok(&mut self.body)
        } else {
            Err(TfheError::ParameterMismatch { what: "glwe polynomial index", left: j, right: k })
        }
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn add_assign(&mut self, other: &GlweCiphertext) -> Result<(), TfheError> {
        self.check_shape(other)?;
        for (a, b) in self.masks.iter_mut().zip(&other.masks) {
            a.add_assign(b);
        }
        self.body.add_assign(&other.body);
        Ok(())
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on shape mismatch.
    pub fn sub_assign(&mut self, other: &GlweCiphertext) -> Result<(), TfheError> {
        self.check_shape(other)?;
        for (a, b) in self.masks.iter_mut().zip(&other.masks) {
            a.sub_assign(b);
        }
        self.body.sub_assign(&other.body);
        Ok(())
    }

    /// Returns `X^amount · self` — the rotate-right of Algorithm 1
    /// line 6, applied to every polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 2N`.
    pub fn rotate_right(&self, amount: usize) -> GlweCiphertext {
        GlweCiphertext {
            masks: self.masks.iter().map(|p| p.rotate_right(amount)).collect(),
            body: self.body.rotate_right(amount),
        }
    }

    /// Returns `X^{-amount} · self` — the rotate-left of Algorithm 1
    /// line 4.
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 2N`.
    pub fn rotate_left(&self, amount: usize) -> GlweCiphertext {
        GlweCiphertext {
            masks: self.masks.iter().map(|p| p.rotate_left(amount)).collect(),
            body: self.body.rotate_left(amount),
        }
    }

    /// As [`Self::rotate_right`], writing into a caller-provided
    /// ciphertext — the allocation-free rotate of the scratch-based
    /// blind rotation (Algorithm 1 line 6 without the `Vec` churn).
    ///
    /// # Panics
    ///
    /// Panics if `amount >= 2N` or the shapes differ.
    pub fn rotate_right_into(&self, amount: usize, out: &mut GlweCiphertext) {
        assert_eq!(self.dimension(), out.dimension(), "glwe dimension mismatch");
        for (src, dst) in self.masks.iter().zip(&mut out.masks) {
            src.rotate_right_into(amount, dst);
        }
        self.body.rotate_right_into(amount, &mut out.body);
    }

    /// Sample extraction (Algorithm 1 line 13): forms the LWE ciphertext
    /// of coefficient 0 of the encrypted polynomial, of dimension `k·N`,
    /// under the extracted key ([`GlweSecretKey::to_extracted_lwe_key`]).
    pub fn sample_extract(&self) -> LweCiphertext {
        let n = self.poly_size();
        let k = self.dimension();
        let mut data = Vec::with_capacity(k * n + 1);
        for mask in &self.masks {
            let c = mask.coeffs();
            data.push(c[0]);
            for v in 1..n {
                data.push(c[n - v].wrapping_neg());
            }
        }
        data.push(self.body.coeffs()[0]);
        LweCiphertext::from_raw(data)
    }

    fn check_shape(&self, other: &GlweCiphertext) -> Result<(), TfheError> {
        if self.dimension() != other.dimension() {
            return Err(TfheError::ParameterMismatch {
                what: "glwe dimension",
                left: self.dimension(),
                right: other.dimension(),
            });
        }
        if self.poly_size() != other.poly_size() {
            return Err(TfheError::ParameterMismatch {
                what: "polynomial size",
                left: self.poly_size(),
                right: other.poly_size(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{decode_message, encode_fraction};

    const STD: f64 = 1.0e-10;

    fn setup(k: usize, n: usize) -> (GlweSecretKey, NoiseSampler) {
        let mut rng = NoiseSampler::from_seed(77);
        let sk = GlweSecretKey::generate(k, n, &mut rng);
        (sk, rng)
    }

    fn message_poly(n: usize) -> TorusPolynomial {
        let coeffs: Vec<u64> = (0..n).map(|j| encode_fraction((j % 16) as i64, 4)).collect();
        TorusPolynomial::from_coeffs(coeffs)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        for (k, n) in [(1, 64), (2, 32), (3, 16)] {
            let (sk, mut rng) = setup(k, n);
            let msg = message_poly(n);
            let ct = sk.encrypt(&msg, STD, &mut rng);
            let phase = sk.decrypt_phase(&ct).unwrap();
            for (p, m) in phase.coeffs().iter().zip(msg.coeffs()) {
                assert_eq!(decode_message(*p, 4), decode_message(*m, 4), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn trivial_encryption_has_zero_mask() {
        let msg = message_poly(32);
        let ct = GlweCiphertext::trivial(2, msg.clone());
        assert!(ct.masks().iter().all(|m| m.coeffs().iter().all(|&c| c == 0)));
        let (sk, _) = setup(2, 32);
        assert_eq!(sk.decrypt_phase(&ct).unwrap(), msg);
    }

    #[test]
    fn homomorphic_add_sub() {
        let (sk, mut rng) = setup(1, 64);
        let m1 = TorusPolynomial::constant(64, encode_fraction(3, 4));
        let m2 = TorusPolynomial::constant(64, encode_fraction(2, 4));
        let mut c1 = sk.encrypt(&m1, STD, &mut rng);
        let c2 = sk.encrypt(&m2, STD, &mut rng);
        c1.add_assign(&c2).unwrap();
        let phase = sk.decrypt_phase(&c1).unwrap();
        assert_eq!(decode_message(phase[0], 4), 5);
        c1.sub_assign(&c2).unwrap();
        let phase = sk.decrypt_phase(&c1).unwrap();
        assert_eq!(decode_message(phase[0], 4), 3);
    }

    #[test]
    fn rotation_commutes_with_decryption() {
        // Dec(X^a · ct) = X^a · Dec(ct): rotation is a homomorphism.
        let (sk, mut rng) = setup(2, 32);
        let msg = message_poly(32);
        let ct = sk.encrypt(&msg, STD, &mut rng);
        for amount in [0usize, 1, 5, 31, 32, 40, 63] {
            let rotated = ct.rotate_right(amount);
            let phase = sk.decrypt_phase(&rotated).unwrap();
            let expected = msg.rotate_right(amount);
            for (p, m) in phase.coeffs().iter().zip(expected.coeffs()) {
                assert_eq!(decode_message(*p, 4), decode_message(*m, 4), "amount {amount}");
            }
        }
    }

    #[test]
    fn sample_extract_recovers_constant_coefficient() {
        let (sk, mut rng) = setup(2, 32);
        let msg = message_poly(32);
        let ct = sk.encrypt(&msg, STD, &mut rng);
        let extracted = ct.sample_extract();
        assert_eq!(extracted.dimension(), 2 * 32);
        let lwe_key = sk.to_extracted_lwe_key();
        let phase = lwe_key.decrypt_phase(&extracted).unwrap();
        assert_eq!(decode_message(phase, 4), decode_message(msg[0], 4));
    }

    #[test]
    fn sample_extract_after_rotation_reads_any_coefficient() {
        // Rotating left by j then extracting reads coefficient j — the
        // mechanism by which PBS selects the LUT entry.
        let (sk, mut rng) = setup(1, 64);
        let msg = message_poly(64);
        let ct = sk.encrypt(&msg, STD, &mut rng);
        let lwe_key = sk.to_extracted_lwe_key();
        for j in [0usize, 1, 17, 63] {
            let phase = lwe_key.decrypt_phase(&ct.rotate_left(j).sample_extract()).unwrap();
            assert_eq!(decode_message(phase, 4), decode_message(msg[j], 4), "j={j}");
        }
    }

    #[test]
    fn encrypt_with_mask_round_trips_and_reassembles() {
        let (sk, mut rng) = setup(2, 32);
        let msg = message_poly(32);
        let mut crs = NoiseSampler::from_seed(99);
        let mut masks = Vec::new();
        for _ in 0..2 {
            let mut m = TorusPolynomial::zero(32);
            crs.fill_uniform(m.coeffs_mut());
            masks.push(m);
        }
        let ct = sk.encrypt_with_mask(masks.clone(), &msg, STD, &mut rng);
        // The stored masks are exactly the CRS draws.
        assert_eq!(ct.masks(), masks.as_slice());
        let phase = sk.decrypt_phase(&ct).unwrap();
        for (p, m) in phase.coeffs().iter().zip(msg.coeffs()) {
            assert_eq!(decode_message(*p, 4), decode_message(*m, 4));
        }
        // Expansion: regenerated masks + stored body reproduce the
        // ciphertext bit for bit.
        let rebuilt = GlweCiphertext::from_parts(masks, ct.body().clone());
        assert_eq!(rebuilt, ct);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let (sk, mut rng) = setup(1, 64);
        let ct = sk.encrypt(&message_poly(64), STD, &mut rng);
        let mut other = GlweCiphertext::zero(2, 64);
        assert!(other.add_assign(&ct).is_err());
        let mut other = GlweCiphertext::zero(1, 32);
        assert!(other.add_assign(&ct).is_err());
        let (sk2, _) = setup(2, 64);
        assert!(sk2.decrypt_phase(&ct).is_err());
    }

    #[test]
    fn poly_mut_indexes_masks_then_body() {
        let mut ct = GlweCiphertext::zero(2, 16);
        ct.poly_mut(0).unwrap()[0] = 1;
        ct.poly_mut(1).unwrap()[0] = 2;
        ct.poly_mut(2).unwrap()[0] = 3;
        assert_eq!(ct.masks()[0][0], 1);
        assert_eq!(ct.masks()[1][0], 2);
        assert_eq!(ct.body()[0], 3);
    }

    #[test]
    fn poly_mut_rejects_out_of_range_as_error() {
        let mut ct = GlweCiphertext::zero(1, 16);
        assert!(matches!(
            ct.poly_mut(2),
            Err(TfheError::ParameterMismatch { what: "glwe polynomial index", left: 2, right: 1 })
        ));
    }
}
