//! LWE ciphertexts — the paper's `c[n+1] = [a_1, …, a_n, b]` vectors.
//!
//! Encryption follows the standard LWE template on the discretised
//! torus: `b = Σ a_i·s_i + m + e` with a binary secret and Gaussian
//! noise. The *phase* `b − Σ a_i·s_i = m + e` is what decryption and
//! the blind rotation consume.

use serde::{Deserialize, Serialize};

use crate::rng::NoiseSampler;
use crate::TfheError;

/// A binary LWE secret key of dimension `n`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LweSecretKey {
    bits: Vec<u64>,
}

impl LweSecretKey {
    /// Samples a fresh binary key of the given dimension.
    pub fn generate(dimension: usize, rng: &mut NoiseSampler) -> Self {
        let mut bits = vec![0u64; dimension];
        rng.fill_binary(&mut bits);
        Self { bits }
    }

    /// Builds a key from explicit bits (used by sample extraction).
    ///
    /// # Panics
    ///
    /// Panics if any entry is not 0 or 1.
    pub fn from_bits(bits: Vec<u64>) -> Self {
        assert!(bits.iter().all(|&b| b <= 1), "secret key bits must be binary");
        Self { bits }
    }

    /// Key dimension `n`.
    #[inline]
    pub fn dimension(&self) -> usize {
        self.bits.len()
    }

    /// Borrow of the key bits.
    #[inline]
    pub fn bits(&self) -> &[u64] {
        &self.bits
    }

    /// Encrypts a plaintext torus element with the given noise standard
    /// deviation (relative to the torus).
    pub fn encrypt(&self, plaintext: u64, noise_std: f64, rng: &mut NoiseSampler) -> LweCiphertext {
        let n = self.dimension();
        let mut data = vec![0u64; n + 1];
        rng.fill_uniform(&mut data[..n]);
        let mut body = plaintext.wrapping_add(rng.gaussian_torus(noise_std));
        for (a, s) in data[..n].iter().zip(&self.bits) {
            body = body.wrapping_add(a.wrapping_mul(*s));
        }
        data[n] = body;
        LweCiphertext { data }
    }

    /// Encrypts a plaintext under a caller-supplied mask (seeded key
    /// transport: the mask comes from a shared CRS stream, so only the
    /// body element has to ship). Noise still comes from the private
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the key dimension
    /// (internal key-generation invariant, not a runtime path).
    pub(crate) fn encrypt_with_mask(
        &self,
        mask: Vec<u64>,
        plaintext: u64,
        noise_std: f64,
        rng: &mut NoiseSampler,
    ) -> LweCiphertext {
        let n = self.dimension();
        assert_eq!(mask.len(), n, "mask length mismatch");
        let mut body = plaintext.wrapping_add(rng.gaussian_torus(noise_std));
        for (a, s) in mask.iter().zip(&self.bits) {
            body = body.wrapping_add(a.wrapping_mul(*s));
        }
        let mut data = mask;
        data.push(body);
        LweCiphertext { data }
    }

    /// Computes the phase `b − Σ a_i s_i = m + e`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if the ciphertext
    /// dimension differs from the key's.
    pub fn decrypt_phase(&self, ct: &LweCiphertext) -> Result<u64, TfheError> {
        if ct.dimension() != self.dimension() {
            return Err(TfheError::ParameterMismatch {
                what: "lwe dimension",
                left: ct.dimension(),
                right: self.dimension(),
            });
        }
        let mut phase = ct.body();
        for (a, s) in ct.mask().iter().zip(&self.bits) {
            phase = phase.wrapping_sub(a.wrapping_mul(*s));
        }
        Ok(phase)
    }
}

/// An LWE ciphertext `[a_1, …, a_n, b]`, stored contiguously with the
/// body in the last slot (the paper's layout).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LweCiphertext {
    data: Vec<u64>,
}

impl LweCiphertext {
    /// A noiseless encryption of `plaintext` under *any* key: zero mask,
    /// body = plaintext. Used for public constants.
    pub fn trivial(dimension: usize, plaintext: u64) -> Self {
        let mut data = vec![0u64; dimension + 1];
        data[dimension] = plaintext;
        Self { data }
    }

    /// Builds a ciphertext from raw elements `[a_1, …, a_n, b]`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty (there must at least be a body).
    pub fn from_raw(data: Vec<u64>) -> Self {
        assert!(!data.is_empty(), "an LWE ciphertext needs at least a body element");
        Self { data }
    }

    /// Mask length `n`.
    #[inline]
    pub fn dimension(&self) -> usize {
        self.data.len() - 1
    }

    /// The mask `[a_1, …, a_n]`.
    #[inline]
    pub fn mask(&self) -> &[u64] {
        &self.data[..self.data.len() - 1]
    }

    /// The body `b`.
    #[inline]
    pub fn body(&self) -> u64 {
        self.data[self.data.len() - 1]
    }

    /// Full element slice `[a_1, …, a_n, b]`.
    #[inline]
    pub fn as_raw(&self) -> &[u64] {
        &self.data
    }

    /// Crate-internal mutable element access for hot loops (keyswitch
    /// fused multiply-subtract). Length is preserved by construction.
    #[inline]
    pub(crate) fn raw_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Mutable body access (used by gate offsets).
    #[inline]
    pub fn body_mut(&mut self) -> &mut u64 {
        let n = self.data.len() - 1;
        &mut self.data[n]
    }

    /// Homomorphic addition: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on dimension mismatch.
    pub fn add_assign(&mut self, other: &LweCiphertext) -> Result<(), TfheError> {
        self.check_dim(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.wrapping_add(*b);
        }
        Ok(())
    }

    /// Homomorphic subtraction: `self -= other`.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on dimension mismatch.
    pub fn sub_assign(&mut self, other: &LweCiphertext) -> Result<(), TfheError> {
        self.check_dim(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.wrapping_sub(*b);
        }
        Ok(())
    }

    /// Homomorphic negation.
    pub fn negate(&mut self) {
        for a in &mut self.data {
            *a = a.wrapping_neg();
        }
    }

    /// Fused multiply-add: `self += c · other` in one pass, without
    /// materialising the scaled ciphertext. `c == 0` is a no-op
    /// (bit-identical to adding the explicitly-zeroed product). This is
    /// the linear-preamble hot path of the streaming executor.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] on dimension mismatch.
    pub fn add_scaled_assign(&mut self, other: &LweCiphertext, c: i64) -> Result<(), TfheError> {
        self.check_dim(other)?;
        if c == 0 {
            return Ok(());
        }
        let c = c as u64;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.wrapping_add(b.wrapping_mul(c));
        }
        Ok(())
    }

    /// Homomorphic multiplication by a small signed integer constant.
    pub fn scalar_mul_assign(&mut self, c: i64) {
        let c = c as u64;
        for a in &mut self.data {
            *a = a.wrapping_mul(c);
        }
    }

    /// Adds a plaintext constant to the encrypted message.
    pub fn plaintext_add_assign(&mut self, plaintext: u64) {
        let n = self.data.len() - 1;
        self.data[n] = self.data[n].wrapping_add(plaintext);
    }

    fn check_dim(&self, other: &LweCiphertext) -> Result<(), TfheError> {
        if self.dimension() != other.dimension() {
            return Err(TfheError::ParameterMismatch {
                what: "lwe dimension",
                left: self.dimension(),
                right: other.dimension(),
            });
        }
        Ok(())
    }
}

// Lets batch entry points (`KeySwitchKey::keyswitch_batch[_parallel]`)
// accept `&[LweCiphertext]` and `&[&LweCiphertext]` alike, so callers
// holding ciphertexts inside larger structures (e.g. the runtime's
// per-request queue) can batch without cloning.
impl AsRef<LweCiphertext> for LweCiphertext {
    #[inline]
    fn as_ref(&self) -> &LweCiphertext {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::{decode_message, encode_fraction};

    fn setup() -> (LweSecretKey, NoiseSampler) {
        let mut rng = NoiseSampler::from_seed(2024);
        let sk = LweSecretKey::generate(128, &mut rng);
        (sk, rng)
    }

    #[test]
    fn add_scaled_assign_matches_scale_then_add() {
        let (sk, mut rng) = setup();
        let std = 2.0f64.powi(-30);
        for c in [-2i64, -1, 0, 1, 2, 7] {
            let a = sk.encrypt(encode_fraction(1, 5), std, &mut rng);
            let b = sk.encrypt(encode_fraction(2, 5), std, &mut rng);
            let mut fused = a.clone();
            fused.add_scaled_assign(&b, c).unwrap();
            let mut reference = b.clone();
            reference.scalar_mul_assign(c);
            let mut expected = a;
            expected.add_assign(&reference).unwrap();
            assert_eq!(fused, expected, "c = {c}");
        }
        // Dimension mismatch is rejected.
        let mut short = LweCiphertext::trivial(4, 0);
        assert!(short.add_scaled_assign(&LweCiphertext::trivial(5, 0), 1).is_err());
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let (sk, mut rng) = setup();
        for msg in 0..8u64 {
            let pt = encode_fraction(msg as i64, 3);
            let ct = sk.encrypt(pt, 2.0f64.powi(-20), &mut rng);
            let phase = sk.decrypt_phase(&ct).unwrap();
            assert_eq!(decode_message(phase, 3), msg);
        }
    }

    #[test]
    fn trivial_ciphertext_decrypts_under_any_key() {
        let (sk, _) = setup();
        let pt = encode_fraction(3, 3);
        let ct = LweCiphertext::trivial(sk.dimension(), pt);
        assert_eq!(sk.decrypt_phase(&ct).unwrap(), pt);
    }

    #[test]
    fn homomorphic_addition() {
        let (sk, mut rng) = setup();
        let std = 2.0f64.powi(-24);
        let mut c1 = sk.encrypt(encode_fraction(1, 4), std, &mut rng);
        let c2 = sk.encrypt(encode_fraction(2, 4), std, &mut rng);
        c1.add_assign(&c2).unwrap();
        let phase = sk.decrypt_phase(&c1).unwrap();
        assert_eq!(decode_message(phase, 4), 3);
    }

    #[test]
    fn homomorphic_subtraction_and_negation() {
        let (sk, mut rng) = setup();
        let std = 2.0f64.powi(-24);
        let mut c1 = sk.encrypt(encode_fraction(5, 4), std, &mut rng);
        let c2 = sk.encrypt(encode_fraction(2, 4), std, &mut rng);
        c1.sub_assign(&c2).unwrap();
        assert_eq!(decode_message(sk.decrypt_phase(&c1).unwrap(), 4), 3);

        c1.negate();
        // -3 ≡ 13 (mod 16)
        assert_eq!(decode_message(sk.decrypt_phase(&c1).unwrap(), 4), 13);
    }

    #[test]
    fn scalar_multiplication() {
        let (sk, mut rng) = setup();
        let mut ct = sk.encrypt(encode_fraction(1, 4), 2.0f64.powi(-30), &mut rng);
        ct.scalar_mul_assign(3);
        assert_eq!(decode_message(sk.decrypt_phase(&ct).unwrap(), 4), 3);
    }

    #[test]
    fn plaintext_addition_shifts_message() {
        let (sk, mut rng) = setup();
        let mut ct = sk.encrypt(encode_fraction(1, 4), 2.0f64.powi(-30), &mut rng);
        ct.plaintext_add_assign(encode_fraction(4, 4));
        assert_eq!(decode_message(sk.decrypt_phase(&ct).unwrap(), 4), 5);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let (sk, mut rng) = setup();
        let ct = sk.encrypt(0, 2.0f64.powi(-20), &mut rng);
        let other = LweCiphertext::trivial(64, 0);
        let mut c = ct.clone();
        assert!(matches!(
            c.add_assign(&other),
            Err(TfheError::ParameterMismatch { what: "lwe dimension", .. })
        ));
        assert!(sk.decrypt_phase(&other).is_err());
    }

    #[test]
    fn mask_is_random_body_depends_on_key() {
        let (sk, mut rng) = setup();
        let c1 = sk.encrypt(0, 2.0f64.powi(-20), &mut rng);
        let c2 = sk.encrypt(0, 2.0f64.powi(-20), &mut rng);
        assert_ne!(c1.mask(), c2.mask(), "fresh masks must differ");
    }
}
