//! TFHE parameter sets.
//!
//! The four named sets reproduce Table IV of the Strix paper:
//!
//! | Set | n | k | N | l_b | λ |
//! |-----|-----|---|-------|-----|---------|
//! | I   | 500 | 1 | 1024  | 2   | 110-bit |
//! | II  | 630 | 1 | 1024  | 3   | 128-bit |
//! | III | 592 | 1 | 2048  | 3   | 128-bit |
//! | IV  | 991 | 1 | 16384 | 2   | 128-bit |
//!
//! The quantities the paper leaves implicit (decomposition bases, key-
//! switching decomposition, noise standard deviations) are filled in from
//! the libraries each set originates from: set I matches the original
//! TFHE library's 110-bit parameters, sets II/III follow Concrete-era
//! 128-bit choices, and set IV extrapolates the same security level to
//! `N = 16384`. Noise values are *research-grade estimates*, not audited
//! production parameters.

use serde::{Deserialize, Serialize};
use strix_fft::StrixFftBackend;

use crate::TfheError;

/// The named parameter sets of the paper's Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParameterSet {
    /// 110-bit baseline used by all prior accelerators.
    SetI,
    /// 128-bit set used by YKP (FPGA).
    SetII,
    /// 128-bit set used by XHEC (FPGA).
    SetIII,
    /// 128-bit high-precision set introduced by Strix (`N = 16384`).
    SetIV,
}

impl ParameterSet {
    /// All four sets, in paper order.
    pub const ALL: [ParameterSet; 4] =
        [ParameterSet::SetI, ParameterSet::SetII, ParameterSet::SetIII, ParameterSet::SetIV];

    /// The paper's roman-numeral label.
    pub fn label(self) -> &'static str {
        match self {
            ParameterSet::SetI => "I",
            ParameterSet::SetII => "II",
            ParameterSet::SetIII => "III",
            ParameterSet::SetIV => "IV",
        }
    }

    /// Resolves to the concrete parameter values.
    pub fn parameters(self) -> TfheParameters {
        match self {
            ParameterSet::SetI => TfheParameters::set_i(),
            ParameterSet::SetII => TfheParameters::set_ii(),
            ParameterSet::SetIII => TfheParameters::set_iii(),
            ParameterSet::SetIV => TfheParameters::set_iv(),
        }
    }
}

impl std::fmt::Display for ParameterSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which blind-rotation kernel a server key targets — the software
/// counterpart of tfhe-rs's CUDA `CLASSICAL` vs `MULTI_BIT` PBS
/// dispatch.
///
/// * [`PbsKernel::Classical`] runs one CMUX per LWE mask element: `n`
///   external products against an `n`-entry bootstrapping key.
/// * [`PbsKernel::MultiBit`] groups `grouping_factor` secret bits per
///   key entry (`2^g` GGSW rows encrypting all bit-pattern indicator
///   products) and runs one external product per *group* —
///   `⌈n/g⌉` iterations instead of `n`, at the cost of a `2^g/g ×`
///   larger key and a `2^g ×` key-noise term per product.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PbsKernel {
    /// One CMUX per secret-key bit (the PR 4/5 coefficient-batched
    /// kernel).
    #[default]
    Classical,
    /// Grouped blind rotation over `⌈n/g⌉` combined GGSW entries.
    MultiBit {
        /// Secret bits collapsed per key entry (`g ≥ 1`; each entry
        /// stores `2^g` GGSW rows).
        grouping_factor: usize,
    },
}

impl PbsKernel {
    /// Largest supported grouping factor: key entries grow as `2^g`,
    /// and beyond a handful of bits the combined-GGSW assembly
    /// outweighs the saved transforms.
    pub const MAX_GROUPING_FACTOR: usize = 8;

    /// Stable human-readable label (`"classical"` / `"multi-bit-g2"`).
    pub fn label(self) -> String {
        match self {
            PbsKernel::Classical => "classical".to_string(),
            PbsKernel::MultiBit { grouping_factor } => format!("multi-bit-g{grouping_factor}"),
        }
    }

    /// The grouping factor, or `None` for the classical kernel.
    #[inline]
    pub fn grouping_factor(self) -> Option<usize> {
        match self {
            PbsKernel::Classical => None,
            PbsKernel::MultiBit { grouping_factor } => Some(grouping_factor),
        }
    }
}

impl std::fmt::Display for PbsKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A complete TFHE parameter set.
///
/// Field names follow the paper's notation (§II-D, Table II): `n` is the
/// LWE mask length, `k` the GLWE mask length, `N` the polynomial size,
/// `l_b` the bootstrapping decomposition level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TfheParameters {
    /// Human-readable name of the set.
    pub name: String,
    /// LWE mask length `n`.
    pub lwe_dimension: usize,
    /// GLWE mask length `k`.
    pub glwe_dimension: usize,
    /// Polynomial size `N` (power of two).
    pub polynomial_size: usize,
    /// log2 of the bootstrapping decomposition base `B`.
    pub pbs_base_log: u32,
    /// Bootstrapping decomposition level `l_b`.
    pub pbs_level: usize,
    /// log2 of the keyswitching decomposition base.
    pub ks_base_log: u32,
    /// Keyswitching decomposition level `l_k`.
    pub ks_level: usize,
    /// Standard deviation of LWE noise, relative to the torus.
    pub lwe_noise_std: f64,
    /// Standard deviation of GLWE noise, relative to the torus.
    pub glwe_noise_std: f64,
    /// Claimed security level in bits (Table IV's λ).
    pub security_bits: u32,
    /// Which blind-rotation kernel server keys for this set target.
    /// Defaults to [`PbsKernel::Classical`] (including when absent from
    /// serialized parameters, for compatibility with pre-multi-bit
    /// snapshots).
    #[serde(default)]
    pub pbs_kernel: PbsKernel,
    /// Which SIMD kernel backend the spectral transforms should use.
    /// Defaults to [`StrixFftBackend::Auto`] (runtime CPU detection,
    /// including when absent from serialized parameters, for
    /// compatibility with pre-backend snapshots).
    #[serde(default)]
    pub fft_backend: StrixFftBackend,
}

impl TfheParameters {
    /// Paper parameter set I (110-bit; original TFHE library values).
    pub fn set_i() -> Self {
        Self {
            name: "set-I".into(),
            lwe_dimension: 500,
            glwe_dimension: 1,
            polynomial_size: 1024,
            pbs_base_log: 10,
            pbs_level: 2,
            ks_base_log: 2,
            ks_level: 8,
            lwe_noise_std: 2.43e-5,
            glwe_noise_std: 3.73e-9,
            security_bits: 110,
            pbs_kernel: PbsKernel::Classical,
            fft_backend: StrixFftBackend::Auto,
        }
    }

    /// Paper parameter set II (128-bit; used by YKP).
    pub fn set_ii() -> Self {
        Self {
            name: "set-II".into(),
            lwe_dimension: 630,
            glwe_dimension: 1,
            polynomial_size: 1024,
            pbs_base_log: 7,
            pbs_level: 3,
            ks_base_log: 3,
            ks_level: 5,
            lwe_noise_std: 2.0f64.powi(-15),
            glwe_noise_std: 2.0f64.powi(-25),
            security_bits: 128,
            pbs_kernel: PbsKernel::Classical,
            fft_backend: StrixFftBackend::Auto,
        }
    }

    /// Paper parameter set III (128-bit; used by XHEC).
    pub fn set_iii() -> Self {
        Self {
            name: "set-III".into(),
            lwe_dimension: 592,
            glwe_dimension: 1,
            polynomial_size: 2048,
            pbs_base_log: 8,
            pbs_level: 3,
            ks_base_log: 3,
            ks_level: 5,
            lwe_noise_std: 2.0f64.powi(-15),
            glwe_noise_std: 2.0f64.powi(-37),
            security_bits: 128,
            pbs_kernel: PbsKernel::Classical,
            fft_backend: StrixFftBackend::Auto,
        }
    }

    /// Paper parameter set IV (128-bit, `N = 16384`; introduced by Strix
    /// for higher-precision PBS).
    pub fn set_iv() -> Self {
        Self {
            name: "set-IV".into(),
            lwe_dimension: 991,
            glwe_dimension: 1,
            polynomial_size: 16384,
            pbs_base_log: 18,
            pbs_level: 2,
            ks_base_log: 4,
            ks_level: 5,
            lwe_noise_std: 2.0f64.powi(-22),
            glwe_noise_std: 2.0f64.powi(-51),
            security_bits: 128,
            pbs_kernel: PbsKernel::Classical,
            fft_backend: StrixFftBackend::Auto,
        }
    }

    /// The Zama Deep-NN parameter family (Fig. 7): same shape as the
    /// 128-bit sets with the requested polynomial size.
    ///
    /// Noise levels are provisioned for the workload the family
    /// serves: the ReLU schedule evaluates 3-bit LUTs over fan-in-3
    /// weighted sums of keyswitched bootstrap outputs, and the static
    /// noise analyzer (`strix-runtime`) requires every such node to
    /// keep a >10σ decision margin under both PBS kernels. The
    /// keyswitch key term `k·N·l_k·B²/12·σ_lwe²` dominates that
    /// budget, which pins `σ_lwe` at 2⁻¹⁹ for these dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::InvalidParameters`] if `polynomial_size` is
    /// not one of 1024, 2048 or 4096 (the sizes evaluated in the
    /// paper's Fig. 7) — a serving path must be able to reject an
    /// unsupported client request without panicking a worker thread.
    pub fn deep_nn(polynomial_size: usize) -> Result<Self, TfheError> {
        let (glwe_noise_std, pbs_base_log, pbs_level) = match polynomial_size {
            1024 => (2.0f64.powi(-28), 7, 3),
            2048 => (2.0f64.powi(-37), 8, 3),
            4096 => (2.0f64.powi(-45), 12, 2),
            _ => {
                return Err(TfheError::InvalidParameters(
                    "deep-NN experiments use N in {1024, 2048, 4096}",
                ))
            }
        };
        Ok(Self {
            name: format!("deep-nn-{polynomial_size}"),
            lwe_dimension: 630,
            glwe_dimension: 1,
            polynomial_size,
            pbs_base_log,
            pbs_level,
            ks_base_log: 3,
            ks_level: 5,
            lwe_noise_std: 2.0f64.powi(-19),
            glwe_noise_std,
            security_bits: 128,
            pbs_kernel: PbsKernel::Classical,
            fft_backend: StrixFftBackend::Auto,
        })
    }

    /// A small, *insecure* parameter set for fast unit tests. Noise is
    /// kept realistic in structure (non-zero everywhere) but dimensions
    /// are tiny, so an attack would be trivial — never use outside tests.
    pub fn testing_fast() -> Self {
        Self {
            name: "testing-fast".into(),
            lwe_dimension: 64,
            glwe_dimension: 1,
            polynomial_size: 256,
            pbs_base_log: 10,
            pbs_level: 2,
            ks_base_log: 2,
            ks_level: 6,
            lwe_noise_std: 2.0f64.powi(-20),
            glwe_noise_std: 2.0f64.powi(-30),
            security_bits: 0,
            pbs_kernel: PbsKernel::Classical,
            fft_backend: StrixFftBackend::Auto,
        }
    }

    /// A mid-size *insecure* set exercising `k = 2` and a larger `l_b`,
    /// for coverage of non-default shapes in tests.
    pub fn testing_k2() -> Self {
        Self {
            name: "testing-k2".into(),
            lwe_dimension: 48,
            glwe_dimension: 2,
            polynomial_size: 128,
            pbs_base_log: 8,
            pbs_level: 3,
            ks_base_log: 3,
            ks_level: 4,
            lwe_noise_std: 2.0f64.powi(-20),
            glwe_noise_std: 2.0f64.powi(-30),
            security_bits: 0,
            pbs_kernel: PbsKernel::Classical,
            fft_backend: StrixFftBackend::Auto,
        }
    }

    /// Validates structural invariants (power-of-two `N`, decomposition
    /// within the torus width, non-degenerate dimensions).
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::InvalidParameters`] describing the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), TfheError> {
        if self.lwe_dimension == 0 {
            return Err(TfheError::InvalidParameters("lwe dimension must be positive"));
        }
        if self.glwe_dimension == 0 {
            return Err(TfheError::InvalidParameters("glwe dimension must be positive"));
        }
        if !self.polynomial_size.is_power_of_two() || self.polynomial_size < 2 {
            return Err(TfheError::InvalidParameters(
                "polynomial size must be a power of two >= 2",
            ));
        }
        if self.pbs_base_log == 0 || self.pbs_level == 0 {
            return Err(TfheError::InvalidParameters("pbs decomposition must be non-trivial"));
        }
        if self.pbs_base_log as usize * self.pbs_level > 64 {
            return Err(TfheError::InvalidParameters("pbs decomposition exceeds torus width"));
        }
        if self.ks_base_log == 0 || self.ks_level == 0 {
            return Err(TfheError::InvalidParameters("ks decomposition must be non-trivial"));
        }
        if self.ks_base_log as usize * self.ks_level > 64 {
            return Err(TfheError::InvalidParameters("ks decomposition exceeds torus width"));
        }
        if !self.fft_backend.is_available() {
            return Err(TfheError::InvalidParameters(
                "requested fft backend is not supported by this cpu",
            ));
        }
        if let PbsKernel::MultiBit { grouping_factor } = self.pbs_kernel {
            if grouping_factor == 0 {
                return Err(TfheError::InvalidParameters(
                    "multi-bit grouping factor must be positive",
                ));
            }
            if grouping_factor > PbsKernel::MAX_GROUPING_FACTOR {
                return Err(TfheError::InvalidParameters(
                    "multi-bit grouping factor exceeds the supported maximum",
                ));
            }
            if grouping_factor > self.lwe_dimension {
                return Err(TfheError::InvalidParameters(
                    "multi-bit grouping factor exceeds the lwe dimension",
                ));
            }
        }
        Ok(())
    }

    /// The same parameters retargeted at `kernel` (builder-style).
    #[must_use]
    pub fn with_kernel(mut self, kernel: PbsKernel) -> Self {
        self.pbs_kernel = kernel;
        self
    }

    /// The same parameters retargeted at the given SIMD kernel backend
    /// (builder-style). Tests use this to force the portable scalar
    /// path regardless of host CPU features.
    #[must_use]
    pub fn with_fft_backend(mut self, backend: StrixFftBackend) -> Self {
        self.fft_backend = backend;
        self
    }

    /// Dimension of LWE ciphertexts extracted from GLWE: `k · N`
    /// (the paper's `kN + 1`-element output of Algorithm 1, minus body).
    #[inline]
    pub fn extracted_lwe_dimension(&self) -> usize {
        self.glwe_dimension * self.polynomial_size
    }

    /// log2 of `2N`, the blind-rotation modulus.
    #[inline]
    pub fn log2_two_n(&self) -> u32 {
        self.polynomial_size.trailing_zeros() + 1
    }

    /// Number of GGSW rows per bootstrapping-key entry: `(k+1) · l_b`.
    #[inline]
    pub fn ggsw_row_count(&self) -> usize {
        (self.glwe_dimension + 1) * self.pbs_level
    }

    /// Size in bytes of one Fourier-domain bootstrapping-key entry
    /// (one GGSW): `(k+1)·l_b · (k+1) · N/2` complex doubles.
    ///
    /// This is the per-blind-rotation-iteration key traffic that Strix
    /// streams from HBM (§IV-B, Fig. 8).
    #[inline]
    pub fn fourier_ggsw_bytes(&self) -> usize {
        self.ggsw_row_count() * (self.glwe_dimension + 1) * (self.polynomial_size / 2) * 16
    }

    /// Total Fourier bootstrapping-key size in bytes (`n` GGSW entries).
    #[inline]
    pub fn bootstrap_key_bytes(&self) -> usize {
        self.lwe_dimension * self.fourier_ggsw_bytes()
    }

    /// Total keyswitching-key size in bytes: `kN · l_k` LWE ciphertexts
    /// of dimension `n`, 8 bytes per element.
    #[inline]
    pub fn keyswitch_key_bytes(&self) -> usize {
        self.extracted_lwe_dimension() * self.ks_level * (self.lwe_dimension + 1) * 8
    }

    /// Number of blind-rotation groups at grouping factor `g`:
    /// `⌈n/g⌉` (the last group covers the `n mod g` remainder bits).
    #[inline]
    pub fn multi_bit_group_count(&self, grouping_factor: usize) -> usize {
        self.lwe_dimension.div_ceil(grouping_factor)
    }

    /// Total Fourier multi-bit bootstrapping-key size in bytes at
    /// grouping factor `g`: each full group stores `2^g` GGSW entries
    /// (one per bit pattern), the remainder group `2^{n mod g}`.
    pub fn multi_bit_bootstrap_key_bytes(&self, grouping_factor: usize) -> usize {
        let full_groups = self.lwe_dimension / grouping_factor;
        let remainder = self.lwe_dimension % grouping_factor;
        let mut entries = full_groups * (1usize << grouping_factor);
        if remainder > 0 {
            entries += 1usize << remainder;
        }
        entries * self.fourier_ggsw_bytes()
    }

    /// Transport size in bytes of the *seeded* bootstrapping key: one
    /// body polynomial per GGSW row instead of `k+1` polynomials —
    /// masks regenerate from the CRS seed, so the ratio to
    /// [`Self::bootstrap_key_bytes`] is exactly `1/(k+1)`.
    #[inline]
    pub fn seeded_bootstrap_key_bytes(&self) -> usize {
        self.lwe_dimension * self.ggsw_row_count() * self.polynomial_size * 8
    }

    /// Transport size in bytes of the seeded multi-bit bootstrapping
    /// key at grouping factor `g` (same `1/(k+1)` ratio as
    /// [`Self::seeded_bootstrap_key_bytes`], applied per pattern
    /// entry).
    pub fn seeded_multi_bit_bootstrap_key_bytes(&self, grouping_factor: usize) -> usize {
        let full_groups = self.lwe_dimension / grouping_factor;
        let remainder = self.lwe_dimension % grouping_factor;
        let mut entries = full_groups * (1usize << grouping_factor);
        if remainder > 0 {
            entries += 1usize << remainder;
        }
        entries * self.ggsw_row_count() * self.polynomial_size * 8
    }

    /// Transport size in bytes of the seeded keyswitching key: one body
    /// element per row instead of an `(n+1)`-element ciphertext.
    #[inline]
    pub fn seeded_keyswitch_key_bytes(&self) -> usize {
        self.extracted_lwe_dimension() * self.ks_level * 8
    }

    /// Total seeded-transport footprint of a server key at this
    /// parameter set: seeded bsk (+ seeded mbsk under a multi-bit
    /// kernel) + seeded ksk + the 8-byte CRS seed.
    pub fn seeded_server_key_bytes(&self) -> usize {
        let mbsk = self
            .pbs_kernel
            .grouping_factor()
            .map_or(0, |g| self.seeded_multi_bit_bootstrap_key_bytes(g));
        self.seeded_bootstrap_key_bytes() + mbsk + self.seeded_keyswitch_key_bytes() + 8
    }

    /// Total full-form (expanded, Fourier-resident) footprint of a
    /// server key at this parameter set: bsk (+ mbsk under a multi-bit
    /// kernel) + ksk — the denominator of the seeded-transport
    /// compression ratio and the unit of the key registry's residency
    /// accounting.
    pub fn server_key_bytes(&self) -> usize {
        let mbsk =
            self.pbs_kernel.grouping_factor().map_or(0, |g| self.multi_bit_bootstrap_key_bytes(g));
        self.bootstrap_key_bytes() + mbsk + self.keyswitch_key_bytes()
    }

    /// Size in bytes of one LWE ciphertext (`n + 1` torus elements).
    #[inline]
    pub fn lwe_bytes(&self) -> usize {
        (self.lwe_dimension + 1) * 8
    }

    /// Size in bytes of one GLWE ciphertext / test vector
    /// (`(k+1) · N` torus elements).
    #[inline]
    pub fn glwe_bytes(&self) -> usize {
        (self.glwe_dimension + 1) * self.polynomial_size * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_values_match_paper() {
        let i = TfheParameters::set_i();
        assert_eq!(
            (i.lwe_dimension, i.glwe_dimension, i.polynomial_size, i.pbs_level),
            (500, 1, 1024, 2)
        );
        assert_eq!(i.security_bits, 110);
        let ii = TfheParameters::set_ii();
        assert_eq!((ii.lwe_dimension, ii.polynomial_size, ii.pbs_level), (630, 1024, 3));
        let iii = TfheParameters::set_iii();
        assert_eq!((iii.lwe_dimension, iii.polynomial_size, iii.pbs_level), (592, 2048, 3));
        let iv = TfheParameters::set_iv();
        assert_eq!((iv.lwe_dimension, iv.polynomial_size, iv.pbs_level), (991, 16384, 2));
    }

    #[test]
    fn all_named_sets_validate() {
        for set in ParameterSet::ALL {
            set.parameters().validate().unwrap();
        }
        TfheParameters::testing_fast().validate().unwrap();
        TfheParameters::testing_k2().validate().unwrap();
        for n in [1024, 2048, 4096] {
            TfheParameters::deep_nn(n).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn validation_rejects_broken_sets() {
        let mut p = TfheParameters::set_i();
        p.polynomial_size = 1000;
        assert!(p.validate().is_err());

        let mut p = TfheParameters::set_i();
        p.pbs_base_log = 40;
        p.pbs_level = 2; // 80 bits > 64
        assert!(p.validate().is_err());

        let mut p = TfheParameters::set_i();
        p.lwe_dimension = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn derived_sizes_set_i() {
        let p = TfheParameters::set_i();
        assert_eq!(p.extracted_lwe_dimension(), 1024);
        assert_eq!(p.log2_two_n(), 11);
        assert_eq!(p.ggsw_row_count(), 4);
        // (k+1)l_b × (k+1) × N/2 × 16B = 4 × 2 × 512 × 16 = 64 KiB
        assert_eq!(p.fourier_ggsw_bytes(), 64 * 1024);
        // 500 iterations × 64 KiB = 31.25 MiB — the "10s of MB" scale of Table I
        assert_eq!(p.bootstrap_key_bytes(), 500 * 64 * 1024);
        assert_eq!(p.lwe_bytes(), 501 * 8);
        assert_eq!(p.glwe_bytes(), 2 * 1024 * 8);
    }

    #[test]
    fn seeded_transport_compresses_every_parameter_set() {
        // Seeded GGSW bodies ship 1/(k+1) of the full key; the ksk
        // compresses far harder. The issue's acceptance bar is ≤ 0.6×.
        for set in ParameterSet::ALL {
            let p = set.parameters();
            assert_eq!(
                p.seeded_bootstrap_key_bytes() * (p.glwe_dimension + 1),
                p.bootstrap_key_bytes()
            );
            let ratio = p.seeded_server_key_bytes() as f64 / p.server_key_bytes() as f64;
            assert!(ratio <= 0.6, "set {set}: ratio {ratio}");
        }
        // Multi-bit kernels keep the same per-entry ratio.
        let p =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 3 });
        assert_eq!(
            p.seeded_multi_bit_bootstrap_key_bytes(3) * (p.glwe_dimension + 1),
            p.multi_bit_bootstrap_key_bytes(3)
        );
        assert_eq!(
            p.server_key_bytes(),
            p.bootstrap_key_bytes() + p.multi_bit_bootstrap_key_bytes(3) + p.keyswitch_key_bytes()
        );
        let ratio = p.seeded_server_key_bytes() as f64 / p.server_key_bytes() as f64;
        assert!(ratio <= 0.6, "multi-bit ratio {ratio}");
        // k = 2: ratio tightens to ~1/3.
        let p = TfheParameters::testing_k2();
        let ratio = p.seeded_server_key_bytes() as f64 / p.server_key_bytes() as f64;
        assert!(ratio <= 0.4, "k=2 ratio {ratio}");
    }

    #[test]
    fn parameter_set_labels() {
        assert_eq!(ParameterSet::SetI.to_string(), "I");
        assert_eq!(ParameterSet::SetIV.label(), "IV");
        assert_eq!(ParameterSet::ALL.len(), 4);
    }

    #[test]
    fn kernel_labels_and_default() {
        assert_eq!(PbsKernel::default(), PbsKernel::Classical);
        assert_eq!(PbsKernel::Classical.to_string(), "classical");
        assert_eq!(PbsKernel::MultiBit { grouping_factor: 3 }.to_string(), "multi-bit-g3");
        assert_eq!(PbsKernel::Classical.grouping_factor(), None);
        assert_eq!(PbsKernel::MultiBit { grouping_factor: 2 }.grouping_factor(), Some(2));
        assert_eq!(TfheParameters::set_ii().pbs_kernel, PbsKernel::Classical);
    }

    #[test]
    fn kernel_validation_bounds_grouping_factor() {
        let base = TfheParameters::testing_fast();
        for g in 1..=4 {
            base.clone()
                .with_kernel(PbsKernel::MultiBit { grouping_factor: g })
                .validate()
                .unwrap();
        }
        for g in [0, PbsKernel::MAX_GROUPING_FACTOR + 1] {
            assert!(base
                .clone()
                .with_kernel(PbsKernel::MultiBit { grouping_factor: g })
                .validate()
                .is_err());
        }
        let mut tiny = base.clone().with_kernel(PbsKernel::MultiBit { grouping_factor: 4 });
        tiny.lwe_dimension = 3;
        assert!(tiny.validate().is_err());
    }

    #[test]
    fn parameters_without_kernel_field_deserialize_as_classical() {
        // Pre-multi-bit serialized parameters carry no `pbs_kernel`
        // field; they must keep parsing (and mean the classical
        // kernel) so committed bench snapshots stay readable.
        let mut p = TfheParameters::testing_fast();
        p.pbs_kernel = PbsKernel::MultiBit { grouping_factor: 2 };
        let json = serde_json::to_string(&p).unwrap();
        let back: TfheParameters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);

        let legacy = serde_json::to_string(&TfheParameters::testing_fast()).unwrap();
        let stripped = legacy.replace(",\"pbs_kernel\":\"Classical\"", "");
        assert!(stripped.len() < legacy.len(), "field must have been present: {legacy}");
        let parsed: TfheParameters = serde_json::from_str(&stripped).unwrap();
        assert_eq!(parsed.pbs_kernel, PbsKernel::Classical);
    }

    #[test]
    fn parameters_without_backend_field_deserialize_as_auto() {
        // Pre-backend snapshots carry no `fft_backend` field; they must
        // keep parsing and mean runtime CPU detection.
        let legacy = serde_json::to_string(&TfheParameters::testing_fast()).unwrap();
        let stripped = legacy.replace(",\"fft_backend\":\"Auto\"", "");
        assert!(stripped.len() < legacy.len(), "field must have been present: {legacy}");
        let parsed: TfheParameters = serde_json::from_str(&stripped).unwrap();
        assert_eq!(parsed.fft_backend, StrixFftBackend::Auto);

        // Explicit backends round-trip.
        let forced = TfheParameters::testing_fast().with_fft_backend(StrixFftBackend::Portable);
        let json = serde_json::to_string(&forced).unwrap();
        let back: TfheParameters = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fft_backend, StrixFftBackend::Portable);
    }

    #[test]
    fn validation_tracks_backend_availability() {
        // Auto and Portable always pass; SIMD tiers pass exactly when
        // the host CPU supports them, so keygen's `expect` can rely on
        // a validated parameter set never naming an unusable backend.
        let base = TfheParameters::testing_fast();
        for backend in [
            StrixFftBackend::Auto,
            StrixFftBackend::Portable,
            StrixFftBackend::Avx2,
            StrixFftBackend::Avx512,
        ] {
            let p = base.clone().with_fft_backend(backend);
            assert_eq!(p.validate().is_ok(), backend.is_available(), "{backend}");
        }
    }

    #[test]
    fn multi_bit_key_sizes_count_pattern_entries() {
        let p = TfheParameters::testing_fast(); // n = 64
        assert_eq!(p.multi_bit_group_count(2), 32);
        assert_eq!(p.multi_bit_group_count(3), 22); // 21 full + 1 remainder
                                                    // g=2: 32 groups × 4 patterns = 128 entries (2× classical 64).
        assert_eq!(p.multi_bit_bootstrap_key_bytes(2), 128 * p.fourier_ggsw_bytes());
        // g=3: 21 × 8 + 2^(64 mod 3 = 1) = 170 entries.
        assert_eq!(p.multi_bit_bootstrap_key_bytes(3), 170 * p.fourier_ggsw_bytes());
        // g dividing n exactly: no remainder group.
        let ii = TfheParameters::set_ii(); // n = 630
        assert_eq!(ii.multi_bit_group_count(2), 315);
        assert_eq!(ii.multi_bit_bootstrap_key_bytes(2), 1260 * ii.fourier_ggsw_bytes());
    }

    #[test]
    fn deep_nn_rejects_unsupported_sizes_as_error() {
        assert!(matches!(
            TfheParameters::deep_nn(512),
            Err(TfheError::InvalidParameters(msg)) if msg.contains("deep-NN")
        ));
        assert!(TfheParameters::deep_nn(2048).is_ok());
    }
}
