//! Client and server key pairs.
//!
//! The [`ClientKey`] holds the secrets and performs encryption and
//! decryption; the [`ServerKey`] holds only public evaluation material
//! (the bootstrapping key and keyswitching key) and performs every
//! homomorphic operation. The split mirrors the deployment model the
//! paper targets: the server — or the Strix accelerator — never sees a
//! secret key.

use crate::bootstrap::{BootstrapKey, MultiBitBootstrapKey};
use crate::decompose::DecompositionParams;
use crate::ggsw::GgswCiphertext;
use crate::glwe::GlweSecretKey;
use crate::keyswitch::KeySwitchKey;
use crate::lwe::{LweCiphertext, LweSecretKey};
use crate::params::TfheParameters;
use crate::poly::TorusPolynomial;
use crate::rng::{derive_seed, NoiseSampler};
use crate::TfheError;
use strix_fft::StrixFftBackend;

/// CRS stream labels: each seeded-key component regenerates its public
/// masks from an independent sub-stream of the one transported seed, so
/// expansion order never couples the components.
const CRS_BSK_STREAM: u64 = 1;
const CRS_MBSK_STREAM: u64 = 2;
const CRS_KSK_STREAM: u64 = 3;
const CRS_BENCHMARK_STREAM: u64 = 4;

/// Secret key material plus encryption/decryption helpers.
#[derive(Clone, Debug)]
pub struct ClientKey {
    params: TfheParameters,
    lwe_sk: LweSecretKey,
    glwe_sk: GlweSecretKey,
    extracted_sk: LweSecretKey,
    rng: NoiseSampler,
}

impl ClientKey {
    /// Generates a fresh client key.
    pub fn generate(params: &TfheParameters, seed: u64) -> Self {
        // lint:allow(panic) documented constructor contract
        params.validate().expect("parameter set must be valid");
        let mut rng = NoiseSampler::from_seed(seed);
        let lwe_sk = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let glwe_sk =
            GlweSecretKey::generate(params.glwe_dimension, params.polynomial_size, &mut rng);
        let extracted_sk = glwe_sk.to_extracted_lwe_key();
        Self { params: params.clone(), lwe_sk, glwe_sk, extracted_sk, rng }
    }

    /// The parameter set this key was generated for.
    #[inline]
    pub fn params(&self) -> &TfheParameters {
        &self.params
    }

    /// The LWE secret key (dimension `n`).
    #[inline]
    pub fn lwe_secret_key(&self) -> &LweSecretKey {
        &self.lwe_sk
    }

    /// The GLWE secret key.
    #[inline]
    pub fn glwe_secret_key(&self) -> &GlweSecretKey {
        &self.glwe_sk
    }

    /// The extracted LWE key (dimension `k·N`) under which raw PBS
    /// outputs decrypt.
    #[inline]
    pub fn extracted_secret_key(&self) -> &LweSecretKey {
        &self.extracted_sk
    }

    /// Encrypts a raw torus plaintext under the `n`-dimension key.
    pub fn encrypt_torus(&mut self, plaintext: u64) -> LweCiphertext {
        let std = self.params.lwe_noise_std;
        self.lwe_sk.encrypt(plaintext, std, &mut self.rng)
    }

    /// Decrypts the phase of a ciphertext under whichever of the two
    /// keys matches its dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if the dimension matches
    /// neither key.
    pub fn decrypt_phase(&self, ct: &LweCiphertext) -> Result<u64, TfheError> {
        if ct.dimension() == self.lwe_sk.dimension() {
            self.lwe_sk.decrypt_phase(ct)
        } else {
            self.extracted_sk.decrypt_phase(ct)
        }
    }

    /// Derives the matching server key.
    ///
    /// The classical bootstrapping key is always generated (it is the
    /// fallback every dispatch path can rely on); when the parameter
    /// set selects [`PbsKernel::MultiBit`](crate::params::PbsKernel::MultiBit), the grouped multi-bit key
    /// is generated alongside it.
    pub fn server_key(&mut self) -> ServerKey {
        let bsk = BootstrapKey::generate(&self.lwe_sk, &self.glwe_sk, &self.params, &mut self.rng);
        let mbsk = self.params.pbs_kernel.grouping_factor().map(|g| {
            MultiBitBootstrapKey::generate(
                &self.lwe_sk,
                &self.glwe_sk,
                &self.params,
                g,
                &mut self.rng,
            )
        });
        let ksk =
            KeySwitchKey::generate(&self.extracted_sk, &self.lwe_sk, &self.params, &mut self.rng);
        ServerKey { params: self.params.clone(), bsk, mbsk, ksk }
    }

    /// Derives the matching server key in **seeded transport form**:
    /// every public mask is drawn from a common-reference stream of
    /// `crs_seed`, so the payload ships only the body polynomials —
    /// roughly `1/(k+1)` of the full bootstrapping-key bytes (half at
    /// `k = 1`). The receiving side calls [`SeededServerKey::expand`]
    /// to regenerate the masks and materialise the Fourier keys.
    pub fn seeded_server_key(&mut self, crs_seed: u64) -> SeededServerKey {
        let decomp = DecompositionParams::new(self.params.pbs_base_log, self.params.pbs_level);
        let noise_std = self.params.glwe_noise_std;
        let mut crs = NoiseSampler::from_derived_seed(crs_seed, CRS_BSK_STREAM);
        let bsk_bodies = self
            .lwe_sk
            .bits()
            .iter()
            .map(|&s| {
                let ggsw = GgswCiphertext::encrypt_scalar_seeded(
                    s,
                    &self.glwe_sk,
                    decomp,
                    noise_std,
                    &mut self.rng,
                    &mut crs,
                );
                ggsw.rows().iter().map(|r| r.body().clone()).collect()
            })
            .collect();
        let mbsk_bodies = self.params.pbs_kernel.grouping_factor().map(|g| {
            let mut crs = NoiseSampler::from_derived_seed(crs_seed, CRS_MBSK_STREAM);
            self.lwe_sk
                .bits()
                .chunks(g)
                .map(|bits| {
                    (0..1usize << bits.len())
                        .map(|pattern| {
                            let indicator: u64 = bits
                                .iter()
                                .enumerate()
                                .map(|(t, &s)| if (pattern >> t) & 1 == 1 { s } else { 1 - s })
                                .product();
                            let ggsw = GgswCiphertext::encrypt_scalar_seeded(
                                indicator,
                                &self.glwe_sk,
                                decomp,
                                noise_std,
                                &mut self.rng,
                                &mut crs,
                            );
                            ggsw.rows().iter().map(|r| r.body().clone()).collect()
                        })
                        .collect()
                })
                .collect()
        });
        let mut crs = NoiseSampler::from_derived_seed(crs_seed, CRS_KSK_STREAM);
        let ksk_bodies = KeySwitchKey::generate_seeded(
            &self.extracted_sk,
            &self.lwe_sk,
            &self.params,
            &mut self.rng,
            &mut crs,
        )
        .bodies();
        SeededServerKey {
            params: self.params.clone(),
            crs_seed,
            payload: SeededKeyPayload::Real { bsk_bodies, mbsk_bodies, ksk_bodies },
        }
    }
}

/// Public evaluation keys: everything the server (or accelerator) needs.
#[derive(Clone, Debug)]
pub struct ServerKey {
    pub(crate) params: TfheParameters,
    pub(crate) bsk: BootstrapKey,
    pub(crate) mbsk: Option<MultiBitBootstrapKey>,
    pub(crate) ksk: KeySwitchKey,
}

impl ServerKey {
    /// The parameter set this key was generated for.
    #[inline]
    pub fn params(&self) -> &TfheParameters {
        &self.params
    }

    /// The classical bootstrapping key (always present).
    #[inline]
    pub fn bootstrap_key(&self) -> &BootstrapKey {
        &self.bsk
    }

    /// The multi-bit bootstrapping key, present when the parameter set
    /// was generated with a [`PbsKernel::MultiBit`](crate::params::PbsKernel::MultiBit) kernel. Dispatchers
    /// that find `None` fall back to the classical kernel.
    #[inline]
    pub fn multi_bit_bootstrap_key(&self) -> Option<&MultiBitBootstrapKey> {
        self.mbsk.as_ref()
    }

    /// The keyswitching key.
    #[inline]
    pub fn keyswitch_key(&self) -> &KeySwitchKey {
        &self.ksk
    }

    /// The resolved SIMD kernel backend this key's spectral plans run
    /// on (never [`StrixFftBackend::Auto`]): the parameter set's
    /// requested backend after runtime CPU dispatch.
    #[inline]
    pub fn fft_backend(&self) -> StrixFftBackend {
        self.bsk.fft().backend()
    }

    /// Total evaluation-key footprint in bytes (bsk + optional mbsk +
    /// ksk) — the quantity Table I contrasts against CKKS's
    /// gigabyte-scale keys.
    pub fn key_bytes(&self) -> usize {
        self.bsk.byte_size()
            + self.mbsk.as_ref().map_or(0, MultiBitBootstrapKey::byte_size)
            + self.ksk.byte_size()
    }

    /// Generates a *timing-equivalent* server key without the full
    /// (hours-long at production parameters) bootstrapping keygen: the
    /// bsk comes from [`BootstrapKey::generate_for_benchmark`] (same
    /// arithmetic, cryptographically meaningless), while the ksk is a
    /// real keyswitching key over freshly drawn secret keys — ksk
    /// generation is cheap, and a real ksk keeps the keyswitch path's
    /// memory traffic honest. Suitable only for performance
    /// measurements (the closed-loop SLO harness); outputs do not
    /// decrypt meaningfully.
    pub fn generate_for_benchmark(params: &TfheParameters, seed: u64) -> Self {
        // lint:allow(panic) documented constructor contract
        params.validate().expect("parameter set must be valid");
        let mut rng = NoiseSampler::from_seed(seed);
        let bsk = BootstrapKey::generate_for_benchmark(params);
        let mbsk = params
            .pbs_kernel
            .grouping_factor()
            .map(|g| MultiBitBootstrapKey::generate_for_benchmark(params, g));
        let glwe_sk =
            GlweSecretKey::generate(params.glwe_dimension, params.polynomial_size, &mut rng);
        let lwe_sk = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let ksk =
            KeySwitchKey::generate(&glwe_sk.to_extracted_lwe_key(), &lwe_sk, params, &mut rng);
        Self { params: params.clone(), bsk, mbsk, ksk }
    }
}

/// A server key in seeded (compressed) transport form.
///
/// LWE/GLWE mask material is uniformly random and therefore incompressible —
/// unless both sides agree to derive it from a shared seed. A seeded key
/// ships the 64-bit CRS seed plus only the *body* part of every key row
/// (phantom-zone's seed-expansion idiom): `1/(k+1)` of the GGSW bytes
/// and `1/(n+1)` of the keyswitching-key bytes. [`Self::expand`]
/// regenerates the masks deterministically through
/// [`NoiseSampler::from_derived_seed`] and materialises the Fourier-form
/// [`ServerKey`] — the lazy, CPU-heavy half the runtime's key registry
/// defers until a tenant's key first becomes resident.
#[derive(Clone, Debug)]
pub struct SeededServerKey {
    params: TfheParameters,
    crs_seed: u64,
    payload: SeededKeyPayload,
}

/// What the transport actually carries.
#[derive(Clone, Debug)]
enum SeededKeyPayload {
    /// Real bodies for every component (mbsk only under a multi-bit
    /// kernel), in generation order.
    Real {
        /// One entry per LWE secret bit; each holds `(k+1)·l` bodies.
        bsk_bodies: Vec<Vec<TorusPolynomial>>,
        /// Group-major, then pattern entry, then row.
        mbsk_bodies: Option<Vec<Vec<Vec<TorusPolynomial>>>>,
        /// One body element per keyswitching-key row.
        ksk_bodies: Vec<u64>,
    },
    /// Timing-equivalent stand-in: expansion runs
    /// [`ServerKey::generate_for_benchmark`] under a derived seed. Used
    /// by the capacity benchmarks, where real keygen at production
    /// parameters is prohibitive; byte accounting reports the size a
    /// real payload at these parameters would ship.
    Benchmark,
}

impl SeededServerKey {
    /// A timing-equivalent seeded key for capacity benchmarks: carries
    /// only parameters + seed and expands through the benchmark keygen
    /// path (same arithmetic shape, cryptographically meaningless).
    pub fn for_benchmark(params: &TfheParameters, crs_seed: u64) -> Self {
        // lint:allow(panic) documented constructor contract
        params.validate().expect("parameter set must be valid");
        Self { params: params.clone(), crs_seed, payload: SeededKeyPayload::Benchmark }
    }

    /// The parameter set this key was generated for.
    #[inline]
    pub fn params(&self) -> &TfheParameters {
        &self.params
    }

    /// The transported CRS seed.
    #[inline]
    pub fn crs_seed(&self) -> u64 {
        self.crs_seed
    }

    /// Expands the transport form into a full evaluation key:
    /// regenerates every mask from the CRS sub-streams in generation
    /// order, attaches the stored bodies, and materialises the
    /// Fourier-domain keys. Deterministic — expanding twice yields
    /// bit-identical key material.
    pub fn expand(&self) -> ServerKey {
        match &self.payload {
            SeededKeyPayload::Real { bsk_bodies, mbsk_bodies, ksk_bodies } => {
                let mut crs = NoiseSampler::from_derived_seed(self.crs_seed, CRS_BSK_STREAM);
                let bsk = BootstrapKey::from_seeded_parts(bsk_bodies, &self.params, &mut crs);
                let mbsk = self.params.pbs_kernel.grouping_factor().and_then(|g| {
                    mbsk_bodies.as_ref().map(|bodies| {
                        let mut crs =
                            NoiseSampler::from_derived_seed(self.crs_seed, CRS_MBSK_STREAM);
                        MultiBitBootstrapKey::from_seeded_parts(bodies, &self.params, g, &mut crs)
                    })
                });
                let mut crs = NoiseSampler::from_derived_seed(self.crs_seed, CRS_KSK_STREAM);
                let ksk = KeySwitchKey::from_seeded_parts(
                    ksk_bodies,
                    &self.params,
                    self.params.extracted_lwe_dimension(),
                    self.params.lwe_dimension,
                    &mut crs,
                );
                ServerKey { params: self.params.clone(), bsk, mbsk, ksk }
            }
            SeededKeyPayload::Benchmark => ServerKey::generate_for_benchmark(
                &self.params,
                derive_seed(self.crs_seed, CRS_BENCHMARK_STREAM),
            ),
        }
    }

    /// Bytes this key ships over the wire (bodies + the 8-byte seed).
    ///
    /// For the benchmark variant this reports the size a *real* payload
    /// at these parameters would occupy
    /// ([`TfheParameters::seeded_server_key_bytes`]), so capacity
    /// benchmarks account transport at production ratios.
    pub fn transport_bytes(&self) -> usize {
        match &self.payload {
            SeededKeyPayload::Real { bsk_bodies, mbsk_bodies, ksk_bodies } => {
                let poly_bytes = self.params.polynomial_size * 8;
                let bsk: usize = bsk_bodies.iter().map(|entry| entry.len() * poly_bytes).sum();
                let mbsk: usize = mbsk_bodies.as_ref().map_or(0, |groups| {
                    groups
                        .iter()
                        .flat_map(|entries| entries.iter().map(|entry| entry.len() * poly_bytes))
                        .sum()
                });
                bsk + mbsk + ksk_bodies.len() * 8 + 8
            }
            SeededKeyPayload::Benchmark => self.params.seeded_server_key_bytes(),
        }
    }
}

/// Generates a `(ClientKey, ServerKey)` pair from a seed.
///
/// # Example
///
/// ```
/// use strix_tfhe::prelude::*;
///
/// let params = TfheParameters::testing_fast();
/// let (mut client, server) = generate_keys(&params, 1);
/// let ct = client.encrypt_bool(true);
/// assert!(client.decrypt_bool(&ct));
/// # let _ = server;
/// ```
pub fn generate_keys(params: &TfheParameters, seed: u64) -> (ClientKey, ServerKey) {
    let mut client = ClientKey::generate(params, seed);
    let server = client.server_key();
    (client, server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PbsKernel;

    #[test]
    fn generate_keys_produces_matching_dimensions() {
        let params = TfheParameters::testing_fast();
        let (client, server) = generate_keys(&params, 7);
        assert_eq!(client.lwe_secret_key().dimension(), params.lwe_dimension);
        assert_eq!(client.extracted_secret_key().dimension(), params.extracted_lwe_dimension());
        assert_eq!(server.bootstrap_key().input_dimension(), params.lwe_dimension);
        assert_eq!(server.keyswitch_key().output_dimension(), params.lwe_dimension);
        assert_eq!(server.keyswitch_key().input_dimension(), params.extracted_lwe_dimension());
    }

    #[test]
    fn key_bytes_matches_parameter_formulas() {
        let params = TfheParameters::testing_fast();
        let (_, server) = generate_keys(&params, 7);
        assert!(server.multi_bit_bootstrap_key().is_none());
        assert_eq!(server.key_bytes(), params.bootstrap_key_bytes() + params.keyswitch_key_bytes());
    }

    #[test]
    fn multi_bit_kernel_adds_grouped_key_material() {
        let g = 2;
        let params =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: g });
        let (_, server) = generate_keys(&params, 7);
        let mbsk = server.multi_bit_bootstrap_key().expect("multi-bit kernel carries its key");
        assert_eq!(mbsk.grouping_factor(), g);
        assert_eq!(mbsk.group_count(), params.multi_bit_group_count(g));
        assert_eq!(
            server.key_bytes(),
            params.bootstrap_key_bytes()
                + params.multi_bit_bootstrap_key_bytes(g)
                + params.keyswitch_key_bytes()
        );
        // The classical key is still present as dispatch fallback.
        assert_eq!(server.bootstrap_key().input_dimension(), params.lwe_dimension);
    }

    #[test]
    fn benchmark_key_honours_multi_bit_kernel() {
        let params =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 3 });
        let server = ServerKey::generate_for_benchmark(&params, 5);
        let mbsk = server.multi_bit_bootstrap_key().expect("benchmark key honours the kernel");
        assert_eq!(mbsk.byte_size(), params.multi_bit_bootstrap_key_bytes(3));
        let lut = crate::bootstrap::Lut::sign(params.polynomial_size, 1);
        let ct = LweCiphertext::trivial(params.lwe_dimension, 0);
        assert!(mbsk.bootstrap(&ct, &lut).is_ok());
    }

    #[test]
    fn torus_encrypt_decrypt() {
        let params = TfheParameters::testing_fast();
        let (mut client, _) = generate_keys(&params, 11);
        let pt = crate::torus::encode_fraction(3, 4);
        let ct = client.encrypt_torus(pt);
        let phase = client.decrypt_phase(&ct).unwrap();
        assert_eq!(crate::torus::decode_message(phase, 4), 3);
    }

    #[test]
    fn benchmark_server_key_has_real_shapes() {
        let params = TfheParameters::testing_fast();
        let server = ServerKey::generate_for_benchmark(&params, 123);
        assert_eq!(server.bootstrap_key().input_dimension(), params.lwe_dimension);
        assert_eq!(server.keyswitch_key().input_dimension(), params.extracted_lwe_dimension());
        assert_eq!(server.keyswitch_key().output_dimension(), params.lwe_dimension);
        assert_eq!(server.key_bytes(), params.bootstrap_key_bytes() + params.keyswitch_key_bytes());
        // The PBS+KS pipeline runs end to end with the benchmark key.
        let lut = crate::bootstrap::Lut::sign(params.polynomial_size, 1);
        let ct = LweCiphertext::trivial(params.lwe_dimension, 0);
        let booted = server.bootstrap_key().bootstrap(&ct, &lut).unwrap();
        let switched = server.keyswitch_key().keyswitch(&booted).unwrap();
        assert_eq!(switched.dimension(), params.lwe_dimension);
    }

    #[test]
    fn seeded_key_expands_to_a_working_server_key() {
        let params = TfheParameters::testing_fast();
        let mut client = ClientKey::generate(&params, 21);
        let seeded = client.seeded_server_key(0xfeed);
        let server = seeded.expand();
        let a = client.encrypt_bool(true);
        let b = client.encrypt_bool(true);
        let c = server.nand(&a, &b).unwrap();
        assert!(!client.decrypt_bool(&c));
        let d = server.xor(&a, &c).unwrap();
        assert!(client.decrypt_bool(&d));
    }

    #[test]
    fn seeded_key_expands_with_multi_bit_kernel() {
        let params =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 });
        let mut client = ClientKey::generate(&params, 22);
        let server = client.seeded_server_key(0xbeef).expand();
        let mbsk = server.multi_bit_bootstrap_key().expect("multi-bit kernel carries its key");
        assert_eq!(mbsk.group_count(), params.multi_bit_group_count(2));
        let a = client.encrypt_bool(false);
        let b = client.encrypt_bool(true);
        let c = server.nand(&a, &b).unwrap();
        assert!(client.decrypt_bool(&c));
    }

    #[test]
    fn seeded_expansion_is_deterministic() {
        // Expanding twice must yield bit-identical evaluation keys —
        // the registry relies on eviction + re-expansion being
        // invisible to results.
        let params = TfheParameters::testing_fast();
        let mut client = ClientKey::generate(&params, 23);
        let seeded = client.seeded_server_key(77);
        let k1 = seeded.expand();
        let k2 = seeded.expand();
        let ct = client.encrypt_torus(crate::torus::encode_fraction(1, 4));
        let lut = crate::bootstrap::Lut::sign(params.polynomial_size, 1);
        let o1 = k1.bootstrap_key().bootstrap(&ct, &lut).unwrap();
        let o2 = k2.bootstrap_key().bootstrap(&ct, &lut).unwrap();
        assert_eq!(o1, o2);
        let s1 = k1.keyswitch_key().keyswitch(&o1).unwrap();
        let s2 = k2.keyswitch_key().keyswitch(&o2).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn seeded_transport_bytes_match_estimator_and_ratio() {
        for params in [
            TfheParameters::testing_fast(),
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 2 }),
            TfheParameters::testing_k2(),
        ] {
            let mut client = ClientKey::generate(&params, 24);
            let seeded = client.seeded_server_key(1);
            assert_eq!(seeded.transport_bytes(), params.seeded_server_key_bytes());
            let full = seeded.expand().key_bytes();
            assert_eq!(full, params.server_key_bytes());
            let ratio = seeded.transport_bytes() as f64 / full as f64;
            assert!(ratio <= 0.6, "ratio {ratio} at {params:?}");
            // The benchmark stand-in accounts the same transport size.
            let bench = SeededServerKey::for_benchmark(&params, 1);
            assert_eq!(bench.transport_bytes(), seeded.transport_bytes());
            assert_eq!(bench.expand().key_bytes(), full);
        }
    }

    #[test]
    #[should_panic(expected = "parameter set must be valid")]
    fn invalid_parameters_panic_at_keygen() {
        let mut params = TfheParameters::testing_fast();
        params.polynomial_size = 100;
        ClientKey::generate(&params, 0);
    }
}
