//! Client and server key pairs.
//!
//! The [`ClientKey`] holds the secrets and performs encryption and
//! decryption; the [`ServerKey`] holds only public evaluation material
//! (the bootstrapping key and keyswitching key) and performs every
//! homomorphic operation. The split mirrors the deployment model the
//! paper targets: the server — or the Strix accelerator — never sees a
//! secret key.

use crate::bootstrap::{BootstrapKey, MultiBitBootstrapKey};
use crate::glwe::GlweSecretKey;
use crate::keyswitch::KeySwitchKey;
use crate::lwe::{LweCiphertext, LweSecretKey};
use crate::params::TfheParameters;
use crate::rng::NoiseSampler;
use crate::TfheError;
use strix_fft::StrixFftBackend;

/// Secret key material plus encryption/decryption helpers.
#[derive(Clone, Debug)]
pub struct ClientKey {
    params: TfheParameters,
    lwe_sk: LweSecretKey,
    glwe_sk: GlweSecretKey,
    extracted_sk: LweSecretKey,
    rng: NoiseSampler,
}

impl ClientKey {
    /// Generates a fresh client key.
    pub fn generate(params: &TfheParameters, seed: u64) -> Self {
        // lint:allow(panic) documented constructor contract
        params.validate().expect("parameter set must be valid");
        let mut rng = NoiseSampler::from_seed(seed);
        let lwe_sk = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let glwe_sk =
            GlweSecretKey::generate(params.glwe_dimension, params.polynomial_size, &mut rng);
        let extracted_sk = glwe_sk.to_extracted_lwe_key();
        Self { params: params.clone(), lwe_sk, glwe_sk, extracted_sk, rng }
    }

    /// The parameter set this key was generated for.
    #[inline]
    pub fn params(&self) -> &TfheParameters {
        &self.params
    }

    /// The LWE secret key (dimension `n`).
    #[inline]
    pub fn lwe_secret_key(&self) -> &LweSecretKey {
        &self.lwe_sk
    }

    /// The GLWE secret key.
    #[inline]
    pub fn glwe_secret_key(&self) -> &GlweSecretKey {
        &self.glwe_sk
    }

    /// The extracted LWE key (dimension `k·N`) under which raw PBS
    /// outputs decrypt.
    #[inline]
    pub fn extracted_secret_key(&self) -> &LweSecretKey {
        &self.extracted_sk
    }

    /// Encrypts a raw torus plaintext under the `n`-dimension key.
    pub fn encrypt_torus(&mut self, plaintext: u64) -> LweCiphertext {
        let std = self.params.lwe_noise_std;
        self.lwe_sk.encrypt(plaintext, std, &mut self.rng)
    }

    /// Decrypts the phase of a ciphertext under whichever of the two
    /// keys matches its dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TfheError::ParameterMismatch`] if the dimension matches
    /// neither key.
    pub fn decrypt_phase(&self, ct: &LweCiphertext) -> Result<u64, TfheError> {
        if ct.dimension() == self.lwe_sk.dimension() {
            self.lwe_sk.decrypt_phase(ct)
        } else {
            self.extracted_sk.decrypt_phase(ct)
        }
    }

    /// Derives the matching server key.
    ///
    /// The classical bootstrapping key is always generated (it is the
    /// fallback every dispatch path can rely on); when the parameter
    /// set selects [`PbsKernel::MultiBit`](crate::params::PbsKernel::MultiBit), the grouped multi-bit key
    /// is generated alongside it.
    pub fn server_key(&mut self) -> ServerKey {
        let bsk = BootstrapKey::generate(&self.lwe_sk, &self.glwe_sk, &self.params, &mut self.rng);
        let mbsk = self.params.pbs_kernel.grouping_factor().map(|g| {
            MultiBitBootstrapKey::generate(
                &self.lwe_sk,
                &self.glwe_sk,
                &self.params,
                g,
                &mut self.rng,
            )
        });
        let ksk =
            KeySwitchKey::generate(&self.extracted_sk, &self.lwe_sk, &self.params, &mut self.rng);
        ServerKey { params: self.params.clone(), bsk, mbsk, ksk }
    }
}

/// Public evaluation keys: everything the server (or accelerator) needs.
#[derive(Clone, Debug)]
pub struct ServerKey {
    pub(crate) params: TfheParameters,
    pub(crate) bsk: BootstrapKey,
    pub(crate) mbsk: Option<MultiBitBootstrapKey>,
    pub(crate) ksk: KeySwitchKey,
}

impl ServerKey {
    /// The parameter set this key was generated for.
    #[inline]
    pub fn params(&self) -> &TfheParameters {
        &self.params
    }

    /// The classical bootstrapping key (always present).
    #[inline]
    pub fn bootstrap_key(&self) -> &BootstrapKey {
        &self.bsk
    }

    /// The multi-bit bootstrapping key, present when the parameter set
    /// was generated with a [`PbsKernel::MultiBit`](crate::params::PbsKernel::MultiBit) kernel. Dispatchers
    /// that find `None` fall back to the classical kernel.
    #[inline]
    pub fn multi_bit_bootstrap_key(&self) -> Option<&MultiBitBootstrapKey> {
        self.mbsk.as_ref()
    }

    /// The keyswitching key.
    #[inline]
    pub fn keyswitch_key(&self) -> &KeySwitchKey {
        &self.ksk
    }

    /// The resolved SIMD kernel backend this key's spectral plans run
    /// on (never [`StrixFftBackend::Auto`]): the parameter set's
    /// requested backend after runtime CPU dispatch.
    #[inline]
    pub fn fft_backend(&self) -> StrixFftBackend {
        self.bsk.fft().backend()
    }

    /// Total evaluation-key footprint in bytes (bsk + optional mbsk +
    /// ksk) — the quantity Table I contrasts against CKKS's
    /// gigabyte-scale keys.
    pub fn key_bytes(&self) -> usize {
        self.bsk.byte_size()
            + self.mbsk.as_ref().map_or(0, MultiBitBootstrapKey::byte_size)
            + self.ksk.byte_size()
    }

    /// Generates a *timing-equivalent* server key without the full
    /// (hours-long at production parameters) bootstrapping keygen: the
    /// bsk comes from [`BootstrapKey::generate_for_benchmark`] (same
    /// arithmetic, cryptographically meaningless), while the ksk is a
    /// real keyswitching key over freshly drawn secret keys — ksk
    /// generation is cheap, and a real ksk keeps the keyswitch path's
    /// memory traffic honest. Suitable only for performance
    /// measurements (the closed-loop SLO harness); outputs do not
    /// decrypt meaningfully.
    pub fn generate_for_benchmark(params: &TfheParameters, seed: u64) -> Self {
        // lint:allow(panic) documented constructor contract
        params.validate().expect("parameter set must be valid");
        let mut rng = NoiseSampler::from_seed(seed);
        let bsk = BootstrapKey::generate_for_benchmark(params);
        let mbsk = params
            .pbs_kernel
            .grouping_factor()
            .map(|g| MultiBitBootstrapKey::generate_for_benchmark(params, g));
        let glwe_sk =
            GlweSecretKey::generate(params.glwe_dimension, params.polynomial_size, &mut rng);
        let lwe_sk = LweSecretKey::generate(params.lwe_dimension, &mut rng);
        let ksk =
            KeySwitchKey::generate(&glwe_sk.to_extracted_lwe_key(), &lwe_sk, params, &mut rng);
        Self { params: params.clone(), bsk, mbsk, ksk }
    }
}

/// Generates a `(ClientKey, ServerKey)` pair from a seed.
///
/// # Example
///
/// ```
/// use strix_tfhe::prelude::*;
///
/// let params = TfheParameters::testing_fast();
/// let (mut client, server) = generate_keys(&params, 1);
/// let ct = client.encrypt_bool(true);
/// assert!(client.decrypt_bool(&ct));
/// # let _ = server;
/// ```
pub fn generate_keys(params: &TfheParameters, seed: u64) -> (ClientKey, ServerKey) {
    let mut client = ClientKey::generate(params, seed);
    let server = client.server_key();
    (client, server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PbsKernel;

    #[test]
    fn generate_keys_produces_matching_dimensions() {
        let params = TfheParameters::testing_fast();
        let (client, server) = generate_keys(&params, 7);
        assert_eq!(client.lwe_secret_key().dimension(), params.lwe_dimension);
        assert_eq!(client.extracted_secret_key().dimension(), params.extracted_lwe_dimension());
        assert_eq!(server.bootstrap_key().input_dimension(), params.lwe_dimension);
        assert_eq!(server.keyswitch_key().output_dimension(), params.lwe_dimension);
        assert_eq!(server.keyswitch_key().input_dimension(), params.extracted_lwe_dimension());
    }

    #[test]
    fn key_bytes_matches_parameter_formulas() {
        let params = TfheParameters::testing_fast();
        let (_, server) = generate_keys(&params, 7);
        assert!(server.multi_bit_bootstrap_key().is_none());
        assert_eq!(server.key_bytes(), params.bootstrap_key_bytes() + params.keyswitch_key_bytes());
    }

    #[test]
    fn multi_bit_kernel_adds_grouped_key_material() {
        let g = 2;
        let params =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: g });
        let (_, server) = generate_keys(&params, 7);
        let mbsk = server.multi_bit_bootstrap_key().expect("multi-bit kernel carries its key");
        assert_eq!(mbsk.grouping_factor(), g);
        assert_eq!(mbsk.group_count(), params.multi_bit_group_count(g));
        assert_eq!(
            server.key_bytes(),
            params.bootstrap_key_bytes()
                + params.multi_bit_bootstrap_key_bytes(g)
                + params.keyswitch_key_bytes()
        );
        // The classical key is still present as dispatch fallback.
        assert_eq!(server.bootstrap_key().input_dimension(), params.lwe_dimension);
    }

    #[test]
    fn benchmark_key_honours_multi_bit_kernel() {
        let params =
            TfheParameters::testing_fast().with_kernel(PbsKernel::MultiBit { grouping_factor: 3 });
        let server = ServerKey::generate_for_benchmark(&params, 5);
        let mbsk = server.multi_bit_bootstrap_key().expect("benchmark key honours the kernel");
        assert_eq!(mbsk.byte_size(), params.multi_bit_bootstrap_key_bytes(3));
        let lut = crate::bootstrap::Lut::sign(params.polynomial_size, 1);
        let ct = LweCiphertext::trivial(params.lwe_dimension, 0);
        assert!(mbsk.bootstrap(&ct, &lut).is_ok());
    }

    #[test]
    fn torus_encrypt_decrypt() {
        let params = TfheParameters::testing_fast();
        let (mut client, _) = generate_keys(&params, 11);
        let pt = crate::torus::encode_fraction(3, 4);
        let ct = client.encrypt_torus(pt);
        let phase = client.decrypt_phase(&ct).unwrap();
        assert_eq!(crate::torus::decode_message(phase, 4), 3);
    }

    #[test]
    fn benchmark_server_key_has_real_shapes() {
        let params = TfheParameters::testing_fast();
        let server = ServerKey::generate_for_benchmark(&params, 123);
        assert_eq!(server.bootstrap_key().input_dimension(), params.lwe_dimension);
        assert_eq!(server.keyswitch_key().input_dimension(), params.extracted_lwe_dimension());
        assert_eq!(server.keyswitch_key().output_dimension(), params.lwe_dimension);
        assert_eq!(server.key_bytes(), params.bootstrap_key_bytes() + params.keyswitch_key_bytes());
        // The PBS+KS pipeline runs end to end with the benchmark key.
        let lut = crate::bootstrap::Lut::sign(params.polynomial_size, 1);
        let ct = LweCiphertext::trivial(params.lwe_dimension, 0);
        let booted = server.bootstrap_key().bootstrap(&ct, &lut).unwrap();
        let switched = server.keyswitch_key().keyswitch(&booted).unwrap();
        assert_eq!(switched.dimension(), params.lwe_dimension);
    }

    #[test]
    #[should_panic(expected = "parameter set must be valid")]
    fn invalid_parameters_panic_at_keygen() {
        let mut params = TfheParameters::testing_fast();
        params.polynomial_size = 100;
        ClientKey::generate(&params, 0);
    }
}
